//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access to crates.io, so this vendor
//! crate mirrors the criterion API surface the workspace's benches use
//! (`Criterion`, `BenchmarkGroup`, `BenchmarkId`, `Bencher::iter`, and the
//! `criterion_group!` / `criterion_main!` macros) over plain wall-clock
//! timing: per benchmark it warms up, sizes an iteration batch, takes
//! `sample_size` samples, and prints mean / min / max. No statistical
//! analysis, HTML reports, or baseline comparisons.

#![warn(missing_docs)]

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Identifies one benchmark within a group (`function/parameter`).
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id from a function name and a parameter display value.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        Self {
            id: format!("{function}/{parameter}"),
        }
    }
}

/// Drives the measured closure.
pub struct Bencher<'m> {
    measurement: &'m mut Measurement,
}

impl Bencher<'_> {
    /// Times `f`, storing samples into the owning measurement.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up and batch sizing: target ~5 ms per sample so fast
        // closures are timed over many iterations.
        let warm = Instant::now();
        std_black_box(f());
        let once = warm.elapsed().max(Duration::from_nanos(1));
        let iters = (Duration::from_millis(5).as_nanos() / once.as_nanos()).clamp(1, 10_000) as u32;

        let samples = self.measurement.sample_size.max(2);
        let mut times = Vec::with_capacity(samples);
        for _ in 0..samples {
            let start = Instant::now();
            for _ in 0..iters {
                std_black_box(f());
            }
            times.push(start.elapsed().as_secs_f64() / f64::from(iters));
        }
        self.measurement.per_iter_secs = times;
    }
}

/// One benchmark's collected samples.
struct Measurement {
    sample_size: usize,
    per_iter_secs: Vec<f64>,
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.1} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

fn run_and_report(group: &str, id: &str, sample_size: usize, f: impl FnOnce(&mut Bencher)) {
    let mut m = Measurement {
        sample_size,
        per_iter_secs: Vec::new(),
    };
    f(&mut Bencher { measurement: &mut m });
    if m.per_iter_secs.is_empty() {
        println!("{group}/{id}  (no samples)");
        return;
    }
    let n = m.per_iter_secs.len() as f64;
    let mean = m.per_iter_secs.iter().sum::<f64>() / n;
    let min = m.per_iter_secs.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = m.per_iter_secs.iter().cloned().fold(0.0f64, f64::max);
    println!(
        "{group}/{id}  time: [{} {} {}]",
        fmt_time(min),
        fmt_time(mean),
        fmt_time(max)
    );
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Benchmarks `f` under `id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, mut f: F) -> &mut Self {
        run_and_report(&self.name, &id.to_string(), self.criterion.sample_size, |b| f(b));
        self
    }

    /// Benchmarks `f` with a borrowed input under `id`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_and_report(&self.name, &id.id, self.criterion.sample_size, |b| f(b, input));
        self
    }

    /// Ends the group (formatting no-op; kept for API parity).
    pub fn finish(self) {}
}

/// The benchmark harness handle.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the number of timing samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Opens a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Benchmarks a standalone function.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, mut f: F) -> &mut Self {
        run_and_report("bench", &id.to_string(), self.sample_size, |b| f(b));
        self
    }
}

/// Declares a group of benchmark targets, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = <$crate::Criterion as ::core::default::Default>::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench entry point, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
