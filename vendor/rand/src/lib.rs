//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access to crates.io, so this vendor
//! crate provides exactly the slice of `rand` 0.8's API the workspace uses:
//! [`Rng`] (`gen`, `gen_range`, `gen_bool`), [`SeedableRng::seed_from_u64`],
//! and [`rngs::StdRng`]. The generator is xoshiro256++ seeded through
//! SplitMix64 — not `rand`'s ChaCha12, so streams differ from upstream
//! `rand`, but every consumer in this workspace only requires seed-determinism
//! and reasonable statistical quality, both of which xoshiro256++ provides.

#![warn(missing_docs)]

/// Low-level generator interface: a source of uniform random `u64`s.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits (upper half of a `u64`).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Marker for types samplable uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from the type's standard distribution.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

/// A range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! uint_range_impl {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end - self.start) as u64;
                self.start + (uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (uniform_u64(rng, span + 1) as $t)
            }
        }
    )*};
}
uint_range_impl!(u8, u16, u32, u64, usize);

macro_rules! int_range_impl {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                self.start.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as $u).wrapping_sub(lo as $u) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_u64(rng, span + 1) as $t)
            }
        }
    )*};
}
int_range_impl!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

macro_rules! float_range_impl {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let unit = <$t as Standard>::sample(rng);
                self.start + (self.end - self.start) * unit
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let unit = <$t as Standard>::sample(rng);
                lo + (hi - lo) * unit
            }
        }
    )*};
}
float_range_impl!(f32, f64);

/// Uniform integer in `[0, bound)` via Lemire's multiply-shift with a
/// rejection step, so results are exactly uniform for any `bound`.
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (bound as u128);
        let lo = m as u64;
        if lo >= bound || lo >= bound.wrapping_neg() % bound {
            return (m >> 64) as u64;
        }
    }
}

/// High-level convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value from the type's standard distribution
    /// (`[0, 1)` for floats).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, Ra: SampleRange<T>>(&mut self, range: Ra) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        <f64 as Standard>::sample(self) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Seedable construction, matching the subset of `rand::SeedableRng` used
/// in this workspace.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ seeded via SplitMix64.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the recommended seeding procedure for
            // the xoshiro family.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seed_determinism() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<f64>(), b.gen::<f64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<f64>(), c.gen::<f64>());
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f32 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            let y: f64 = rng.gen();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn gen_range_bounds_hold() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..2_000 {
            let v = rng.gen_range(3usize..7);
            assert!((3..7).contains(&v));
            let w = rng.gen_range(0u32..=3);
            seen_lo |= w == 0;
            seen_hi |= w == 3;
            let f = rng.gen_range(-2.0f32..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
        assert!(seen_lo && seen_hi, "inclusive range must hit both endpoints");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.25)).count();
        let rate = hits as f64 / 20_000.0;
        assert!((rate - 0.25).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn mean_is_centered() {
        let mut rng = StdRng::seed_from_u64(4);
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
