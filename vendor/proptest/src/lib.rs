//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access to crates.io, so this vendor
//! crate implements the subset of proptest's API the workspace's property
//! tests use: the [`proptest!`] macro, range/tuple/vec/map/oneof strategies,
//! [`any`], [`strategy::Just`], and the `prop_assert*` / [`prop_assume!`]
//! macros. Differences from upstream: cases are generated from a fixed
//! per-test seed (fully deterministic runs) and failing cases are reported
//! but **not shrunk**.

#![warn(missing_docs)]

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Namespace mirror so `prop::collection::vec(..)` resolves as it does with
/// the real crate.
pub mod prop {
    pub use crate::collection;
    pub use crate::option;
}

/// Per-test configuration (only the case count is honored).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of generated cases per property (rejected cases included).
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; 64 keeps the CI suite fast while still
        // exercising a meaningful sample.
        Self { cases: 64 }
    }
}

/// Everything a property-test file needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};
}

/// Defines deterministic property tests.
///
/// Each `fn name(pat in strategy, ...) { body }` item expands to a
/// `#[test]`-style function that samples the strategies `cases` times and
/// runs the body; `prop_assume!` rejections skip the case, `prop_assert*`
/// failures abort with the case's inputs printed.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!{ (<$crate::ProptestConfig as ::core::default::Default>::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::from_name(stringify!($name));
            for __case in 0..__config.cases {
                $(let $pat = $crate::strategy::Strategy::sample(&$strat, &mut __rng);)+
                let __outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (move || { $body ::core::result::Result::Ok(()) })();
                match __outcome {
                    ::core::result::Result::Ok(()) => {}
                    ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject) => {}
                    ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(__msg)) => {
                        panic!("property '{}' failed at case {}: {}", stringify!($name), __case, __msg);
                    }
                }
            }
        }
        $crate::__proptest_items!{ ($cfg) $($rest)* }
    };
}

/// Rejects the current case (it is skipped, not failed) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{}` == `{}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), __l, __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "{}\n  left: {:?}\n right: {:?}",
            format!($($fmt)+), __l, __r
        );
    }};
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `{}` != `{}`\n  both: {:?}",
            stringify!($left), stringify!($right), __l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "{}\n  both: {:?}",
            format!($($fmt)+), __l
        );
    }};
}

/// Uniformly picks one of several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// `Option` strategies (`prop::option::of`).
pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Generates `None` about a quarter of the time, `Some(inner)` otherwise
    /// (upstream's default weighting).
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            if rng.gen::<f64>() < 0.25 {
                None
            } else {
                Some(self.inner.sample(rng))
            }
        }
    }

    /// The `prop::option::of` entry point.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }
}
