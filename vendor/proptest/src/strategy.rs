//! Value-generation strategies: the sampling core of the proptest stand-in.

use crate::test_runner::TestRng;
use rand::{Rng, SampleRange};
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of one type.
///
/// Unlike upstream proptest there is no value tree / shrinking: `sample`
/// draws a fresh value directly.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { source: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<V>(Box<dyn Strategy<Value = V>>);

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        self.0.sample(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The [`Strategy::prop_map`] combinator.
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.source.sample(rng))
    }
}

/// Uniform choice among same-valued strategies
/// (the [`prop_oneof!`](crate::prop_oneof) combinator).
pub struct Union<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Builds a union over `arms` (must be non-empty).
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Self { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        let i = rng.gen_range(0..self.arms.len());
        self.arms[i].sample(rng)
    }
}

impl<T: Copy + 'static> Strategy for Range<T>
where
    Range<T>: SampleRange<T> + Clone,
{
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.clone())
    }
}

impl<T: Copy + 'static> Strategy for RangeInclusive<T>
where
    RangeInclusive<T>: SampleRange<T> + Clone,
{
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.clone())
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )+};
}
tuple_strategy!(
    (A.0),
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
);

/// Types with a canonical "whole domain" strategy, for [`any`].
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen::<f64>() < 0.5
    }
}

macro_rules! arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.gen::<u64>() as $t
            }
        }
    )*};
}
arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f32 {
    /// Unit-interval floats (the workspace never relies on full-domain
    /// float generation).
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen::<f32>()
    }
}

impl Arbitrary for f64 {
    /// Unit-interval floats.
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen::<f64>()
    }
}

/// Strategy over a type's whole (canonical) domain.
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The `any::<T>()` entry point.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}
