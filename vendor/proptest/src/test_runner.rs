//! The deterministic case generator behind [`proptest!`](crate::proptest).

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// RNG driving case generation. Seeded from the property's name so every
/// test has its own reproducible stream.
#[derive(Clone, Debug)]
pub struct TestRng(StdRng);

impl TestRng {
    /// Builds the generator for the property named `name` (FNV-1a seed).
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self(StdRng::seed_from_u64(h))
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// Outcome of one generated case's body.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` failed — skip the case.
    Reject,
    /// `prop_assert*` failed — abort the property.
    Fail(String),
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
}
