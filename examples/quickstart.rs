//! Quickstart: build a small book knowledge graph (the paper's running
//! example from §V / Fig. 2), train a supervised LMKG-S estimator, and ask it
//! the paper's example query:
//!
//! ```sparql
//! SELECT ?x WHERE { ?x :hasAuthor :StephenKing ; :genre :Horror . }
//! ```
//!
//! Run with `cargo run --release -p lmkg-examples --bin quickstart`.

use lmkg::framework::{Grouping, Lmkg, LmkgConfig, ModelType};
use lmkg::supervised::LmkgSConfig;
use lmkg_store::{counter, GraphBuilder, NodeId, NodeTerm, PredId, PredTerm, Query, QueryShape, TriplePattern, VarId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    // 1. Build a knowledge graph: books, authors, genres.
    let mut rng = StdRng::seed_from_u64(1);
    let mut b = GraphBuilder::new();
    let authors = [":StephenKing", ":AgathaChristie", ":IsaacAsimov", ":UrsulaLeGuin"];
    let genres = [":Horror", ":Mystery", ":SciFi", ":Fantasy"];
    for i in 0..400 {
        let book = format!(":book{i}");
        // Stephen King is prolific, and writes mostly horror.
        let author_idx = if rng.gen_bool(0.4) {
            0
        } else {
            rng.gen_range(1..authors.len())
        };
        b.add(&book, ":hasAuthor", authors[author_idx]);
        let genre_idx = if author_idx == 0 && rng.gen_bool(0.8) {
            0
        } else {
            rng.gen_range(0..genres.len())
        };
        b.add(&book, ":genre", genres[genre_idx]);
        if rng.gen_bool(0.3) {
            b.add(&book, ":translatedTo", ":German");
        }
        b.add(authors[author_idx], ":wrote", &book);
    }
    b.add(":StephenKing", ":bornIn", ":USA");
    b.add(":IsaacAsimov", ":bornIn", ":USA");
    let graph = b.build();
    println!(
        "graph: {} triples, {} nodes, {} predicates",
        graph.num_triples(),
        graph.num_nodes(),
        graph.num_preds()
    );

    // 2. Creation phase: train LMKG-S for star and chain queries of size 2.
    let cfg = LmkgConfig {
        model_type: ModelType::Supervised,
        grouping: Grouping::BySize,
        shapes: vec![QueryShape::Star, QueryShape::Chain],
        sizes: vec![2],
        queries_per_size: 800,
        s_config: LmkgSConfig {
            hidden: vec![128, 128],
            epochs: 80,
            ..Default::default()
        },
        u_config: Default::default(),
        workload_seed: 7,
    };
    println!(
        "training LMKG-S ({} training queries per shape/size)…",
        cfg.queries_per_size
    );
    let lmkg = Lmkg::build(&graph, &cfg);
    println!("framework holds {} model(s)", lmkg.model_count());

    // 3. Execution phase: the Fig. 2 query.
    let has_author = PredId(graph.preds().get(":hasAuthor").expect("predicate exists"));
    let genre = PredId(graph.preds().get(":genre").expect("predicate exists"));
    let king = NodeId(graph.nodes().get(":StephenKing").expect("node exists"));
    let horror = NodeId(graph.nodes().get(":Horror").expect("node exists"));
    let book = NodeTerm::Var(VarId(0));
    let query = Query::new(vec![
        TriplePattern::new(book, PredTerm::Bound(has_author), NodeTerm::Bound(king)),
        TriplePattern::new(book, PredTerm::Bound(genre), NodeTerm::Bound(horror)),
    ]);

    let estimate = lmkg.estimate_query(&query);
    let exact = counter::cardinality(&graph, &query);
    let q_err = lmkg::q_error(estimate, exact);
    println!("\nSELECT ?x WHERE {{ ?x :hasAuthor :StephenKing ; :genre :Horror . }}");
    println!("  exact cardinality : {exact}");
    println!("  LMKG-S estimate   : {estimate:.1}");
    println!("  q-error           : {q_err:.2}");

    // 4. A chain query: ?x :hasAuthor ?y . ?y :bornIn :USA
    let born_in = PredId(graph.preds().get(":bornIn").expect("predicate exists"));
    let usa = NodeId(graph.nodes().get(":USA").expect("node exists"));
    let x = NodeTerm::Var(VarId(0));
    let y = NodeTerm::Var(VarId(1));
    let chain = Query::new(vec![
        TriplePattern::new(x, PredTerm::Bound(has_author), y),
        TriplePattern::new(y, PredTerm::Bound(born_in), NodeTerm::Bound(usa)),
    ]);
    let estimate = lmkg.estimate_query(&chain);
    let exact = counter::cardinality(&graph, &chain);
    println!("\nSELECT ?x WHERE {{ ?x :hasAuthor ?y . ?y :bornIn :USA . }}");
    println!("  exact cardinality : {exact}");
    println!("  LMKG-S estimate   : {estimate:.1}");
    println!("  q-error           : {:.2}", lmkg::q_error(estimate, exact));
}
