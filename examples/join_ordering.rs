//! Join ordering with learned cardinalities — the paper's motivating use
//! case ("producing efficient query plans heavily relies on accurate
//! cardinality estimates", §I; "practically useful when considering query
//! optimization, where a reordering of different patterns of smaller sizes
//! is needed", §VIII-C).
//!
//! A greedy left-deep optimizer orders the triple patterns of a star query
//! by estimated selectivity. We measure the *actual* intermediate-result
//! work of each plan and compare three estimators: the exact oracle, LMKG-S,
//! and the independence-assumption statistics block the early systems of
//! §II used.
//!
//! Run with `cargo run --release -p lmkg-examples --bin join_ordering`.

use lmkg::framework::{Grouping, Lmkg, LmkgConfig, ModelType};
use lmkg::supervised::LmkgSConfig;
use lmkg::GraphSummary;
use lmkg_data::{Dataset, Scale};
use lmkg_store::{counter, KnowledgeGraph, Query, QueryShape, TriplePattern};

/// Cost of a left-deep plan = total intermediate results produced, measured
/// by actually counting each prefix join.
fn plan_cost(graph: &KnowledgeGraph, order: &[TriplePattern]) -> u64 {
    let mut cost = 0u64;
    for len in 1..=order.len() {
        let prefix = Query::new(order[..len].to_vec());
        cost = cost.saturating_add(counter::cardinality(graph, &prefix));
    }
    cost
}

/// Greedy left-deep ordering: repeatedly append the pattern whose addition
/// the estimator considers most selective.
fn greedy_order(query: &Query, mut estimate: impl FnMut(&Query) -> f64) -> Vec<TriplePattern> {
    let mut remaining = query.triples.clone();
    let mut order: Vec<TriplePattern> = Vec::new();
    while !remaining.is_empty() {
        let scores: Vec<f64> = remaining
            .iter()
            .map(|t| {
                let mut cand = order.clone();
                cand.push(*t);
                estimate(&Query::new(cand))
            })
            .collect();
        let best = (0..scores.len())
            .min_by(|&a, &b| scores[a].total_cmp(&scores[b]))
            .expect("non-empty");
        order.push(remaining.remove(best));
    }
    order
}

fn main() {
    let graph = Dataset::LubmLike.generate(Scale::Ci, 11);
    println!("LUBM-like graph: {} triples", graph.num_triples());

    // Train LMKG-S on stars of sizes 2 and 3 (prefixes of our 3-way joins).
    let cfg = LmkgConfig {
        model_type: ModelType::Supervised,
        grouping: Grouping::BySize,
        shapes: vec![QueryShape::Star, QueryShape::Chain],
        sizes: vec![2, 3],
        queries_per_size: 700,
        s_config: LmkgSConfig {
            hidden: vec![128, 128],
            epochs: 60,
            ..Default::default()
        },
        u_config: Default::default(),
        workload_seed: 3,
    };
    println!("training LMKG-S…");
    let lmkg = Lmkg::build(&graph, &cfg);
    let summary = GraphSummary::build(&graph);

    // Evaluation queries: 3-way stars from the test workload generator.
    let wl = lmkg_data::WorkloadConfig::test_default(QueryShape::Star, 3, 99);
    let queries = lmkg_data::workload::generate(&graph, &wl);

    let mut totals = [0u64; 3]; // exact, lmkg, independence
    let mut wins_vs_independence = 0usize;
    let n = queries.len().min(60);
    for lq in queries.iter().take(n) {
        let exact_order = greedy_order(&lq.query, |q| counter::cardinality(&graph, q) as f64);
        let lmkg_order = greedy_order(&lq.query, |q| lmkg.estimate_query(q));
        let indep_order = greedy_order(&lq.query, |q| summary.estimate_query_independent(q));

        let costs = [
            plan_cost(&graph, &exact_order),
            plan_cost(&graph, &lmkg_order),
            plan_cost(&graph, &indep_order),
        ];
        for (t, c) in totals.iter_mut().zip(costs) {
            *t += c;
        }
        if costs[1] <= costs[2] {
            wins_vs_independence += 1;
        }
    }

    println!("\ntotal intermediate-result work across {n} three-way star joins:");
    println!("  exact-cost oracle ordering : {:>10}", totals[0]);
    println!("  LMKG-S ordering            : {:>10}", totals[1]);
    println!("  independence ordering      : {:>10}", totals[2]);
    println!(
        "\nLMKG-S plan ≤ independence plan on {wins_vs_independence}/{n} queries \
         ({:.0}% of the oracle's plan quality)",
        100.0 * totals[0] as f64 / totals[1].max(1) as f64
    );
}
