//! Conference-metadata scenario on the SWDF-like dataset: train the
//! *unsupervised* LMKG-U estimator on star patterns and compare it against
//! the characteristic-sets summary (CSET) on a workload of author/topic
//! queries. CSET is *specialized* for star queries and is nearly exact when
//! subject classes are clean, while LMKG-U is a general density model — the
//! comparison shows both the accuracy and the memory trade-off the paper's
//! Fig. 9 / Table II report.
//!
//! Run with `cargo run --release -p lmkg-examples --bin dogfood_conference`.

use lmkg::metrics::QErrorStats;
use lmkg::unsupervised::{LmkgU, LmkgUConfig};
use lmkg::CardinalityEstimator;
use lmkg_baselines::CharacteristicSets;
use lmkg_data::workload::{self, WorkloadConfig};
use lmkg_data::{Dataset, SamplingStrategy, Scale};
use lmkg_store::QueryShape;

fn main() {
    let graph = Dataset::SwdfLike.generate(Scale::Ci, 21);
    println!(
        "SWDF-like graph: {} triples, {} entities, {} predicates",
        graph.num_triples(),
        graph.num_nodes(),
        graph.num_preds()
    );

    // Train LMKG-U for 2-triple star patterns (author/topic lookups).
    let cfg = LmkgUConfig {
        hidden: 64,
        blocks: 1,
        embed_dim: 16,
        epochs: 12,
        train_samples: 8000,
        strategy: SamplingStrategy::Uniform,
        particles: 256,
        seed: 5,
        ..Default::default()
    };
    let mut lmkg_u = LmkgU::new(&graph, QueryShape::Star, 2, cfg).expect("domain fits");
    println!("training LMKG-U (ResMADE, {} parameters)…", lmkg_u.param_count());
    let stats = lmkg_u.train(&graph);
    println!("  final training NLL: {:.3}", stats.last().expect("epochs > 0").loss);

    // Competitor: characteristic sets.
    let cset = CharacteristicSets::build(&graph);
    println!("CSET summary: {} characteristic sets", cset.num_sets());

    // Evaluation workload: 2-star queries bucketed by result size.
    let wl = WorkloadConfig::test_default(QueryShape::Star, 2, 77);
    let queries = workload::generate(&graph, &wl);
    println!("evaluating on {} star queries…\n", queries.len());

    let mut u_pairs = Vec::new();
    let mut cset_pairs = Vec::new();
    for lq in &queries {
        if let Ok(est) = lmkg_u.estimate_query(&lq.query) {
            u_pairs.push((est, lq.cardinality));
            cset_pairs.push((cset.estimate(&lq.query), lq.cardinality));
        }
    }

    let report = |name: &str, stats: QErrorStats| {
        println!(
            "{name:>8}: mean q-error {:>8.2} | median {:>6.2} | p95 {:>8.2} | max {:>10.1}",
            stats.mean, stats.median, stats.p95, stats.max
        );
    };
    report("LMKG-U", QErrorStats::from_pairs(u_pairs).expect("non-empty"));
    report("CSET", QErrorStats::from_pairs(cset_pairs).expect("non-empty"));

    println!(
        "\nmemory: LMKG-U model {:.1} KB vs CSET summary {:.1} KB",
        lmkg_u.memory_bytes() as f64 / 1024.0,
        cset.memory_bytes() as f64 / 1024.0
    );
    println!("(the paper's Table II shows the same ordering: the autoregressive\n model pays memory for its accuracy)");
}
