//! End-to-end pipeline on user-provided RDF: serialize a graph to
//! N-Triples, load it back through the parser, train an estimator, persist
//! the trained parameters to disk, and restore them into a fresh model —
//! the workflow a downstream user of the library would follow with their own
//! `.nt` dump.
//!
//! Run with `cargo run --release -p lmkg-examples --bin custom_ntriples`.

use lmkg::supervised::{LmkgS, LmkgSConfig, QueryEncoder};
use lmkg_data::workload::{self, WorkloadConfig};
use lmkg_data::{Dataset, Scale};
use lmkg_encoder::SgEncoder;
use lmkg_store::ntriples;
use lmkg_store::QueryShape;
use std::fs;

fn main() -> std::io::Result<()> {
    let dir = std::env::temp_dir().join("lmkg-example");
    fs::create_dir_all(&dir)?;
    let nt_path = dir.join("dataset.nt");
    let model_path = dir.join("lmkg_s.params");

    // 1. Produce an N-Triples file (stand-in for the user's own dump).
    let original = Dataset::LubmLike.generate(Scale::Ci, 9);
    let mut file = std::io::BufWriter::new(fs::File::create(&nt_path)?);
    ntriples::write(&original, &mut file)?;
    drop(file);
    println!("wrote {} ({} triples)", nt_path.display(), original.num_triples());

    // 2. Load it back.
    let reader = std::io::BufReader::new(fs::File::open(&nt_path)?);
    let graph = ntriples::read(reader).expect("valid N-Triples");
    assert_eq!(graph.num_triples(), original.num_triples());
    println!("reloaded {} triples, {} nodes", graph.num_triples(), graph.num_nodes());

    // 3. Train LMKG-S on star queries of size 2.
    let train = workload::generate(&graph, &WorkloadConfig::train_default(QueryShape::Star, 2, 600, 13));
    let encoder = QueryEncoder::Sg(SgEncoder::capacity_for_size(graph.num_nodes(), graph.num_preds(), 2));
    let mut model = LmkgS::new(
        encoder,
        LmkgSConfig {
            hidden: vec![96, 96],
            epochs: 60,
            ..Default::default()
        },
    );
    println!("training on {} labeled queries…", train.len());
    let stats = model.train(&train);
    println!("  final loss: {:.3}", stats.last().expect("epochs > 0").loss);

    // 4. Persist the parameters.
    let mut out = fs::File::create(&model_path)?;
    model.save_params(&mut out)?;
    let scaler = *model.scaler().expect("trained");
    println!(
        "saved parameters to {} ({} bytes)",
        model_path.display(),
        fs::metadata(&model_path)?.len()
    );

    // 5. Restore into a fresh model and verify predictions agree.
    let encoder2 = QueryEncoder::Sg(SgEncoder::capacity_for_size(graph.num_nodes(), graph.num_preds(), 2));
    let mut restored = LmkgS::new(
        encoder2,
        LmkgSConfig {
            hidden: vec![96, 96],
            seed: 4242,
            ..Default::default()
        },
    );
    let mut input = fs::File::open(&model_path)?;
    restored.load_params(&mut input)?;
    restored.set_scaler(scaler);

    let probe = &train[0];
    let a = model.predict(&probe.query).expect("covered query");
    let b = restored.predict(&probe.query).expect("covered query");
    assert_eq!(a, b, "restored model must reproduce predictions exactly");
    println!(
        "\nprediction parity after reload: {a:.1} == {b:.1} ✓ (true cardinality {})",
        probe.cardinality
    );

    fs::remove_file(&nt_path).ok();
    fs::remove_file(&model_path).ok();
    Ok(())
}
