//! # lmkg-store
//!
//! The RDF knowledge-graph substrate underpinning the LMKG reproduction:
//! dictionary-encoded triples, CSR indexes, basic-graph-pattern matching
//! under SPARQL homomorphism semantics, exact cardinality counting (the
//! ground-truth oracle for all experiments), tuple-space totals for the
//! unsupervised estimator, an N-Triples reader/writer, and graph statistics.
//!
//! ```
//! use lmkg_store::{GraphBuilder, Query, TriplePattern, NodeTerm, PredTerm, VarId, counter};
//!
//! let mut b = GraphBuilder::new();
//! b.add(":shining", ":hasAuthor", ":stephen_king");
//! b.add(":shining", ":genre", ":horror");
//! b.add(":it", ":hasAuthor", ":stephen_king");
//! b.add(":it", ":genre", ":horror");
//! let g = b.build();
//!
//! // ?book :hasAuthor :stephen_king . ?book :genre :horror
//! let author = PredTerm::Bound(lmkg_store::PredId(g.preds().get(":hasAuthor").unwrap()));
//! let genre = PredTerm::Bound(lmkg_store::PredId(g.preds().get(":genre").unwrap()));
//! let king = NodeTerm::Bound(lmkg_store::NodeId(g.nodes().get(":stephen_king").unwrap()));
//! let horror = NodeTerm::Bound(lmkg_store::NodeId(g.nodes().get(":horror").unwrap()));
//! let book = NodeTerm::Var(VarId(0));
//! let q = Query::new(vec![
//!     TriplePattern::new(book, author, king),
//!     TriplePattern::new(book, genre, horror),
//! ]);
//! assert_eq!(counter::cardinality(&g, &q), 2);
//! ```

// No unsafe anywhere in this crate — enforced so the lmkg-xtask L1 lint
// and the sanitizer jobs only ever have the nn kernels and the serve
// signal shim to reason about.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod counter;
pub mod dict;
pub mod fxhash;
pub mod graph;
pub mod matcher;
pub mod ntriples;
pub mod sparql;
pub mod stats;
pub mod triple;

pub use dict::{Dictionary, NodeId, PredId};
pub use graph::{GraphBuilder, KnowledgeGraph};
pub use stats::{GraphStats, LogHistogram};
pub use triple::{NodeTerm, PredTerm, Query, QueryBuilder, QueryShape, Triple, TriplePattern, VarId};
