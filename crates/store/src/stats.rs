//! Graph statistics: the dataset specifications of Table I and the degree /
//! skew measurements that drive model sizing and the Fig. 4 analysis.

use crate::dict::{NodeId, PredId};
use crate::graph::KnowledgeGraph;

/// Summary statistics for a knowledge graph (paper Table I plus degree data).
#[derive(Debug, Clone, PartialEq)]
pub struct GraphStats {
    /// Number of triples.
    pub triples: usize,
    /// Number of distinct entities (nodes: subjects ∪ objects).
    pub entities: usize,
    /// Number of distinct predicates.
    pub predicates: usize,
    /// Number of nodes that appear as subjects.
    pub subjects: usize,
    /// Number of nodes that appear as objects.
    pub objects: usize,
    /// Maximum out-degree.
    pub max_out_degree: usize,
    /// Maximum in-degree.
    pub max_in_degree: usize,
    /// Mean out-degree over subject nodes.
    pub mean_out_degree: f64,
}

impl GraphStats {
    /// Computes statistics for `graph`.
    pub fn compute(graph: &KnowledgeGraph) -> Self {
        let mut subjects = 0usize;
        let mut objects = 0usize;
        let mut max_out = 0usize;
        let mut max_in = 0usize;
        for v in graph.node_ids() {
            let od = graph.out_degree(v);
            let id = graph.in_degree(v);
            if od > 0 {
                subjects += 1;
            }
            if id > 0 {
                objects += 1;
            }
            max_out = max_out.max(od);
            max_in = max_in.max(id);
        }
        let mean_out = if subjects == 0 {
            0.0
        } else {
            graph.num_triples() as f64 / subjects as f64
        };
        Self {
            triples: graph.num_triples(),
            entities: graph.num_nodes(),
            predicates: graph.num_preds(),
            subjects,
            objects,
            max_out_degree: max_out,
            max_in_degree: max_in,
            mean_out_degree: mean_out,
        }
    }
}

/// A histogram over `log`-spaced buckets, used for cardinality and degree
/// distributions (paper Fig. 4 buckets are powers of 5).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogHistogram {
    base: u32,
    /// `counts[i]` holds values in `[base^i, base^(i+1))`; `counts[0]` also
    /// holds zero values when `include_zero` was used.
    pub counts: Vec<u64>,
    /// Number of zero-valued observations (kept separate from bucket 0).
    pub zeros: u64,
}

impl LogHistogram {
    /// Creates an empty histogram with logarithm base `base` (≥ 2).
    pub fn new(base: u32) -> Self {
        assert!(base >= 2, "histogram base must be ≥ 2");
        Self {
            base,
            counts: Vec::new(),
            zeros: 0,
        }
    }

    /// The bucket index of `value` (`None` for zero).
    pub fn bucket_of(&self, value: u64) -> Option<usize> {
        if value == 0 {
            return None;
        }
        let mut b = 0usize;
        let bound = self.base as u64;
        let mut v = value;
        while v >= bound {
            v /= bound;
            b += 1;
        }
        Some(b)
    }

    /// Adds an observation.
    pub fn add(&mut self, value: u64) {
        match self.bucket_of(value) {
            None => self.zeros += 1,
            Some(b) => {
                if self.counts.len() <= b {
                    self.counts.resize(b + 1, 0);
                }
                self.counts[b] += 1;
            }
        }
    }

    /// Total observations, including zeros.
    pub fn total(&self) -> u64 {
        self.zeros + self.counts.iter().sum::<u64>()
    }

    /// Human-readable bucket label `[base^i, base^{i+1})`.
    pub fn label(&self, bucket: usize) -> String {
        format!("[{}^{}, {}^{})", self.base, bucket, self.base, bucket + 1)
    }
}

/// Out-degree histogram in the given log base.
pub fn out_degree_histogram(graph: &KnowledgeGraph, base: u32) -> LogHistogram {
    let mut h = LogHistogram::new(base);
    for v in graph.node_ids() {
        h.add(graph.out_degree(v) as u64);
    }
    h
}

/// Per-predicate triple counts, descending.
pub fn predicate_frequencies(graph: &KnowledgeGraph) -> Vec<(PredId, usize)> {
    let mut freqs: Vec<(PredId, usize)> = graph.pred_ids().map(|p| (p, graph.pred_count(p))).collect();
    freqs.sort_by(|a, b| b.1.cmp(&a.1).then(a.0 .0.cmp(&b.0 .0)));
    freqs
}

/// The `k` nodes with the highest out-degree (hubs), descending.
pub fn top_hubs(graph: &KnowledgeGraph, k: usize) -> Vec<(NodeId, usize)> {
    let mut nodes: Vec<(NodeId, usize)> = graph.node_ids().map(|v| (v, graph.out_degree(v))).collect();
    nodes.sort_by(|a, b| b.1.cmp(&a.1).then(a.0 .0.cmp(&b.0 .0)));
    nodes.truncate(k);
    nodes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;

    fn graph() -> KnowledgeGraph {
        let mut b = GraphBuilder::new();
        b.add("a", "p", "b");
        b.add("a", "p", "c");
        b.add("a", "q", "d");
        b.add("b", "p", "c");
        b.build()
    }

    #[test]
    fn stats_basics() {
        let s = GraphStats::compute(&graph());
        assert_eq!(s.triples, 4);
        assert_eq!(s.entities, 4);
        assert_eq!(s.predicates, 2);
        assert_eq!(s.subjects, 2);
        assert_eq!(s.objects, 3);
        assert_eq!(s.max_out_degree, 3);
        assert!((s.mean_out_degree - 2.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_buckets_powers_of_five() {
        let mut h = LogHistogram::new(5);
        assert_eq!(h.bucket_of(0), None);
        assert_eq!(h.bucket_of(1), Some(0));
        assert_eq!(h.bucket_of(4), Some(0));
        assert_eq!(h.bucket_of(5), Some(1));
        assert_eq!(h.bucket_of(24), Some(1));
        assert_eq!(h.bucket_of(25), Some(2));
        assert_eq!(h.bucket_of(124), Some(2));
        assert_eq!(h.bucket_of(125), Some(3));
        h.add(0);
        h.add(1);
        h.add(7);
        h.add(7);
        assert_eq!(h.zeros, 1);
        assert_eq!(h.counts, vec![1, 2]);
        assert_eq!(h.total(), 4);
    }

    #[test]
    fn histogram_label() {
        let h = LogHistogram::new(5);
        assert_eq!(h.label(0), "[5^0, 5^1)");
        assert_eq!(h.label(3), "[5^3, 5^4)");
    }

    #[test]
    fn predicate_frequencies_sorted() {
        let f = predicate_frequencies(&graph());
        assert_eq!(f.len(), 2);
        assert!(f[0].1 >= f[1].1);
        assert_eq!(f[0].1, 3); // "p"
    }

    #[test]
    fn top_hubs_ordering() {
        let hubs = top_hubs(&graph(), 2);
        assert_eq!(hubs.len(), 2);
        assert_eq!(hubs[0].1, 3);
        assert!(hubs[0].1 >= hubs[1].1);
    }

    #[test]
    fn degree_histogram_total_counts_all_nodes() {
        let g = graph();
        let h = out_degree_histogram(&g, 5);
        assert_eq!(h.total() as usize, g.num_nodes());
    }
}
