//! A minimal FxHash-style hasher.
//!
//! Term identifiers are dense `u32`s, for which the default SipHash is
//! needlessly slow. The `rustc-hash` crate is not available offline, so this
//! module reimplements the same tiny multiply-rotate scheme (public domain,
//! originally from Firefox/rustc).

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Hash map keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// Hash set keyed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A fast, non-cryptographic hasher for small keys (term ids, id pairs).
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add_to_hash(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_keys_hash_differently() {
        let mut set = FxHashSet::default();
        for i in 0..10_000u32 {
            set.insert(i);
        }
        assert_eq!(set.len(), 10_000);
        for i in 0..10_000u32 {
            assert!(set.contains(&i));
        }
    }

    #[test]
    fn map_roundtrip() {
        let mut m = FxHashMap::default();
        for i in 0..1000u64 {
            m.insert((i, i * 7), i);
        }
        for i in 0..1000u64 {
            assert_eq!(m.get(&(i, i * 7)), Some(&i));
        }
    }

    #[test]
    fn hasher_is_deterministic() {
        let hash = |bytes: &[u8]| {
            let mut h = FxHasher::default();
            h.write(bytes);
            h.finish()
        };
        assert_eq!(hash(b"lmkg"), hash(b"lmkg"));
        assert_ne!(hash(b"lmkg"), hash(b"gkml"));
    }
}
