//! Term dictionaries mapping RDF terms (URIs / literals) to dense ids.
//!
//! LMKG uses a *single* node id space shared by subjects and objects
//! (paper §V-A1: "there is only a single node matrix and not two separate
//! ones"), plus a separate predicate id space. Dense ids are what all
//! encodings (one-hot, binary, SG) operate on.

use crate::fxhash::FxHashMap;
use std::fmt;

/// Identifier of a graph node (subject or object) in the shared node space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

/// Identifier of a predicate (edge label).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PredId(pub u32);

impl NodeId {
    /// The raw index, usable for array addressing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl PredId {
    /// The raw index, usable for array addressing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for PredId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// An interning dictionary: string term ⇄ dense `u32` id.
///
/// Ids are assigned in first-seen order starting from 0, so a dictionary with
/// `n` terms uses exactly the id range `0..n` — the property the binary and
/// one-hot encodings rely on.
#[derive(Debug, Default, Clone)]
pub struct Dictionary {
    terms: Vec<Box<str>>,
    ids: FxHashMap<Box<str>, u32>,
}

impl Dictionary {
    /// Creates an empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty dictionary with capacity for `n` terms.
    pub fn with_capacity(n: usize) -> Self {
        Self {
            terms: Vec::with_capacity(n),
            ids: FxHashMap::with_capacity_and_hasher(n, Default::default()),
        }
    }

    /// Interns `term`, returning its id (existing or freshly assigned).
    pub fn intern(&mut self, term: &str) -> u32 {
        if let Some(&id) = self.ids.get(term) {
            return id;
        }
        let id = u32::try_from(self.terms.len()).expect("dictionary overflow: more than u32::MAX terms");
        let boxed: Box<str> = term.into();
        self.terms.push(boxed.clone());
        self.ids.insert(boxed, id);
        id
    }

    /// Looks up the id of `term` without interning.
    pub fn get(&self, term: &str) -> Option<u32> {
        self.ids.get(term).copied()
    }

    /// Resolves an id back to its term. Panics on out-of-range ids.
    pub fn resolve(&self, id: u32) -> &str {
        &self.terms[id as usize]
    }

    /// Resolves an id back to its term, if in range.
    pub fn try_resolve(&self, id: u32) -> Option<&str> {
        self.terms.get(id as usize).map(|s| &**s)
    }

    /// Number of distinct terms.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// Whether the dictionary is empty.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Iterates over `(id, term)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &str)> {
        self.terms.iter().enumerate().map(|(i, t)| (i as u32, &**t))
    }

    /// Approximate heap memory used by the dictionary, in bytes.
    pub fn heap_bytes(&self) -> usize {
        let strings: usize = self.terms.iter().map(|t| t.len()).sum();
        // Each term is stored twice (vec + map key); map entries carry ~16B overhead.
        2 * strings + self.terms.len() * (std::mem::size_of::<Box<str>>() * 2 + 16)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_assigns_dense_ids_in_order() {
        let mut d = Dictionary::new();
        assert_eq!(d.intern("a"), 0);
        assert_eq!(d.intern("b"), 1);
        assert_eq!(d.intern("c"), 2);
        assert_eq!(d.len(), 3);
    }

    #[test]
    fn intern_is_idempotent() {
        let mut d = Dictionary::new();
        let a = d.intern("x");
        assert_eq!(d.intern("x"), a);
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn resolve_roundtrip() {
        let mut d = Dictionary::new();
        let terms = ["http://example.org/s", "\"literal\"", "ex:p"];
        let ids: Vec<u32> = terms.iter().map(|t| d.intern(t)).collect();
        for (t, id) in terms.iter().zip(ids) {
            assert_eq!(d.resolve(id), *t);
            assert_eq!(d.get(t), Some(id));
        }
    }

    #[test]
    fn get_missing_is_none() {
        let d = Dictionary::new();
        assert_eq!(d.get("nope"), None);
        assert_eq!(d.try_resolve(0), None);
    }

    #[test]
    fn iter_in_id_order() {
        let mut d = Dictionary::new();
        d.intern("z");
        d.intern("y");
        let collected: Vec<_> = d.iter().map(|(i, t)| (i, t.to_string())).collect();
        assert_eq!(collected, vec![(0, "z".to_string()), (1, "y".to_string())]);
    }
}
