//! Triples, triple patterns, and query (basic graph pattern) types.

use crate::dict::{NodeId, PredId};
use std::fmt;

/// A fully bound RDF triple `(subject, predicate, object)` over dense ids.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Triple {
    /// Subject node.
    pub s: NodeId,
    /// Predicate (edge label).
    pub p: PredId,
    /// Object node (may represent a literal interned in the node space).
    pub o: NodeId,
}

impl Triple {
    /// Convenience constructor.
    #[inline]
    pub fn new(s: NodeId, p: PredId, o: NodeId) -> Self {
        Self { s, p, o }
    }
}

/// Identifier of a query variable (`?x` in SPARQL).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VarId(pub u16);

impl VarId {
    /// The raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "?v{}", self.0)
    }
}

/// A node position in a triple pattern: bound to a node or an unbound variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeTerm {
    /// Bound to a concrete graph node.
    Bound(NodeId),
    /// An unbound variable.
    Var(VarId),
}

/// A predicate position in a triple pattern: bound or an unbound variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PredTerm {
    /// Bound to a concrete predicate.
    Bound(PredId),
    /// An unbound variable.
    Var(VarId),
}

impl NodeTerm {
    /// The bound node, if any.
    #[inline]
    pub fn bound(self) -> Option<NodeId> {
        match self {
            NodeTerm::Bound(n) => Some(n),
            NodeTerm::Var(_) => None,
        }
    }

    /// The variable, if unbound.
    #[inline]
    pub fn var(self) -> Option<VarId> {
        match self {
            NodeTerm::Bound(_) => None,
            NodeTerm::Var(v) => Some(v),
        }
    }

    /// Whether this position is bound.
    #[inline]
    pub fn is_bound(self) -> bool {
        matches!(self, NodeTerm::Bound(_))
    }
}

impl PredTerm {
    /// The bound predicate, if any.
    #[inline]
    pub fn bound(self) -> Option<PredId> {
        match self {
            PredTerm::Bound(p) => Some(p),
            PredTerm::Var(_) => None,
        }
    }

    /// The variable, if unbound.
    #[inline]
    pub fn var(self) -> Option<VarId> {
        match self {
            PredTerm::Bound(_) => None,
            PredTerm::Var(v) => Some(v),
        }
    }

    /// Whether this position is bound.
    #[inline]
    pub fn is_bound(self) -> bool {
        matches!(self, PredTerm::Bound(_))
    }
}

/// A single triple pattern with possibly unbound positions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TriplePattern {
    /// Subject position.
    pub s: NodeTerm,
    /// Predicate position.
    pub p: PredTerm,
    /// Object position.
    pub o: NodeTerm,
}

impl TriplePattern {
    /// Convenience constructor.
    #[inline]
    pub fn new(s: NodeTerm, p: PredTerm, o: NodeTerm) -> Self {
        Self { s, p, o }
    }

    /// Number of bound positions (0–3).
    pub fn bound_count(&self) -> usize {
        usize::from(self.s.is_bound()) + usize::from(self.p.is_bound()) + usize::from(self.o.is_bound())
    }

    /// Variables appearing in this pattern, in (s, p, o) order.
    pub fn vars(&self) -> impl Iterator<Item = VarId> + '_ {
        [self.s.var(), self.p.var(), self.o.var()].into_iter().flatten()
    }

    /// Whether a fully bound triple matches this pattern ignoring variables
    /// (i.e. treating every variable as a wildcard).
    pub fn matches_wildcard(&self, t: &Triple) -> bool {
        self.s.bound().is_none_or(|s| s == t.s)
            && self.p.bound().is_none_or(|p| p == t.p)
            && self.o.bound().is_none_or(|o| o == t.o)
    }
}

/// The topology class of a basic graph pattern (paper §V).
///
/// The derived ordering (declaration order: star < chain < single < other)
/// exists so `(shape, size)` workload cells sort deterministically — the
/// workload monitor tie-breaks equal-frequency cells by it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum QueryShape {
    /// All triples share one central subject (subject star).
    Star,
    /// Triples form a directed path: object of triple *i* is subject of *i+1*.
    Chain,
    /// A single triple pattern.
    Single,
    /// Anything else (tree, cycle, composite, …).
    Other,
}

impl fmt::Display for QueryShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            QueryShape::Star => "star",
            QueryShape::Chain => "chain",
            QueryShape::Single => "single",
            QueryShape::Other => "other",
        };
        f.write_str(s)
    }
}

/// A basic graph pattern (conjunctive SPARQL query) over triple patterns.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Query {
    /// Triple patterns, in query order (order matters for chain encodings).
    pub triples: Vec<TriplePattern>,
}

impl Query {
    /// Builds a query from triple patterns.
    pub fn new(triples: Vec<TriplePattern>) -> Self {
        Self { triples }
    }

    /// Number of triple patterns (the paper's "query size" = number of joins).
    pub fn size(&self) -> usize {
        self.triples.len()
    }

    /// The number of distinct variables.
    pub fn var_count(&self) -> usize {
        let mut vars: Vec<VarId> = self.triples.iter().flat_map(|t| t.vars()).collect();
        vars.sort_unstable();
        vars.dedup();
        vars.len()
    }

    /// All distinct variables in first-occurrence order.
    pub fn vars(&self) -> Vec<VarId> {
        let mut seen = Vec::new();
        for t in &self.triples {
            for v in t.vars() {
                if !seen.contains(&v) {
                    seen.push(v);
                }
            }
        }
        seen
    }

    /// The highest variable index + 1 (size of a binding table).
    pub fn var_table_size(&self) -> usize {
        self.triples
            .iter()
            .flat_map(|t| t.vars())
            .map(|v| v.index() + 1)
            .max()
            .unwrap_or(0)
    }

    /// Whether at least one position is an unbound variable.
    pub fn has_unbound(&self) -> bool {
        self.triples.iter().any(|t| t.vars().next().is_some())
    }

    /// Classifies the query topology.
    ///
    /// * `Star`: ≥2 triples, all sharing the identical subject term (bound or
    ///   the same variable), with no other reuse of the center as object.
    /// * `Chain`: ≥2 triples where `o_i == s_{i+1}` (same bound node or same
    ///   variable) and no other term sharing.
    /// * `Single`: exactly one triple pattern.
    /// * `Other`: everything else.
    pub fn shape(&self) -> QueryShape {
        match self.triples.len() {
            0 => QueryShape::Other,
            1 => QueryShape::Single,
            _ => {
                if self.is_subject_star() {
                    QueryShape::Star
                } else if self.is_chain() {
                    QueryShape::Chain
                } else {
                    QueryShape::Other
                }
            }
        }
    }

    /// Whether all triples share the same subject term (paper's subject star).
    pub fn is_subject_star(&self) -> bool {
        if self.triples.len() < 2 {
            return false;
        }
        let center = self.triples[0].s;
        self.triples.iter().all(|t| t.s == center)
    }

    /// Whether the triples form a chain in query order: `o_i == s_{i+1}`.
    pub fn is_chain(&self) -> bool {
        if self.triples.len() < 2 {
            return false;
        }
        self.triples.windows(2).all(|w| w[0].o == w[1].s)
    }

    /// Validates structural invariants:
    /// * a variable is not used both as node and as predicate;
    /// * the query is non-empty.
    pub fn validate(&self) -> Result<(), String> {
        if self.triples.is_empty() {
            return Err("empty query".into());
        }
        let mut node_vars = Vec::new();
        let mut pred_vars = Vec::new();
        for t in &self.triples {
            if let Some(v) = t.s.var() {
                node_vars.push(v);
            }
            if let Some(v) = t.o.var() {
                node_vars.push(v);
            }
            if let Some(v) = t.p.var() {
                pred_vars.push(v);
            }
        }
        for v in &pred_vars {
            if node_vars.contains(v) {
                return Err(format!("variable {v} used in both node and predicate position"));
            }
        }
        Ok(())
    }
}

/// Builder for constructing queries with automatic variable allocation.
#[derive(Debug, Default)]
pub struct QueryBuilder {
    triples: Vec<TriplePattern>,
    next_var: u16,
}

impl QueryBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates a fresh variable.
    pub fn var(&mut self) -> VarId {
        let v = VarId(self.next_var);
        self.next_var += 1;
        v
    }

    /// Adds a triple pattern.
    pub fn triple(&mut self, s: NodeTerm, p: PredTerm, o: NodeTerm) -> &mut Self {
        self.triples.push(TriplePattern::new(s, p, o));
        self
    }

    /// Finishes building.
    pub fn build(self) -> Query {
        Query::new(self.triples)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeTerm {
        NodeTerm::Bound(NodeId(i))
    }
    fn p(i: u32) -> PredTerm {
        PredTerm::Bound(PredId(i))
    }
    fn nv(i: u16) -> NodeTerm {
        NodeTerm::Var(VarId(i))
    }

    #[test]
    fn star_shape_detected() {
        let q = Query::new(vec![
            TriplePattern::new(nv(0), p(1), n(5)),
            TriplePattern::new(nv(0), p(2), n(6)),
        ]);
        assert_eq!(q.shape(), QueryShape::Star);
    }

    #[test]
    fn chain_shape_detected() {
        let q = Query::new(vec![
            TriplePattern::new(nv(0), p(1), nv(1)),
            TriplePattern::new(nv(1), p(2), n(9)),
        ]);
        assert_eq!(q.shape(), QueryShape::Chain);
    }

    #[test]
    fn single_and_other_shapes() {
        let q1 = Query::new(vec![TriplePattern::new(nv(0), p(1), n(5))]);
        assert_eq!(q1.shape(), QueryShape::Single);

        // ?a p ?b . ?c p ?b — object-shared, neither star nor chain.
        let q2 = Query::new(vec![
            TriplePattern::new(nv(0), p(1), nv(1)),
            TriplePattern::new(nv(2), p(1), nv(1)),
        ]);
        assert_eq!(q2.shape(), QueryShape::Other);
    }

    #[test]
    fn bound_star_center_is_star() {
        let q = Query::new(vec![
            TriplePattern::new(n(3), p(1), nv(0)),
            TriplePattern::new(n(3), p(2), nv(1)),
        ]);
        assert_eq!(q.shape(), QueryShape::Star);
    }

    #[test]
    fn var_accounting() {
        let q = Query::new(vec![
            TriplePattern::new(nv(0), p(1), nv(1)),
            TriplePattern::new(nv(1), p(2), nv(3)),
        ]);
        assert_eq!(q.var_count(), 3);
        assert_eq!(q.var_table_size(), 4);
        assert_eq!(q.vars(), vec![VarId(0), VarId(1), VarId(3)]);
        assert!(q.has_unbound());
    }

    #[test]
    fn validate_rejects_role_mixing() {
        let q = Query::new(vec![TriplePattern::new(
            NodeTerm::Var(VarId(0)),
            PredTerm::Var(VarId(0)),
            n(1),
        )]);
        assert!(q.validate().is_err());
    }

    #[test]
    fn validate_rejects_empty() {
        assert!(Query::new(vec![]).validate().is_err());
    }

    #[test]
    fn builder_allocates_fresh_vars() {
        let mut b = QueryBuilder::new();
        let x = b.var();
        let y = b.var();
        assert_ne!(x, y);
        b.triple(NodeTerm::Var(x), p(0), NodeTerm::Var(y));
        let q = b.build();
        assert_eq!(q.size(), 1);
    }

    #[test]
    fn pattern_wildcard_matching() {
        let pat = TriplePattern::new(nv(0), p(1), n(2));
        assert!(pat.matches_wildcard(&Triple::new(NodeId(7), PredId(1), NodeId(2))));
        assert!(!pat.matches_wildcard(&Triple::new(NodeId(7), PredId(0), NodeId(2))));
        assert!(!pat.matches_wildcard(&Triple::new(NodeId(7), PredId(1), NodeId(3))));
    }
}
