//! Exact cardinality counting with specialized star/chain fast paths, plus
//! the tuple-space totals LMKG-U needs to turn densities into cardinalities.
//!
//! The tuple space of star patterns of size `k` is
//! `{(s, p1, o1, …, pk, ok) : every (pi, oi) is an out-edge of s}` with
//! `N_star(k) = Σ_s outdeg(s)^k`; for chains it is the set of directed walks
//! of length `k`, counted by dynamic programming. Under homomorphism (bag)
//! semantics the cardinality of a query equals the number of tuples matching
//! its bound positions — the identity that makes `card = P(query) · N` exact.

use crate::dict::NodeId;
use crate::fxhash::FxHashMap;
use crate::graph::KnowledgeGraph;
use crate::matcher;
use crate::triple::{NodeTerm, Query, QueryShape, VarId};

/// Exact cardinality of `query` in `graph`.
///
/// Dispatches to a linear-time star counter or a frontier-DP chain counter
/// when the variable structure permits, falling back to the generic
/// backtracking matcher otherwise. All paths agree (see proptests).
pub fn cardinality(graph: &KnowledgeGraph, query: &Query) -> u64 {
    match query.shape() {
        QueryShape::Star if star_fast_path_ok(query) => count_star(graph, query),
        QueryShape::Chain if chain_fast_path_ok(query) => count_chain(graph, query),
        _ => matcher::count(graph, query),
    }
}

/// Total number of star tuples of size `k`: `Σ_s outdeg(s)^k` (f64 to avoid
/// overflow — for k=8 even modest hubs overflow u64).
pub fn star_tuple_total(graph: &KnowledgeGraph, k: usize) -> f64 {
    graph
        .node_ids()
        .map(|s| (graph.out_degree(s) as f64).powi(k as i32))
        .sum()
}

/// Total number of directed walks with `k` edges (the chain tuple space).
pub fn chain_tuple_total(graph: &KnowledgeGraph, k: usize) -> f64 {
    walk_counts(graph, k).last().map(|lvl| lvl.iter().sum()).unwrap_or(0.0)
}

/// `walk_counts(g, k)[i][v]` = number of directed walks with `i` edges
/// starting at node `v`. Level 0 is all-ones. Used for exact uniform walk
/// sampling and for `chain_tuple_total`.
pub fn walk_counts(graph: &KnowledgeGraph, k: usize) -> Vec<Vec<f64>> {
    let n = graph.num_nodes();
    let mut levels = Vec::with_capacity(k + 1);
    levels.push(vec![1.0f64; n]);
    for _ in 0..k {
        let prev = levels.last().expect("at least level 0");
        let mut next = vec![0.0f64; n];
        for (v, nx) in next.iter_mut().enumerate() {
            let mut acc = 0.0;
            for &(_, o) in graph.out_edges(NodeId(v as u32)) {
                acc += prev[o.index()];
            }
            *nx = acc;
        }
        levels.push(next);
    }
    levels
}

/// Star fast path requires: object positions bound or single-use variables
/// distinct from the center; predicate positions bound or single-use
/// variables; center may be bound or a variable.
fn star_fast_path_ok(query: &Query) -> bool {
    let center = query.triples[0].s;
    let center_var = center.var();
    let mut seen: Vec<VarId> = Vec::new();
    for t in &query.triples {
        if let Some(v) = t.o.var() {
            if Some(v) == center_var || seen.contains(&v) {
                return false;
            }
            seen.push(v);
        }
        if let Some(v) = t.p.var() {
            if seen.contains(&v) {
                return false;
            }
            seen.push(v);
        }
    }
    true
}

fn count_star(graph: &KnowledgeGraph, query: &Query) -> u64 {
    let center = query.triples[0].s;
    match center {
        NodeTerm::Bound(s) => star_product(graph, query, s),
        NodeTerm::Var(_) => {
            // Drive candidates from the most selective bound position.
            let mut best: Option<Vec<NodeId>> = None;
            for t in &query.triples {
                if let (Some(p), Some(o)) = (t.p.bound(), t.o.bound()) {
                    let subs: Vec<NodeId> = graph.subjects(o, p).iter().map(|&(_, s)| s).collect();
                    if best.as_ref().is_none_or(|b| subs.len() < b.len()) {
                        best = Some(subs);
                    }
                }
            }
            let candidates: Vec<NodeId> = match best {
                Some(subs) => subs, // subjects within (o, p) are unique: triples are deduped
                None => graph.subjects_iter().collect(),
            };
            candidates.into_iter().map(|s| star_product(graph, query, s)).sum()
        }
    }
}

/// Number of matches of a star with bound center `s`: the product over triple
/// patterns of per-pattern edge counts (valid because the fast-path check
/// guarantees object/predicate variables are independent).
fn star_product(graph: &KnowledgeGraph, query: &Query, s: NodeId) -> u64 {
    let mut prod = 1u64;
    for t in &query.triples {
        let f = graph.count_single(Some(s), t.p.bound(), t.o.bound());
        if f == 0 {
            return 0;
        }
        prod = prod.saturating_mul(f);
    }
    prod
}

/// Chain fast path requires: every link variable is used exactly at its two
/// adjacent positions, end variables are single-use, predicates bound or
/// single-use variables, and no variable repeats anywhere else.
fn chain_fast_path_ok(query: &Query) -> bool {
    // Count total occurrences of each variable across all positions.
    let mut occurrences: FxHashMap<VarId, usize> = FxHashMap::default();
    for t in &query.triples {
        for v in t.vars() {
            *occurrences.entry(v).or_insert(0) += 1;
        }
    }
    let k = query.triples.len();
    for (i, t) in query.triples.iter().enumerate() {
        // Predicate variables must be single-use.
        if let Some(v) = t.p.var() {
            if occurrences[&v] != 1 {
                return false;
            }
        }
        // Subject of triple i (i > 0) is the link shared with o_{i-1}:
        // exactly 2 occurrences. Subject of triple 0 must be single-use.
        if let Some(v) = t.s.var() {
            let expected = if i == 0 { 1 } else { 2 };
            if occurrences[&v] != expected {
                return false;
            }
        }
        if let Some(v) = t.o.var() {
            let expected = if i == k - 1 { 1 } else { 2 };
            if occurrences[&v] != expected {
                return false;
            }
        }
    }
    true
}

fn count_chain(graph: &KnowledgeGraph, query: &Query) -> u64 {
    // Frontier over the current link node → number of partial walks.
    let mut frontier: FxHashMap<NodeId, u64> = FxHashMap::default();

    // First hop: enumerate matches of t1 directly from the indexes.
    let t0 = &query.triples[0];
    graph.for_each_match(t0.s.bound(), t0.p.bound(), t0.o.bound(), |t| {
        *frontier.entry(t.o).or_insert(0) += 1;
    });

    for t in &query.triples[1..] {
        if frontier.is_empty() {
            return 0;
        }
        let mut next: FxHashMap<NodeId, u64> = FxHashMap::default();
        let p = t.p.bound();
        let o = t.o.bound();
        for (&node, &cnt) in &frontier {
            match p {
                Some(p) => {
                    for &(_, obj) in graph.objects(node, p) {
                        if o.is_none_or(|b| b == obj) {
                            *next.entry(obj).or_insert(0) += cnt;
                        }
                    }
                }
                None => {
                    for &(_, obj) in graph.out_edges(node) {
                        if o.is_none_or(|b| b == obj) {
                            *next.entry(obj).or_insert(0) += cnt;
                        }
                    }
                }
            }
        }
        frontier = next;
    }
    frontier.values().sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dict::PredId;
    use crate::graph::GraphBuilder;
    use crate::triple::{PredTerm, TriplePattern};

    fn v(i: u16) -> NodeTerm {
        NodeTerm::Var(VarId(i))
    }
    fn n(i: u32) -> NodeTerm {
        NodeTerm::Bound(NodeId(i))
    }
    fn pr(i: u32) -> PredTerm {
        PredTerm::Bound(PredId(i))
    }

    fn graph() -> KnowledgeGraph {
        let mut b = GraphBuilder::new();
        // a(0) knows(0) b(1), a knows c(2), b knows c, a likes(1) c, c likes a,
        // c knows d(3), d likes a.
        b.add("a", "knows", "b");
        b.add("a", "knows", "c");
        b.add("b", "knows", "c");
        b.add("a", "likes", "c");
        b.add("c", "likes", "a");
        b.add("c", "knows", "d");
        b.add("d", "likes", "a");
        b.build()
    }

    #[test]
    fn star_counter_agrees_with_matcher() {
        let g = graph();
        let q = Query::new(vec![
            TriplePattern::new(v(0), pr(0), v(1)),
            TriplePattern::new(v(0), pr(1), v(2)),
        ]);
        assert_eq!(q.shape(), QueryShape::Star);
        assert!(star_fast_path_ok(&q));
        assert_eq!(cardinality(&g, &q), matcher::count(&g, &q));
    }

    #[test]
    fn star_with_bound_center() {
        let g = graph();
        let q = Query::new(vec![
            TriplePattern::new(n(0), pr(0), v(0)),
            TriplePattern::new(n(0), pr(1), v(1)),
        ]);
        // a: 2 knows × 1 likes = 2.
        assert_eq!(cardinality(&g, &q), 2);
    }

    #[test]
    fn star_with_bound_objects() {
        let g = graph();
        // ?x knows c . ?x likes c → a only (b knows c but b likes nothing).
        let q = Query::new(vec![
            TriplePattern::new(v(0), pr(0), n(2)),
            TriplePattern::new(v(0), pr(1), n(2)),
        ]);
        assert_eq!(cardinality(&g, &q), 1);
        assert_eq!(matcher::count(&g, &q), 1);
    }

    #[test]
    fn star_repeated_object_var_falls_back() {
        let g = graph();
        // ?x knows ?y . ?x likes ?y — same object var: not fast-path.
        let q = Query::new(vec![
            TriplePattern::new(v(0), pr(0), v(1)),
            TriplePattern::new(v(0), pr(1), v(1)),
        ]);
        assert!(!star_fast_path_ok(&q));
        assert_eq!(cardinality(&g, &q), matcher::count(&g, &q));
        assert_eq!(cardinality(&g, &q), 1); // a knows c & a likes c
    }

    #[test]
    fn chain_counter_agrees_with_matcher() {
        let g = graph();
        let q = Query::new(vec![
            TriplePattern::new(v(0), pr(0), v(1)),
            TriplePattern::new(v(1), pr(1), v(2)),
        ]);
        assert_eq!(q.shape(), QueryShape::Chain);
        assert!(chain_fast_path_ok(&q));
        assert_eq!(cardinality(&g, &q), matcher::count(&g, &q));
    }

    #[test]
    fn chain_with_bound_intermediate() {
        let g = graph();
        // ?x knows c . c likes ?z → x ∈ {a, b}, z = a → 2.
        let q = Query::new(vec![
            TriplePattern::new(v(0), pr(0), n(2)),
            TriplePattern::new(n(2), pr(1), v(1)),
        ]);
        assert_eq!(cardinality(&g, &q), 2);
        assert_eq!(matcher::count(&g, &q), 2);
    }

    #[test]
    fn chain_length_three() {
        let g = graph();
        // ?a knows ?b . ?b knows ?c . ?c likes ?d
        let q = Query::new(vec![
            TriplePattern::new(v(0), pr(0), v(1)),
            TriplePattern::new(v(1), pr(0), v(2)),
            TriplePattern::new(v(2), pr(1), v(3)),
        ]);
        assert_eq!(cardinality(&g, &q), matcher::count(&g, &q));
    }

    #[test]
    fn cycle_falls_back_to_generic() {
        let g = graph();
        // ?x knows ?y . ?y likes ?x — end var reused: not a chain fast path.
        let q = Query::new(vec![
            TriplePattern::new(v(0), pr(0), v(1)),
            TriplePattern::new(v(1), pr(1), v(0)),
        ]);
        assert!(!chain_fast_path_ok(&q));
        assert_eq!(cardinality(&g, &q), matcher::count(&g, &q));
    }

    #[test]
    fn star_tuple_total_matches_definition() {
        let g = graph();
        // outdegs: a=3, b=1, c=2, d=1.
        assert_eq!(star_tuple_total(&g, 1), 3.0 + 1.0 + 2.0 + 1.0);
        assert_eq!(star_tuple_total(&g, 2), 9.0 + 1.0 + 4.0 + 1.0);
    }

    #[test]
    fn chain_tuple_total_matches_walk_enumeration() {
        let g = graph();
        // Walks of length 1 = number of edges.
        assert_eq!(chain_tuple_total(&g, 1), g.num_triples() as f64);
        // Walks of length 2: brute force.
        let mut walks2 = 0u64;
        for &t1 in g.triples() {
            for &t2 in g.triples() {
                if t1.o == t2.s {
                    walks2 += 1;
                }
            }
        }
        assert_eq!(chain_tuple_total(&g, 2), walks2 as f64);
    }

    #[test]
    fn walk_counts_level_zero_is_ones() {
        let g = graph();
        let w = walk_counts(&g, 3);
        assert_eq!(w.len(), 4);
        assert!(w[0].iter().all(|&x| x == 1.0));
    }

    #[test]
    fn star_total_equals_sum_of_fullvar_star_cardinalities() {
        let g = graph();
        // The full-variable star of size 2 should count exactly N_star(2).
        let q = Query::new(vec![
            TriplePattern::new(v(0), PredTerm::Var(VarId(3)), v(1)),
            TriplePattern::new(v(0), PredTerm::Var(VarId(4)), v(2)),
        ]);
        assert_eq!(cardinality(&g, &q) as f64, star_tuple_total(&g, 2));
    }

    #[test]
    fn chain_total_equals_fullvar_chain_cardinality() {
        let g = graph();
        let q = Query::new(vec![
            TriplePattern::new(v(0), PredTerm::Var(VarId(4)), v(1)),
            TriplePattern::new(v(1), PredTerm::Var(VarId(5)), v(2)),
        ]);
        assert_eq!(cardinality(&g, &q) as f64, chain_tuple_total(&g, 2));
    }

    #[test]
    fn empty_frontier_short_circuits() {
        let g = graph();
        // b likes ?x (no matches) then ?x knows ?y.
        let q = Query::new(vec![
            TriplePattern::new(n(1), pr(1), v(0)),
            TriplePattern::new(v(0), pr(0), v(1)),
        ]);
        assert_eq!(cardinality(&g, &q), 0);
    }
}
