//! The in-memory knowledge-graph store.
//!
//! Triples are dictionary-encoded and kept in three compressed sparse row
//! (CSR) indexes — by subject, by object, and by predicate — which together
//! answer every single-triple-pattern lookup and count in `O(log deg)`:
//!
//! * `out`  — per subject, `(predicate, object)` pairs sorted by `(p, o)`;
//! * `inc`  — per object, `(predicate, subject)` pairs sorted by `(p, s)`;
//! * `byp`  — per predicate, `(subject, object)` pairs sorted by `(s, o)`.

use crate::dict::{Dictionary, NodeId, PredId};
use crate::triple::Triple;

/// An immutable, fully indexed RDF knowledge graph.
#[derive(Debug, Clone)]
pub struct KnowledgeGraph {
    nodes: Dictionary,
    preds: Dictionary,
    triples: Vec<Triple>,

    out_offsets: Vec<u32>,
    out_edges: Vec<(PredId, NodeId)>,

    in_offsets: Vec<u32>,
    in_edges: Vec<(PredId, NodeId)>,

    pred_offsets: Vec<u32>,
    pred_pairs: Vec<(NodeId, NodeId)>,
}

impl KnowledgeGraph {
    /// Number of distinct nodes (subjects ∪ objects).
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of distinct predicates.
    #[inline]
    pub fn num_preds(&self) -> usize {
        self.preds.len()
    }

    /// Number of (deduplicated) triples.
    #[inline]
    pub fn num_triples(&self) -> usize {
        self.triples.len()
    }

    /// The node dictionary.
    #[inline]
    pub fn nodes(&self) -> &Dictionary {
        &self.nodes
    }

    /// The predicate dictionary.
    #[inline]
    pub fn preds(&self) -> &Dictionary {
        &self.preds
    }

    /// All triples, sorted by `(s, p, o)`.
    #[inline]
    pub fn triples(&self) -> &[Triple] {
        &self.triples
    }

    /// Out-degree of a node (number of triples with this subject).
    #[inline]
    pub fn out_degree(&self, s: NodeId) -> usize {
        let i = s.index();
        (self.out_offsets[i + 1] - self.out_offsets[i]) as usize
    }

    /// In-degree of a node (number of triples with this object).
    #[inline]
    pub fn in_degree(&self, o: NodeId) -> usize {
        let i = o.index();
        (self.in_offsets[i + 1] - self.in_offsets[i]) as usize
    }

    /// Number of triples with predicate `p`.
    #[inline]
    pub fn pred_count(&self, p: PredId) -> usize {
        let i = p.index();
        (self.pred_offsets[i + 1] - self.pred_offsets[i]) as usize
    }

    /// `(predicate, object)` pairs leaving subject `s`, sorted by `(p, o)`.
    #[inline]
    pub fn out_edges(&self, s: NodeId) -> &[(PredId, NodeId)] {
        let i = s.index();
        &self.out_edges[self.out_offsets[i] as usize..self.out_offsets[i + 1] as usize]
    }

    /// `(predicate, subject)` pairs entering object `o`, sorted by `(p, s)`.
    #[inline]
    pub fn in_edges(&self, o: NodeId) -> &[(PredId, NodeId)] {
        let i = o.index();
        &self.in_edges[self.in_offsets[i] as usize..self.in_offsets[i + 1] as usize]
    }

    /// `(subject, object)` pairs of predicate `p`, sorted by `(s, o)`.
    #[inline]
    pub fn pred_pairs(&self, p: PredId) -> &[(NodeId, NodeId)] {
        let i = p.index();
        &self.pred_pairs[self.pred_offsets[i] as usize..self.pred_offsets[i + 1] as usize]
    }

    /// Objects reachable from `s` via predicate `p` (sorted).
    pub fn objects(&self, s: NodeId, p: PredId) -> &[(PredId, NodeId)] {
        sub_range_by_pred(self.out_edges(s), p)
    }

    /// Subjects reaching `o` via predicate `p` (sorted).
    pub fn subjects(&self, o: NodeId, p: PredId) -> &[(PredId, NodeId)] {
        sub_range_by_pred(self.in_edges(o), p)
    }

    /// Number of triples `(s, p, ?)`.
    #[inline]
    pub fn sp_count(&self, s: NodeId, p: PredId) -> usize {
        self.objects(s, p).len()
    }

    /// Number of triples `(?, p, o)`.
    #[inline]
    pub fn po_count(&self, p: PredId, o: NodeId) -> usize {
        self.subjects(o, p).len()
    }

    /// Whether the triple `(s, p, o)` is present.
    pub fn contains(&self, s: NodeId, p: PredId, o: NodeId) -> bool {
        self.objects(s, p).binary_search_by_key(&o, |&(_, obj)| obj).is_ok()
    }

    /// Number of triples matching a single wildcard pattern, where `None`
    /// means "any". This is exact and `O(log deg)` except the `(s, ?, o)`
    /// case, which scans the out-edges of `s`.
    pub fn count_single(&self, s: Option<NodeId>, p: Option<PredId>, o: Option<NodeId>) -> u64 {
        match (s, p, o) {
            (Some(s), Some(p), Some(o)) => u64::from(self.contains(s, p, o)),
            (Some(s), Some(p), None) => self.sp_count(s, p) as u64,
            (Some(s), None, Some(o)) => self.out_edges(s).iter().filter(|&&(_, obj)| obj == o).count() as u64,
            (Some(s), None, None) => self.out_degree(s) as u64,
            (None, Some(p), Some(o)) => self.po_count(p, o) as u64,
            (None, Some(p), None) => self.pred_count(p) as u64,
            (None, None, Some(o)) => self.in_degree(o) as u64,
            (None, None, None) => self.num_triples() as u64,
        }
    }

    /// Invokes `f` for every triple matching the wildcard pattern, choosing
    /// the cheapest index.
    pub fn for_each_match<F: FnMut(Triple)>(&self, s: Option<NodeId>, p: Option<PredId>, o: Option<NodeId>, mut f: F) {
        match (s, p, o) {
            (Some(s), Some(p), Some(o)) => {
                if self.contains(s, p, o) {
                    f(Triple::new(s, p, o));
                }
            }
            (Some(s), Some(p), None) => {
                for &(_, obj) in self.objects(s, p) {
                    f(Triple::new(s, p, obj));
                }
            }
            (Some(s), None, Some(o)) => {
                for &(pred, obj) in self.out_edges(s) {
                    if obj == o {
                        f(Triple::new(s, pred, o));
                    }
                }
            }
            (Some(s), None, None) => {
                for &(pred, obj) in self.out_edges(s) {
                    f(Triple::new(s, pred, obj));
                }
            }
            (None, Some(p), Some(o)) => {
                for &(_, subj) in self.subjects(o, p) {
                    f(Triple::new(subj, p, o));
                }
            }
            (None, Some(p), None) => {
                for &(subj, obj) in self.pred_pairs(p) {
                    f(Triple::new(subj, p, obj));
                }
            }
            (None, None, Some(o)) => {
                for &(pred, subj) in self.in_edges(o) {
                    f(Triple::new(subj, pred, o));
                }
            }
            (None, None, None) => {
                for &t in &self.triples {
                    f(t);
                }
            }
        }
    }

    /// Node ids with at least one outgoing edge.
    pub fn subjects_iter(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.num_nodes() as u32)
            .map(NodeId)
            .filter(move |&n| self.out_degree(n) > 0)
    }

    /// All node ids (including object-only nodes).
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> {
        (0..self.num_nodes() as u32).map(NodeId)
    }

    /// All predicate ids.
    pub fn pred_ids(&self) -> impl Iterator<Item = PredId> {
        (0..self.num_preds() as u32).map(PredId)
    }

    /// Approximate heap memory of the store (dictionaries + indexes), bytes.
    pub fn heap_bytes(&self) -> usize {
        self.nodes.heap_bytes()
            + self.preds.heap_bytes()
            + self.triples.len() * std::mem::size_of::<Triple>()
            + (self.out_offsets.len() + self.in_offsets.len() + self.pred_offsets.len()) * 4
            + (self.out_edges.len() + self.in_edges.len()) * std::mem::size_of::<(PredId, NodeId)>()
            + self.pred_pairs.len() * std::mem::size_of::<(NodeId, NodeId)>()
    }
}

/// Binary-search the `(key, value)` slice (sorted by key) for the sub-slice
/// with the given key.
fn sub_range_by_pred(edges: &[(PredId, NodeId)], p: PredId) -> &[(PredId, NodeId)] {
    let lo = edges.partition_point(|&(pred, _)| pred < p);
    let hi = edges.partition_point(|&(pred, _)| pred <= p);
    &edges[lo..hi]
}

/// Mutable builder accumulating triples before indexing.
#[derive(Debug, Default)]
pub struct GraphBuilder {
    nodes: Dictionary,
    preds: Dictionary,
    triples: Vec<Triple>,
}

impl GraphBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a builder with triple capacity.
    pub fn with_capacity(n: usize) -> Self {
        Self {
            nodes: Dictionary::new(),
            preds: Dictionary::new(),
            triples: Vec::with_capacity(n),
        }
    }

    /// Interns a node term.
    pub fn node(&mut self, term: &str) -> NodeId {
        NodeId(self.nodes.intern(term))
    }

    /// Interns a predicate term.
    pub fn pred(&mut self, term: &str) -> PredId {
        PredId(self.preds.intern(term))
    }

    /// Adds a triple by string terms.
    pub fn add(&mut self, s: &str, p: &str, o: &str) -> &mut Self {
        let t = Triple::new(self.node(s), self.pred(p), self.node(o));
        self.triples.push(t);
        self
    }

    /// Adds a triple by pre-interned ids.
    pub fn add_ids(&mut self, s: NodeId, p: PredId, o: NodeId) -> &mut Self {
        assert!(s.index() < self.nodes.len(), "unknown subject id");
        assert!(p.index() < self.preds.len(), "unknown predicate id");
        assert!(o.index() < self.nodes.len(), "unknown object id");
        self.triples.push(Triple::new(s, p, o));
        self
    }

    /// Number of triples added so far (before dedup).
    pub fn len(&self) -> usize {
        self.triples.len()
    }

    /// Whether no triples were added.
    pub fn is_empty(&self) -> bool {
        self.triples.is_empty()
    }

    /// Finalizes the graph: sorts, deduplicates, and builds all indexes.
    pub fn build(self) -> KnowledgeGraph {
        let GraphBuilder {
            nodes,
            preds,
            mut triples,
        } = self;
        triples.sort_unstable();
        triples.dedup();

        let n = nodes.len();
        let np = preds.len();

        // out CSR (sorted input order is already (s, p, o)).
        let mut out_offsets = vec![0u32; n + 1];
        for t in &triples {
            out_offsets[t.s.index() + 1] += 1;
        }
        prefix_sum(&mut out_offsets);
        let out_edges: Vec<(PredId, NodeId)> = triples.iter().map(|t| (t.p, t.o)).collect();

        // in CSR.
        let mut by_obj: Vec<Triple> = triples.clone();
        by_obj.sort_unstable_by_key(|t| (t.o, t.p, t.s));
        let mut in_offsets = vec![0u32; n + 1];
        for t in &by_obj {
            in_offsets[t.o.index() + 1] += 1;
        }
        prefix_sum(&mut in_offsets);
        let in_edges: Vec<(PredId, NodeId)> = by_obj.iter().map(|t| (t.p, t.s)).collect();

        // predicate CSR.
        let mut by_pred: Vec<Triple> = triples.clone();
        by_pred.sort_unstable_by_key(|t| (t.p, t.s, t.o));
        let mut pred_offsets = vec![0u32; np + 1];
        for t in &by_pred {
            pred_offsets[t.p.index() + 1] += 1;
        }
        prefix_sum(&mut pred_offsets);
        let pred_pairs: Vec<(NodeId, NodeId)> = by_pred.iter().map(|t| (t.s, t.o)).collect();

        KnowledgeGraph {
            nodes,
            preds,
            triples,
            out_offsets,
            out_edges,
            in_offsets,
            in_edges,
            pred_offsets,
            pred_pairs,
        }
    }
}

fn prefix_sum(v: &mut [u32]) {
    let mut acc = 0u32;
    for x in v.iter_mut() {
        acc += *x;
        *x = acc;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_graph() -> KnowledgeGraph {
        let mut b = GraphBuilder::new();
        b.add("a", "knows", "b");
        b.add("a", "knows", "c");
        b.add("b", "knows", "c");
        b.add("a", "likes", "c");
        b.add("c", "likes", "a");
        b.build()
    }

    #[test]
    fn builds_and_counts() {
        let g = small_graph();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_preds(), 2);
        assert_eq!(g.num_triples(), 5);
    }

    #[test]
    fn dedup_on_build() {
        let mut b = GraphBuilder::new();
        b.add("x", "p", "y");
        b.add("x", "p", "y");
        let g = b.build();
        assert_eq!(g.num_triples(), 1);
    }

    #[test]
    fn degrees() {
        let g = small_graph();
        let a = NodeId(g.nodes().get("a").unwrap());
        let c = NodeId(g.nodes().get("c").unwrap());
        assert_eq!(g.out_degree(a), 3);
        assert_eq!(g.in_degree(c), 3);
        assert_eq!(g.out_degree(c), 1);
    }

    #[test]
    fn sp_and_po_counts() {
        let g = small_graph();
        let a = NodeId(g.nodes().get("a").unwrap());
        let c = NodeId(g.nodes().get("c").unwrap());
        let knows = PredId(g.preds().get("knows").unwrap());
        assert_eq!(g.sp_count(a, knows), 2);
        assert_eq!(g.po_count(knows, c), 2);
    }

    #[test]
    fn contains_works() {
        let g = small_graph();
        let a = NodeId(g.nodes().get("a").unwrap());
        let b = NodeId(g.nodes().get("b").unwrap());
        let knows = PredId(g.preds().get("knows").unwrap());
        let likes = PredId(g.preds().get("likes").unwrap());
        assert!(g.contains(a, knows, b));
        assert!(!g.contains(b, likes, a));
    }

    #[test]
    fn count_single_all_cases() {
        let g = small_graph();
        let a = NodeId(g.nodes().get("a").unwrap());
        let c = NodeId(g.nodes().get("c").unwrap());
        let knows = PredId(g.preds().get("knows").unwrap());
        assert_eq!(g.count_single(Some(a), Some(knows), Some(c)), 1);
        assert_eq!(g.count_single(Some(a), Some(knows), None), 2);
        assert_eq!(g.count_single(Some(a), None, Some(c)), 2); // knows + likes
        assert_eq!(g.count_single(Some(a), None, None), 3);
        assert_eq!(g.count_single(None, Some(knows), Some(c)), 2);
        assert_eq!(g.count_single(None, Some(knows), None), 3);
        assert_eq!(g.count_single(None, None, Some(c)), 3);
        assert_eq!(g.count_single(None, None, None), 5);
    }

    #[test]
    fn for_each_match_agrees_with_count_single() {
        let g = small_graph();
        let cases: Vec<(Option<NodeId>, Option<PredId>, Option<NodeId>)> = vec![
            (None, None, None),
            (Some(NodeId(0)), None, None),
            (None, Some(PredId(0)), None),
            (None, None, Some(NodeId(2))),
            (Some(NodeId(0)), Some(PredId(0)), None),
            (Some(NodeId(0)), None, Some(NodeId(2))),
            (None, Some(PredId(0)), Some(NodeId(2))),
            (Some(NodeId(0)), Some(PredId(0)), Some(NodeId(1))),
        ];
        for (s, p, o) in cases {
            let mut n = 0u64;
            g.for_each_match(s, p, o, |_| n += 1);
            assert_eq!(n, g.count_single(s, p, o), "case {s:?} {p:?} {o:?}");
        }
    }

    #[test]
    fn matched_triples_exist_in_graph() {
        let g = small_graph();
        g.for_each_match(None, Some(PredId(0)), None, |t| {
            assert!(g.contains(t.s, t.p, t.o));
            assert_eq!(t.p, PredId(0));
        });
    }

    #[test]
    fn out_edges_sorted_by_pred_then_obj() {
        let g = small_graph();
        for s in g.node_ids() {
            let e = g.out_edges(s);
            assert!(e.windows(2).all(|w| w[0] <= w[1]));
        }
    }

    #[test]
    fn add_ids_rejects_unknown() {
        let mut b = GraphBuilder::new();
        let s = b.node("s");
        let p = b.pred("p");
        let o = b.node("o");
        b.add_ids(s, p, o);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut b2 = GraphBuilder::new();
            b2.add_ids(NodeId(5), PredId(0), NodeId(0));
        }));
        assert!(result.is_err());
    }

    #[test]
    fn empty_graph_is_valid() {
        let g = GraphBuilder::new().build();
        assert_eq!(g.num_triples(), 0);
        assert_eq!(g.num_nodes(), 0);
        assert_eq!(g.count_single(None, None, None), 0);
    }
}
