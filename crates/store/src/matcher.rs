//! Generic basic-graph-pattern matching and exact counting.
//!
//! Matching follows SPARQL *homomorphism* (bag) semantics: every assignment
//! of variables to graph terms that makes all triple patterns present in the
//! graph counts, and two variables may map to the same term. This is the same
//! semantics LMKG's tuple spaces use, so exact counts and model estimates are
//! directly comparable.
//!
//! The counter is a backtracking join with two standard optimizations:
//! * **greedy ordering** — at every step the remaining pattern with the
//!   fewest index-estimated candidates is expanded next;
//! * **free-variable counting** — a pattern whose unbound variables occur
//!   nowhere else contributes a closed-form factor `count_single(...)`
//!   instead of being enumerated.

use crate::dict::{NodeId, PredId};
use crate::graph::KnowledgeGraph;
use crate::triple::{NodeTerm, PredTerm, Query, Triple, TriplePattern, VarId};

/// A variable assignment produced by [`evaluate`]: `(variable, raw term id)`.
/// Node variables carry node ids, predicate variables predicate ids.
pub type Binding = Vec<(VarId, u32)>;

/// Exact number of matches (homomorphisms) of `query` in `graph`.
///
/// Panics if the query is invalid (see [`Query::validate`]).
pub fn count(graph: &KnowledgeGraph, query: &Query) -> u64 {
    query.validate().expect("invalid query");
    let mut bindings = vec![None; query.var_table_size()];
    let mut remaining: Vec<usize> = (0..query.triples.len()).collect();
    count_rec(graph, query, &mut remaining, &mut bindings)
}

/// Materializes variable bindings of `query` in `graph`, up to `limit`
/// results (`None` = all). Intended for tests, examples, and small queries.
pub fn evaluate(graph: &KnowledgeGraph, query: &Query, limit: Option<usize>) -> Vec<Binding> {
    query.validate().expect("invalid query");
    let mut bindings = vec![None; query.var_table_size()];
    let mut remaining: Vec<usize> = (0..query.triples.len()).collect();
    let mut out = Vec::new();
    let vars = query.vars();
    evaluate_rec(graph, query, &mut remaining, &mut bindings, &vars, limit, &mut out);
    out
}

/// Reference brute-force counter: enumerates all `|T|^k` triple combinations.
/// Exponential — only for cross-checking on tiny graphs in tests.
pub fn brute_force_count(graph: &KnowledgeGraph, query: &Query) -> u64 {
    query.validate().expect("invalid query");
    let mut bindings = vec![None; query.var_table_size()];
    brute_rec(graph, &query.triples, 0, &mut bindings)
}

fn brute_rec(g: &KnowledgeGraph, pats: &[TriplePattern], i: usize, bindings: &mut [Option<u32>]) -> u64 {
    if i == pats.len() {
        return 1;
    }
    let mut total = 0;
    for &t in g.triples() {
        if let Some(undo) = try_bind(&pats[i], t, bindings) {
            total += brute_rec(g, pats, i + 1, bindings);
            undo_bind(undo, bindings);
        }
    }
    total
}

/// Resolved view of one pattern under the current bindings.
struct Resolved {
    s: Option<NodeId>,
    p: Option<PredId>,
    o: Option<NodeId>,
    /// Variables of this pattern still unbound, in (s, p, o) position order.
    new_vars: Vec<VarId>,
    /// True when some unbound variable occurs twice within the pattern
    /// (e.g. `?x :p ?x`), which breaks closed-form counting.
    repeated_new_var: bool,
}

fn resolve(pat: &TriplePattern, bindings: &[Option<u32>]) -> Resolved {
    let mut new_vars = Vec::new();
    let mut repeated = false;

    let mut node = |term: NodeTerm, new_vars: &mut Vec<VarId>| match term {
        NodeTerm::Bound(n) => Some(n),
        NodeTerm::Var(v) => match bindings[v.index()] {
            Some(id) => Some(NodeId(id)),
            None => {
                if new_vars.contains(&v) {
                    repeated = true;
                } else {
                    new_vars.push(v);
                }
                None
            }
        },
    };

    let s = node(pat.s, &mut new_vars);
    let o = node(pat.o, &mut new_vars);
    let p = match pat.p {
        PredTerm::Bound(p) => Some(p),
        PredTerm::Var(v) => match bindings[v.index()] {
            Some(id) => Some(PredId(id)),
            None => {
                // Predicate variables never collide with node variables
                // (enforced by `Query::validate`), but may repeat: impossible
                // within one triple (single predicate position).
                new_vars.push(v);
                None
            }
        },
    };

    Resolved {
        s,
        p,
        o,
        new_vars,
        repeated_new_var: repeated,
    }
}

/// Binds pattern variables against a concrete triple; returns the list of
/// variables newly bound (for undo), or `None` on mismatch.
fn try_bind(pat: &TriplePattern, t: Triple, bindings: &mut [Option<u32>]) -> Option<Vec<VarId>> {
    let mut bound = Vec::new();
    let mut ok = true;

    let bind_node = |term: NodeTerm, val: NodeId, bindings: &mut [Option<u32>], bound: &mut Vec<VarId>| match term {
        NodeTerm::Bound(n) => n == val,
        NodeTerm::Var(v) => match bindings[v.index()] {
            Some(existing) => existing == val.0,
            None => {
                bindings[v.index()] = Some(val.0);
                bound.push(v);
                true
            }
        },
    };

    ok &= bind_node(pat.s, t.s, bindings, &mut bound);
    if ok {
        ok &= match pat.p {
            PredTerm::Bound(p) => p == t.p,
            PredTerm::Var(v) => match bindings[v.index()] {
                Some(existing) => existing == t.p.0,
                None => {
                    bindings[v.index()] = Some(t.p.0);
                    bound.push(v);
                    true
                }
            },
        };
    }
    if ok {
        ok &= bind_node(pat.o, t.o, bindings, &mut bound);
    }

    if ok {
        Some(bound)
    } else {
        undo_bind(bound, bindings);
        None
    }
}

fn undo_bind(bound: Vec<VarId>, bindings: &mut [Option<u32>]) {
    for v in bound {
        bindings[v.index()] = None;
    }
}

/// Picks the remaining pattern with the smallest estimated candidate count.
fn pick_next(g: &KnowledgeGraph, query: &Query, remaining: &[usize], bindings: &[Option<u32>]) -> (usize, u64) {
    let mut best = (0usize, u64::MAX);
    for (slot, &idx) in remaining.iter().enumerate() {
        let r = resolve(&query.triples[idx], bindings);
        let est = g.count_single(r.s, r.p, r.o);
        if est < best.1 {
            best = (slot, est);
        }
    }
    best
}

/// Whether every new variable of `pat` occurs in no *other* remaining pattern.
fn new_vars_local(query: &Query, remaining: &[usize], skip_idx: usize, new_vars: &[VarId]) -> bool {
    new_vars.iter().all(|v| {
        remaining
            .iter()
            .filter(|&&i| i != skip_idx)
            .all(|&i| !query.triples[i].vars().any(|w| w == *v))
    })
}

fn count_rec(g: &KnowledgeGraph, query: &Query, remaining: &mut Vec<usize>, bindings: &mut Vec<Option<u32>>) -> u64 {
    if remaining.is_empty() {
        return 1;
    }
    let (slot, est) = pick_next(g, query, remaining, bindings);
    if est == 0 {
        return 0;
    }
    let idx = remaining.swap_remove(slot);
    let pat = query.triples[idx];
    let r = resolve(&pat, bindings);

    let total = if !r.repeated_new_var && new_vars_local(query, remaining, idx, &r.new_vars) {
        // Closed form: candidates factor out.
        let factor = g.count_single(r.s, r.p, r.o);
        if factor == 0 {
            0
        } else {
            factor * count_rec(g, query, remaining, bindings)
        }
    } else {
        let mut sum = 0u64;
        // Enumerate candidates and recurse. We must collect matching triples
        // because `for_each_match` borrows the graph immutably while the
        // recursion also reads it — cheap: candidate lists are the smallest
        // available by construction.
        let mut candidates = Vec::with_capacity(est.min(1024) as usize);
        g.for_each_match(r.s, r.p, r.o, |t| candidates.push(t));
        for t in candidates {
            if let Some(undo) = try_bind(&pat, t, bindings) {
                sum += count_rec(g, query, remaining, bindings);
                undo_bind(undo, bindings);
            }
        }
        sum
    };

    remaining.push(idx);
    let last = remaining.len() - 1;
    remaining.swap(slot, last);
    total
}

#[allow(clippy::too_many_arguments)]
fn evaluate_rec(
    g: &KnowledgeGraph,
    query: &Query,
    remaining: &mut Vec<usize>,
    bindings: &mut Vec<Option<u32>>,
    vars: &[VarId],
    limit: Option<usize>,
    out: &mut Vec<Binding>,
) {
    if limit.is_some_and(|l| out.len() >= l) {
        return;
    }
    if remaining.is_empty() {
        let row: Binding = vars
            .iter()
            .map(|&v| (v, bindings[v.index()].expect("all vars bound at leaf")))
            .collect();
        out.push(row);
        return;
    }
    let (slot, _) = pick_next(g, query, remaining, bindings);
    let idx = remaining.swap_remove(slot);
    let pat = query.triples[idx];
    let r = resolve(&pat, bindings);

    let mut candidates = Vec::new();
    g.for_each_match(r.s, r.p, r.o, |t| candidates.push(t));
    for t in candidates {
        if let Some(undo) = try_bind(&pat, t, bindings) {
            evaluate_rec(g, query, remaining, bindings, vars, limit, out);
            undo_bind(undo, bindings);
        }
    }

    remaining.push(idx);
    let last = remaining.len() - 1;
    remaining.swap(slot, last);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;

    fn n(i: u32) -> NodeTerm {
        NodeTerm::Bound(NodeId(i))
    }
    fn pr(i: u32) -> PredTerm {
        PredTerm::Bound(PredId(i))
    }
    fn v(i: u16) -> NodeTerm {
        NodeTerm::Var(VarId(i))
    }

    /// a --knows--> b, a --knows--> c, b --knows--> c, a --likes--> c,
    /// c --likes--> a. ids: a=0, b=1, c=2; knows=0, likes=1.
    fn g() -> KnowledgeGraph {
        let mut b = GraphBuilder::new();
        b.add("a", "knows", "b");
        b.add("a", "knows", "c");
        b.add("b", "knows", "c");
        b.add("a", "likes", "c");
        b.add("c", "likes", "a");
        b.build()
    }

    #[test]
    fn single_pattern_counts() {
        let g = g();
        let q = Query::new(vec![TriplePattern::new(v(0), pr(0), v(1))]);
        assert_eq!(count(&g, &q), 3);
        assert_eq!(brute_force_count(&g, &q), 3);
    }

    #[test]
    fn star_query_count() {
        let g = g();
        // ?x knows ?y . ?x likes ?z  → x=a: 2 knows × 1 likes = 2.
        let q = Query::new(vec![
            TriplePattern::new(v(0), pr(0), v(1)),
            TriplePattern::new(v(0), pr(1), v(2)),
        ]);
        assert_eq!(count(&g, &q), 2);
        assert_eq!(brute_force_count(&g, &q), 2);
    }

    #[test]
    fn chain_query_count() {
        let g = g();
        // ?x knows ?y . ?y likes ?z → (a,c,a), (b,c,a) = 2.
        let q = Query::new(vec![
            TriplePattern::new(v(0), pr(0), v(1)),
            TriplePattern::new(v(1), pr(1), v(2)),
        ]);
        assert_eq!(count(&g, &q), 2);
        assert_eq!(brute_force_count(&g, &q), 2);
    }

    #[test]
    fn repeated_var_within_pattern() {
        let mut b = GraphBuilder::new();
        b.add("x", "self", "x");
        b.add("x", "self", "y");
        let g = b.build();
        // ?a self ?a → only the loop.
        let q = Query::new(vec![TriplePattern::new(v(0), pr(0), v(0))]);
        assert_eq!(count(&g, &q), 1);
        assert_eq!(brute_force_count(&g, &q), 1);
    }

    #[test]
    fn cycle_query() {
        let g = g();
        // ?x knows ?y . ?y likes ?x → need y likes x: (a knows c)&(c likes a) = 1.
        let q = Query::new(vec![
            TriplePattern::new(v(0), pr(0), v(1)),
            TriplePattern::new(v(1), pr(1), v(0)),
        ]);
        assert_eq!(count(&g, &q), 1);
        assert_eq!(brute_force_count(&g, &q), 1);
    }

    #[test]
    fn homomorphism_semantics_allow_same_value_for_two_vars() {
        let mut b = GraphBuilder::new();
        b.add("a", "p", "b");
        let g = b.build();
        // ?x p ?y . ?z p ?y — x and z may both be a.
        let q = Query::new(vec![
            TriplePattern::new(v(0), pr(0), v(1)),
            TriplePattern::new(v(2), pr(0), v(1)),
        ]);
        assert_eq!(count(&g, &q), 1);
        assert_eq!(brute_force_count(&g, &q), 1);
    }

    #[test]
    fn fully_bound_query() {
        let g = g();
        let q = Query::new(vec![TriplePattern::new(n(0), pr(0), n(1))]);
        assert_eq!(count(&g, &q), 1);
        let q2 = Query::new(vec![TriplePattern::new(n(1), pr(1), n(0))]);
        assert_eq!(count(&g, &q2), 0);
    }

    #[test]
    fn predicate_variable() {
        let g = g();
        // a ?p c → knows + likes = 2.
        let q = Query::new(vec![TriplePattern::new(n(0), PredTerm::Var(VarId(0)), n(2))]);
        assert_eq!(count(&g, &q), 2);
        assert_eq!(brute_force_count(&g, &q), 2);
    }

    #[test]
    fn shared_predicate_variable_across_patterns() {
        let g = g();
        // ?x ?p ?y . ?y ?p ?z — same predicate both hops.
        let q = Query::new(vec![
            TriplePattern::new(v(0), PredTerm::Var(VarId(3)), v(1)),
            TriplePattern::new(v(1), PredTerm::Var(VarId(3)), v(2)),
        ]);
        assert_eq!(count(&g, &q), brute_force_count(&g, &q));
    }

    #[test]
    fn zero_matches() {
        let g = g();
        // b likes ?x → none.
        let q = Query::new(vec![TriplePattern::new(n(1), pr(1), v(0))]);
        assert_eq!(count(&g, &q), 0);
    }

    #[test]
    fn evaluate_returns_bindings() {
        let g = g();
        let q = Query::new(vec![TriplePattern::new(v(0), pr(1), v(1))]);
        let rows = evaluate(&g, &q, None);
        assert_eq!(rows.len(), 2);
        for row in &rows {
            assert_eq!(row.len(), 2);
            let s = row.iter().find(|(var, _)| *var == VarId(0)).unwrap().1;
            let o = row.iter().find(|(var, _)| *var == VarId(1)).unwrap().1;
            assert!(g.contains(NodeId(s), PredId(1), NodeId(o)));
        }
    }

    #[test]
    fn evaluate_respects_limit() {
        let g = g();
        let q = Query::new(vec![TriplePattern::new(v(0), pr(0), v(1))]);
        assert_eq!(evaluate(&g, &q, Some(1)).len(), 1);
        assert_eq!(evaluate(&g, &q, Some(0)).len(), 0);
    }

    #[test]
    fn count_matches_evaluate_len() {
        let g = g();
        let q = Query::new(vec![
            TriplePattern::new(v(0), pr(0), v(1)),
            TriplePattern::new(v(1), pr(1), v(2)),
        ]);
        assert_eq!(count(&g, &q) as usize, evaluate(&g, &q, None).len());
    }

    #[test]
    fn larger_star_with_bound_objects() {
        let g = g();
        // ?x knows b . ?x knows c . ?x likes c → x = a.
        let q = Query::new(vec![
            TriplePattern::new(v(0), pr(0), n(1)),
            TriplePattern::new(v(0), pr(0), n(2)),
            TriplePattern::new(v(0), pr(1), n(2)),
        ]);
        assert_eq!(count(&g, &q), 1);
        assert_eq!(brute_force_count(&g, &q), 1);
    }
}
