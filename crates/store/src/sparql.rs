//! A small SPARQL basic-graph-pattern parser.
//!
//! Covers the query fragment LMKG estimates (paper §V): conjunctive triple
//! patterns with variables, IRIs/CURIEs, and literals, including the
//! predicate-object list (`;`) and object list (`,`) abbreviations used in
//! the paper's own examples:
//!
//! ```sparql
//! SELECT ?x WHERE { ?x :hasAuthor :StephenKing ; :genre :Horror . }
//! ```
//!
//! Terms are resolved against a graph's dictionaries; unknown terms are a
//! parse-time error (an unknown constant can never match, so the caller
//! learns immediately instead of silently estimating over garbage).

use crate::dict::{NodeId, PredId};
use crate::fxhash::FxHashMap;
use crate::graph::KnowledgeGraph;
use crate::triple::{NodeTerm, PredTerm, Query, TriplePattern, VarId};

/// Parse errors with a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SparqlError {
    /// Description of the failure.
    pub message: String,
}

impl std::fmt::Display for SparqlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SPARQL parse error: {}", self.message)
    }
}

impl std::error::Error for SparqlError {}

fn err<T>(message: impl Into<String>) -> Result<T, SparqlError> {
    Err(SparqlError {
        message: message.into(),
    })
}

/// A parsed query plus the variable-name table (`?book` → `VarId`).
#[derive(Debug, Clone)]
pub struct ParsedQuery {
    /// The basic graph pattern.
    pub query: Query,
    /// Variable names in `VarId` order.
    pub variables: Vec<String>,
}

/// Parses `SELECT … WHERE { … }` against the graph's dictionaries.
pub fn parse(input: &str, graph: &KnowledgeGraph) -> Result<ParsedQuery, SparqlError> {
    let tokens = tokenize(input)?;
    let mut pos = 0usize;

    expect_keyword(&tokens, &mut pos, "SELECT")?;
    // Projection: `*` or a list of variables (recorded but not enforced —
    // cardinality estimation counts all bindings).
    while pos < tokens.len() && !eq_kw(&tokens[pos], "WHERE") {
        pos += 1;
    }
    expect_keyword(&tokens, &mut pos, "WHERE")?;
    expect_token(&tokens, &mut pos, "{")?;

    let mut vars: FxHashMap<String, VarId> = FxHashMap::default();
    let mut var_names: Vec<String> = Vec::new();
    let mut triples = Vec::new();

    loop {
        if pos >= tokens.len() {
            return err("unterminated group graph pattern (missing '}')");
        }
        if tokens[pos] == "}" {
            break; // tokens after the closing brace are ignored
        }
        // subject
        let subject = parse_node_term(&tokens, &mut pos, graph, &mut vars, &mut var_names)?;
        // predicate-object list:  p o (, o)* (; p o (, o)*)* .
        loop {
            let predicate = parse_pred_term(&tokens, &mut pos, graph, &mut vars, &mut var_names)?;
            loop {
                let object = parse_node_term(&tokens, &mut pos, graph, &mut vars, &mut var_names)?;
                triples.push(TriplePattern::new(subject, predicate, object));
                if pos < tokens.len() && tokens[pos] == "," {
                    pos += 1;
                } else {
                    break;
                }
            }
            if pos < tokens.len() && tokens[pos] == ";" {
                pos += 1;
                // Trailing `;` before `.` or `}` is legal SPARQL.
                if pos < tokens.len() && (tokens[pos] == "." || tokens[pos] == "}") {
                    break;
                }
            } else {
                break;
            }
        }
        if pos < tokens.len() && tokens[pos] == "." {
            pos += 1;
        }
    }

    if triples.is_empty() {
        return err("empty basic graph pattern");
    }
    let query = Query::new(triples);
    query.validate().map_err(|m| SparqlError { message: m })?;
    Ok(ParsedQuery {
        query,
        variables: var_names,
    })
}

/// Renders a query back into `SELECT * WHERE { … }` text, resolving bound
/// terms against the graph's dictionaries and naming variables `?v<id>`.
///
/// This is the inverse of [`parse`] and the wire form the `lmkg-serve`
/// protocol and load generator exchange. Re-parsing the output yields a
/// query equal to the input whenever the input's variable ids are dense and
/// in first-occurrence order (true for every query `lmkg-data` generates);
/// otherwise the round trip is the same query up to variable renumbering.
pub fn format_query(query: &Query, graph: &KnowledgeGraph) -> String {
    use std::fmt::Write as _;
    let mut out = String::from("SELECT * WHERE {");
    for t in &query.triples {
        let s = match t.s {
            NodeTerm::Var(v) => format!("?v{}", v.0),
            NodeTerm::Bound(n) => graph.nodes().resolve(n.0).to_string(),
        };
        let p = match t.p {
            PredTerm::Var(v) => format!("?v{}", v.0),
            PredTerm::Bound(pr) => graph.preds().resolve(pr.0).to_string(),
        };
        let o = match t.o {
            NodeTerm::Var(v) => format!("?v{}", v.0),
            NodeTerm::Bound(n) => graph.nodes().resolve(n.0).to_string(),
        };
        let _ = write!(out, " {s} {p} {o} .");
    }
    out.push_str(" }");
    out
}

fn tokenize(input: &str) -> Result<Vec<String>, SparqlError> {
    let mut tokens = Vec::new();
    let mut chars = input.chars().peekable();
    while let Some(&c) = chars.peek() {
        match c {
            c if c.is_whitespace() => {
                chars.next();
            }
            '{' | '}' | '.' | ';' | ',' | '*' => {
                tokens.push(c.to_string());
                chars.next();
            }
            '"' => {
                // Literal, with optional @lang / ^^<datatype> suffix.
                let mut lit = String::from("\"");
                chars.next();
                let mut escaped = false;
                loop {
                    match chars.next() {
                        None => return err("unterminated string literal"),
                        Some('\\') if !escaped => {
                            escaped = true;
                            lit.push('\\');
                        }
                        Some('"') if !escaped => {
                            lit.push('"');
                            break;
                        }
                        Some(ch) => {
                            escaped = false;
                            lit.push(ch);
                        }
                    }
                }
                while let Some(&nc) = chars.peek() {
                    if nc.is_whitespace() || "{};,.".contains(nc) {
                        break;
                    }
                    lit.push(nc);
                    chars.next();
                }
                tokens.push(lit);
            }
            '<' => {
                let mut iri = String::new();
                for ch in chars.by_ref() {
                    iri.push(ch);
                    if ch == '>' {
                        break;
                    }
                }
                if !iri.ends_with('>') {
                    return err("unterminated IRI");
                }
                tokens.push(iri);
            }
            _ => {
                // Bare token: variable, CURIE, keyword.
                let mut tok = String::new();
                while let Some(&nc) = chars.peek() {
                    if nc.is_whitespace() || "{};,".contains(nc) {
                        break;
                    }
                    // '.' terminates a token only when followed by whitespace
                    // or EOF (CURIEs may contain dots, e.g. ub:Dept0.U1).
                    if nc == '.' {
                        let mut ahead = chars.clone();
                        ahead.next();
                        match ahead.peek() {
                            None => break,
                            Some(&after) if after.is_whitespace() || after == '}' => break,
                            _ => {}
                        }
                    }
                    tok.push(nc);
                    chars.next();
                }
                if tok.is_empty() {
                    return err(format!("unexpected character {c:?}"));
                }
                tokens.push(tok);
            }
        }
    }
    Ok(tokens)
}

fn eq_kw(token: &str, kw: &str) -> bool {
    token.eq_ignore_ascii_case(kw)
}

fn expect_keyword(tokens: &[String], pos: &mut usize, kw: &str) -> Result<(), SparqlError> {
    if *pos < tokens.len() && eq_kw(&tokens[*pos], kw) {
        *pos += 1;
        Ok(())
    } else {
        err(format!("expected {kw}, found {:?}", tokens.get(*pos)))
    }
}

fn expect_token(tokens: &[String], pos: &mut usize, t: &str) -> Result<(), SparqlError> {
    if *pos < tokens.len() && tokens[*pos] == t {
        *pos += 1;
        Ok(())
    } else {
        err(format!("expected {t:?}, found {:?}", tokens.get(*pos)))
    }
}

fn get_var(name: &str, vars: &mut FxHashMap<String, VarId>, var_names: &mut Vec<String>) -> Result<VarId, SparqlError> {
    if let Some(&v) = vars.get(name) {
        return Ok(v);
    }
    let id = u16::try_from(var_names.len()).map_err(|_| SparqlError {
        message: "too many variables".into(),
    })?;
    let v = VarId(id);
    vars.insert(name.to_string(), v);
    var_names.push(name.to_string());
    Ok(v)
}

fn parse_node_term(
    tokens: &[String],
    pos: &mut usize,
    graph: &KnowledgeGraph,
    vars: &mut FxHashMap<String, VarId>,
    var_names: &mut Vec<String>,
) -> Result<NodeTerm, SparqlError> {
    let Some(tok) = tokens.get(*pos) else {
        return err("expected a node term, found end of input");
    };
    *pos += 1;
    if let Some(name) = tok.strip_prefix('?').or_else(|| tok.strip_prefix('$')) {
        return Ok(NodeTerm::Var(get_var(name, vars, var_names)?));
    }
    match graph.nodes().get(tok) {
        Some(id) => Ok(NodeTerm::Bound(NodeId(id))),
        None => err(format!("unknown node term {tok:?} (not in the graph's dictionary)")),
    }
}

fn parse_pred_term(
    tokens: &[String],
    pos: &mut usize,
    graph: &KnowledgeGraph,
    vars: &mut FxHashMap<String, VarId>,
    var_names: &mut Vec<String>,
) -> Result<PredTerm, SparqlError> {
    let Some(tok) = tokens.get(*pos) else {
        return err("expected a predicate term, found end of input");
    };
    *pos += 1;
    if let Some(name) = tok.strip_prefix('?').or_else(|| tok.strip_prefix('$')) {
        return Ok(PredTerm::Var(get_var(name, vars, var_names)?));
    }
    // `a` abbreviates rdf:type.
    let lookup = if tok == "a" { "rdf:type" } else { tok.as_str() };
    match graph.preds().get(lookup) {
        Some(id) => Ok(PredTerm::Bound(PredId(id))),
        None => err(format!("unknown predicate {tok:?} (not in the graph's dictionary)")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;
    use crate::matcher;
    use crate::triple::QueryShape;

    fn graph() -> KnowledgeGraph {
        let mut b = GraphBuilder::new();
        b.add(":shining", ":hasAuthor", ":StephenKing");
        b.add(":shining", ":genre", ":Horror");
        b.add(":it", ":hasAuthor", ":StephenKing");
        b.add(":it", ":genre", ":Horror");
        b.add(":StephenKing", ":bornIn", ":USA");
        b.add(":shining", "rdf:type", ":Book");
        b.build()
    }

    #[test]
    fn parses_the_papers_example() {
        let g = graph();
        let p = parse("SELECT ?x WHERE { ?x :hasAuthor :StephenKing ; :genre :Horror . }", &g).unwrap();
        assert_eq!(p.query.size(), 2);
        assert_eq!(p.query.shape(), QueryShape::Star);
        assert_eq!(p.variables, vec!["x"]);
        assert_eq!(matcher::count(&g, &p.query), 2);
    }

    #[test]
    fn parses_chain_query() {
        let g = graph();
        let p = parse("SELECT ?x ?y WHERE { ?x :hasAuthor ?y . ?y :bornIn :USA . }", &g).unwrap();
        assert_eq!(p.query.shape(), QueryShape::Chain);
        assert_eq!(p.variables, vec!["x", "y"]);
        assert_eq!(matcher::count(&g, &p.query), 2);
    }

    #[test]
    fn object_list_comma() {
        let g = graph();
        let p = parse("SELECT * WHERE { ?x :genre :Horror , :Horror . }", &g).unwrap();
        assert_eq!(p.query.size(), 2);
        // Both triples share subject and predicate.
        assert_eq!(p.query.triples[0].s, p.query.triples[1].s);
        assert_eq!(p.query.triples[0].p, p.query.triples[1].p);
    }

    #[test]
    fn a_abbreviates_rdf_type() {
        let g = graph();
        let p = parse("SELECT ?b WHERE { ?b a :Book . }", &g).unwrap();
        assert_eq!(matcher::count(&g, &p.query), 1);
    }

    #[test]
    fn shared_variables_are_deduplicated() {
        let g = graph();
        let p = parse("SELECT * WHERE { ?x :hasAuthor ?a . ?x :genre :Horror . }", &g).unwrap();
        assert_eq!(p.variables.len(), 2);
        assert_eq!(p.query.triples[0].s, p.query.triples[1].s);
    }

    #[test]
    fn unknown_term_is_an_error() {
        let g = graph();
        let e = parse("SELECT * WHERE { ?x :hasAuthor :Nobody . }", &g).unwrap_err();
        assert!(e.message.contains("unknown node term"));
        let e = parse("SELECT * WHERE { ?x :unknownPred ?y . }", &g).unwrap_err();
        assert!(e.message.contains("unknown predicate"));
    }

    #[test]
    fn syntax_errors_are_reported() {
        let g = graph();
        assert!(parse("WHERE { ?x :genre :Horror . }", &g).is_err()); // no SELECT
        assert!(parse("SELECT * WHERE { ?x :genre :Horror . ", &g).is_err()); // no }
        assert!(parse("SELECT * WHERE { }", &g).is_err()); // empty BGP
    }

    #[test]
    fn trailing_semicolon_is_tolerated() {
        let g = graph();
        let p = parse("SELECT ?x WHERE { ?x :genre :Horror ; . }", &g).unwrap();
        assert_eq!(p.query.size(), 1);
    }

    #[test]
    fn predicate_variables_parse() {
        let g = graph();
        let p = parse("SELECT * WHERE { :shining ?p ?o . }", &g).unwrap();
        assert_eq!(matcher::count(&g, &p.query), 3);
    }

    #[test]
    fn format_query_round_trips() {
        let g = graph();
        for text in [
            "SELECT ?x WHERE { ?x :hasAuthor :StephenKing ; :genre :Horror . }",
            "SELECT ?x ?y WHERE { ?x :hasAuthor ?y . ?y :bornIn :USA . }",
            "SELECT * WHERE { :shining ?p ?o . }",
            "SELECT ?b WHERE { ?b rdf:type :Book . }",
        ] {
            let parsed = parse(text, &g).unwrap();
            let rendered = format_query(&parsed.query, &g);
            let reparsed = parse(&rendered, &g).unwrap();
            assert_eq!(reparsed.query, parsed.query, "round trip failed for {rendered:?}");
        }
    }

    #[test]
    fn format_query_uses_dictionary_names() {
        let g = graph();
        let p = parse("SELECT * WHERE { ?x :genre :Horror . }", &g).unwrap();
        let rendered = format_query(&p.query, &g);
        assert_eq!(rendered, "SELECT * WHERE { ?v0 :genre :Horror . }");
    }

    #[test]
    fn dollar_variables_work() {
        let g = graph();
        let p = parse("SELECT $x WHERE { $x :genre :Horror . }", &g).unwrap();
        assert_eq!(p.variables, vec!["x"]);
    }
}
