//! A pragmatic N-Triples reader/writer.
//!
//! Supports the subset our generators emit and that the public RDF dumps the
//! paper evaluates on (SWDF, LUBM, YAGO) predominantly use: IRI refs in
//! angle brackets, plain/typed/lang-tagged literals in double quotes, and
//! `#` comment lines. Blank nodes (`_:b0`) are accepted and treated as node
//! terms verbatim. As a lenient extension, bare CURIE-style tokens
//! (`ub:University0`) are accepted as IRI terms — our generators emit those
//! for readability, and round-trips stay lossless.

use crate::graph::{GraphBuilder, KnowledgeGraph};
use std::fmt::Write as _;
use std::io::{self, BufRead, Write};

/// A parse error with line information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Reads an N-Triples document into a [`KnowledgeGraph`].
pub fn read<R: BufRead>(reader: R) -> Result<KnowledgeGraph, ParseError> {
    let mut builder = GraphBuilder::new();
    let mut line_no = 0usize;
    for line in reader.lines() {
        line_no += 1;
        let line = line.map_err(|e| ParseError {
            line: line_no,
            message: format!("io error: {e}"),
        })?;
        parse_line(&line, line_no, &mut builder)?;
    }
    Ok(builder.build())
}

/// Parses a string containing an N-Triples document.
pub fn read_str(data: &str) -> Result<KnowledgeGraph, ParseError> {
    let mut builder = GraphBuilder::new();
    for (i, line) in data.lines().enumerate() {
        parse_line(line, i + 1, &mut builder)?;
    }
    Ok(builder.build())
}

fn parse_line(line: &str, line_no: usize, builder: &mut GraphBuilder) -> Result<(), ParseError> {
    let trimmed = line.trim();
    if trimmed.is_empty() || trimmed.starts_with('#') {
        return Ok(());
    }
    let err = |message: String| ParseError { line: line_no, message };

    let mut rest = trimmed;
    let s = take_term(&mut rest).map_err(|m| err(format!("subject: {m}")))?;
    let p = take_term(&mut rest).map_err(|m| err(format!("predicate: {m}")))?;
    let o = take_term(&mut rest).map_err(|m| err(format!("object: {m}")))?;
    let tail = rest.trim();
    if tail != "." {
        return Err(err(format!("expected terminating '.', found {tail:?}")));
    }
    if !matches!(p_kind(&p), TermKind::Iri) {
        return Err(err("predicate must be an IRI".into()));
    }
    builder.add(&s, &p, &o);
    Ok(())
}

enum TermKind {
    Iri,
    Literal,
    Blank,
}

fn p_kind(term: &str) -> TermKind {
    if term.starts_with('"') {
        TermKind::Literal
    } else if term.starts_with("_:") {
        TermKind::Blank
    } else {
        TermKind::Iri // bracketed IRIs and bare CURIEs alike
    }
}

/// Extracts the next term from `rest`, advancing it. The returned string is
/// the canonical serialized form (with brackets/quotes) so that round-trips
/// are lossless.
fn take_term(rest: &mut &str) -> Result<String, String> {
    let s = rest.trim_start();
    if s.is_empty() {
        return Err("unexpected end of line".into());
    }
    if let Some(stripped) = s.strip_prefix('<') {
        let end = stripped.find('>').ok_or("unterminated IRI")?;
        let term = format!("<{}>", &stripped[..end]);
        *rest = &stripped[end + 1..];
        return Ok(term);
    }
    if s.starts_with("_:") {
        let end = s.find(char::is_whitespace).unwrap_or(s.len());
        let term = s[..end].to_string();
        *rest = &s[end..];
        return Ok(term);
    }
    if let Some(stripped) = s.strip_prefix('"') {
        // Scan for the closing quote, honoring backslash escapes.
        let bytes = stripped.as_bytes();
        let mut i = 0;
        let mut escaped = false;
        while i < bytes.len() {
            match bytes[i] {
                b'\\' if !escaped => escaped = true,
                b'"' if !escaped => break,
                _ => escaped = false,
            }
            i += 1;
        }
        if i == bytes.len() {
            return Err("unterminated literal".into());
        }
        let lit_end = i; // index of closing quote within stripped
        let mut after = &stripped[lit_end + 1..];
        // Optional language tag or datatype.
        let mut suffix = String::new();
        if let Some(lang_rest) = after.strip_prefix('@') {
            let end = lang_rest.find(char::is_whitespace).unwrap_or(lang_rest.len());
            suffix = format!("@{}", &lang_rest[..end]);
            after = &lang_rest[end..];
        } else if let Some(dt_rest) = after.strip_prefix("^^<") {
            let end = dt_rest.find('>').ok_or("unterminated datatype IRI")?;
            suffix = format!("^^<{}>", &dt_rest[..end]);
            after = &dt_rest[end + 1..];
        }
        let term = format!("\"{}\"{}", &stripped[..lit_end], suffix);
        *rest = after;
        return Ok(term);
    }
    // Lenient extension: a bare CURIE-style token up to the next whitespace.
    // The terminating '.' always stands alone after whitespace in N-Triples,
    // so token content may safely contain dots (e.g. "ub:Dept0.U1").
    let end = s.find(char::is_whitespace).unwrap_or(s.len());
    let token = &s[..end];
    if token == "." || token.is_empty() {
        return Err(format!("unrecognized term start: {:?}", &s[..s.len().min(16)]));
    }
    *rest = &s[end..];
    Ok(token.to_string())
}

/// Writes the graph as N-Triples. Terms are stored in serialized form, so
/// writing is a direct dump.
pub fn write<W: Write>(graph: &KnowledgeGraph, writer: &mut W) -> io::Result<()> {
    let mut buf = String::new();
    for t in graph.triples() {
        buf.clear();
        let s = graph.nodes().resolve(t.s.0);
        let p = graph.preds().resolve(t.p.0);
        let o = graph.nodes().resolve(t.o.0);
        let _ = writeln!(buf, "{s} {p} {o} .");
        writer.write_all(buf.as_bytes())?;
    }
    Ok(())
}

/// Serializes the graph to an N-Triples string.
pub fn write_string(graph: &KnowledgeGraph) -> String {
    let mut out = Vec::new();
    write(graph, &mut out).expect("writing to Vec cannot fail");
    String::from_utf8(out).expect("N-Triples output is UTF-8")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_document() {
        let doc = "<http://ex/a> <http://ex/p> <http://ex/b> .\n\
                   # a comment\n\
                   \n\
                   <http://ex/a> <http://ex/p> \"42\"^^<http://www.w3.org/2001/XMLSchema#integer> .\n";
        let g = read_str(doc).unwrap();
        assert_eq!(g.num_triples(), 2);
        assert_eq!(g.num_preds(), 1);
        assert_eq!(g.num_nodes(), 3);
    }

    #[test]
    fn parses_lang_tagged_literal() {
        let doc = "<http://ex/a> <http://ex/label> \"hello\"@en .";
        let g = read_str(doc).unwrap();
        assert_eq!(g.num_triples(), 1);
        assert!(g.nodes().get("\"hello\"@en").is_some());
    }

    #[test]
    fn parses_blank_nodes() {
        let doc = "_:b0 <http://ex/p> _:b1 .";
        let g = read_str(doc).unwrap();
        assert_eq!(g.num_triples(), 1);
        assert!(g.nodes().get("_:b0").is_some());
    }

    #[test]
    fn parses_escaped_quote_in_literal() {
        let doc = r#"<http://ex/a> <http://ex/p> "say \"hi\"" ."#;
        let g = read_str(doc).unwrap();
        assert_eq!(g.num_triples(), 1);
        assert!(g.nodes().get(r#""say \"hi\"""#).is_some());
    }

    #[test]
    fn rejects_missing_dot() {
        let doc = "<http://ex/a> <http://ex/p> <http://ex/b>";
        let err = read_str(doc).unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.message.contains("terminating"));
    }

    #[test]
    fn rejects_literal_predicate() {
        let doc = "<http://ex/a> \"p\" <http://ex/b> .";
        assert!(read_str(doc).is_err());
    }

    #[test]
    fn rejects_unterminated_iri() {
        let doc = "<http://ex/a <http://ex/p> <http://ex/b> .";
        assert!(read_str(doc).is_err());
    }

    #[test]
    fn parses_bare_curie_tokens() {
        let doc = "ub:University0 rdf:type ub:University .\nub:Dept0.U1 ub:subOrganizationOf ub:University0 .";
        let g = read_str(doc).unwrap();
        assert_eq!(g.num_triples(), 2);
        assert!(g.nodes().get("ub:Dept0.U1").is_some());
        // Round-trip parity.
        let g2 = read_str(&write_string(&g)).unwrap();
        assert_eq!(g.triples(), g2.triples());
    }

    #[test]
    fn rejects_lone_dot_term() {
        assert!(read_str("ub:a ub:p .").is_err());
        assert!(read_str(". . . .").is_err());
    }

    #[test]
    fn roundtrip_preserves_triples() {
        let doc = "<http://ex/a> <http://ex/p> <http://ex/b> .\n\
                   <http://ex/b> <http://ex/p> \"lit\"@de .\n\
                   _:node <http://ex/q> <http://ex/a> .\n";
        let g = read_str(doc).unwrap();
        let out = write_string(&g);
        let g2 = read_str(&out).unwrap();
        assert_eq!(g.num_triples(), g2.num_triples());
        assert_eq!(write_string(&g2), out);
    }

    #[test]
    fn reader_api_works_with_bufread() {
        let doc = b"<http://ex/a> <http://ex/p> <http://ex/b> .\n" as &[u8];
        let g = read(doc).unwrap();
        assert_eq!(g.num_triples(), 1);
    }
}
