//! Property tests: the specialized counters, the generic matcher, and the
//! exponential brute-force enumerator must all agree on random graphs and
//! random queries. This is the correctness anchor for every experiment,
//! since `counter::cardinality` is the ground-truth oracle.

use lmkg_store::counter;
use lmkg_store::matcher;
use lmkg_store::{GraphBuilder, KnowledgeGraph, NodeId, NodeTerm, PredId, PredTerm, Query, TriplePattern, VarId};
use proptest::prelude::*;

const MAX_NODES: u32 = 6;
const MAX_PREDS: u32 = 3;

fn arb_graph() -> impl Strategy<Value = KnowledgeGraph> {
    prop::collection::vec((0..MAX_NODES, 0..MAX_PREDS, 0..MAX_NODES), 0..18).prop_map(|edges| {
        let mut b = GraphBuilder::new();
        // Intern the full id ranges so bound terms in queries always exist.
        for i in 0..MAX_NODES {
            b.node(&format!("n{i}"));
        }
        for i in 0..MAX_PREDS {
            b.pred(&format!("p{i}"));
        }
        for (s, p, o) in edges {
            b.add_ids(NodeId(s), PredId(p), NodeId(o));
        }
        b.build()
    })
}

/// Node term: bound node, or one of 4 node variables.
fn arb_node_term() -> impl Strategy<Value = NodeTerm> {
    prop_oneof![
        (0..MAX_NODES).prop_map(|n| NodeTerm::Bound(NodeId(n))),
        (0u16..4).prop_map(|v| NodeTerm::Var(VarId(v))),
    ]
}

/// Predicate term: bound, or one of 2 predicate variables (ids 8, 9 — kept
/// disjoint from node variable ids to satisfy `Query::validate`).
fn arb_pred_term() -> impl Strategy<Value = PredTerm> {
    prop_oneof![
        (0..MAX_PREDS).prop_map(|p| PredTerm::Bound(PredId(p))),
        (8u16..10).prop_map(|v| PredTerm::Var(VarId(v))),
    ]
}

fn arb_pattern() -> impl Strategy<Value = TriplePattern> {
    (arb_node_term(), arb_pred_term(), arb_node_term()).prop_map(|(s, p, o)| TriplePattern::new(s, p, o))
}

fn arb_query(max_patterns: usize) -> impl Strategy<Value = Query> {
    prop::collection::vec(arb_pattern(), 1..=max_patterns).prop_map(Query::new)
}

/// A random star query: one center (var 0 or bound), k pairs.
fn arb_star_query() -> impl Strategy<Value = Query> {
    let center = prop_oneof![
        Just(NodeTerm::Var(VarId(0))),
        (0..MAX_NODES).prop_map(|n| NodeTerm::Bound(NodeId(n))),
    ];
    let pair = (arb_pred_term(), arb_node_term());
    (center, prop::collection::vec(pair, 2..5)).prop_map(|(c, pairs)| {
        let triples = pairs.into_iter().map(|(p, o)| TriplePattern::new(c, p, o)).collect();
        Query::new(triples)
    })
}

/// A random chain query with fresh link variables (vars 1..), possibly bound
/// endpoints and intermediate nodes.
fn arb_chain_query() -> impl Strategy<Value = Query> {
    (
        2usize..5,
        prop::collection::vec((arb_pred_term(), any::<bool>(), 0..MAX_NODES), 4),
    )
        .prop_map(|(k, spec)| {
            let mut triples = Vec::with_capacity(k);
            let mut prev = NodeTerm::Var(VarId(1));
            for i in 0..k {
                let (p, bind, node) = spec[i % spec.len()];
                let next = if bind && i + 1 < k {
                    NodeTerm::Bound(NodeId(node))
                } else {
                    NodeTerm::Var(VarId(2 + i as u16))
                };
                triples.push(TriplePattern::new(prev, p, next));
                prev = next;
            }
            Query::new(triples)
        })
}

/// Queries over node vars only are valid; mixed-role variables are rejected
/// by `validate`. Filter those out.
fn is_valid(q: &Query) -> bool {
    q.validate().is_ok()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn generic_count_matches_brute_force(g in arb_graph(), q in arb_query(3)) {
        prop_assume!(is_valid(&q));
        prop_assert_eq!(matcher::count(&g, &q), matcher::brute_force_count(&g, &q));
    }

    #[test]
    fn cardinality_matches_brute_force(g in arb_graph(), q in arb_query(3)) {
        prop_assume!(is_valid(&q));
        prop_assert_eq!(counter::cardinality(&g, &q), matcher::brute_force_count(&g, &q));
    }

    #[test]
    fn star_counter_matches_generic(g in arb_graph(), q in arb_star_query()) {
        prop_assume!(is_valid(&q));
        prop_assert_eq!(counter::cardinality(&g, &q), matcher::count(&g, &q));
    }

    #[test]
    fn chain_counter_matches_generic(g in arb_graph(), q in arb_chain_query()) {
        prop_assume!(is_valid(&q));
        prop_assert_eq!(counter::cardinality(&g, &q), matcher::count(&g, &q));
    }

    #[test]
    fn evaluate_len_equals_count(g in arb_graph(), q in arb_query(2)) {
        prop_assume!(is_valid(&q));
        let rows = matcher::evaluate(&g, &q, None);
        prop_assert_eq!(rows.len() as u64, matcher::count(&g, &q));
    }

    #[test]
    fn star_tuple_total_equals_unbound_star(g in arb_graph(), k in 1usize..4) {
        // The all-variable star of size k has cardinality N_star(k).
        let mut triples = Vec::new();
        for i in 0..k {
            triples.push(TriplePattern::new(
                NodeTerm::Var(VarId(0)),
                PredTerm::Var(VarId(10 + i as u16)),
                NodeTerm::Var(VarId(1 + i as u16)),
            ));
        }
        let q = Query::new(triples);
        let exact = if k == 1 { matcher::count(&g, &q) } else { counter::cardinality(&g, &q) };
        prop_assert_eq!(exact as f64, counter::star_tuple_total(&g, k));
    }

    #[test]
    fn chain_tuple_total_equals_unbound_chain(g in arb_graph(), k in 1usize..4) {
        let mut triples = Vec::new();
        for i in 0..k {
            triples.push(TriplePattern::new(
                NodeTerm::Var(VarId(i as u16)),
                PredTerm::Var(VarId(10 + i as u16)),
                NodeTerm::Var(VarId(i as u16 + 1)),
            ));
        }
        let q = Query::new(triples);
        let exact = counter::cardinality(&g, &q);
        prop_assert_eq!(exact as f64, counter::chain_tuple_total(&g, k));
    }

    #[test]
    fn count_single_is_exact(g in arb_graph(),
                             s in prop::option::of(0..MAX_NODES),
                             p in prop::option::of(0..MAX_PREDS),
                             o in prop::option::of(0..MAX_NODES)) {
        let s = s.map(NodeId);
        let p = p.map(PredId);
        let o = o.map(NodeId);
        let expected = g
            .triples()
            .iter()
            .filter(|t| s.is_none_or(|s| s == t.s) && p.is_none_or(|p| p == t.p) && o.is_none_or(|o| o == t.o))
            .count() as u64;
        prop_assert_eq!(g.count_single(s, p, o), expected);
    }
}
