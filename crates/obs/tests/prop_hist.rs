//! Property tests for the metrics core (ISSUE 7 satellite): percentile
//! error bounds vs. exact sorted quantiles, merge equivalence, and
//! concurrent-recorder count preservation.

use lmkg_obs::{Histogram, ShardedHistogram, RELATIVE_ERROR_BOUND};
use proptest::prelude::*;

/// Exact nearest-rank percentile over a sorted sample, mirroring
/// `HistSnapshot::percentile`'s rank convention.
fn exact_percentile(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty());
    let rank = ((p / 100.0) * sorted.len() as f64).ceil().max(1.0) as usize;
    sorted[rank.min(sorted.len()) - 1]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Histogram percentiles never under-estimate the exact quantile and
    /// over-estimate it by at most one bucket's relative error.
    #[test]
    fn percentiles_within_bucket_relative_error(
        values in proptest::collection::vec(1.000001f64..1e9, 1..200),
        p in 0.0f64..=100.0,
    ) {
        let h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let mut sorted = values.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let exact = exact_percentile(&sorted, p);
        let reported = h.snapshot().percentile(p);
        prop_assert!(reported >= exact, "reported {reported} < exact {exact}");
        prop_assert!(
            reported <= exact * (1.0 + RELATIVE_ERROR_BOUND) * (1.0 + 1e-12),
            "reported {reported} exceeds exact {exact} by more than the bound"
        );
    }

    /// Recording a stream split across two histograms and merging is
    /// identical (bucket-for-bucket) to recording the whole stream into one.
    #[test]
    fn merge_equals_single_recording(
        values in proptest::collection::vec(0.0f64..1e9, 0..200),
        split in 0usize..200,
    ) {
        let split = split.min(values.len());
        let (left, right) = values.split_at(split);

        let a = Histogram::new();
        let b = Histogram::new();
        for &v in left {
            a.record(v);
        }
        for &v in right {
            b.record(v);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());

        let single = Histogram::new();
        for &v in &values {
            single.record(v);
        }
        prop_assert_eq!(merged, single.snapshot());
    }

    /// Sharded recording preserves every sample regardless of which shard
    /// each sample lands in, and the merged snapshot matches an unsharded
    /// histogram fed the same stream.
    #[test]
    fn sharded_merge_matches_unsharded(
        values in proptest::collection::vec(1.0f64..1e6, 0..150),
        shards in 1usize..8,
    ) {
        let sh = ShardedHistogram::new(shards);
        let single = Histogram::new();
        for (i, &v) in values.iter().enumerate() {
            sh.record(i, v);
            single.record(v);
        }
        prop_assert_eq!(sh.count(), values.len() as u64);
        prop_assert_eq!(sh.snapshot(), single.snapshot());
    }
}

/// Concurrent recorders across threads never lose a sample: the merged
/// count equals the number of records issued, both with per-thread shards
/// and with all threads hammering one shared histogram.
#[test]
fn concurrent_recorder_counts_are_never_lost() {
    use std::sync::Arc;

    const THREADS: usize = 8;
    const PER_THREAD: usize = 20_000;

    let sharded = Arc::new(ShardedHistogram::new(THREADS));
    let shared = Arc::new(Histogram::new());
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let sharded = Arc::clone(&sharded);
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || {
                for i in 0..PER_THREAD {
                    let v = 1.0 + ((t * PER_THREAD + i) % 1000) as f64;
                    sharded.record(t, v);
                    shared.record(v);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    let expected = (THREADS * PER_THREAD) as u64;
    assert_eq!(sharded.count(), expected, "sharded recorders lost samples");
    assert_eq!(shared.count(), expected, "contended histogram lost samples");
    let snap = sharded.snapshot();
    assert_eq!(
        snap.buckets.iter().sum::<u64>(),
        expected,
        "bucket totals drifted from count"
    );
}
