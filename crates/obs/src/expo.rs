//! Prometheus-style text exposition.
//!
//! [`Expo`] accumulates `# HELP` / `# TYPE` headers and sample lines into a
//! single string. The dialect is the Prometheus text format with two
//! deliberate extensions, both comment-prefixed so standard parsers skip
//! them: a `# EVENTS <n>` header followed by `# EVENT <seq> <unix_ms>
//! <level> <kind> <message>` lines for the structured event ring, and no
//! trailing `# EOF` (the transport layer appends its own terminator).
//!
//! Histograms are rendered sparsely: only non-empty buckets get a
//! `_bucket{le="..."}` line (cumulative, as the format requires), always
//! followed by `le="+Inf"`, `_sum`, and `_count`.

use crate::events::EventLog;
use crate::hist::{bucket_bound, HistSnapshot, NUM_BUCKETS};

/// A text exposition under construction.
#[derive(Debug, Default)]
pub struct Expo {
    out: String,
}

impl Expo {
    /// An empty exposition.
    pub fn new() -> Self {
        Expo {
            out: String::with_capacity(4096),
        }
    }

    fn header(&mut self, name: &str, help: &str, kind: &str) {
        self.out.push_str("# HELP ");
        self.out.push_str(name);
        self.out.push(' ');
        self.out.push_str(help);
        self.out.push_str("\n# TYPE ");
        self.out.push_str(name);
        self.out.push(' ');
        self.out.push_str(kind);
        self.out.push('\n');
    }

    fn sample(&mut self, name: &str, labels: &str, value: &str) {
        self.out.push_str(name);
        self.out.push_str(labels);
        self.out.push(' ');
        self.out.push_str(value);
        self.out.push('\n');
    }

    /// Formats a trailing-comma label prefix (e.g. `tenant="a",`) as a full
    /// label set (`{tenant="a"}`), or nothing for the empty prefix.
    fn braced(extra_label: &str) -> String {
        if extra_label.is_empty() {
            String::new()
        } else {
            format!("{{{}}}", extra_label.trim_end_matches(','))
        }
    }

    /// Emit a counter with a single unlabeled sample.
    pub fn counter(&mut self, name: &str, help: &str, value: u64) {
        self.counter_with(name, help, "", value);
    }

    /// Emit a counter with a single sample under `extra_label` (a
    /// trailing-comma prefix like `tenant="a",`, or `""` for none).
    pub fn counter_with(&mut self, name: &str, help: &str, extra_label: &str, value: u64) {
        self.header(name, help, "counter");
        self.sample(name, &Self::braced(extra_label), &value.to_string());
    }

    /// Emit a counter family: one `# TYPE` header, one sample per
    /// `(labels, value)` pair. Labels must be pre-formatted, e.g.
    /// `{kind="shed"}`.
    pub fn counter_family(&mut self, name: &str, help: &str, samples: &[(String, u64)]) {
        self.header(name, help, "counter");
        for (labels, value) in samples {
            self.sample(name, labels, &value.to_string());
        }
    }

    /// Emit a gauge with a single integer sample.
    pub fn gauge(&mut self, name: &str, help: &str, value: i64) {
        self.gauge_with(name, help, "", value);
    }

    /// Emit a gauge with a single integer sample under `extra_label` (a
    /// trailing-comma prefix like `tenant="a",`, or `""` for none).
    pub fn gauge_with(&mut self, name: &str, help: &str, extra_label: &str, value: i64) {
        self.header(name, help, "gauge");
        self.sample(name, &Self::braced(extra_label), &value.to_string());
    }

    /// Emit a gauge with a single floating-point sample.
    pub fn gauge_f64(&mut self, name: &str, help: &str, value: f64) {
        self.gauge_f64_with(name, help, "", value);
    }

    /// Emit a gauge with a single floating-point sample under `extra_label`
    /// (a trailing-comma prefix like `tenant="a",`, or `""` for none).
    pub fn gauge_f64_with(&mut self, name: &str, help: &str, extra_label: &str, value: f64) {
        self.header(name, help, "gauge");
        self.sample(name, &Self::braced(extra_label), &format!("{value}"));
    }

    /// Emit a histogram from a snapshot. `extra_label` is prepended inside
    /// every label set (pass `""` for none, or e.g. `stage="forward",`).
    pub fn histogram(&mut self, name: &str, help: &str, extra_label: &str, snap: &HistSnapshot) {
        self.header(name, help, "histogram");
        self.histogram_samples(name, extra_label, snap);
    }

    /// Emit only the sample lines of a histogram (for families sharing one
    /// `# TYPE` header across label values — call [`Expo::histogram`] for
    /// the first member and this for the rest).
    pub fn histogram_samples(&mut self, name: &str, extra_label: &str, snap: &HistSnapshot) {
        let mut cumulative = 0u64;
        for i in 0..NUM_BUCKETS {
            if snap.buckets[i] == 0 {
                continue;
            }
            cumulative += snap.buckets[i];
            let labels = format!("{{{}le=\"{}\"}}", extra_label, bucket_bound(i));
            self.sample(&format!("{name}_bucket"), &labels, &cumulative.to_string());
        }
        let inf = format!("{{{}le=\"+Inf\"}}", extra_label);
        self.sample(&format!("{name}_bucket"), &inf, &snap.count.to_string());
        let plain = if extra_label.is_empty() {
            String::new()
        } else {
            format!("{{{}}}", extra_label.trim_end_matches(','))
        };
        self.sample(&format!("{name}_sum"), &plain, &snap.sum.to_string());
        self.sample(&format!("{name}_count"), &plain, &snap.count.to_string());
    }

    /// Emit the structured event section: per-kind and per-level counters
    /// as real series, then the ring contents as `# EVENT` comment lines
    /// (newlines inside messages are flattened to spaces so one event is
    /// always one line).
    pub fn events(&mut self, prefix: &str, log: &EventLog) {
        self.events_with(prefix, "", log);
    }

    /// Like [`Expo::events`], with `extra_label` (a trailing-comma prefix
    /// like `tenant="a",`, or `""` for none) prepended inside every counter
    /// label set — the per-tenant exposition routes through here.
    pub fn events_with(&mut self, prefix: &str, extra_label: &str, log: &EventLog) {
        let kind_samples: Vec<(String, u64)> = log
            .kind_counts()
            .iter()
            .map(|(k, n)| (format!("{{{extra_label}kind=\"{k}\"}}"), *n))
            .collect();
        self.counter_family(
            &format!("{prefix}_events_total"),
            "Structured events recorded, by kind (including evicted ring entries)",
            &kind_samples,
        );
        let level_samples: Vec<(String, u64)> = log
            .level_counts()
            .iter()
            .map(|(l, n)| (format!("{{{}level=\"{}\"}}", extra_label, l.name()), *n))
            .collect();
        self.counter_family(
            &format!("{prefix}_events_by_level_total"),
            "Structured events recorded, by severity level",
            &level_samples,
        );
        let recent = log.recent();
        self.out.push_str(&format!("# EVENTS {}\n", recent.len()));
        for e in recent {
            let msg = e.message.replace(['\n', '\r'], " ");
            self.out.push_str(&format!(
                "# EVENT {} {} {} {} {}\n",
                e.seq,
                e.unix_ms,
                e.level.name(),
                e.kind,
                msg
            ));
        }
    }

    /// Append a raw, already-formatted line (must not contain newlines).
    pub fn raw_line(&mut self, line: &str) {
        self.out.push_str(line);
        self.out.push('\n');
    }

    /// Finish and return the exposition text (no trailing terminator; the
    /// transport appends its own `# EOF`).
    pub fn finish(self) -> String {
        self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hist::Histogram;

    #[test]
    fn counter_and_gauge_render() {
        let mut e = Expo::new();
        e.counter("t_total", "things", 7);
        e.gauge("depth", "queue depth", -2);
        let text = e.finish();
        assert!(text.contains("# HELP t_total things\n"));
        assert!(text.contains("# TYPE t_total counter\n"));
        assert!(text.contains("\nt_total 7\n"));
        assert!(text.contains("depth -2\n"));
    }

    #[test]
    fn histogram_renders_cumulative_sparse_buckets() {
        let h = Histogram::new();
        h.record(1.5);
        h.record(1.5);
        h.record(100.0);
        let mut e = Expo::new();
        e.histogram("lat_us", "latency", "stage=\"fwd\",", &h.snapshot());
        let text = e.finish();
        // Two non-empty buckets, cumulative counts.
        let buckets: Vec<&str> = text.lines().filter(|l| l.starts_with("lat_us_bucket")).collect();
        assert_eq!(buckets.len(), 3, "two sparse buckets + +Inf: {buckets:?}");
        assert!(buckets[0].contains("stage=\"fwd\""));
        assert!(buckets[0].ends_with(" 2"));
        assert!(buckets[1].ends_with(" 3"));
        assert!(buckets[2].contains("le=\"+Inf\"") && buckets[2].ends_with(" 3"));
        assert!(text.contains("lat_us_count{stage=\"fwd\"} 3\n"));
        // Per-sample truncation: 1.5 + 1.5 + 100.0 records as 1 + 1 + 100.
        assert!(text.contains("lat_us_sum{stage=\"fwd\"} 102\n"));
    }

    #[test]
    fn unlabeled_histogram_has_plain_sum_and_count() {
        let h = Histogram::new();
        h.record(3.0);
        let mut e = Expo::new();
        e.histogram("w", "w", "", &h.snapshot());
        let text = e.finish();
        assert!(text.contains("\nw_sum 3\n"));
        assert!(text.contains("\nw_count 1\n"));
    }

    #[test]
    fn labeled_singles_render_full_label_sets() {
        let mut e = Expo::new();
        e.counter_with("t_total", "things", "tenant=\"a\",", 7);
        e.gauge_with("depth", "queue depth", "tenant=\"a\",", -2);
        e.gauge_f64_with("tv", "drift", "tenant=\"a\",", 0.25);
        let text = e.finish();
        assert!(text.contains("\nt_total{tenant=\"a\"} 7\n"));
        assert!(text.contains("\ndepth{tenant=\"a\"} -2\n"));
        assert!(text.contains("\ntv{tenant=\"a\"} 0.25\n"));
        // The empty prefix degenerates to the unlabeled form.
        let mut e = Expo::new();
        e.counter_with("t_total", "things", "", 7);
        assert!(e.finish().contains("\nt_total 7\n"));
    }

    #[test]
    fn events_with_prepends_the_extra_label() {
        let log = EventLog::new(4, &["shed"]);
        log.log(crate::events::Level::Info, "shed", "one".into());
        let mut e = Expo::new();
        e.events_with("lmkg", "tenant=\"b\",", &log);
        let text = e.finish();
        assert!(text.contains("lmkg_events_total{tenant=\"b\",kind=\"shed\"} 1\n"));
        assert!(text.contains("lmkg_events_by_level_total{tenant=\"b\",level=\"info\"} 1\n"));
    }

    #[test]
    fn events_section_renders_counters_and_ring() {
        let log = EventLog::new(4, &["shed", "swap"]);
        log.log(crate::events::Level::Info, "swap", "model swapped\nin 2 lines".into());
        let mut e = Expo::new();
        e.events("lmkg", &log);
        let text = e.finish();
        assert!(
            text.contains("lmkg_events_total{kind=\"shed\"} 0\n"),
            "zero-valued kinds still render"
        );
        assert!(text.contains("lmkg_events_total{kind=\"swap\"} 1\n"));
        assert!(text.contains("lmkg_events_by_level_total{level=\"info\"} 1\n"));
        assert!(text.contains("# EVENTS 1\n"));
        let ev = text.lines().find(|l| l.starts_with("# EVENT ")).expect("event line");
        assert!(
            ev.contains("info swap model swapped in 2 lines"),
            "newline flattened: {ev}"
        );
    }
}
