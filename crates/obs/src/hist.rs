//! Constant-memory log-bucketed histograms.
//!
//! The serving stack needs latency distributions that can be recorded on the
//! hot path (no allocation, no locks) and scraped cheaply (O(buckets), not
//! O(samples)). The classic answer is a log-bucket histogram: bucket `i`
//! covers the half-open interval `(base^(i-1), base^i]`, so the number of
//! buckets needed to span microseconds-to-days is fixed at compile time and
//! every recorded value lands within a bounded *relative* error of its
//! bucket's upper bound.
//!
//! We use `base = 2^(1/8)`: eight sub-buckets per octave. Reporting a
//! bucket's upper bound therefore over-estimates any value in the bucket by
//! at most `2^(1/8) - 1 ≈ 9.05%`, which is [`RELATIVE_ERROR_BOUND`]. With
//! [`NUM_BUCKETS`]` = 322` buckets (one underflow bucket for values ≤ 1, 320
//! log buckets spanning `(1, 2^40]`, one overflow bucket) a histogram covers
//! one microsecond to ~12.7 days of latency in ~2.5 KiB of atomics.
//!
//! Two flavours share the bucketing:
//!
//! - [`Histogram`]: atomic buckets, `&self` recording from any thread.
//! - [`ShardedHistogram`]: one [`Histogram`] per worker shard so concurrent
//!   recorders never contend on the same cache lines; shards are merged at
//!   scrape time ([`ShardedHistogram::snapshot`]).
//!
//! Histograms are mergeable: recording a stream into two histograms and
//! adding them bucket-wise is exactly recording the concatenated stream into
//! one (the property tests pin this down).

use std::sync::atomic::{AtomicU64, Ordering};

/// Sub-buckets per power of two: the bucket base is `2^(1/SUB_PER_OCTAVE)`.
pub const SUB_PER_OCTAVE: usize = 8;

/// Number of log buckets above the underflow bucket (spans `(1, 2^40]`).
const LOG_BUCKETS: usize = 40 * SUB_PER_OCTAVE;

/// Total bucket count: underflow (`v <= 1`) + log buckets + overflow.
pub const NUM_BUCKETS: usize = LOG_BUCKETS + 2;

/// Worst-case relative over-estimate when reporting a bucket's upper bound
/// for a value inside the bucket: `2^(1/8) - 1`.
pub const RELATIVE_ERROR_BOUND: f64 = 0.090_507_732_665_257_66;

/// Upper bound of bucket `i` (inclusive). Bucket 0 is the underflow bucket
/// with bound 1.0; the final bucket is the overflow bucket, reported as the
/// largest representable bound.
#[inline]
pub fn bucket_bound(i: usize) -> f64 {
    let i = i.min(NUM_BUCKETS - 1);
    (i as f64 / SUB_PER_OCTAVE as f64).exp2()
}

/// Map a value to its bucket index such that
/// `bucket_bound(i - 1) < v <= bucket_bound(i)` for in-range values.
///
/// Non-finite and non-positive values land in the underflow bucket; values
/// above `2^40` land in the overflow bucket. The `log2`-based index is
/// corrected against the exact bounds so float rounding near bucket edges
/// never misplaces a value.
#[inline]
pub fn bucket_index(v: f64) -> usize {
    if v.is_nan() || v <= 1.0 {
        return 0;
    }
    let mut i = (v.log2() * SUB_PER_OCTAVE as f64).ceil() as usize;
    i = i.clamp(1, NUM_BUCKETS - 1);
    // Guard against log2 rounding at bucket edges: enforce the invariant
    // bound(i-1) < v <= bound(i). At most one step in either direction.
    while i > 1 && bucket_bound(i - 1) >= v {
        i -= 1;
    }
    while i < NUM_BUCKETS - 1 && bucket_bound(i) < v {
        i += 1;
    }
    i
}

/// An immutable copy of a histogram's state, taken at scrape time.
#[derive(Clone, Debug, PartialEq)]
pub struct HistSnapshot {
    /// Per-bucket sample counts, indexed like [`bucket_bound`].
    pub buckets: Vec<u64>,
    /// Total number of recorded samples.
    pub count: u64,
    /// Sum of recorded values, truncated to integer units per sample.
    pub sum: u64,
}

impl HistSnapshot {
    /// An empty snapshot (all buckets zero).
    pub fn empty() -> Self {
        HistSnapshot {
            buckets: vec![0; NUM_BUCKETS],
            count: 0,
            sum: 0,
        }
    }

    /// Bucket-wise merge of another snapshot into this one.
    pub fn merge(&mut self, other: &HistSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
    }

    /// Nearest-rank percentile (`p` in `[0, 100]`), reported as the upper
    /// bound of the bucket holding the rank-th smallest sample. Returns 0.0
    /// for an empty snapshot. The result over-estimates the exact sample
    /// quantile by at most [`RELATIVE_ERROR_BOUND`] (values ≤ 1 are floored
    /// to the underflow bound of 1.0).
    pub fn percentile(&self, p: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let rank = rank.min(self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_bound(i);
            }
        }
        bucket_bound(NUM_BUCKETS - 1)
    }

    /// Mean of the recorded values (from the truncated sum), 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// A lock-free log-bucket histogram. Recording is three relaxed atomic adds;
/// scraping copies the fixed bucket array.
#[derive(Debug)]
pub struct Histogram {
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// A histogram with all buckets empty.
    pub fn new() -> Self {
        let buckets: Vec<AtomicU64> = (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            buckets: buckets.into_boxed_slice(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// Record one value. Never allocates; safe from any thread through
    /// `&self`. The `_sum` series truncates each value to integer units.
    #[inline]
    pub fn record(&self, v: f64) {
        let i = bucket_index(v);
        self.buckets[i].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum
            .fetch_add(if v > 0.0 { v as u64 } else { 0 }, Ordering::Relaxed);
    }

    /// Total number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Copy the current state. Buckets are read individually with relaxed
    /// ordering, so a snapshot taken during concurrent recording is a
    /// consistent-enough view: every sample is counted exactly once by some
    /// snapshot at or after its record.
    pub fn snapshot(&self) -> HistSnapshot {
        HistSnapshot {
            buckets: self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
        }
    }

    /// Reset all buckets to zero (tests and bench harnesses only — resets
    /// racing concurrent recorders may strand a sample in `count` vs its
    /// bucket).
    pub fn reset(&self) {
        for b in self.buckets.iter() {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
    }
}

/// A set of per-thread [`Histogram`] shards merged at scrape time.
///
/// Each recording thread (e.g. a batcher worker) owns one shard index and
/// records through [`ShardedHistogram::shard`], so concurrent recorders touch
/// disjoint atomics. Threads without a reserved shard can still record
/// through any index — correctness never depends on exclusivity, only cache
/// behaviour does.
#[derive(Debug)]
pub struct ShardedHistogram {
    shards: Vec<Histogram>,
}

impl ShardedHistogram {
    /// A sharded histogram with `shards.max(1)` independent shards.
    pub fn new(shards: usize) -> Self {
        ShardedHistogram {
            shards: (0..shards.max(1)).map(|_| Histogram::new()).collect(),
        }
    }

    /// The shard for recorder `i` (wraps around, so any index is valid).
    #[inline]
    pub fn shard(&self, i: usize) -> &Histogram {
        &self.shards[i % self.shards.len()]
    }

    /// Record into recorder `i`'s shard.
    #[inline]
    pub fn record(&self, i: usize, v: f64) {
        self.shard(i).record(v);
    }

    /// Total sample count across all shards.
    pub fn count(&self) -> u64 {
        self.shards.iter().map(|s| s.count()).sum()
    }

    /// Merge all shards into one snapshot.
    pub fn snapshot(&self) -> HistSnapshot {
        let mut merged = HistSnapshot::empty();
        for s in &self.shards {
            merged.merge(&s.snapshot());
        }
        merged
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_edges_are_exact() {
        // Exact powers of two sit on bucket upper bounds.
        for oct in 0..40 {
            let v = (oct as f64).exp2();
            let i = bucket_index(v);
            assert_eq!(bucket_bound(i), v, "2^{oct} must map to its own bound");
        }
        // The invariant bound(i-1) < v <= bound(i) holds around edges.
        for i in 1..NUM_BUCKETS - 1 {
            let b = bucket_bound(i);
            assert_eq!(bucket_index(b), i);
            assert_eq!(bucket_index(b * 1.000001), i + 1);
        }
    }

    #[test]
    fn degenerate_values_go_to_underflow() {
        for v in [0.0, -3.0, 0.5, 1.0, f64::NAN, f64::NEG_INFINITY] {
            assert_eq!(bucket_index(v), 0, "{v} should underflow");
        }
        assert_eq!(bucket_index(f64::INFINITY), NUM_BUCKETS - 1);
        assert_eq!(bucket_index(1e30), NUM_BUCKETS - 1);
    }

    #[test]
    fn percentile_bounds_a_known_stream() {
        let h = Histogram::new();
        for v in [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 10);
        // Exact p50 (nearest rank) is 5.0; reported value is its bucket
        // bound, within the relative error bound.
        let p50 = s.percentile(50.0);
        assert!((5.0..=5.0 * (1.0 + RELATIVE_ERROR_BOUND)).contains(&p50), "p50 {p50}");
        let p100 = s.percentile(100.0);
        assert!(
            (10.0..=10.0 * (1.0 + RELATIVE_ERROR_BOUND)).contains(&p100),
            "p100 {p100}"
        );
        assert_eq!(s.percentile(0.0), s.percentile(10.0), "rank floors at the first sample");
    }

    #[test]
    fn empty_histogram_reports_zero() {
        let s = Histogram::new().snapshot();
        assert_eq!(s.percentile(50.0), 0.0);
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn sharded_merge_equals_total() {
        let sh = ShardedHistogram::new(4);
        for i in 0..100 {
            sh.record(i, (i + 1) as f64);
        }
        assert_eq!(sh.count(), 100);
        assert_eq!(sh.snapshot().count, 100);
    }
}
