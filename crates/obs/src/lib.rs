//! # lmkg-obs — lock-free observability core for the LMKG serving stack
//!
//! A dependency-free metrics layer built for a latency-sensitive serving
//! path: everything a request touches is wait-free (relaxed atomics, no
//! allocation), and everything expensive (merging, rendering, the event
//! ring's mutex) happens at scrape time or on rare operational events.
//!
//! The pieces:
//!
//! - [`Counter`] / [`Gauge`] — single atomics with relaxed ordering.
//! - [`Histogram`] — constant-memory log-bucket histogram (base `2^(1/8)`,
//!   so scraped percentiles over-estimate exact sample quantiles by at most
//!   [`RELATIVE_ERROR_BOUND`] ≈ 9.05%). Mergeable by bucket-wise addition.
//! - [`ShardedHistogram`] — per-thread recorder shards merged at scrape
//!   time, so concurrent workers never share a cache line.
//! - [`StageTimer`] — span-style lap timer: consecutive laps tile a
//!   request's life into admission → batch → forward → reply stages.
//! - [`EventLog`] — fixed-capacity ring of structured events (shed, swap,
//!   retrain, parse error, shutdown) with per-kind counters and a leveled
//!   `LMKG_LOG` stderr filter.
//! - [`Expo`] — Prometheus-style text exposition renderer for all of the
//!   above.
//!
//! The crate is intentionally free of LMKG-specific names: the serving
//! crate composes these primitives into its own registry and decides what
//! the series are called.

// No unsafe anywhere in this crate — enforced so the lmkg-xtask L1 lint
// and the sanitizer jobs only ever have the nn kernels and the serve
// signal shim to reason about.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod events;
pub mod expo;
pub mod hist;
pub mod metrics;

pub use events::{Event, EventLog, Level};
pub use expo::Expo;
pub use hist::{
    bucket_bound, bucket_index, HistSnapshot, Histogram, ShardedHistogram, NUM_BUCKETS, RELATIVE_ERROR_BOUND,
    SUB_PER_OCTAVE,
};
pub use metrics::{Counter, Gauge, HighWater, StageTimer};
