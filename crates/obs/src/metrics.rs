//! Atomic counters and gauges, plus the span-style [`StageTimer`].

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::time::Instant;

use crate::hist::Histogram;

/// A monotonically increasing counter. All operations are relaxed atomics —
/// counters are statistical, not synchronization primitives.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter starting at zero.
    pub const fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Increment by one.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Increment by `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can move in both directions (queue depth, active
/// sessions). Signed so that a decrement racing ahead of its matching
/// increment is representable instead of wrapping.
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// A gauge starting at zero.
    pub const fn new() -> Self {
        Gauge(AtomicI64::new(0))
    }

    /// Set the gauge to an absolute value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Increment by one.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Decrement by one.
    #[inline]
    pub fn dec(&self) {
        self.0.fetch_sub(1, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A span-style timer for stage-level latency breakdowns.
///
/// A request's life is a chain of stages (admission → batch → forward →
/// reply); `StageTimer` marks the chain's current position and [`lap`]s the
/// elapsed microseconds into a per-stage histogram, restarting the clock so
/// consecutive laps tile the total latency with no gaps or double counting.
///
/// [`lap`]: StageTimer::lap
#[derive(Debug)]
pub struct StageTimer {
    last: Instant,
}

impl Default for StageTimer {
    fn default() -> Self {
        Self::start()
    }
}

impl StageTimer {
    /// Start the timer at the current instant.
    #[inline]
    pub fn start() -> Self {
        StageTimer { last: Instant::now() }
    }

    /// Resume a timer from an instant captured earlier (e.g. a job's
    /// submission time, so the first lap measures admission wait).
    #[inline]
    pub fn from_instant(at: Instant) -> Self {
        StageTimer { last: at }
    }

    /// Record the microseconds since the previous lap (or start) into
    /// `stage`, restart the clock, and return the elapsed microseconds.
    #[inline]
    pub fn lap(&mut self, stage: &Histogram) -> f64 {
        let now = Instant::now();
        let us = now.duration_since(self.last).as_secs_f64() * 1e6;
        stage.record(us);
        self.last = now;
        us
    }

    /// Microseconds since the previous lap without recording or restarting.
    #[inline]
    pub fn elapsed_us(&self) -> f64 {
        self.last.elapsed().as_secs_f64() * 1e6
    }
}

/// Track a high-water mark across threads: `observe` folds a candidate in
/// with `fetch_max`, `get` reads the current maximum.
#[derive(Debug, Default)]
pub struct HighWater(AtomicU64);

impl HighWater {
    /// A high-water mark starting at zero.
    pub const fn new() -> Self {
        HighWater(AtomicU64::new(0))
    }

    /// Fold `v` into the maximum.
    #[inline]
    pub fn observe(&self, v: u64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Current maximum.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);

        let g = Gauge::new();
        g.inc();
        g.inc();
        g.dec();
        assert_eq!(g.get(), 1);
        g.set(-3);
        assert_eq!(g.get(), -3);
    }

    #[test]
    fn stage_timer_laps_tile_the_total() {
        let a = Histogram::new();
        let b = Histogram::new();
        let mut t = StageTimer::start();
        std::thread::sleep(std::time::Duration::from_millis(2));
        let lap_a = t.lap(&a);
        let lap_b = t.lap(&b);
        assert!(lap_a >= 1000.0, "first lap should cover the sleep, got {lap_a}");
        assert!(lap_b < lap_a, "second lap restarts the clock");
        assert_eq!(a.count(), 1);
        assert_eq!(b.count(), 1);
    }

    #[test]
    fn high_water_keeps_the_max() {
        let h = HighWater::new();
        h.observe(10);
        h.observe(3);
        h.observe(17);
        assert_eq!(h.get(), 17);
    }
}
