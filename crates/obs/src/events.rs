//! A fixed-capacity ring buffer of structured events with a leveled stderr
//! filter.
//!
//! Operational events (shed, swap, retrain, parse error, shutdown, …) are
//! rare relative to requests, so they can afford a `Mutex`-guarded ring —
//! the request hot path never touches it. Every event is recorded in the
//! ring (bounded: the oldest entry is evicted at capacity) and counted
//! per-kind and per-level; whether it *also* goes to stderr is governed by
//! the `LMKG_LOG` environment variable (`off|error|warn|info|debug`,
//! default `info`), read once per [`EventLog`].

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{SystemTime, UNIX_EPOCH};

/// Event severity, ordered from most to least severe.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Something failed and was not recovered transparently.
    Error,
    /// Something degraded (shed, blacklisted cell) but service continues.
    Warn,
    /// Normal operational milestones (swap, retrain, shutdown).
    Info,
    /// High-volume diagnostics (per-session lifecycle).
    Debug,
}

impl Level {
    /// Lowercase name used in the exposition text and `LMKG_LOG` values.
    pub fn name(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
        }
    }
}

/// The stderr verbosity parsed from `LMKG_LOG`. `None` means `off`.
fn stderr_filter_from_env() -> Option<Level> {
    match std::env::var("LMKG_LOG") {
        Ok(v) => match v.trim().to_ascii_lowercase().as_str() {
            "off" | "none" | "0" => None,
            "error" => Some(Level::Error),
            "warn" | "warning" => Some(Level::Warn),
            "debug" | "trace" => Some(Level::Debug),
            // Unrecognised values fall back to the default rather than
            // silencing operational logging.
            _ => Some(Level::Info),
        },
        Err(_) => Some(Level::Info),
    }
}

/// One structured event.
#[derive(Clone, Debug)]
pub struct Event {
    /// Monotonic sequence number (1-based, never reused within a log).
    pub seq: u64,
    /// Wall-clock milliseconds since the Unix epoch at record time.
    pub unix_ms: u64,
    /// Severity.
    pub level: Level,
    /// Machine-readable kind (e.g. `"shed"`, `"swap"`, `"retrain"`).
    pub kind: &'static str,
    /// Human-readable message.
    pub message: String,
}

/// A fixed-capacity ring of recent [`Event`]s plus per-kind counters.
///
/// Kinds listed at construction get a dedicated counter that is rendered
/// even when zero (so dashboards and smoke tests can assert the series
/// exists before the first event); unlisted kinds are still stored in the
/// ring and counted under `"other"`.
#[derive(Debug)]
pub struct EventLog {
    cap: usize,
    seq: AtomicU64,
    stderr_filter: Option<Level>,
    kinds: Vec<&'static str>,
    kind_counts: Vec<AtomicU64>,
    other_count: AtomicU64,
    level_counts: [AtomicU64; 4],
    ring: Mutex<VecDeque<Event>>,
}

impl EventLog {
    /// A ring holding at most `cap` events, with dedicated counters for
    /// `kinds`. The stderr filter is read from `LMKG_LOG` once, here.
    pub fn new(cap: usize, kinds: &[&'static str]) -> Self {
        let cap = cap.max(1);
        EventLog {
            cap,
            seq: AtomicU64::new(0),
            stderr_filter: stderr_filter_from_env(),
            kinds: kinds.to_vec(),
            kind_counts: kinds.iter().map(|_| AtomicU64::new(0)).collect(),
            other_count: AtomicU64::new(0),
            level_counts: [
                AtomicU64::new(0),
                AtomicU64::new(0),
                AtomicU64::new(0),
                AtomicU64::new(0),
            ],
            ring: Mutex::new(VecDeque::with_capacity(cap)),
        }
    }

    /// Record an event: count it, append it to the ring (evicting the
    /// oldest at capacity), and echo the message to stderr when `level`
    /// passes the `LMKG_LOG` filter.
    pub fn log(&self, level: Level, kind: &'static str, message: String) {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed) + 1;
        match self.kinds.iter().position(|k| *k == kind) {
            Some(i) => self.kind_counts[i].fetch_add(1, Ordering::Relaxed),
            None => self.other_count.fetch_add(1, Ordering::Relaxed),
        };
        self.level_counts[level as usize].fetch_add(1, Ordering::Relaxed);
        if self.stderr_filter.is_some_and(|max| level <= max) {
            eprintln!("{message}");
        }
        let unix_ms = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_millis() as u64)
            .unwrap_or(0);
        let event = Event {
            seq,
            unix_ms,
            level,
            kind,
            message,
        };
        let mut ring = self.ring.lock().unwrap_or_else(|e| e.into_inner());
        if ring.len() == self.cap {
            ring.pop_front();
        }
        ring.push_back(event);
    }

    /// Total number of events ever recorded (including evicted ones).
    pub fn total(&self) -> u64 {
        self.seq.load(Ordering::Relaxed)
    }

    /// The registered kinds and their counts, followed by `("other", n)`.
    pub fn kind_counts(&self) -> Vec<(&'static str, u64)> {
        let mut out: Vec<(&'static str, u64)> = self
            .kinds
            .iter()
            .zip(&self.kind_counts)
            .map(|(k, c)| (*k, c.load(Ordering::Relaxed)))
            .collect();
        out.push(("other", self.other_count.load(Ordering::Relaxed)));
        out
    }

    /// Event counts per level, most severe first.
    pub fn level_counts(&self) -> [(Level, u64); 4] {
        [
            (Level::Error, self.level_counts[0].load(Ordering::Relaxed)),
            (Level::Warn, self.level_counts[1].load(Ordering::Relaxed)),
            (Level::Info, self.level_counts[2].load(Ordering::Relaxed)),
            (Level::Debug, self.level_counts[3].load(Ordering::Relaxed)),
        ]
    }

    /// The events currently in the ring, oldest first.
    pub fn recent(&self) -> Vec<Event> {
        self.ring
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .cloned()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quiet_log(cap: usize, kinds: &[&'static str]) -> EventLog {
        // Tests must not depend on the ambient LMKG_LOG value; silence stderr.
        let mut log = EventLog::new(cap, kinds);
        log.stderr_filter = None;
        log
    }

    #[test]
    fn ring_evicts_oldest_at_capacity() {
        let log = quiet_log(3, &["shed"]);
        for i in 0..5 {
            log.log(Level::Info, "shed", format!("event {i}"));
        }
        let recent = log.recent();
        assert_eq!(recent.len(), 3);
        assert_eq!(recent[0].seq, 3, "the two oldest events were evicted");
        assert_eq!(recent[2].message, "event 4");
        assert_eq!(log.total(), 5);
    }

    #[test]
    fn kind_counters_track_registered_and_other() {
        let log = quiet_log(8, &["shed", "swap"]);
        log.log(Level::Warn, "shed", "s".into());
        log.log(Level::Info, "swap", "w".into());
        log.log(Level::Info, "swap", "w".into());
        log.log(Level::Debug, "mystery", "m".into());
        let counts = log.kind_counts();
        assert_eq!(counts, vec![("shed", 1), ("swap", 2), ("other", 1)]);
        let levels = log.level_counts();
        assert_eq!(levels[1], (Level::Warn, 1));
        assert_eq!(levels[2], (Level::Info, 2));
        assert_eq!(levels[3], (Level::Debug, 1));
    }

    #[test]
    fn level_ordering_matches_severity() {
        assert!(Level::Error < Level::Warn);
        assert!(Level::Warn < Level::Info);
        assert!(Level::Info < Level::Debug);
    }
}
