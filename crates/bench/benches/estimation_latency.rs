//! Criterion microbenchmarks of per-query estimation latency — the
//! statistically rigorous counterpart of the Fig. 11 tables. One benchmark
//! group per estimator, measured on star-2 and chain-3 queries over the
//! CI-scale LUBM-like dataset.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lmkg::supervised::{LmkgS, LmkgSConfig, QueryEncoder};
use lmkg::unsupervised::{LmkgU, LmkgUConfig};
use lmkg::CardinalityEstimator;
use lmkg_baselines::{CharacteristicSets, SumRdf, SumRdfConfig, WanderJoin, WanderJoinConfig};
use lmkg_data::workload::{self, WorkloadConfig};
use lmkg_data::{Dataset, LabeledQuery, Scale};
use lmkg_encoder::SgEncoder;
use lmkg_store::{counter, KnowledgeGraph, QueryShape};
use std::hint::black_box;

fn fixtures() -> (KnowledgeGraph, Vec<LabeledQuery>, Vec<LabeledQuery>) {
    let g = Dataset::LubmLike.generate(Scale::Ci, 7);
    let mut star_cfg = WorkloadConfig::test_default(QueryShape::Star, 2, 3);
    star_cfg.count = 50;
    let stars = workload::generate(&g, &star_cfg);
    let mut chain_cfg = WorkloadConfig::test_default(QueryShape::Chain, 3, 3);
    chain_cfg.count = 50;
    let chains = workload::generate(&g, &chain_cfg);
    (g, stars, chains)
}

fn bench_estimators(c: &mut Criterion) {
    let (g, stars, chains) = fixtures();

    // Exact counting oracle (reference point).
    let mut group = c.benchmark_group("estimation_latency");
    for (label, queries) in [("star2", &stars), ("chain3", &chains)] {
        group.bench_with_input(BenchmarkId::new("exact", label), queries, |b, qs| {
            b.iter(|| {
                for lq in qs.iter().take(10) {
                    black_box(counter::cardinality(&g, &lq.query));
                }
            })
        });
    }

    // CSET.
    let mut cset = CharacteristicSets::build(&g);
    for (label, queries) in [("star2", &stars), ("chain3", &chains)] {
        group.bench_with_input(BenchmarkId::new("cset", label), queries, |b, qs| {
            b.iter(|| {
                for lq in qs.iter().take(10) {
                    black_box(cset.estimate(&lq.query));
                }
            })
        });
    }

    // SUMRDF.
    let mut sumrdf = SumRdf::build(&g, SumRdfConfig::default());
    for (label, queries) in [("star2", &stars), ("chain3", &chains)] {
        group.bench_with_input(BenchmarkId::new("sumrdf", label), queries, |b, qs| {
            b.iter(|| {
                for lq in qs.iter().take(10) {
                    black_box(sumrdf.estimate(&lq.query));
                }
            })
        });
    }

    // WanderJoin (30 runs × 50 walks, the G-CARE protocol).
    let mut wj = WanderJoin::new(&g, WanderJoinConfig { runs: 30, walks_per_run: 50, seed: 1 });
    for (label, queries) in [("star2", &stars), ("chain3", &chains)] {
        group.bench_with_input(BenchmarkId::new("wj", label), queries, |b, qs| {
            b.iter(|| {
                for lq in qs.iter().take(5) {
                    black_box(wj.estimate(&lq.query));
                }
            })
        });
    }

    // LMKG-S (trained briefly; latency depends only on architecture).
    let train = workload::generate(&g, &WorkloadConfig::train_default(QueryShape::Star, 2, 200, 5));
    let enc = QueryEncoder::Sg(SgEncoder::capacity_for_size(g.num_nodes(), g.num_preds(), 2));
    let mut lmkg_s = LmkgS::new(enc, LmkgSConfig { hidden: vec![128, 128], epochs: 3, ..Default::default() });
    lmkg_s.train(&train);
    group.bench_with_input(BenchmarkId::new("lmkg-s", "star2"), &stars, |b, qs| {
        b.iter(|| {
            for lq in qs.iter().take(10) {
                black_box(lmkg_s.estimate(&lq.query));
            }
        })
    });

    // LMKG-U (one epoch; latency depends on particles × positions).
    let mut lmkg_u = LmkgU::new(
        &g,
        QueryShape::Star,
        2,
        LmkgUConfig {
            hidden: 48,
            blocks: 1,
            embed_dim: 16,
            epochs: 1,
            train_samples: 500,
            particles: 128,
            ..Default::default()
        },
    )
    .expect("domain fits");
    lmkg_u.train(&g);
    group.bench_with_input(BenchmarkId::new("lmkg-u", "star2"), &stars, |b, qs| {
        b.iter(|| {
            for lq in qs.iter().take(2) {
                black_box(lmkg_u.estimate(&lq.query));
            }
        })
    });

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_estimators
}
criterion_main!(benches);
