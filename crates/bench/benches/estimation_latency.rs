//! Criterion microbenchmarks of per-query estimation latency — the
//! statistically rigorous counterpart of the Fig. 11 tables. One benchmark
//! group per estimator, measured on star-2 and chain-3 queries over the
//! CI-scale LUBM-like dataset.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lmkg::supervised::{LmkgS, LmkgSConfig, QueryEncoder};
use lmkg::unsupervised::{LmkgU, LmkgUConfig};
use lmkg::CardinalityEstimator;
use lmkg_baselines::{CharacteristicSets, SumRdf, SumRdfConfig, WanderJoin, WanderJoinConfig};
use lmkg_data::workload::{self, WorkloadConfig};
use lmkg_data::{Dataset, LabeledQuery, Scale};
use lmkg_encoder::SgEncoder;
use lmkg_store::{counter, KnowledgeGraph, Query, QueryShape};
use std::hint::black_box;
use std::time::Instant;

fn fixtures() -> (KnowledgeGraph, Vec<LabeledQuery>, Vec<LabeledQuery>) {
    let g = Dataset::LubmLike.generate(Scale::Ci, 7);
    let mut star_cfg = WorkloadConfig::test_default(QueryShape::Star, 2, 3);
    star_cfg.count = 50;
    let stars = workload::generate(&g, &star_cfg);
    let mut chain_cfg = WorkloadConfig::test_default(QueryShape::Chain, 3, 3);
    chain_cfg.count = 50;
    let chains = workload::generate(&g, &chain_cfg);
    (g, stars, chains)
}

fn bench_estimators(c: &mut Criterion) {
    let (g, stars, chains) = fixtures();

    // Exact counting oracle (reference point).
    let mut group = c.benchmark_group("estimation_latency");
    for (label, queries) in [("star2", &stars), ("chain3", &chains)] {
        group.bench_with_input(BenchmarkId::new("exact", label), queries, |b, qs| {
            b.iter(|| {
                for lq in qs.iter().take(10) {
                    black_box(counter::cardinality(&g, &lq.query));
                }
            })
        });
    }

    // CSET.
    let cset = CharacteristicSets::build(&g);
    for (label, queries) in [("star2", &stars), ("chain3", &chains)] {
        group.bench_with_input(BenchmarkId::new("cset", label), queries, |b, qs| {
            b.iter(|| {
                for lq in qs.iter().take(10) {
                    black_box(cset.estimate(&lq.query));
                }
            })
        });
    }

    // SUMRDF.
    let sumrdf = SumRdf::build(&g, SumRdfConfig::default());
    for (label, queries) in [("star2", &stars), ("chain3", &chains)] {
        group.bench_with_input(BenchmarkId::new("sumrdf", label), queries, |b, qs| {
            b.iter(|| {
                for lq in qs.iter().take(10) {
                    black_box(sumrdf.estimate(&lq.query));
                }
            })
        });
    }

    // WanderJoin (30 runs × 50 walks, the G-CARE protocol).
    let wj = WanderJoin::new(
        &g,
        WanderJoinConfig {
            runs: 30,
            walks_per_run: 50,
            seed: 1,
        },
    );
    for (label, queries) in [("star2", &stars), ("chain3", &chains)] {
        group.bench_with_input(BenchmarkId::new("wj", label), queries, |b, qs| {
            b.iter(|| {
                for lq in qs.iter().take(5) {
                    black_box(wj.estimate(&lq.query));
                }
            })
        });
    }

    // LMKG-S (trained briefly; latency depends only on architecture).
    let train = workload::generate(&g, &WorkloadConfig::train_default(QueryShape::Star, 2, 200, 5));
    let enc = QueryEncoder::Sg(SgEncoder::capacity_for_size(g.num_nodes(), g.num_preds(), 2));
    let mut lmkg_s = LmkgS::new(
        enc,
        LmkgSConfig {
            hidden: vec![128, 128],
            epochs: 3,
            ..Default::default()
        },
    );
    lmkg_s.train(&train);
    group.bench_with_input(BenchmarkId::new("lmkg-s", "star2"), &stars, |b, qs| {
        b.iter(|| {
            for lq in qs.iter().take(10) {
                black_box(lmkg_s.estimate(&lq.query));
            }
        })
    });

    // LMKG-U (one epoch; latency depends on particles × positions).
    let mut lmkg_u = LmkgU::new(
        &g,
        QueryShape::Star,
        2,
        LmkgUConfig {
            hidden: 48,
            blocks: 1,
            embed_dim: 16,
            epochs: 1,
            train_samples: 500,
            particles: 128,
            ..Default::default()
        },
    )
    .expect("domain fits");
    lmkg_u.train(&g);
    group.bench_with_input(BenchmarkId::new("lmkg-u", "star2"), &stars, |b, qs| {
        b.iter(|| {
            for lq in qs.iter().take(2) {
                black_box(lmkg_u.estimate(&lq.query));
            }
        })
    });

    group.finish();
}

/// Batched vs per-query estimation on a 1 000-query star workload — the
/// headline comparison of the batched-inference refactor. Besides the
/// Criterion timings, a machine-readable `BENCH_batch.json` is written to
/// the workspace root so the perf trajectory is tracked across PRs.
fn bench_batched_vs_per_query(c: &mut Criterion) {
    let g = Dataset::LubmLike.generate(Scale::Ci, 7);
    let mut wl = WorkloadConfig::test_default(QueryShape::Star, 2, 13);
    wl.count = 1000;
    let stars: Vec<Query> = workload::generate(&g, &wl).into_iter().map(|lq| lq.query).collect();
    assert!(stars.len() >= 900, "need a ~1k-query workload, got {}", stars.len());

    let train = workload::generate(&g, &WorkloadConfig::train_default(QueryShape::Star, 2, 300, 5));
    let enc = QueryEncoder::Sg(SgEncoder::capacity_for_size(g.num_nodes(), g.num_preds(), 2));
    let mut lmkg_s = LmkgS::new(
        enc,
        LmkgSConfig {
            hidden: vec![128, 128],
            epochs: 3,
            ..Default::default()
        },
    );
    lmkg_s.train(&train);

    let mut group = c.benchmark_group("batched_vs_per_query");
    group.bench_with_input(BenchmarkId::new("lmkg-s-loop", "star2x1k"), &stars, |b, qs| {
        b.iter(|| {
            for q in qs.iter() {
                black_box(lmkg_s.estimate(q));
            }
        })
    });
    group.bench_with_input(BenchmarkId::new("lmkg-s-batch", "star2x1k"), &stars, |b, qs| {
        b.iter(|| black_box(lmkg_s.estimate_batch(qs)))
    });
    group.finish();

    // Direct measurement for the JSON artifact: best of `REPS` runs each.
    const REPS: usize = 5;
    let time_best = |f: &mut dyn FnMut()| -> f64 {
        (0..REPS)
            .map(|_| {
                let start = Instant::now();
                f();
                start.elapsed().as_secs_f64()
            })
            .fold(f64::INFINITY, f64::min)
    };
    let loop_secs = time_best(&mut || {
        for q in &stars {
            black_box(lmkg_s.estimate(q));
        }
    });
    let batch_secs = time_best(&mut || {
        black_box(lmkg_s.estimate_batch(&stars));
    });
    let speedup = loop_secs / batch_secs;
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);

    let json = format!(
        "{{\n  \"benchmark\": \"lmkg-s star2 estimation, {} queries\",\n  \"queries\": {},\n  \"per_query_loop_ms\": {:.3},\n  \"batched_ms\": {:.3},\n  \"speedup\": {:.2},\n  \"available_parallelism\": {}\n}}\n",
        stars.len(),
        stars.len(),
        loop_secs * 1e3,
        batch_secs * 1e3,
        speedup,
        cores
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_batch.json");
    std::fs::write(path, &json).expect("write BENCH_batch.json");
    println!(
        "batched_vs_per_query: loop {:.1} ms, batch {:.1} ms, speedup {speedup:.2}x on {cores} core(s) → {path}",
        loop_secs * 1e3,
        batch_secs * 1e3
    );
    // The batched win comes from fanning the per-batch matmuls out across
    // cores (the 1-row forwards of the per-query loop never cross
    // `parallel_flop_threshold`), so ≥2x is only expected where cores
    // exist; on a single-core machine both paths are compute-bound on
    // identical FLOPs and parity is the bar. Perf expectations are
    // *warnings*, not asserts — wall-clock on shared runners is too noisy
    // for a hard gate (the JSON artifact is the tracked record). Only a
    // severe regression, which indicates a real bug in the batched path,
    // aborts the bench.
    if cores >= 2 && speedup < 2.0 {
        eprintln!("WARNING: expected >=2x batched speedup on {cores} cores, measured {speedup:.2}x");
    }
    if cores < 2 && speedup < 1.0 {
        eprintln!("note: single core — batched and looped paths are compute-parity ({speedup:.2}x)");
    }
    if speedup < 0.5 {
        eprintln!(
            "WARNING: batched estimation much slower than the per-query loop ({speedup:.2}x) — \
             investigate unless the runner was oversubscribed"
        );
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_estimators, bench_batched_vs_per_query
}
criterion_main!(benches);
