//! Criterion microbenchmarks of the GEMM microkernels: the runtime-dispatched
//! AVX2+FMA path versus the scalar fallback on the dense shapes the LMKG
//! forwards actually issue, plus the canonical 256³ square. Besides the
//! Criterion timings, a machine-readable `BENCH_gemm.json` is written to the
//! workspace root so the per-core kernel trajectory is tracked across PRs.
//!
//! All measurements run the *single-threaded* blocked core (`parallel =
//! false`): threading is a separate lever measured by `estimation_latency`,
//! and dividing both kernels by the same thread count would only add noise
//! to the per-core ratio this bench exists to track.
//!
//! This bench is also a CI gate: if the SIMD kernel is available but slower
//! than scalar on the 256×256×256 shape, the process exits nonzero — a
//! blocked/packed SIMD path losing to its own fallback on the shape it is
//! tiled for indicates a kernel regression, not runner noise.
//!
//! A second sweep covers the small-M regime (m ∈ {1, 2, 4, 8}) where
//! `Matrix::matmul` routes to the pack-free GEMV path instead of the blocked
//! core, writing a `small_m` table into the same JSON — and gating that GEMV
//! is never slower than the blocked path at m = 1, the routing decision's
//! whole justification.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lmkg_nn::gemm::{self, Kernel};
use lmkg_nn::gemv;
use lmkg_nn::test_support::seeded_matrix;
use lmkg_nn::Matrix;
use std::hint::black_box;
use std::time::Instant;

/// (label, m, k, n): the CI gate square, a large square, the batched
/// LMKG-S-style forward (1k queries through a wide dense layer), and the
/// single-query forward the serving path issues per request.
const SHAPES: &[(&str, usize, usize, usize)] = &[
    ("256x256x256", 256, 256, 256),
    ("512x512x512", 512, 512, 512),
    ("batch-forward-1000x512x128", 1000, 512, 128),
    ("per-query-1x512x128", 1, 512, 128),
];

/// Row counts of the small-M sweep — the window the pack-free GEMV path
/// serves (`m <= GEMV_MAX_M`), which is exactly the per-query / micro-batch
/// regime of the serving layer.
const SMALL_M: &[usize] = &[1, 2, 4, 8];

/// (k, n) of the small-M sweep: the serving dense layer (512→128) and a
/// square mid-size layer.
const SMALL_KN: &[(usize, usize)] = &[(512, 128), (256, 256)];

fn bench_gemm_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm_kernels");
    for &(label, m, k, n) in SHAPES {
        let a = seeded_matrix(m, k, 1);
        let b = seeded_matrix(k, n, 2);
        for &kernel in gemm::available_kernels() {
            group.bench_with_input(BenchmarkId::new(kernel.name(), label), &(&a, &b), |bch, (a, b)| {
                bch.iter(|| black_box(gemm::matmul_with_kernel(kernel, a, b, false)))
            });
        }
    }
    group.finish();

    // The small-M sweep: pack-free GEMV vs the blocked/packed path on the
    // same inputs and kernel — the routing decision `Matrix::matmul` makes
    // automatically for m <= GEMV_MAX_M, measured explicitly.
    let mut small = c.benchmark_group("gemm_small_m");
    for &(k, n) in SMALL_KN {
        for &m in SMALL_M {
            let a = seeded_matrix(m, k, 1);
            let b = seeded_matrix(k, n, 2);
            for &kernel in gemm::available_kernels() {
                let label = format!("{m}x{k}x{n}");
                small.bench_with_input(
                    BenchmarkId::new(format!("gemv-{}", kernel.name()), &label),
                    &(&a, &b),
                    |bch, (a, b)| bch.iter(|| black_box(gemv::matmul_gemv_with_kernel(kernel, a, b))),
                );
                small.bench_with_input(
                    BenchmarkId::new(format!("blocked-{}", kernel.name()), &label),
                    &(&a, &b),
                    |bch, (a, b)| bch.iter(|| black_box(gemv::matmul_blocked_with_kernel(kernel, a, b))),
                );
            }
        }
    }
    small.finish();

    // Direct measurement for the JSON artifact and the CI gate: best of
    // `REPS` runs each, which is robust to scheduler noise on shared
    // runners (the minimum is the cleanest estimate of achievable time).
    const REPS: usize = 5;
    let time_best = |kernel: Kernel, a: &Matrix, b: &Matrix| -> f64 {
        (0..REPS)
            .map(|_| {
                let start = Instant::now();
                black_box(gemm::matmul_with_kernel(kernel, a, b, false));
                start.elapsed().as_secs_f64()
            })
            .fold(f64::INFINITY, f64::min)
    };

    let simd = gemm::available_kernels().iter().copied().find(|&k| k != Kernel::Scalar);
    let mut entries = Vec::new();
    let mut gate_speedup: Option<f64> = None;
    for &(label, m, k, n) in SHAPES {
        let a = seeded_matrix(m, k, 1);
        let b = seeded_matrix(k, n, 2);
        let flops = 2.0 * (m * k * n) as f64;
        let scalar_s = time_best(Kernel::Scalar, &a, &b);
        let simd_s = simd.map(|kern| time_best(kern, &a, &b));
        let speedup = simd_s.map(|s| scalar_s / s);
        if label == "256x256x256" {
            gate_speedup = speedup;
        }
        let (simd_ms, simd_gflops, speedup_str) = match simd_s {
            Some(s) => (
                format!("{:.3}", s * 1e3),
                format!("{:.2}", flops / s / 1e9),
                format!("{:.2}", scalar_s / s),
            ),
            None => ("null".into(), "null".into(), "null".into()),
        };
        println!(
            "gemm {label}: scalar {:.2} ms ({:.2} GFLOP/s), simd {simd_ms} ms ({simd_gflops} GFLOP/s), speedup {speedup_str}",
            scalar_s * 1e3,
            flops / scalar_s / 1e9,
        );
        entries.push(format!(
            "    {{\n      \"shape\": \"{label}\",\n      \"m\": {m},\n      \"k\": {k},\n      \"n\": {n},\n      \"scalar_ms\": {:.3},\n      \"scalar_gflops\": {:.2},\n      \"simd_ms\": {simd_ms},\n      \"simd_gflops\": {simd_gflops},\n      \"simd_over_scalar\": {speedup_str}\n    }}",
            scalar_s * 1e3,
            flops / scalar_s / 1e9,
        ));
    }

    // Small-M table for the JSON artifact, plus the m=1 routing gate. These
    // shapes finish in microseconds, so each sample is an inner loop of
    // `INNER` calls; best of `REPS` samples as above.
    const INNER: usize = 32;
    let time_small = |f: &dyn Fn() -> Matrix| -> f64 {
        (0..REPS)
            .map(|_| {
                let start = Instant::now();
                for _ in 0..INNER {
                    black_box(f());
                }
                start.elapsed().as_secs_f64() / INNER as f64
            })
            .fold(f64::INFINITY, f64::min)
    };
    let mut small_entries = Vec::new();
    let mut gate_failures = Vec::new();
    for &(k, n) in SMALL_KN {
        for &m in SMALL_M {
            let a = seeded_matrix(m, k, 1);
            let b = seeded_matrix(k, n, 2);
            for &kernel in gemm::available_kernels() {
                let gemv_s = time_small(&|| gemv::matmul_gemv_with_kernel(kernel, &a, &b));
                let blocked_s = time_small(&|| gemv::matmul_blocked_with_kernel(kernel, &a, &b));
                let ratio = blocked_s / gemv_s;
                println!(
                    "small-m {m}x{k}x{n} [{}]: gemv {:.4} ms, blocked {:.4} ms, gemv is {ratio:.2}x",
                    kernel.name(),
                    gemv_s * 1e3,
                    blocked_s * 1e3,
                );
                small_entries.push(format!(
                    "    {{ \"m\": {m}, \"k\": {k}, \"n\": {n}, \"kernel\": \"{}\", \"gemv_ms\": {:.4}, \"blocked_ms\": {:.4}, \"blocked_over_gemv\": {ratio:.2} }}",
                    kernel.name(),
                    gemv_s * 1e3,
                    blocked_s * 1e3,
                ));
                // The routing gate: at m = 1 the pack-free path must never
                // lose to packing a full B for a single output row. 5%
                // headroom absorbs timer noise on shared runners.
                if m == 1 && gemv_s > blocked_s * 1.05 {
                    gate_failures.push(format!(
                        "1x{k}x{n} [{}]: gemv {:.4} ms > blocked {:.4} ms",
                        kernel.name(),
                        gemv_s * 1e3,
                        blocked_s * 1e3
                    ));
                }
            }
        }
    }

    let json = format!(
        "{{\n  \"benchmark\": \"single-threaded GEMM microkernels, best of {REPS}\",\n  \"simd_kernel\": {},\n  \"available_parallelism\": {},\n  \"shapes\": [\n{}\n  ],\n  \"small_m\": [\n{}\n  ]\n}}\n",
        simd.map_or("null".into(), |k| format!("\"{}\"", k.name())),
        std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1),
        entries.join(",\n"),
        small_entries.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_gemm.json");
    std::fs::write(path, &json).expect("write BENCH_gemm.json");
    println!("wrote {path}");

    // CI gate (see module docs). ≥2x is the acceptance target; <1x fails.
    if let Some(speedup) = gate_speedup {
        if speedup < 2.0 {
            eprintln!("WARNING: expected >=2x SIMD speedup on 256x256x256, measured {speedup:.2}x");
        }
        assert!(
            speedup >= 1.0,
            "SIMD GEMM slower than scalar on 256x256x256 ({speedup:.2}x) — kernel regression"
        );
    }
    assert!(
        gate_failures.is_empty(),
        "GEMV slower than the blocked path at m=1 — small-M routing regression:\n{}",
        gate_failures.join("\n")
    );
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_gemm_kernels
}
criterion_main!(benches);
