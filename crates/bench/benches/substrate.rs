//! Criterion microbenchmarks of the substrates: store lookups, exact
//! counting, encodings, and neural-network kernels. These bound the
//! throughput of everything the experiment harness does.

use criterion::{criterion_group, criterion_main, Criterion};
use lmkg_data::{Dataset, Scale};
use lmkg_encoder::{EncodingKind, PatternBoundEncoder, SgEncoder, TermCodec};
use lmkg_nn::layers::{Dense, Layer, Relu, Sequential};
use lmkg_nn::tensor::Matrix;
use lmkg_store::{counter, NodeId, NodeTerm, PredId, PredTerm, Query, QueryShape, TriplePattern, VarId};
use std::hint::black_box;

fn bench_store(c: &mut Criterion) {
    let g = Dataset::LubmLike.generate(Scale::Ci, 7);
    let mut group = c.benchmark_group("store");

    group.bench_function("count_single_sp", |b| {
        b.iter(|| {
            for i in 0..100u32 {
                let s = NodeId(i % g.num_nodes() as u32);
                let p = PredId(i % g.num_preds() as u32);
                black_box(g.count_single(Some(s), Some(p), None));
            }
        })
    });

    let star = Query::new(vec![
        TriplePattern::new(
            NodeTerm::Var(VarId(0)),
            PredTerm::Bound(PredId(0)),
            NodeTerm::Var(VarId(1)),
        ),
        TriplePattern::new(
            NodeTerm::Var(VarId(0)),
            PredTerm::Bound(PredId(5)),
            NodeTerm::Var(VarId(2)),
        ),
    ]);
    group.bench_function("exact_star2", |b| b.iter(|| black_box(counter::cardinality(&g, &star))));

    let chain = Query::new(vec![
        TriplePattern::new(
            NodeTerm::Var(VarId(0)),
            PredTerm::Bound(PredId(5)),
            NodeTerm::Var(VarId(1)),
        ),
        TriplePattern::new(
            NodeTerm::Var(VarId(1)),
            PredTerm::Bound(PredId(0)),
            NodeTerm::Var(VarId(2)),
        ),
    ]);
    group.bench_function("exact_chain2", |b| {
        b.iter(|| black_box(counter::cardinality(&g, &chain)))
    });

    group.bench_function("walk_counts_k3", |b| b.iter(|| black_box(counter::walk_counts(&g, 3))));
    group.finish();
}

fn bench_encoders(c: &mut Criterion) {
    let g = Dataset::LubmLike.generate(Scale::Ci, 7);
    let star = Query::new(vec![
        TriplePattern::new(
            NodeTerm::Var(VarId(0)),
            PredTerm::Bound(PredId(0)),
            NodeTerm::Bound(NodeId(3)),
        ),
        TriplePattern::new(
            NodeTerm::Var(VarId(0)),
            PredTerm::Bound(PredId(5)),
            NodeTerm::Var(VarId(1)),
        ),
    ]);
    let sg = SgEncoder::capacity_for_size(g.num_nodes(), g.num_preds(), 2);
    let codec = TermCodec::new(EncodingKind::Binary, g.num_nodes(), g.num_preds());
    let pb = PatternBoundEncoder::new(codec, QueryShape::Star, 2);

    let mut group = c.benchmark_group("encoders");
    let mut sg_buf = vec![0.0f32; sg.width()];
    group.bench_function("sg_encode", |b| {
        b.iter(|| sg.encode(black_box(&star), &mut sg_buf).unwrap())
    });
    let mut pb_buf = vec![0.0f32; pb.width()];
    group.bench_function("pattern_bound_encode", |b| {
        b.iter(|| pb.encode(black_box(&star), &mut pb_buf).unwrap())
    });
    group.finish();
}

fn bench_nn(c: &mut Criterion) {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(0);
    let mut model = Sequential::new();
    model.push(Dense::new_he(&mut rng, 256, 256));
    model.push(Relu::new());
    model.push(Dense::new_he(&mut rng, 256, 256));
    model.push(Relu::new());
    model.push(Dense::new_xavier(&mut rng, 256, 1));
    let x = Matrix::from_fn(64, 256, |r, c| ((r * 31 + c) % 7) as f32 / 7.0);

    let mut group = c.benchmark_group("nn");
    group.bench_function("mlp_forward_64x256", |b| b.iter(|| black_box(model.forward(&x, false))));
    group.bench_function("mlp_train_step_64x256", |b| {
        b.iter(|| {
            let y = model.forward(&x, true);
            let grad = y.map(|v| v * 2.0 / 64.0);
            model.backward(&grad);
            model.zero_grads();
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_store, bench_encoders, bench_nn
}
criterion_main!(benches);
