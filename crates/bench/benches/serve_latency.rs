//! Serving-layer benchmark: micro-batched vs per-request serving of the
//! same workload at the same offered load, through the full `lmkg-serve`
//! path (request-line formatting → protocol parse → admission →
//! micro-batcher → `estimate_batch` → reply). Writes the machine-readable
//! comparison to `BENCH_serve.json` at the workspace root, mirroring
//! `BENCH_batch.json` from the batched-inference PR.

use criterion::{criterion_group, criterion_main, Criterion};
use lmkg::framework::{Grouping, Lmkg, LmkgConfig, ModelType};
use lmkg::supervised::LmkgSConfig;
use lmkg_data::workload::{self, WorkloadConfig};
use lmkg_data::{Dataset, Scale};
use lmkg_serve::{loadgen, BatchConfig, LoadgenConfig, Reply, Request};
use lmkg_store::{Query, QueryShape};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Duration;

fn mixed_workload(graph: &lmkg_store::KnowledgeGraph, per_cell: usize) -> Vec<Query> {
    let mut queries = Vec::new();
    for (shape, size) in [(QueryShape::Star, 2), (QueryShape::Chain, 3), (QueryShape::Star, 3)] {
        let mut wl = WorkloadConfig::test_default(shape, size, 17);
        wl.count = per_cell;
        queries.extend(workload::generate(graph, &wl).into_iter().map(|lq| lq.query));
    }
    queries
}

/// Protocol-layer overhead: what one request/reply line costs to format and
/// parse. This is the fixed per-request tax the wire adds on top of
/// estimation; it bounds how much of the micro-batching win the protocol
/// itself could ever eat.
fn bench_protocol(c: &mut Criterion) {
    let g = Dataset::LubmLike.generate(Scale::Ci, 7);
    let queries = mixed_workload(&g, 30);
    let lines = loadgen::request_lines(&queries, &g, 64);
    let reply_line = Reply::Estimate {
        id: "q17".into(),
        estimate: 12345.678,
        micros: 93.5,
    }
    .to_string();

    let mut group = c.benchmark_group("serve_protocol");
    group.bench_function("request_parse", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % lines.len();
            black_box(Request::parse(&lines[i]).expect("well-formed request"))
        })
    });
    group.bench_function("reply_parse", |b| {
        b.iter(|| black_box(Reply::parse(&reply_line).expect("well-formed reply")))
    });
    group.finish();
}

/// The headline comparison, written to `BENCH_serve.json`.
fn bench_serving_modes(_c: &mut Criterion) {
    let g = Arc::new(Dataset::LubmLike.generate(Scale::Ci, 7));
    let queries = mixed_workload(&g, 120);
    assert!(
        queries.len() >= 200,
        "need a few hundred distinct queries, got {}",
        queries.len()
    );

    // Training depth is irrelevant for latency; architecture is what costs.
    let cfg = LmkgConfig {
        model_type: ModelType::Supervised,
        grouping: Grouping::BySize,
        shapes: vec![QueryShape::Star, QueryShape::Chain],
        sizes: vec![2, 3],
        queries_per_size: 300,
        s_config: LmkgSConfig {
            hidden: vec![256, 256],
            epochs: 3,
            ..Default::default()
        },
        u_config: Default::default(),
        workload_seed: 5,
    };
    let t_train = std::time::Instant::now();
    let estimator = Arc::new(Lmkg::build(&g, &cfg));
    let train_time = t_train.elapsed();

    let loadgen_cfg = LoadgenConfig {
        qps: 0.0, // auto-calibrate: offer 2x the direct per-query service rate
        requests: 4000,
        warmup: 300,
        tenant: None,
        batch: BatchConfig {
            window: Duration::from_millis(2),
            max_batch: 64,
            queue_depth: 1024,
            // 4 workers: with the estimator lock gone, the saturated
            // comparison against the 1-worker run below measures how far
            // concurrent forwards scale on this machine's cores.
            workers: 4,
            obs: true,
        },
    };
    let report = loadgen::compare(
        &g,
        Arc::clone(&estimator) as lmkg_serve::SharedEstimator,
        &queries,
        &loadgen_cfg,
    );

    println!("{}", report.per_request);
    println!("{}", report.micro_batched);
    println!("{}", report.saturated_1w);
    println!("{}", report.saturated_multi);
    println!(
        "serve_latency: micro-batched vs per-request throughput gain {:.2}x at {:.0} offered qps \
         on {} core(s)",
        report.throughput_gain, report.offered_qps, report.available_parallelism
    );
    println!(
        "serve_latency: worker scaling ({} workers / 1 worker, concurrent forwards) {:.2}x",
        report.workers, report.worker_scaling
    );

    // The observability A/B: the same saturated configuration with stage
    // tracing on vs off, best-of-3 per side so one noisy round cannot fail
    // the gate on its own.
    let obs = loadgen::obs_overhead(&g, Arc::clone(&estimator) as _, &queries, &loadgen_cfg, 3);
    println!("{}", obs.instrumented);
    println!("{}", obs.no_obs);
    println!(
        "serve_latency: observability overhead at saturation {:.2}% ({:.0} qps instrumented vs {:.0} qps without)",
        obs.overhead_pct, obs.instrumented.achieved_qps, obs.no_obs.achieved_qps
    );

    // Two tenants at equal offered load, the hot one behind a tiny
    // admission quota: per-tenant achieved QPS and p95, plus the isolation
    // verdict (the hot tenant sheds, the cool tenant never does).
    let mt = loadgen::multi_tenant(&g, Arc::clone(&estimator) as _, &queries, &loadgen_cfg);
    println!("{}", mt.hot);
    println!("{}", mt.cool);
    println!(
        "serve_latency: two tenants at {:.0} qps each (hot quota {}): quota isolation {}",
        mt.offered_qps,
        mt.hot_quota,
        if mt.isolated { "held" } else { "VIOLATED" }
    );

    // Cold start: publish the trained set into a throwaway store, load the
    // newest generation back, and replay the workload through both replicas
    // — retrain-ms vs load-ms and the bitwise-parity verdict land in the
    // report alongside the serving comparison.
    let cold_dir = std::env::temp_dir().join(format!("lmkg-bench-coldstart-{}", std::process::id()));
    let cold = loadgen::cold_start(
        &g,
        Arc::clone(&estimator),
        train_time,
        &queries,
        &loadgen_cfg,
        &cold_dir,
    )
    .expect("cold-start benchmark runs");
    let _ = std::fs::remove_dir_all(&cold_dir);
    println!(
        "serve_latency: cold start — train {:.0}ms vs load {:.2}ms ({:.0}x faster), snapshot {} bytes, parity={}",
        cold.train_ms, cold.load_ms, cold.speedup, cold.snapshot_bytes, cold.parity
    );

    let json = format!(
        "{{\n  \"benchmark\": \"lmkg-serve serving + observability overhead\",\n  \
         \"comparison\": {},\n  \"observability\": {},\n  \"multi_tenant\": {},\n  \"cold_start\": {}\n}}\n",
        report.to_json().trim_end(),
        obs.to_json(),
        mt.to_json(),
        cold.to_json()
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json");
    std::fs::write(path, json).expect("write BENCH_serve.json");
    println!("serve_latency: wrote {path}");

    // Like BENCH_batch.json, perf expectations are warnings, not asserts —
    // shared-runner wall clocks are too noisy for a hard gate. A micro-batched
    // *loss* would indicate a real serving-path bug, so it is called out.
    if report.throughput_gain < 1.0 {
        eprintln!(
            "WARNING: micro-batched serving did not beat per-request serving \
             ({:.2}x) — investigate unless the runner was oversubscribed",
            report.throughput_gain
        );
    }
    // Quota isolation is a correctness property, not a perf number: the
    // cool tenant sits behind a quota its offered load can never fill, so
    // any shed there means admission control leaked across namespaces.
    assert_eq!(
        mt.cool.shed, 0,
        "cool tenant shed {} requests while the hot tenant was saturated — quota isolation violated",
        mt.cool.shed
    );
    if !mt.isolated {
        eprintln!(
            "WARNING: hot tenant never shed under {:.0} qps at quota {} — \
             the isolation verdict is vacuous this run",
            mt.offered_qps, mt.hot_quota
        );
    }
    // Cold start is a correctness property, not a perf number: a reloaded
    // replica answering even one request differently means the snapshot
    // format lost information. The speedup, by contrast, is wall clock —
    // warn rather than gate on shared runners.
    assert!(
        cold.parity,
        "cold-started replica diverged from the trained one over {} requests",
        cold.parity_requests
    );
    if cold.speedup < 10.0 {
        eprintln!(
            "WARNING: cold start only {:.1}x faster than retraining (train {:.0}ms, load {:.2}ms) — \
             expected >= 10x unless the runner was oversubscribed",
            cold.speedup, cold.train_ms, cold.load_ms
        );
    }
    // The observability layer is a handful of relaxed atomic bumps and two
    // clock reads per batch; if it costs more than 5% of saturated
    // throughput (after best-of-3 smoothing on both sides), something on
    // the hot path regressed. This one IS a hard gate.
    assert!(
        obs.overhead_pct <= 5.0,
        "observability overhead {:.2}% exceeds the 5% budget \
         ({:.0} qps instrumented vs {:.0} qps with --no-obs)",
        obs.overhead_pct,
        obs.instrumented.achieved_qps,
        obs.no_obs.achieved_qps
    );
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_protocol, bench_serving_modes
}
criterion_main!(benches);
