//! # lmkg-bench
//!
//! The experiment harness regenerating every table and figure of the LMKG
//! paper's evaluation (§VIII). Each binary prints one table/figure; `run_all`
//! executes the whole suite and writes the measurements EXPERIMENTS.md
//! records.
//!
//! Scale is controlled by the `LMKG_SCALE` environment variable:
//! `ci` (tiny, seconds per figure), `bench` (default — small but meaningful),
//! `default` (≈2% of paper sizes), `paper` (full sizes, hours on a laptop).
//! `LMKG_SEED` overrides the master seed, `LMKG_QUERIES` the per-cell
//! workload size.

#![warn(missing_docs)]

pub mod competitors;
pub mod report;
pub mod workloads;

use lmkg_data::Scale;

/// Harness-wide configuration derived from the environment.
#[derive(Debug, Clone)]
pub struct BenchConfig {
    /// Dataset scale.
    pub scale: Scale,
    /// Master seed.
    pub seed: u64,
    /// Query sizes (paper: 2, 3, 5, 8).
    pub sizes: Vec<usize>,
    /// Test queries per (dataset, shape, size) cell (paper: 600).
    pub queries_per_cell: usize,
    /// Training queries per (shape, size) for the supervised models.
    pub train_queries: usize,
    /// LMKG-S epochs (paper: 200).
    pub s_epochs: usize,
    /// LMKG-U epochs (paper: 5).
    pub u_epochs: usize,
    /// LMKG-U training tuples.
    pub u_samples: usize,
    /// LMKG-U sampling particles at estimation time.
    pub particles: usize,
    /// Hidden width for LMKG-S (paper: 512; scaled down with the data).
    pub s_hidden: usize,
    /// Hidden width for LMKG-U.
    pub u_hidden: usize,
}

impl BenchConfig {
    /// Reads `LMKG_SCALE` / `LMKG_SEED` / `LMKG_QUERIES` from the environment.
    pub fn from_env() -> Self {
        let scale_name = std::env::var("LMKG_SCALE").unwrap_or_else(|_| "bench".into());
        let seed = std::env::var("LMKG_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(42u64);
        let mut cfg = match scale_name.as_str() {
            "ci" => Self::ci(seed),
            "default" => Self::default_scale(seed),
            "paper" => Self::paper(seed),
            _ => Self::bench(seed),
        };
        if let Some(q) = std::env::var("LMKG_QUERIES").ok().and_then(|s| s.parse().ok()) {
            cfg.queries_per_cell = q;
        }
        cfg
    }

    /// Tiny smoke-test configuration.
    pub fn ci(seed: u64) -> Self {
        Self {
            scale: Scale::Ci,
            seed,
            sizes: vec![2, 3],
            queries_per_cell: 60,
            train_queries: 300,
            s_epochs: 30,
            u_epochs: 5,
            u_samples: 2500,
            particles: 128,
            s_hidden: 64,
            u_hidden: 32,
        }
    }

    /// The default experiment configuration for a 2-core laptop: full query
    /// size range, statistically useful workloads, minutes per figure.
    pub fn bench(seed: u64) -> Self {
        Self {
            scale: Scale::Ci,
            seed,
            sizes: vec![2, 3, 5, 8],
            queries_per_cell: 200,
            train_queries: 800,
            s_epochs: 60,
            u_epochs: 8,
            u_samples: 6000,
            particles: 192,
            s_hidden: 128,
            u_hidden: 48,
        }
    }

    /// ≈2% of the paper's dataset sizes.
    pub fn default_scale(seed: u64) -> Self {
        Self {
            scale: Scale::Default,
            seed,
            sizes: vec![2, 3, 5, 8],
            queries_per_cell: 600,
            train_queries: 2000,
            s_epochs: 120,
            u_epochs: 5,
            u_samples: 20_000,
            particles: 256,
            s_hidden: 256,
            u_hidden: 64,
        }
    }

    /// The paper's stated sizes (slow!).
    pub fn paper(seed: u64) -> Self {
        Self {
            scale: Scale::Paper,
            seed,
            sizes: vec![2, 3, 5, 8],
            queries_per_cell: 600,
            train_queries: 4000,
            s_epochs: 200,
            u_epochs: 5,
            u_samples: 100_000,
            particles: 512,
            s_hidden: 512,
            u_hidden: 128,
        }
    }
}
