//! Fig. 7: accuracy of the grouping strategies — specialized vs size-grouped
//! vs type-grouped vs single model — per result-size bucket, for star and
//! chain queries (LMKG-S, 50 epochs, same configuration everywhere).

use lmkg::framework::{Grouping, Lmkg, LmkgConfig, ModelType};
use lmkg::metrics::{result_size_bucket, GroupedQErrors};
use lmkg::supervised::LmkgSConfig;
use lmkg_bench::{report, BenchConfig};
use lmkg_data::workload::{self, WorkloadConfig};
use lmkg_data::Dataset;
use lmkg_store::QueryShape;

fn main() {
    let cfg = BenchConfig::from_env();
    println!(
        "LMKG Fig. 7 — grouping strategies (LUBM-like, 50 epochs, scale {:?})",
        cfg.scale
    );
    let g = Dataset::LubmLike.generate(cfg.scale, cfg.seed);

    let strategies: [(&str, Grouping); 4] = [
        ("Specialized", Grouping::Specialized),
        ("SizeGrouped", Grouping::BySize),
        ("TypeGrouped", Grouping::ByType),
        ("SingleModel", Grouping::Single),
    ];

    // Paper: "We stop after 50 epochs, where every model consists of two
    // layers and the same configuration." The framework gives every grouping
    // the same SG encoder and the same per-cell training budget, so the only
    // variable is the grouping itself.
    let mk_cfg = |grouping| LmkgConfig {
        model_type: ModelType::Supervised,
        grouping,
        shapes: vec![QueryShape::Star, QueryShape::Chain],
        sizes: cfg.sizes.clone(),
        queries_per_size: cfg.train_queries,
        s_config: LmkgSConfig {
            hidden: vec![cfg.s_hidden, cfg.s_hidden],
            epochs: 50,
            seed: cfg.seed,
            ..Default::default()
        },
        u_config: Default::default(),
        workload_seed: cfg.seed,
    };

    // The paper's Fig. 7 shows fitting quality under a fixed per-model
    // budget: "the specialized model overfits the queries and produces the
    // best estimates", while the single model spreads one budget over every
    // cell. Evaluate on the full per-cell workloads (with the training
    // seeds, so each model's training set is a prefix of its cells).
    let eval_cells: Vec<(QueryShape, Vec<lmkg_data::LabeledQuery>)> = {
        let base = mk_cfg(Grouping::Single);
        let mut cells = Vec::new();
        for &shape in &base.shapes {
            for &k in &base.sizes {
                let wl = WorkloadConfig::train_default(
                    shape,
                    k,
                    base.queries_per_size,
                    base.workload_seed ^ ((k as u64) << 8),
                );
                cells.push((shape, workload::generate(&g, &wl)));
            }
        }
        cells
    };

    for shape in [QueryShape::Star, QueryShape::Chain] {
        let mut per_strategy: Vec<(String, GroupedQErrors)> = Vec::new();
        for (name, grouping) in strategies {
            let lmkg = Lmkg::build(&g, &mk_cfg(grouping));
            let mut grouped = GroupedQErrors::new();
            for (cell_shape, queries) in eval_cells.iter().filter(|(s, _)| *s == shape) {
                let _ = cell_shape;
                for lq in queries {
                    let est = lmkg.estimate_query(&lq.query);
                    grouped.record(result_size_bucket(lq.cardinality, 5), est, lq.cardinality);
                }
            }
            per_strategy.push((name.to_string(), grouped));
        }

        // One row per bucket, one column per strategy.
        let buckets: Vec<usize> = per_strategy[0].1.stats().iter().map(|(b, _)| *b).collect();
        let mut rows = Vec::new();
        for &b in &buckets {
            let mut row = vec![format!("[5^{b}, 5^{})", b + 1)];
            for (_, grouped) in &per_strategy {
                let v = grouped
                    .stats()
                    .iter()
                    .find(|(bb, _)| *bb == b)
                    .map(|(_, s)| report::fmt(s.mean))
                    .unwrap_or_else(|| "-".into());
                row.push(v);
            }
            rows.push(row);
        }
        let headers: Vec<String> = std::iter::once("result size".to_string())
            .chain(per_strategy.iter().map(|(n, _)| format!("{n} avg q-err")))
            .collect();
        let headers_ref: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
        report::print_table(&format!("Fig. 7 — {shape} queries"), &headers_ref, &rows);
    }
    println!("\nexpected shape: Specialized best, Size/Type grouped close behind,\nSingleModel worst (paper §VIII-A, Fig. 7).");
}
