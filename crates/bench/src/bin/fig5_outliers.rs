//! Fig. 5: impact of outliers on LMKG-S (star queries).
//!
//! "even if we remove the top-10 outliers from the query data, we achieve a
//! higher accuracy of the model. This trend continues when a larger fraction
//! of the outliers is removed." We additionally ablate the §VIII-C
//! improvement: an outlier buffer list storing the top cardinalities.

use lmkg::supervised::{LmkgS, LmkgSConfig, QueryEncoder};
use lmkg::QErrorStats;
use lmkg_bench::{report, BenchConfig};
use lmkg_data::workload::{self, WorkloadConfig};
use lmkg_data::Dataset;
use lmkg_encoder::SgEncoder;
use lmkg_store::QueryShape;

fn main() {
    let cfg = BenchConfig::from_env();
    println!(
        "LMKG Fig. 5 — impact of outliers on LMKG-S (star queries, scale {:?})",
        cfg.scale
    );

    let g = Dataset::LubmLike.generate(cfg.scale, cfg.seed);
    let size = 2usize;
    let wl = WorkloadConfig::train_default(QueryShape::Star, size, cfg.train_queries.max(600), cfg.seed);
    let mut data = workload::generate(&g, &wl);
    data.sort_by_key(|lq| std::cmp::Reverse(lq.cardinality)); // outliers first

    let eval = |data: &[lmkg_data::LabeledQuery], buffer: usize, seed: u64| -> QErrorStats {
        let enc = QueryEncoder::Sg(SgEncoder::capacity_for_size(g.num_nodes(), g.num_preds(), size));
        let mut model = LmkgS::new(
            enc,
            LmkgSConfig {
                hidden: vec![cfg.s_hidden],
                epochs: cfg.s_epochs,
                outlier_buffer: buffer,
                seed,
                ..Default::default()
            },
        );
        model.train(data);
        let pairs: Vec<(f64, u64)> = data
            .iter()
            .map(|lq| (model.predict(&lq.query).unwrap_or(1.0), lq.cardinality))
            .collect();
        QErrorStats::from_pairs(pairs).expect("non-empty")
    };

    let mut rows = Vec::new();
    for removed in [0usize, 10, 25, 50] {
        let kept = &data[removed.min(data.len())..];
        let stats = eval(kept, 0, cfg.seed);
        rows.push(vec![
            format!("top-{removed} removed"),
            report::fmt(stats.mean),
            report::fmt(stats.median),
            report::fmt(stats.max),
        ]);
    }
    // §VIII-C improvement: keep all data, store outliers on the side.
    let buffered = eval(&data, 25, cfg.seed);
    rows.push(vec![
        "outlier buffer (25)".into(),
        report::fmt(buffered.mean),
        report::fmt(buffered.median),
        report::fmt(buffered.max),
    ]);

    report::print_table(
        "Fig. 5 — LMKG-S accuracy vs outlier handling (in-sample, star size 2)",
        &["configuration", "mean q-err", "median", "max"],
        &rows,
    );
    println!("\nexpected shape: accuracy improves monotonically as more outliers are\nremoved; the buffer-list variant recovers accuracy without dropping data.");
}
