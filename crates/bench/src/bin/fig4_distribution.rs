//! Fig. 4: query-cardinality distribution per dataset (averaged over query
//! sizes). The paper's takeaway: "the vast amount of queries have a small
//! cardinality" with a heavy outlier tail.

use lmkg_bench::{report, BenchConfig};
use lmkg_data::workload::{self, WorkloadConfig};
use lmkg_data::Dataset;
use lmkg_store::{LogHistogram, QueryShape};

fn main() {
    let cfg = BenchConfig::from_env();
    println!("LMKG Fig. 4 — query cardinality distribution (scale {:?})", cfg.scale);

    for d in Dataset::ALL {
        let g = d.generate(cfg.scale, cfg.seed);
        let mut hist = LogHistogram::new(5);
        // The paper plots the *natural* (unbalanced) distribution of query
        // cardinalities, averaged over the different query sizes and shapes.
        for shape in [QueryShape::Star, QueryShape::Chain] {
            for &size in &cfg.sizes {
                let mut wl = WorkloadConfig::test_default(shape, size, cfg.seed ^ ((size as u64) << 21));
                wl.count = cfg.queries_per_cell;
                for lq in workload::generate(&g, &wl) {
                    hist.add(lq.cardinality);
                }
            }
        }
        let total = hist.total().max(1);
        let rows: Vec<Vec<String>> = hist
            .counts
            .iter()
            .enumerate()
            .map(|(b, &c)| {
                vec![
                    hist.label(b),
                    c.to_string(),
                    format!("{:.1}%", 100.0 * c as f64 / total as f64),
                    "#".repeat((60 * c / total) as usize),
                ]
            })
            .collect();
        report::print_table(
            &format!("Fig. 4 — {} ({} queries)", d.name(), total),
            &["bucket", "queries", "share", "histogram"],
            &rows,
        );
    }
}
