//! Fig. 10: average q-error per query type (star vs chain, pooled over
//! sizes) on all three datasets. LMKG-U is dropped for YAGO-like as in the
//! paper.
//!
//! Expected shape: LMKG-S and LMKG-U best on both types; WJ and MSCN-1k
//! competitive; LMKG-U slightly weaker on the type with more distinct term
//! values.

use lmkg_bench::{competitors, report, workloads, BenchConfig};
use lmkg_data::Dataset;
use lmkg_store::QueryShape;

fn main() {
    let cfg = BenchConfig::from_env();
    println!("LMKG Fig. 10 — avg q-error vs query type (scale {:?})", cfg.scale);

    for d in Dataset::ALL {
        let g = d.generate(cfg.scale, cfg.seed);
        let include_u = d != Dataset::YagoLike;
        eprintln!("[{}] training estimators (LMKG-U: {include_u})…", d.name());
        let mut ests = competitors::build_all(&g, &cfg, include_u);
        let cells = workloads::test_cells(&g, &cfg);

        let mut rows = Vec::new();
        for shape in [QueryShape::Star, QueryShape::Chain] {
            let queries: Vec<lmkg_data::LabeledQuery> = cells
                .iter()
                .filter(|c| c.shape == shape)
                .flat_map(|c| c.queries.iter().cloned())
                .collect();
            if queries.is_empty() {
                continue;
            }
            let mut row = vec![shape.to_string()];
            for est in ests.iter_mut() {
                let stats = report::accuracy(est.as_mut(), &queries);
                row.push(report::fmt(stats.mean));
            }
            rows.push(row);
        }
        let headers: Vec<String> = std::iter::once("type".to_string())
            .chain(ests.iter().map(|e| e.name().to_string()))
            .collect();
        let headers_ref: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
        report::print_table(&format!("Fig. 10 — {} (avg q-error)", d.name()), &headers_ref, &rows);
    }
}
