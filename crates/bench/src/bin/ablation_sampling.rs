//! Ablation (paper §VII-A / §VIII-C): random-walk vs exact-uniform training
//! sampling for LMKG-U. The paper names "the quality of the samples" as the
//! main cause of inaccurate LMKG-U estimation and leaves "a more optimal
//! sampling approach" to future work — the uniform tuple-space sampler is
//! that approach, implementable exactly on our substrate.

use lmkg::unsupervised::{LmkgU, LmkgUConfig};
use lmkg::QErrorStats;
use lmkg_bench::{report, BenchConfig};
use lmkg_data::workload::{self, WorkloadConfig};
use lmkg_data::{Dataset, SamplingStrategy};
use lmkg_store::QueryShape;

fn main() {
    let cfg = BenchConfig::from_env();
    println!(
        "LMKG ablation — RW vs uniform training sampling for LMKG-U (scale {:?})",
        cfg.scale
    );

    let mut rows = Vec::new();
    for d in [Dataset::SwdfLike, Dataset::LubmLike] {
        let g = d.generate(cfg.scale, cfg.seed);
        let mut wl = WorkloadConfig::test_default(QueryShape::Star, 2, cfg.seed + 3);
        wl.count = cfg.queries_per_cell;
        let queries = workload::generate(&g, &wl);

        for strategy in [SamplingStrategy::RandomWalk, SamplingStrategy::Uniform] {
            let mut model = LmkgU::new(
                &g,
                QueryShape::Star,
                2,
                LmkgUConfig {
                    hidden: cfg.u_hidden,
                    blocks: 1,
                    embed_dim: 32,
                    epochs: cfg.u_epochs,
                    train_samples: cfg.u_samples,
                    particles: cfg.particles,
                    strategy,
                    seed: cfg.seed,
                    ..Default::default()
                },
            )
            .expect("domain fits at bench scale");
            model.train(&g);
            let pairs: Vec<(f64, u64)> = queries
                .iter()
                .filter_map(|lq| model.estimate_query(&lq.query).ok().map(|e| (e, lq.cardinality)))
                .collect();
            let stats = QErrorStats::from_pairs(pairs).expect("non-empty");
            rows.push(vec![
                d.name().to_string(),
                format!("{strategy:?}"),
                report::fmt(stats.mean),
                report::fmt(stats.median),
                report::fmt(stats.p95),
                report::fmt(stats.max),
            ]);
        }
    }
    report::print_table(
        "LMKG-U training-sampling ablation (star size 2)",
        &["dataset", "strategy", "mean q-err", "median", "p95", "max"],
        &rows,
    );
    println!("\nreading: RW training matches the (RW-generated) evaluation workload's\nterm distribution and tends to win on mean/median; exact-uniform sampling\ncovers the whole tuple space and tends to cut the worst case (max q-error).\nThe paper's §VII-A/§VIII-C discussion of sample quality is exactly this\ntension.");
}
