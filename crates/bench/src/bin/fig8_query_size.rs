//! Fig. 8: average q-error as the number of joins (query size) grows, for
//! all nine estimators, on SWDF-like and LUBM-like.
//!
//! Expected shape: the baselines degrade with more joins; LMKG-S stays flat;
//! LMKG-U degrades only slightly.

use lmkg_bench::{competitors, report, workloads, BenchConfig};
use lmkg_data::Dataset;

fn main() {
    let cfg = BenchConfig::from_env();
    println!("LMKG Fig. 8 — avg q-error vs query size (scale {:?})", cfg.scale);

    for d in [Dataset::SwdfLike, Dataset::LubmLike] {
        let g = d.generate(cfg.scale, cfg.seed);
        eprintln!("[{}] training estimators…", d.name());
        let mut ests = competitors::build_all(&g, &cfg, true);
        let cells = workloads::test_cells(&g, &cfg);

        let mut rows = Vec::new();
        for &size in &cfg.sizes {
            let queries: Vec<lmkg_data::LabeledQuery> = cells
                .iter()
                .filter(|c| c.size == size)
                .flat_map(|c| c.queries.iter().cloned())
                .collect();
            if queries.is_empty() {
                continue;
            }
            let mut row = vec![size.to_string()];
            for est in ests.iter_mut() {
                let stats = report::accuracy(est.as_mut(), &queries);
                row.push(report::fmt(stats.mean));
            }
            rows.push(row);
        }

        let headers: Vec<String> = std::iter::once("size".to_string())
            .chain(ests.iter().map(|e| e.name().to_string()))
            .collect();
        let headers_ref: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
        report::print_table(&format!("Fig. 8 — {} (avg q-error)", d.name()), &headers_ref, &rows);
    }
}
