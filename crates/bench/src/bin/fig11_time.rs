//! Fig. 11: estimation time (ms per query) by query size and by query type,
//! on SWDF-like and LUBM-like. For sampling approaches the time covers the
//! full 30-run estimate, matching the paper's measurement ("we measure the
//! time of generating 30 samples since G-CARE needs 30 samples for producing
//! an accurate final estimate").
//!
//! Expected shape: CSET fastest, LMKG-S next, sampling approaches grow with
//! query size, LMKG-U in the same range as the samplers.

use lmkg_bench::{competitors, report, workloads, BenchConfig};
use lmkg_data::Dataset;
use lmkg_store::QueryShape;

fn main() {
    let cfg = BenchConfig::from_env();
    println!("LMKG Fig. 11 — estimation time in ms (scale {:?})", cfg.scale);

    for d in [Dataset::SwdfLike, Dataset::LubmLike] {
        let g = d.generate(cfg.scale, cfg.seed);
        eprintln!("[{}] training estimators…", d.name());
        let mut ests = competitors::build_all(&g, &cfg, true);
        let cells = workloads::test_cells(&g, &cfg);

        // (a) by query size.
        let mut rows = Vec::new();
        for &size in &cfg.sizes {
            let queries: Vec<lmkg_data::LabeledQuery> = cells
                .iter()
                .filter(|c| c.size == size)
                .flat_map(|c| c.queries.iter().cloned())
                .collect();
            if queries.is_empty() {
                continue;
            }
            let mut row = vec![size.to_string()];
            for est in ests.iter_mut() {
                let (_, ms) = report::measure(est.as_mut(), &queries);
                row.push(format!("{ms:.3}"));
            }
            rows.push(row);
        }
        let headers: Vec<String> = std::iter::once("size".to_string())
            .chain(ests.iter().map(|e| e.name().to_string()))
            .collect();
        let headers_ref: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
        report::print_table(
            &format!("Fig. 11 — {} by query size (ms/query)", d.name()),
            &headers_ref,
            &rows,
        );

        // (b) by query type.
        let mut rows = Vec::new();
        for shape in [QueryShape::Star, QueryShape::Chain] {
            let queries: Vec<lmkg_data::LabeledQuery> = cells
                .iter()
                .filter(|c| c.shape == shape)
                .flat_map(|c| c.queries.iter().cloned())
                .collect();
            let mut row = vec![shape.to_string()];
            for est in ests.iter_mut() {
                let (_, ms) = report::measure(est.as_mut(), &queries);
                row.push(format!("{ms:.3}"));
            }
            rows.push(row);
        }
        report::print_table(
            &format!("Fig. 11 — {} by query type (ms/query)", d.name()),
            &headers_ref,
            &rows,
        );
    }
}
