//! Fig. 9: average q-error per query *result size* bucket (powers of 5) on
//! all three datasets. LMKG-U is dropped for YAGO-like, exactly as in the
//! paper ("we remove LMKG-U for the comparison with YAGO", §VIII).
//!
//! Expected shape: LMKG-S wins the small buckets but is hurt by outliers in
//! the large ones; LMKG-U is the most stable overall; CSET/WJ catch up on
//! large result sizes.

use lmkg::metrics::{result_size_bucket, GroupedQErrors};
use lmkg_bench::{competitors, report, workloads, BenchConfig};
use lmkg_data::Dataset;

fn main() {
    let cfg = BenchConfig::from_env();
    println!("LMKG Fig. 9 — avg q-error vs query result size (scale {:?})", cfg.scale);

    for d in Dataset::ALL {
        let g = d.generate(cfg.scale, cfg.seed);
        let include_u = d != Dataset::YagoLike;
        eprintln!("[{}] training estimators (LMKG-U: {include_u})…", d.name());
        let mut ests = competitors::build_all(&g, &cfg, include_u);
        let cells = workloads::test_cells(&g, &cfg);

        // One GroupedQErrors per estimator.
        let mut grouped: Vec<GroupedQErrors> = ests.iter().map(|_| GroupedQErrors::new()).collect();
        for cell in &cells {
            for lq in &cell.queries {
                let bucket = result_size_bucket(lq.cardinality, 5);
                for (est, acc) in ests.iter_mut().zip(grouped.iter_mut()) {
                    acc.record(bucket, est.estimate(&lq.query), lq.cardinality);
                }
            }
        }

        let buckets: Vec<usize> = grouped[0].stats().iter().map(|(b, _)| *b).collect();
        let mut rows = Vec::new();
        for &b in &buckets {
            let mut row = vec![format!("[5^{b}, 5^{})", b + 1)];
            for acc in &grouped {
                let v = acc
                    .stats()
                    .iter()
                    .find(|(bb, _)| *bb == b)
                    .map(|(_, s)| report::fmt(s.mean))
                    .unwrap_or_else(|| "-".into());
                row.push(v);
            }
            rows.push(row);
        }
        let headers: Vec<String> = std::iter::once("result size".to_string())
            .chain(ests.iter().map(|e| e.name().to_string()))
            .collect();
        let headers_ref: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
        report::print_table(&format!("Fig. 9 — {} (avg q-error)", d.name()), &headers_ref, &rows);
    }
}
