//! Fig. 6: training time vs accuracy — max and average q-error measured
//! after checkpoints of 1/2/5/10 epochs (LMKG-U) and 20/50/100/200 epochs
//! (LMKG-S), on a LUBM sample.

use lmkg::supervised::{LmkgS, LmkgSConfig, QueryEncoder};
use lmkg::unsupervised::{LmkgU, LmkgUConfig};
use lmkg::QErrorStats;
use lmkg_bench::{report, BenchConfig};
use lmkg_data::workload::{self, WorkloadConfig};
use lmkg_data::{Dataset, SamplingStrategy};
use lmkg_encoder::SgEncoder;
use lmkg_store::QueryShape;

fn main() {
    let cfg = BenchConfig::from_env();
    println!("LMKG Fig. 6 — epochs vs accuracy (LUBM sample, scale {:?})", cfg.scale);
    let g = Dataset::LubmLike.generate(cfg.scale, cfg.seed);
    let size = 2usize;
    let eval_queries = {
        let mut wl = WorkloadConfig::test_default(QueryShape::Star, size, cfg.seed + 1);
        wl.count = cfg.queries_per_cell;
        workload::generate(&g, &wl)
    };

    // (a) LMKG-U: checkpoints at 1, 2, 5, 10 epochs.
    let u_checkpoints = [1usize, 2, 5, 10];
    let mut u = LmkgU::new(
        &g,
        QueryShape::Star,
        size,
        LmkgUConfig {
            hidden: cfg.u_hidden,
            blocks: 1,
            embed_dim: 32,
            epochs: 0,
            train_samples: cfg.u_samples,
            particles: cfg.particles,
            strategy: SamplingStrategy::RandomWalk,
            seed: cfg.seed,
            ..Default::default()
        },
    )
    .expect("domain fits at bench scale");
    let tuples = u.sample_training_tuples(&g);
    let mut opt = u.make_optimizer();
    let mut rows_u = Vec::new();
    let mut done = 0usize;
    for &ck in &u_checkpoints {
        for _ in done..ck {
            u.train_epoch(&tuples, &mut opt);
        }
        done = ck;
        let pairs: Vec<(f64, u64)> = eval_queries
            .iter()
            .filter_map(|lq| u.estimate_query(&lq.query).ok().map(|e| (e, lq.cardinality)))
            .collect();
        let stats = QErrorStats::from_pairs(pairs).expect("non-empty");
        rows_u.push(vec![ck.to_string(), report::fmt(stats.mean), report::fmt(stats.max)]);
    }
    report::print_table(
        "Fig. 6a — LMKG-U (star size 2)",
        &["epochs", "avg q-err", "max q-err"],
        &rows_u,
    );

    // (b) LMKG-S: checkpoints at 20, 50, 100, 200 epochs.
    let s_checkpoints = [20usize, 50, 100, 200];
    let train = workload::generate(
        &g,
        &WorkloadConfig::train_default(QueryShape::Star, size, cfg.train_queries, cfg.seed),
    );
    let enc = QueryEncoder::Sg(SgEncoder::capacity_for_size(g.num_nodes(), g.num_preds(), size));
    let mut s = LmkgS::new(
        enc,
        LmkgSConfig {
            hidden: vec![cfg.s_hidden, cfg.s_hidden],
            epochs: 0,
            seed: cfg.seed,
            ..Default::default()
        },
    );
    s.prepare(&train);
    let mut s_opt = s.make_optimizer();
    let mut rows_s = Vec::new();
    let mut done = 0usize;
    for &ck in &s_checkpoints {
        for _ in done..ck {
            s.train_epoch(&train, &mut s_opt);
        }
        done = ck;
        let pairs: Vec<(f64, u64)> = eval_queries
            .iter()
            .filter_map(|lq| s.predict(&lq.query).ok().map(|e| (e, lq.cardinality)))
            .collect();
        let stats = QErrorStats::from_pairs(pairs).expect("non-empty");
        rows_s.push(vec![ck.to_string(), report::fmt(stats.mean), report::fmt(stats.max)]);
    }
    report::print_table(
        "Fig. 6b — LMKG-S (star size 2)",
        &["epochs", "avg q-err", "max q-err"],
        &rows_s,
    );
    println!("\nexpected shape: both models reach satisfactory average q-error after a\nreasonable number of epochs (paper picks 5 for LMKG-U, 200 for LMKG-S).");
}
