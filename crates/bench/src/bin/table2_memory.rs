//! Table II: memory consumption of the approaches — LMKG-U and LMKG-S per
//! query size (k = 2, 3, 5), SUMRDF and CSET complete summaries, MSCN-0/1k.
//! LMKG-U reports "X" when the dataset's term domain exceeds its guard (the
//! YAGO case).

use lmkg::supervised::{LmkgS, LmkgSConfig, QueryEncoder};
use lmkg::unsupervised::{LmkgU, LmkgUConfig};
use lmkg::CardinalityEstimator;
use lmkg_baselines::{CharacteristicSets, Mscn, MscnConfig, SumRdf, SumRdfConfig};
use lmkg_bench::{report, BenchConfig};
use lmkg_data::Dataset;
use lmkg_encoder::SgEncoder;
use lmkg_store::QueryShape;

fn human(bytes: usize) -> String {
    if bytes >= 1 << 20 {
        format!("{:.1}MB", bytes as f64 / (1 << 20) as f64)
    } else if bytes >= 1 << 10 {
        format!("{:.1}KB", bytes as f64 / (1 << 10) as f64)
    } else {
        format!("{bytes}B")
    }
}

fn main() {
    let cfg = BenchConfig::from_env();
    println!("LMKG Table II — memory consumption (scale {:?})", cfg.scale);
    println!("(models are *untrained* instantiations — parameter memory is fixed by architecture)");

    let ks = [2usize, 3, 5];
    let mut rows = Vec::new();
    for d in Dataset::ALL {
        let g = d.generate(cfg.scale, cfg.seed);
        let mut row = vec![d.name().to_string()];

        // LMKG-U per k (star models; chain models have identical shape).
        for &k in &ks {
            // The default guard (500K distinct nodes). At CI/bench scales
            // every dataset fits; at Scale::Paper the YAGO-like domain (≈12M
            // entities) exceeds it and the column reads X, as in the paper.
            let u_cfg = LmkgUConfig {
                hidden: cfg.u_hidden,
                blocks: 1,
                embed_dim: 32,
                ..Default::default()
            };
            row.push(match LmkgU::new(&g, QueryShape::Star, k, u_cfg) {
                Ok(u) => human(CardinalityEstimator::memory_bytes(&u)),
                Err(_) => "X".into(),
            });
        }
        // LMKG-S per k (SG encoding).
        for &k in &ks {
            let enc = QueryEncoder::Sg(SgEncoder::capacity_for_size(g.num_nodes(), g.num_preds(), k));
            let s = LmkgS::new(
                enc,
                LmkgSConfig {
                    hidden: vec![cfg.s_hidden, cfg.s_hidden],
                    ..Default::default()
                },
            );
            row.push(human(CardinalityEstimator::memory_bytes(&s)));
        }
        // Summaries and MSCN.
        row.push(human(SumRdf::build(&g, SumRdfConfig::default()).memory_bytes()));
        row.push(human(CharacteristicSets::build(&g).memory_bytes()));
        row.push(human(
            Mscn::new(
                &g,
                MscnConfig {
                    samples: 0,
                    hidden: cfg.s_hidden.min(128),
                    ..Default::default()
                },
            )
            .memory_bytes(),
        ));
        row.push(human(
            Mscn::new(
                &g,
                MscnConfig {
                    samples: 1000,
                    hidden: cfg.s_hidden.min(128),
                    ..Default::default()
                },
            )
            .memory_bytes(),
        ));
        rows.push(row);
    }

    report::print_table(
        "Table II — memory",
        &[
            "dataset", "U k=2", "U k=3", "U k=5", "S k=2", "S k=3", "S k=5", "SUMRDF", "CSET", "MSCN-0", "MSCN-1k",
        ],
        &rows,
    );
    println!("\nexpected shape: LMKG-S small and nearly flat in k; LMKG-U one to two\norders larger, growing with the term domain (X once the domain exceeds\nthe 500K guard — the paper-scale YAGO case); CSET small on clean schemas\n(LUBM) and larger on heterogeneous data.");
}
