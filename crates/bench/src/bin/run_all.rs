//! Runs the complete experiment suite (Table I, Figs. 4–11, Table II) by
//! invoking each experiment binary in sequence, teeing output to
//! `results/<name>.txt`. Use `LMKG_SCALE`/`LMKG_SEED`/`LMKG_QUERIES` to
//! control the configuration.

use std::fs;
use std::io::Write;
use std::process::Command;

const EXPERIMENTS: [&str; 11] = [
    "table1_datasets",
    "fig4_distribution",
    "fig5_outliers",
    "fig6_epochs",
    "fig7_grouping",
    "fig8_query_size",
    "fig9_result_size",
    "fig10_query_type",
    "fig11_time",
    "table2_memory",
    "ablation_sampling",
];

fn main() {
    let exe = std::env::current_exe().expect("current exe path");
    let bin_dir = exe.parent().expect("bin dir").to_path_buf();
    let results = std::path::Path::new("results");
    fs::create_dir_all(results).expect("create results dir");

    let mut failures = Vec::new();
    for name in EXPERIMENTS {
        println!("=== running {name} ===");
        let started = std::time::Instant::now();
        let output = Command::new(bin_dir.join(name)).envs(std::env::vars()).output();
        match output {
            Ok(out) => {
                let path = results.join(format!("{name}.txt"));
                let mut f = fs::File::create(&path).expect("create result file");
                f.write_all(&out.stdout).expect("write results");
                print!("{}", String::from_utf8_lossy(&out.stdout));
                if !out.status.success() {
                    eprintln!("{}", String::from_utf8_lossy(&out.stderr));
                    failures.push(name);
                }
                println!(
                    "--- {name} finished in {:.1}s → {} ---\n",
                    started.elapsed().as_secs_f64(),
                    path.display()
                );
            }
            Err(e) => {
                eprintln!("failed to launch {name}: {e}");
                failures.push(name);
            }
        }
    }
    if failures.is_empty() {
        println!("all {} experiments completed; outputs in results/", EXPERIMENTS.len());
    } else {
        eprintln!("FAILED experiments: {failures:?}");
        std::process::exit(1);
    }
}
