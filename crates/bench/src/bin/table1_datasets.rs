//! Table I: experiment and dataset specifications.
//!
//! Prints the generated datasets' statistics next to the paper's numbers so
//! the scale factor is explicit.

use lmkg_bench::{report, BenchConfig};
use lmkg_data::Dataset;
use lmkg_store::GraphStats;

fn main() {
    let cfg = BenchConfig::from_env();
    println!(
        "LMKG Table I — dataset specifications (scale {:?}, seed {})",
        cfg.scale, cfg.seed
    );
    println!(
        "query topologies: Chain, Star; query sizes: {:?}; result-size buckets: powers of 5",
        cfg.sizes
    );

    let mut rows = Vec::new();
    for d in Dataset::ALL {
        let g = d.generate(cfg.scale, cfg.seed);
        let s = GraphStats::compute(&g);
        let p = d.paper_stats();
        rows.push(vec![
            d.name().to_string(),
            s.triples.to_string(),
            s.entities.to_string(),
            s.predicates.to_string(),
            format!("~{}K", p.triples / 1000),
            format!("~{}K", p.entities / 1000),
            p.predicates.to_string(),
            format!("{:.2}", s.entities as f64 / s.triples as f64),
            format!("{:.2}", p.entities as f64 / p.triples as f64),
        ]);
    }
    report::print_table(
        "Table I (ours vs paper)",
        &[
            "dataset",
            "triples",
            "entities",
            "preds",
            "paper-triples",
            "paper-entities",
            "paper-preds",
            "ent/tri",
            "paper-ent/tri",
        ],
        &rows,
    );
}
