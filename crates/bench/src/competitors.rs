//! Construction and training of the full estimator line-up of §VIII:
//! impr, jsub, sumrdf, wj, cset, mscn-0, mscn-1k, LMKG-U, LMKG-S —
//! in the paper's legend order.

use crate::BenchConfig;
use lmkg::supervised::{LmkgS, LmkgSConfig, QueryEncoder};
use lmkg::unsupervised::{LmkgU, LmkgUConfig};
use lmkg::CardinalityEstimator;
use lmkg_baselines::{
    CharacteristicSets, Impr, ImprConfig, Jsub, JsubConfig, Mscn, MscnConfig, SumRdf, SumRdfConfig, WanderJoin,
    WanderJoinConfig,
};
use lmkg_data::workload::{self, WorkloadConfig};
use lmkg_data::LabeledQuery;
use lmkg_encoder::SgEncoder;
use lmkg_store::{KnowledgeGraph, Query, QueryShape};

/// Training workloads per (shape, size) — shared by LMKG-S and MSCN
/// ("always train on the same queries as LMKG-S", §VIII).
pub struct TrainPools {
    /// (shape, size) → labeled queries.
    pub pools: Vec<((QueryShape, usize), Vec<LabeledQuery>)>,
}

impl TrainPools {
    /// Generates the pools for the configured sizes.
    pub fn generate(graph: &KnowledgeGraph, cfg: &BenchConfig) -> Self {
        let mut pools = Vec::new();
        for &shape in &[QueryShape::Star, QueryShape::Chain] {
            for &k in &cfg.sizes {
                let wl = WorkloadConfig::train_default(shape, k, cfg.train_queries, cfg.seed ^ ((k as u64) << 13));
                pools.push(((shape, k), workload::generate(graph, &wl)));
            }
        }
        Self { pools }
    }

    /// All training queries flattened (for MSCN and combined LMKG-S models).
    pub fn all(&self) -> Vec<LabeledQuery> {
        self.pools.iter().flat_map(|(_, v)| v.iter().cloned()).collect()
    }

    /// Queries of one size (both shapes).
    pub fn by_size(&self, k: usize) -> Vec<LabeledQuery> {
        self.pools
            .iter()
            .filter(|((_, size), _)| *size == k)
            .flat_map(|(_, v)| v.iter().cloned())
            .collect()
    }
}

/// LMKG-S in the paper's main configuration: SG-Encoding + query-size
/// grouping (§VIII-B). Routes a query to the smallest-capacity model that
/// fits it.
pub struct SizeRoutedLmkgS {
    models: Vec<(usize, LmkgS)>,
}

impl SizeRoutedLmkgS {
    /// Trains one model per size from the shared pools.
    pub fn train(graph: &KnowledgeGraph, cfg: &BenchConfig, pools: &TrainPools) -> Self {
        let mut models = Vec::new();
        for &k in &cfg.sizes {
            let enc = QueryEncoder::Sg(SgEncoder::capacity_for_size(graph.num_nodes(), graph.num_preds(), k));
            let mut model = LmkgS::new(
                enc,
                LmkgSConfig {
                    hidden: vec![cfg.s_hidden, cfg.s_hidden],
                    epochs: cfg.s_epochs,
                    seed: cfg.seed ^ k as u64,
                    ..Default::default()
                },
            );
            model.train(&pools.by_size(k));
            models.push((k, model));
        }
        Self { models }
    }

    /// Index of the smallest-capacity model that fits `size` — the single
    /// routing rule shared by the per-query and batched paths.
    fn route_idx(&self, size: usize) -> Option<usize> {
        self.models
            .iter()
            .enumerate()
            .filter(|(_, (k, _))| *k >= size)
            .min_by_key(|(_, (k, _))| *k)
            .map(|(idx, _)| idx)
    }

    fn route(&self, size: usize) -> Option<&LmkgS> {
        self.route_idx(size).map(|idx| &self.models[idx].1)
    }
}

impl CardinalityEstimator for SizeRoutedLmkgS {
    fn name(&self) -> &str {
        "LMKG-S"
    }

    fn estimate(&self, query: &Query) -> f64 {
        match self.route(query.size()) {
            Some(model) => model.predict(query).unwrap_or(1.0),
            None => 1.0,
        }
    }

    /// Batched override: the slice is grouped by routed model (smallest
    /// capacity that fits each query) and every group runs one forward.
    fn estimate_batch(&self, queries: &[Query]) -> Vec<f64> {
        let mut out = vec![1.0f64; queries.len()];
        // Group query indices by the model `route` would pick.
        let mut grouped: Vec<Vec<usize>> = vec![Vec::new(); self.models.len()];
        for (i, q) in queries.iter().enumerate() {
            if let Some(idx) = self.route_idx(q.size()) {
                grouped[idx].push(i);
            }
        }
        for (idx, group) in grouped.iter().enumerate() {
            if group.is_empty() {
                continue;
            }
            let refs: Vec<&Query> = group.iter().map(|&i| &queries[i]).collect();
            for (&i, result) in group.iter().zip(self.models[idx].1.predict_batch(&refs)) {
                out[i] = result.unwrap_or(1.0);
            }
        }
        out
    }

    fn memory_bytes(&self) -> usize {
        self.models.iter().map(|(_, m)| m.memory_bytes()).sum()
    }
}

/// LMKG-U in the paper's configuration: pattern-bound encoding with
/// embeddings, one model per (type, size) (§VIII-B).
pub struct TypeSizeRoutedLmkgU {
    models: Vec<((QueryShape, usize), LmkgU)>,
}

impl TypeSizeRoutedLmkgU {
    /// Trains the per-(type, size) models. Returns `None` when the node
    /// domain exceeds the guard (the YAGO case, where the paper drops
    /// LMKG-U entirely).
    pub fn train(graph: &KnowledgeGraph, cfg: &BenchConfig) -> Option<Self> {
        let mut models = Vec::new();
        for &shape in &[QueryShape::Star, QueryShape::Chain] {
            for &k in &cfg.sizes {
                let u_cfg = LmkgUConfig {
                    hidden: cfg.u_hidden,
                    blocks: 1,
                    embed_dim: 32,
                    epochs: cfg.u_epochs,
                    train_samples: cfg.u_samples,
                    particles: cfg.particles,
                    seed: cfg.seed ^ ((k as u64) << 3) ^ matches!(shape, QueryShape::Chain) as u64,
                    ..Default::default()
                };
                match LmkgU::new(graph, shape, k, u_cfg) {
                    Ok(mut model) => {
                        model.train(graph);
                        models.push(((shape, k), model));
                    }
                    Err(_) => return None,
                }
            }
        }
        Some(Self { models })
    }

    /// Index of the first model covering the query's (type, size) —
    /// `Single` queries route to either family of size-1 models. The single
    /// routing rule shared by the per-query and batched paths.
    fn route_idx(&self, query: &Query) -> Option<usize> {
        let shape = query.shape();
        let size = query.size();
        self.models
            .iter()
            .position(|((s, k), _)| (*s == shape || (shape == QueryShape::Single && *k == 1)) && *k == size)
    }
}

impl CardinalityEstimator for TypeSizeRoutedLmkgU {
    fn name(&self) -> &str {
        "LMKG-U"
    }

    fn estimate(&self, query: &Query) -> f64 {
        match self.route_idx(query) {
            Some(idx) => self.models[idx].1.estimate_query(query).unwrap_or(1.0),
            None => 1.0,
        }
    }

    /// Batched override: the slice is grouped by the (type, size) model
    /// that covers it; every group runs one batched sampling pass.
    fn estimate_batch(&self, queries: &[Query]) -> Vec<f64> {
        let mut out = vec![1.0f64; queries.len()];
        let mut grouped: Vec<Vec<usize>> = vec![Vec::new(); self.models.len()];
        for (i, q) in queries.iter().enumerate() {
            if let Some(idx) = self.route_idx(q) {
                grouped[idx].push(i);
            }
        }
        for (idx, group) in grouped.iter().enumerate() {
            if group.is_empty() {
                continue;
            }
            let refs: Vec<&Query> = group.iter().map(|&i| &queries[i]).collect();
            for (&i, result) in group.iter().zip(self.models[idx].1.estimate_query_batch(&refs)) {
                out[i] = result.unwrap_or(1.0);
            }
        }
        out
    }

    fn memory_bytes(&self) -> usize {
        self.models.iter().map(|(_, m)| m.memory_bytes()).sum()
    }
}

/// The full estimator line-up over one graph, in the paper's legend order.
/// `include_lmkg_u = false` reproduces the paper's YAGO setting.
pub fn build_all<'g>(
    graph: &'g KnowledgeGraph,
    cfg: &BenchConfig,
    include_lmkg_u: bool,
) -> Vec<Box<dyn CardinalityEstimator + 'g>> {
    let pools = TrainPools::generate(graph, cfg);
    let mut out: Vec<Box<dyn CardinalityEstimator + 'g>> = vec![Box::new(Impr::new(
        graph,
        ImprConfig {
            runs: 30,
            samples_per_run: 20,
            burn_in: 12,
            seed: cfg.seed,
        },
    ))];
    out.push(Box::new(Jsub::new(
        graph,
        JsubConfig {
            runs: 30,
            walks_per_run: 50,
            seed: cfg.seed,
        },
    )));
    out.push(Box::new(SumRdf::build(graph, SumRdfConfig::default())));
    out.push(Box::new(WanderJoin::new(
        graph,
        WanderJoinConfig {
            runs: 30,
            walks_per_run: 50,
            seed: cfg.seed,
        },
    )));
    out.push(Box::new(CharacteristicSets::build(graph)));

    let all_train = pools.all();
    for samples in [0usize, 1000] {
        let mut mscn = Mscn::new(
            graph,
            MscnConfig {
                samples,
                hidden: cfg.s_hidden.min(128),
                epochs: cfg.s_epochs,
                seed: cfg.seed,
                ..Default::default()
            },
        );
        mscn.train(&all_train);
        out.push(Box::new(mscn));
    }

    if include_lmkg_u {
        if let Some(u) = TypeSizeRoutedLmkgU::train(graph, cfg) {
            out.push(Box::new(u));
        }
    }
    out.push(Box::new(SizeRoutedLmkgS::train(graph, cfg, &pools)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use lmkg_data::{Dataset, Scale};

    #[test]
    fn build_all_produces_the_lineup() {
        let g = Dataset::LubmLike.generate(Scale::Ci, 1);
        let mut cfg = BenchConfig::ci(1);
        cfg.sizes = vec![2];
        cfg.train_queries = 120;
        cfg.s_epochs = 3;
        cfg.u_epochs = 1;
        cfg.u_samples = 500;
        let ests = build_all(&g, &cfg, true);
        let names: Vec<&str> = ests.iter().map(|e| e.name()).collect();
        assert_eq!(
            names,
            vec!["impr", "jsub", "sumrdf", "wj", "cset", "mscn-0", "mscn-1k", "LMKG-U", "LMKG-S"]
        );
    }

    #[test]
    fn size_routing_picks_smallest_fit() {
        let g = Dataset::LubmLike.generate(Scale::Ci, 1);
        let mut cfg = BenchConfig::ci(1);
        cfg.sizes = vec![2, 3];
        cfg.train_queries = 120;
        cfg.s_epochs = 2;
        let pools = TrainPools::generate(&g, &cfg);
        let s = SizeRoutedLmkgS::train(&g, &cfg, &pools);
        assert!(s.route(2).is_some());
        assert!(s.route(3).is_some());
        assert!(s.route(4).is_none());
    }

    #[test]
    fn routed_wrappers_batch_matches_per_query() {
        use lmkg_data::workload::{self, WorkloadConfig};
        let g = Dataset::LubmLike.generate(Scale::Ci, 1);
        let mut cfg = BenchConfig::ci(1);
        cfg.sizes = vec![2, 3];
        cfg.train_queries = 120;
        cfg.s_epochs = 2;
        cfg.u_epochs = 1;
        cfg.u_samples = 500;

        let mut queries: Vec<Query> = Vec::new();
        for (shape, size) in [(QueryShape::Star, 2), (QueryShape::Chain, 3), (QueryShape::Star, 4)] {
            let wl = WorkloadConfig::test_default(shape, size, 5);
            queries.extend(workload::generate(&g, &wl).into_iter().take(6).map(|lq| lq.query));
        }

        let pools = TrainPools::generate(&g, &cfg);
        let s = SizeRoutedLmkgS::train(&g, &cfg, &pools);
        let looped: Vec<f64> = queries.iter().map(|q| s.estimate(q)).collect();
        assert_eq!(s.estimate_batch(&queries), looped, "LMKG-S routing parity");

        let u = TypeSizeRoutedLmkgU::train(&g, &cfg).expect("domain fits");
        let looped: Vec<f64> = queries.iter().map(|q| u.estimate(q)).collect();
        assert_eq!(u.estimate_batch(&queries), looped, "LMKG-U routing parity");
    }

    #[test]
    fn train_pools_cover_all_cells() {
        let g = Dataset::LubmLike.generate(Scale::Ci, 1);
        let mut cfg = BenchConfig::ci(1);
        cfg.sizes = vec![2, 3];
        cfg.train_queries = 50;
        let pools = TrainPools::generate(&g, &cfg);
        assert_eq!(pools.pools.len(), 4); // 2 shapes × 2 sizes
        assert!(pools.by_size(2).len() > pools.by_size(2).len() / 2);
        assert!(!pools.all().is_empty());
    }
}
