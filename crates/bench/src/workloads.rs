//! Test-workload construction for the experiment binaries: per
//! (shape, size) cells with the paper's bucket-balanced selection
//! ("we select 600 queries where each query is drawn from a bucket for a
//! specific result size", §VIII).

use crate::BenchConfig;
use lmkg_data::workload::{self, WorkloadConfig};
use lmkg_data::LabeledQuery;
use lmkg_store::{KnowledgeGraph, QueryShape};

/// One evaluation cell: shape, size, and its labeled queries.
pub struct Cell {
    /// Query topology.
    pub shape: QueryShape,
    /// Query size (number of triple patterns).
    pub size: usize,
    /// Bucket-balanced labeled queries.
    pub queries: Vec<LabeledQuery>,
}

/// Generates all evaluation cells for a graph.
pub fn test_cells(graph: &KnowledgeGraph, cfg: &BenchConfig) -> Vec<Cell> {
    let mut cells = Vec::new();
    for &shape in &[QueryShape::Star, QueryShape::Chain] {
        for &size in &cfg.sizes {
            // Over-generate, then balance across log-5 result-size buckets.
            let mut wl = WorkloadConfig::test_default(shape, size, cfg.seed ^ ((size as u64) << 17));
            wl.count = cfg.queries_per_cell * 3;
            let raw = workload::generate(graph, &wl);
            let queries = workload::balanced_select(&raw, cfg.queries_per_cell, 5, cfg.seed);
            if !queries.is_empty() {
                cells.push(Cell { shape, size, queries });
            }
        }
    }
    cells
}

#[cfg(test)]
mod tests {
    use super::*;
    use lmkg_data::{Dataset, Scale};

    #[test]
    fn cells_cover_shapes_and_sizes() {
        let g = Dataset::LubmLike.generate(Scale::Ci, 1);
        let mut cfg = BenchConfig::ci(1);
        cfg.sizes = vec![2, 3];
        cfg.queries_per_cell = 40;
        let cells = test_cells(&g, &cfg);
        assert_eq!(cells.len(), 4);
        for c in &cells {
            assert!(!c.queries.is_empty());
            assert!(c.queries.iter().all(|q| q.query.size() == c.size));
        }
    }
}
