//! Table formatting and measurement helpers for the experiment binaries.

use lmkg::metrics::QErrorStats;
use lmkg::CardinalityEstimator;
use lmkg_data::LabeledQuery;
use std::time::Instant;

/// Prints an aligned text table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| {
        let joined: Vec<String> = cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{c:>width$}", width = widths.get(i).copied().unwrap_or(8)))
            .collect();
        println!("| {} |", joined.join(" | "));
    };
    line(&headers.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    println!(
        "|{}|",
        widths.iter().map(|w| "-".repeat(w + 2)).collect::<Vec<_>>().join("|")
    );
    for row in rows {
        line(row);
    }
}

/// Formats a float compactly (2 significant decimals, scientific for huge).
pub fn fmt(v: f64) -> String {
    if !v.is_finite() {
        "inf".into()
    } else if v >= 100_000.0 {
        format!("{v:.1e}")
    } else if v >= 100.0 {
        format!("{v:.0}")
    } else {
        format!("{v:.2}")
    }
}

/// Runs an estimator over a workload through the **batched** estimation
/// path; returns accuracy stats and the mean amortized per-query latency in
/// milliseconds. Batched overrides return exactly what the per-query loop
/// would, so accuracy numbers are unchanged while learned-model timings
/// reflect one forward per batch.
pub fn measure(est: &dyn CardinalityEstimator, queries: &[LabeledQuery]) -> (QErrorStats, f64) {
    let workload: Vec<_> = queries.iter().map(|lq| lq.query.clone()).collect();
    let start = Instant::now();
    let estimates = est.estimate_batch(&workload);
    let elapsed_ms = start.elapsed().as_secs_f64() * 1000.0;
    let pairs: Vec<(f64, u64)> = estimates
        .into_iter()
        .zip(queries.iter().map(|lq| lq.cardinality))
        .collect();
    let stats = QErrorStats::from_pairs(pairs).expect("non-empty workload");
    (stats, elapsed_ms / queries.len().max(1) as f64)
}

/// Like [`measure`], but through the per-query loop — the reference point
/// batched evaluation is compared against.
pub fn measure_per_query(est: &dyn CardinalityEstimator, queries: &[LabeledQuery]) -> (QErrorStats, f64) {
    let mut pairs = Vec::with_capacity(queries.len());
    let start = Instant::now();
    for lq in queries {
        pairs.push((est.estimate(&lq.query), lq.cardinality));
    }
    let elapsed_ms = start.elapsed().as_secs_f64() * 1000.0;
    let stats = QErrorStats::from_pairs(pairs).expect("non-empty workload");
    (stats, elapsed_ms / queries.len().max(1) as f64)
}

/// Accuracy only (no timing).
pub fn accuracy(est: &dyn CardinalityEstimator, queries: &[LabeledQuery]) -> QErrorStats {
    measure(est, queries).0
}

#[cfg(test)]
mod tests {
    use super::*;
    use lmkg::ExactEstimator;
    use lmkg_data::workload::{self, WorkloadConfig};
    use lmkg_data::{Dataset, Scale};
    use lmkg_store::QueryShape;

    #[test]
    fn fmt_ranges() {
        assert_eq!(fmt(1.234), "1.23");
        assert_eq!(fmt(123.4), "123");
        assert_eq!(fmt(f64::INFINITY), "inf");
        assert!(fmt(1.0e7).contains('e'));
    }

    #[test]
    fn measure_exact_estimator() {
        let g = Dataset::LubmLike.generate(Scale::Ci, 1);
        let mut cfg = WorkloadConfig::test_default(QueryShape::Star, 2, 3);
        cfg.count = 20;
        let queries = workload::generate(&g, &cfg);
        let exact = ExactEstimator::new(&g);
        let (stats, ms) = measure(&exact, &queries);
        assert_eq!(stats.mean, 1.0);
        assert!(ms >= 0.0);
    }

    #[test]
    fn batched_and_per_query_measurement_agree_on_accuracy() {
        let g = Dataset::LubmLike.generate(Scale::Ci, 1);
        let mut cfg = WorkloadConfig::test_default(QueryShape::Star, 2, 3);
        cfg.count = 20;
        let queries = workload::generate(&g, &cfg);
        let exact = ExactEstimator::new(&g);
        let (batched, _) = measure(&exact, &queries);
        let (looped, _) = measure_per_query(&exact, &queries);
        assert_eq!(batched.mean, looped.mean);
        assert_eq!(batched.median, looped.median);
    }

    #[test]
    fn table_printing_does_not_panic() {
        print_table(
            "test",
            &["a", "bb"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
    }
}
