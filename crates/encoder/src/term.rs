//! Term-level codecs (paper §V): one-hot and binary encodings of node and
//! predicate ids, with *all-zeros* reserved for unbound/absent terms.
//!
//! For the binary codec, a term with id `t` is encoded as the bits of `t+1`
//! in `⌈log2(domain+1)⌉` digits — the paper's `⌈log2|d|+1⌉` sizing — so that
//! id 0 is distinguishable from "absent".

use lmkg_store::{NodeId, PredId};

/// Which term encoding to use (paper §V).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EncodingKind {
    /// One position per domain value; `O(|domain|)` space.
    OneHot,
    /// Binary digits of `id+1`; `O(log |domain|)` space — "the preferred
    /// choice for encoding triple patterns" on heterogeneous KGs.
    Binary,
}

/// Width in features of one encoded term.
pub fn term_width(kind: EncodingKind, domain: usize) -> usize {
    match kind {
        EncodingKind::OneHot => domain,
        EncodingKind::Binary => binary_width(domain),
    }
}

/// Number of binary digits for a domain of the given size (ids `0..domain`
/// are stored as `id+1` so zero stays free for "unbound").
pub fn binary_width(domain: usize) -> usize {
    let max_code = domain as u64; // codes are 1..=domain
    (u64::BITS - max_code.leading_zeros()).max(1) as usize
}

/// Encodes an optional id (`None` = unbound) into `out`.
pub fn encode_id(kind: EncodingKind, domain: usize, id: Option<u32>, out: &mut [f32]) {
    debug_assert_eq!(out.len(), term_width(kind, domain));
    out.iter_mut().for_each(|x| *x = 0.0);
    let Some(id) = id else { return };
    debug_assert!((id as usize) < domain, "id {id} out of domain {domain}");
    match kind {
        EncodingKind::OneHot => out[id as usize] = 1.0,
        EncodingKind::Binary => {
            let code = u64::from(id) + 1;
            let w = out.len();
            for (bit, x) in out.iter_mut().enumerate() {
                // Most-significant bit first, matching the paper's examples.
                *x = ((code >> (w - 1 - bit)) & 1) as f32;
            }
        }
    }
}

/// Decodes a binary-encoded slice back to an id (`None` if all-zero).
/// Used in tests to prove the encoding is lossless.
pub fn decode_binary(out: &[f32]) -> Option<u32> {
    let mut code = 0u64;
    for &x in out {
        code = (code << 1) | u64::from(x >= 0.5);
    }
    if code == 0 {
        None
    } else {
        Some((code - 1) as u32)
    }
}

/// Typed convenience wrapper around [`encode_id`] for nodes and predicates.
#[derive(Debug, Clone, Copy)]
pub struct TermCodec {
    /// Encoding family.
    pub kind: EncodingKind,
    /// Node domain size (`|S ∪ O|` — shared node space).
    pub node_domain: usize,
    /// Predicate domain size.
    pub pred_domain: usize,
}

impl TermCodec {
    /// Creates a codec for the graph domains.
    pub fn new(kind: EncodingKind, node_domain: usize, pred_domain: usize) -> Self {
        Self {
            kind,
            node_domain,
            pred_domain,
        }
    }

    /// Encoded width of one node term.
    pub fn node_width(&self) -> usize {
        term_width(self.kind, self.node_domain)
    }

    /// Encoded width of one predicate term.
    pub fn pred_width(&self) -> usize {
        term_width(self.kind, self.pred_domain)
    }

    /// Encodes an optional node id.
    pub fn encode_node(&self, id: Option<NodeId>, out: &mut [f32]) {
        encode_id(self.kind, self.node_domain, id.map(|n| n.0), out);
    }

    /// Encodes an optional predicate id.
    pub fn encode_pred(&self, id: Option<PredId>, out: &mut [f32]) {
        encode_id(self.kind, self.pred_domain, id.map(|p| p.0), out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binary_width_matches_paper_formula() {
        // ⌈log2(domain+1)⌉ digits for codes 1..=domain.
        assert_eq!(binary_width(1), 1);
        assert_eq!(binary_width(2), 2); // codes 1,2 → 2 bits
        assert_eq!(binary_width(3), 2);
        assert_eq!(binary_width(4), 3);
        assert_eq!(binary_width(7), 3);
        assert_eq!(binary_width(8), 4);
        assert_eq!(binary_width(1000), 10);
    }

    #[test]
    fn paper_example_one_hot() {
        // "for 3 subjects, the one-hot encoding of the subject with id 2"
        // (1-based in the paper) → [0 1 0].
        let mut out = [0.0f32; 3];
        encode_id(EncodingKind::OneHot, 3, Some(1), &mut out); // 0-based id 1
        assert_eq!(out, [0.0, 1.0, 0.0]);
    }

    #[test]
    fn paper_example_binary() {
        // "for 3 unique subjects, the binary encoding of the subject with
        // id 2" → [10] (2 bits, code 2).
        let mut out = [0.0f32; 2];
        encode_id(EncodingKind::Binary, 3, Some(1), &mut out); // 0-based id 1 → code 2
        assert_eq!(out, [1.0, 0.0]);
    }

    #[test]
    fn unbound_is_all_zero() {
        let mut out = [1.0f32; 4];
        encode_id(EncodingKind::Binary, 10, None, &mut out);
        assert!(out.iter().all(|&x| x == 0.0));
        let mut oh = [1.0f32; 10];
        encode_id(EncodingKind::OneHot, 10, None, &mut oh);
        assert!(oh.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn binary_roundtrip_entire_domain() {
        let domain = 300;
        let w = binary_width(domain);
        let mut buf = vec![0.0f32; w];
        for id in 0..domain as u32 {
            encode_id(EncodingKind::Binary, domain, Some(id), &mut buf);
            assert_eq!(decode_binary(&buf), Some(id), "id {id}");
        }
        encode_id(EncodingKind::Binary, domain, None, &mut buf);
        assert_eq!(decode_binary(&buf), None);
    }

    #[test]
    fn bound_id_zero_is_not_all_zeros() {
        let mut buf = vec![0.0f32; binary_width(5)];
        encode_id(EncodingKind::Binary, 5, Some(0), &mut buf);
        assert!(buf.iter().any(|&x| x != 0.0), "id 0 must differ from unbound");
    }

    #[test]
    fn codec_widths() {
        let c = TermCodec::new(EncodingKind::Binary, 1000, 20);
        assert_eq!(c.node_width(), 10);
        assert_eq!(c.pred_width(), 5);
        let c1 = TermCodec::new(EncodingKind::OneHot, 1000, 20);
        assert_eq!(c1.node_width(), 1000);
        assert_eq!(c1.pred_width(), 20);
    }
}
