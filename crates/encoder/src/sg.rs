//! SG-Encoding (paper §V-A1): the novel subgraph encoding
//! `SG = (A, X, E)` that can represent *any* query topology — star, chain,
//! tree, cycle, or composites — in one fixed-size featurization, enabling a
//! single model over multiple query types.
//!
//! For a capacity of `n` query nodes and `e` query edges:
//! * `A ∈ {0,1}^{n×n×e}` — adjacency tensor over the query-local node/edge
//!   ordering: `A[i][j][l] = 1` iff the query contains a triple whose subject
//!   is node-slot `i`, object is node-slot `j`, and predicate is edge-slot
//!   `l`;
//! * `X ∈ {0,1}^{n×⌈log2(d+1)⌉}` — binary encoding of each node slot's bound
//!   term (zeros for variables);
//! * `E ∈ {0,1}^{e×⌈log2(b+1)⌉}` — binary encoding of each edge slot's bound
//!   predicate (zeros for variables).
//!
//! Node slots are assigned in first-occurrence order over `(s, o)` positions;
//! two occurrences of the same bound node or the same variable share a slot
//! (the single shared node space is what lets chains express `oᵢ = sᵢ₊₁`).
//! Edge slots are assigned per *distinct predicate term*, so two triples with
//! the same bound predicate share an edge slot (they remain distinguishable
//! through different `(i, j)` cells of `A`).

use crate::pattern_bound::EncodeError;
use crate::term::{EncodingKind, TermCodec};
use lmkg_store::{NodeTerm, PredTerm, Query};

/// Fixed-capacity SG encoder.
#[derive(Debug, Clone, Copy)]
pub struct SgEncoder {
    codec: TermCodec,
    /// Maximum number of distinct query nodes (`n`).
    pub max_nodes: usize,
    /// Maximum number of distinct query predicates (`e`).
    pub max_edges: usize,
}

/// Slot assignment of one query under an [`SgEncoder`] (exposed for tests
/// and for model introspection).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SgLayout {
    /// Distinct node terms in slot order.
    pub node_slots: Vec<NodeTerm>,
    /// Distinct predicate terms in slot order.
    pub edge_slots: Vec<PredTerm>,
    /// `(subject slot, object slot, edge slot)` per triple.
    pub triples: Vec<(usize, usize, usize)>,
}

impl SgEncoder {
    /// Creates an encoder with node capacity `max_nodes` and edge capacity
    /// `max_edges` over the graph's domains. X and E always use the compact
    /// binary modification (the paper's preferred variant).
    pub fn new(node_domain: usize, pred_domain: usize, max_nodes: usize, max_edges: usize) -> Self {
        assert!(max_nodes >= 1 && max_edges >= 1);
        Self {
            codec: TermCodec::new(EncodingKind::Binary, node_domain, pred_domain),
            max_nodes,
            max_edges,
        }
    }

    /// Node-term domain size the codec was built over (snapshot persistence
    /// rebuilds an identical encoder from these).
    pub fn node_domain(&self) -> usize {
        self.codec.node_domain
    }

    /// Predicate-term domain size the codec was built over.
    pub fn pred_domain(&self) -> usize {
        self.codec.pred_domain
    }

    /// Width of the flattened `A` tensor.
    pub fn a_width(&self) -> usize {
        self.max_nodes * self.max_nodes * self.max_edges
    }

    /// Width of the flattened `X` matrix.
    pub fn x_width(&self) -> usize {
        self.max_nodes * self.codec.node_width()
    }

    /// Width of the flattened `E` matrix.
    pub fn e_width(&self) -> usize {
        self.max_edges * self.codec.pred_width()
    }

    /// Total encoded width (`A` ‖ `X` ‖ `E`, flattened and concatenated —
    /// exactly the concatenation the LMKG-S input layer consumes, Fig. 3).
    pub fn width(&self) -> usize {
        self.a_width() + self.x_width() + self.e_width()
    }

    /// Computes the slot layout of a query.
    pub fn layout(&self, query: &Query) -> Result<SgLayout, EncodeError> {
        let mut node_slots: Vec<NodeTerm> = Vec::new();
        let mut edge_slots: Vec<PredTerm> = Vec::new();
        let mut triples = Vec::with_capacity(query.triples.len());

        let node_slot = |term: NodeTerm, slots: &mut Vec<NodeTerm>| -> usize {
            match slots.iter().position(|&t| t == term) {
                Some(i) => i,
                None => {
                    slots.push(term);
                    slots.len() - 1
                }
            }
        };

        for t in &query.triples {
            let si = node_slot(t.s, &mut node_slots);
            let oi = node_slot(t.o, &mut node_slots);
            let ei = match edge_slots.iter().position(|&p| p == t.p) {
                Some(i) => i,
                None => {
                    edge_slots.push(t.p);
                    edge_slots.len() - 1
                }
            };
            triples.push((si, oi, ei));
        }

        if node_slots.len() > self.max_nodes {
            return Err(EncodeError::TooLarge {
                capacity: self.max_nodes,
                actual: node_slots.len(),
            });
        }
        if edge_slots.len() > self.max_edges {
            return Err(EncodeError::TooLarge {
                capacity: self.max_edges,
                actual: edge_slots.len(),
            });
        }
        Ok(SgLayout {
            node_slots,
            edge_slots,
            triples,
        })
    }

    /// Encodes `query` into `out` (length [`Self::width`]).
    pub fn encode(&self, query: &Query, out: &mut [f32]) -> Result<(), EncodeError> {
        assert_eq!(out.len(), self.width(), "output buffer width mismatch");
        out.iter_mut().for_each(|x| *x = 0.0);
        let layout = self.layout(query)?;

        // A: index (i * n + j) * e + l.
        let (n, e) = (self.max_nodes, self.max_edges);
        for &(i, j, l) in &layout.triples {
            out[(i * n + j) * e + l] = 1.0;
        }

        // X.
        let nw = self.codec.node_width();
        let x_base = self.a_width();
        for (slot, term) in layout.node_slots.iter().enumerate() {
            let off = x_base + slot * nw;
            self.codec.encode_node(term.bound(), &mut out[off..off + nw]);
        }

        // E.
        let pw = self.codec.pred_width();
        let e_base = x_base + self.x_width();
        for (slot, term) in layout.edge_slots.iter().enumerate() {
            let off = e_base + slot * pw;
            self.codec.encode_pred(term.bound(), &mut out[off..off + pw]);
        }
        Ok(())
    }

    /// Encodes into a freshly allocated vector.
    pub fn encode_vec(&self, query: &Query) -> Result<Vec<f32>, EncodeError> {
        let mut out = vec![0.0f32; self.width()];
        self.encode(query, &mut out)?;
        Ok(out)
    }

    /// Capacity sufficient for any star or chain query of `k` triples:
    /// stars need `k+1` nodes, chains need `k+1` nodes; both need ≤ `k`
    /// distinct predicates.
    pub fn capacity_for_size(node_domain: usize, pred_domain: usize, k: usize) -> Self {
        Self::new(node_domain, pred_domain, k + 1, k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lmkg_store::{NodeId, PredId, QueryShape, TriplePattern, VarId};

    fn v(i: u16) -> NodeTerm {
        NodeTerm::Var(VarId(i))
    }
    fn n(i: u32) -> NodeTerm {
        NodeTerm::Bound(NodeId(i))
    }
    fn p(i: u32) -> PredTerm {
        PredTerm::Bound(PredId(i))
    }

    /// The paper's Fig. 2 star: ?Book :hasAuthor :StephenKing ;
    /// :genre :Horror — n = 3, e = 2.
    fn fig2_query() -> Query {
        Query::new(vec![
            TriplePattern::new(v(0), p(2), n(0)), // ?book hasAuthor StephenKing
            TriplePattern::new(v(0), p(1), n(3)), // ?book genre Horror
        ])
    }

    fn encoder() -> SgEncoder {
        // Fig. 2: 5 nodes, 3 predicates, n = 3, e = 2.
        SgEncoder::new(5, 3, 3, 2)
    }

    #[test]
    fn fig2_layout() {
        let e = encoder();
        let layout = e.layout(&fig2_query()).unwrap();
        // Node order: ?book, StephenKing, Horror.
        assert_eq!(layout.node_slots.len(), 3);
        assert_eq!(layout.node_slots[0], v(0));
        assert_eq!(layout.node_slots[1], n(0));
        assert_eq!(layout.node_slots[2], n(3));
        // Edge order: hasAuthor, genre.
        assert_eq!(layout.edge_slots, vec![p(2), p(1)]);
        // Triples: (book→king, hasAuthor), (book→horror, genre).
        assert_eq!(layout.triples, vec![(0, 1, 0), (0, 2, 1)]);
    }

    #[test]
    fn fig2_adjacency_cells() {
        let e = encoder();
        let out = e.encode_vec(&fig2_query()).unwrap();
        // A001 = 1: node 0 → node 1 via edge 0 (paper: "we set A001 = 1").
        let idx = |i: usize, j: usize, l: usize| (i * 3 + j) * 2 + l;
        assert_eq!(out[idx(0, 1, 0)], 1.0);
        assert_eq!(out[idx(0, 2, 1)], 1.0);
        // Exactly two cells set in A.
        let a_ones: usize = out[..e.a_width()].iter().filter(|&&x| x == 1.0).count();
        assert_eq!(a_ones, 2);
    }

    #[test]
    fn x_and_e_binary_blocks() {
        let e = encoder();
        let out = e.encode_vec(&fig2_query()).unwrap();
        let nw = 3; // ⌈log2 6⌉ = 3 bits for 5 nodes
        let x = &out[e.a_width()..e.a_width() + e.x_width()];
        // Slot 0 is the variable → zeros.
        assert!(x[..nw].iter().all(|&b| b == 0.0));
        // Slot 1 is node id 0 → code 1 → [001].
        assert_eq!(&x[nw..2 * nw], &[0.0, 0.0, 1.0]);
        // Slot 2 is node id 3 → code 4 → [100].
        assert_eq!(&x[2 * nw..3 * nw], &[1.0, 0.0, 0.0]);
        // E: pred 2 → code 3 → [11]; pred 1 → code 2 → [10].
        let eb = &out[e.a_width() + e.x_width()..];
        assert_eq!(eb, &[1.0, 1.0, 1.0, 0.0]);
    }

    #[test]
    fn chain_shares_link_slots() {
        let e = SgEncoder::new(10, 4, 3, 2);
        // ?x p0 ?y . ?y p1 ?z — the link ?y must be one slot.
        let q = Query::new(vec![
            TriplePattern::new(v(0), p(0), v(1)),
            TriplePattern::new(v(1), p(1), v(2)),
        ]);
        let layout = e.layout(&q).unwrap();
        assert_eq!(layout.node_slots.len(), 3);
        assert_eq!(layout.triples, vec![(0, 1, 0), (1, 2, 1)]);
    }

    #[test]
    fn repeated_bound_predicate_shares_edge_slot() {
        let e = SgEncoder::new(10, 4, 3, 2);
        let q = Query::new(vec![
            TriplePattern::new(v(0), p(2), n(1)),
            TriplePattern::new(v(0), p(2), n(2)),
        ]);
        let layout = e.layout(&q).unwrap();
        assert_eq!(layout.edge_slots.len(), 1);
        // Two A cells in the same edge slice keep the triples distinct.
        let out = e.encode_vec(&q).unwrap();
        let a_ones: usize = out[..e.a_width()].iter().filter(|&&x| x == 1.0).count();
        assert_eq!(a_ones, 2);
    }

    #[test]
    fn composite_topologies_encode() {
        // Star + chain composite (the case pattern-bound cannot express).
        let e = SgEncoder::new(10, 4, 4, 3);
        let q = Query::new(vec![
            TriplePattern::new(v(0), p(0), v(1)),
            TriplePattern::new(v(0), p(1), n(2)),
            TriplePattern::new(v(1), p(2), v(3)),
        ]);
        assert_eq!(q.shape(), QueryShape::Other);
        assert!(e.encode_vec(&q).is_ok());
        // Cycles too.
        let cyc = Query::new(vec![
            TriplePattern::new(v(0), p(0), v(1)),
            TriplePattern::new(v(1), p(1), v(0)),
        ]);
        assert!(e.encode_vec(&cyc).is_ok());
    }

    #[test]
    fn capacity_exceeded_is_rejected() {
        let e = SgEncoder::new(10, 4, 2, 1);
        let q = Query::new(vec![
            TriplePattern::new(v(0), p(0), v(1)),
            TriplePattern::new(v(1), p(1), v(2)),
        ]);
        assert!(matches!(e.encode_vec(&q), Err(EncodeError::TooLarge { .. })));
    }

    #[test]
    fn distinct_topologies_encode_distinctly() {
        let e = SgEncoder::new(10, 4, 3, 2);
        let star = Query::new(vec![
            TriplePattern::new(v(0), p(0), v(1)),
            TriplePattern::new(v(0), p(1), v(2)),
        ]);
        let chain = Query::new(vec![
            TriplePattern::new(v(0), p(0), v(1)),
            TriplePattern::new(v(1), p(1), v(2)),
        ]);
        assert_ne!(e.encode_vec(&star).unwrap(), e.encode_vec(&chain).unwrap());
    }

    #[test]
    fn width_formula() {
        let e = SgEncoder::new(1000, 20, 9, 8);
        // A: 9*9*8 = 648; X: 9*10 = 90; E: 8*5 = 40.
        assert_eq!(e.width(), 648 + 90 + 40);
        assert_eq!(e.width(), e.a_width() + e.x_width() + e.e_width());
    }

    #[test]
    fn capacity_for_size_fits_stars_and_chains() {
        let e = SgEncoder::capacity_for_size(100, 10, 3);
        let star = Query::new(
            (0..3)
                .map(|i| TriplePattern::new(v(0), p(i as u32), NodeTerm::Var(VarId(1 + i as u16))))
                .collect(),
        );
        let chain = Query::new(
            (0..3)
                .map(|i| {
                    TriplePattern::new(
                        NodeTerm::Var(VarId(i as u16)),
                        p(i as u32),
                        NodeTerm::Var(VarId(i as u16 + 1)),
                    )
                })
                .collect(),
        );
        assert!(e.encode_vec(&star).is_ok());
        assert!(e.encode_vec(&chain).is_ok());
    }
}
