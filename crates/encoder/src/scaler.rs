//! Cardinality scaling for supervised training (paper §VI-A): "the
//! cardinalities are log scaled followed by a min-max scaling", so the
//! sigmoid output of LMKG-S lives in `[0, 1]`.

/// Log₂ + min-max scaler fitted on training cardinalities.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CardinalityScaler {
    min_log: f64,
    max_log: f64,
}

impl CardinalityScaler {
    /// Fits the scaler to a set of cardinalities (all ≥ 1).
    pub fn fit(cards: impl IntoIterator<Item = u64>) -> Self {
        let mut min_log = f64::INFINITY;
        let mut max_log = f64::NEG_INFINITY;
        for c in cards {
            let l = (c.max(1) as f64).log2();
            min_log = min_log.min(l);
            max_log = max_log.max(l);
        }
        assert!(min_log.is_finite(), "scaler fitted on an empty set");
        if (max_log - min_log).abs() < 1e-9 {
            max_log = min_log + 1.0; // degenerate: all targets equal
        }
        Self { min_log, max_log }
    }

    /// Builds from explicit log bounds (for deserialization).
    pub fn from_bounds(min_log: f64, max_log: f64) -> Self {
        assert!(max_log > min_log);
        Self { min_log, max_log }
    }

    /// Scales a cardinality to `[0, 1]` (clamped).
    pub fn scale(&self, card: u64) -> f32 {
        let l = (card.max(1) as f64).log2();
        (((l - self.min_log) / (self.max_log - self.min_log)).clamp(0.0, 1.0)) as f32
    }

    /// Inverts a scaled prediction back to a cardinality estimate (≥ 1).
    pub fn unscale(&self, scaled: f32) -> f64 {
        let l = self.min_log + f64::from(scaled.clamp(0.0, 1.0)) * (self.max_log - self.min_log);
        l.exp2().max(1.0)
    }

    /// The log₂ span — the `log_range` parameter of the q-error loss.
    pub fn log_range(&self) -> f32 {
        (self.max_log - self.min_log) as f32
    }

    /// Lower log bound.
    pub fn min_log(&self) -> f64 {
        self.min_log
    }

    /// Upper log bound.
    pub fn max_log(&self) -> f64 {
        self.max_log
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_endpoints() {
        let s = CardinalityScaler::fit([1u64, 1024]);
        assert_eq!(s.scale(1), 0.0);
        assert_eq!(s.scale(1024), 1.0);
        assert!((s.scale(32) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn roundtrip_within_range() {
        let s = CardinalityScaler::fit([1u64, 1_000_000]);
        for c in [1u64, 7, 100, 54_321, 1_000_000] {
            let back = s.unscale(s.scale(c));
            let q = (back / c as f64).max(c as f64 / back);
            assert!(q < 1.001, "card {c} roundtripped to {back}");
        }
    }

    #[test]
    fn out_of_range_clamps() {
        let s = CardinalityScaler::fit([4u64, 64]);
        assert_eq!(s.scale(1), 0.0);
        assert_eq!(s.scale(1 << 20), 1.0);
        assert!(s.unscale(-0.5) >= 1.0);
        assert!(s.unscale(1.5) <= 65.0);
    }

    #[test]
    fn degenerate_fit_still_valid() {
        let s = CardinalityScaler::fit([10u64, 10, 10]);
        assert!(s.log_range() > 0.0);
        let back = s.unscale(s.scale(10));
        assert!((back - 10.0).abs() / 10.0 < 0.01);
    }

    #[test]
    fn log_range_matches_bounds() {
        let s = CardinalityScaler::from_bounds(0.0, 20.0);
        assert_eq!(s.log_range(), 20.0);
        assert_eq!(s.min_log(), 0.0);
        assert_eq!(s.max_log(), 20.0);
    }

    #[test]
    #[should_panic(expected = "empty set")]
    fn empty_fit_panics() {
        let _ = CardinalityScaler::fit(std::iter::empty::<u64>());
    }
}
