//! Pattern-bound encoding (paper §V-A2): a flat concatenation of term
//! encodings tailored to one query topology.
//!
//! * **Star** of capacity `k`: `[subject | p₁ o₁ | … | p_k o_k]`.
//! * **Chain** of capacity `k`: `[n₁ | p₁ | n₂ | … | p_k | n_{k+1}]` —
//!   shared link nodes appear once ("by knowing that an object in a triple
//!   will be a subject in the next one, we further remove redundant nodes").
//!
//! Queries smaller than the capacity are zero-padded (a model for size `k`
//! "can answer smaller queries", §VIII-2); queries larger than the capacity
//! are rejected.

use crate::term::TermCodec;
use lmkg_store::{Query, QueryShape};

/// Errors produced by encoders.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EncodeError {
    /// The query has more triples than the encoder capacity.
    TooLarge {
        /// Encoder capacity in triples.
        capacity: usize,
        /// Actual query size.
        actual: usize,
    },
    /// The query topology does not match the encoder.
    WrongShape {
        /// Expected topology.
        expected: QueryShape,
        /// Actual topology.
        actual: QueryShape,
    },
}

impl std::fmt::Display for EncodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EncodeError::TooLarge { capacity, actual } => {
                write!(f, "query size {actual} exceeds encoder capacity {capacity}")
            }
            EncodeError::WrongShape { expected, actual } => {
                write!(f, "expected a {expected} query, got {actual}")
            }
        }
    }
}

impl std::error::Error for EncodeError {}

/// Flat encoder for star- or chain-shaped queries of bounded size.
#[derive(Debug, Clone, Copy)]
pub struct PatternBoundEncoder {
    codec: TermCodec,
    shape: QueryShape,
    capacity: usize,
}

impl PatternBoundEncoder {
    /// Creates an encoder for `shape` queries with up to `capacity` triples.
    pub fn new(codec: TermCodec, shape: QueryShape, capacity: usize) -> Self {
        assert!(
            matches!(shape, QueryShape::Star | QueryShape::Chain),
            "pattern-bound encoding is defined for star and chain queries"
        );
        assert!(capacity >= 1);
        Self { codec, shape, capacity }
    }

    /// Capacity in triples.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The expected query shape.
    pub fn shape(&self) -> QueryShape {
        self.shape
    }

    /// Encoded feature width.
    pub fn width(&self) -> usize {
        let nw = self.codec.node_width();
        let pw = self.codec.pred_width();
        match self.shape {
            QueryShape::Star => nw + self.capacity * (pw + nw),
            QueryShape::Chain => (self.capacity + 1) * nw + self.capacity * pw,
            _ => unreachable!(),
        }
    }

    /// Encodes `query` into `out` (length [`Self::width`]). Variables encode
    /// to zeros; missing trailing triples (smaller query) stay zero.
    pub fn encode(&self, query: &Query, out: &mut [f32]) -> Result<(), EncodeError> {
        assert_eq!(out.len(), self.width(), "output buffer width mismatch");
        out.iter_mut().for_each(|x| *x = 0.0);
        if query.size() > self.capacity {
            return Err(EncodeError::TooLarge {
                capacity: self.capacity,
                actual: query.size(),
            });
        }
        let actual = query.shape();
        // Single-triple queries are valid degenerate cases of both topologies.
        if actual != self.shape && actual != QueryShape::Single {
            return Err(EncodeError::WrongShape {
                expected: self.shape,
                actual,
            });
        }

        let nw = self.codec.node_width();
        let pw = self.codec.pred_width();
        match self.shape {
            QueryShape::Star => {
                self.codec.encode_node(query.triples[0].s.bound(), &mut out[..nw]);
                let mut offset = nw;
                for t in &query.triples {
                    self.codec.encode_pred(t.p.bound(), &mut out[offset..offset + pw]);
                    offset += pw;
                    self.codec.encode_node(t.o.bound(), &mut out[offset..offset + nw]);
                    offset += nw;
                }
            }
            QueryShape::Chain => {
                let mut offset = 0usize;
                self.codec
                    .encode_node(query.triples[0].s.bound(), &mut out[offset..offset + nw]);
                offset += nw;
                for t in &query.triples {
                    self.codec.encode_pred(t.p.bound(), &mut out[offset..offset + pw]);
                    offset += pw;
                    self.codec.encode_node(t.o.bound(), &mut out[offset..offset + nw]);
                    offset += nw;
                }
            }
            _ => unreachable!(),
        }
        Ok(())
    }

    /// Encodes into a freshly allocated vector.
    pub fn encode_vec(&self, query: &Query) -> Result<Vec<f32>, EncodeError> {
        let mut out = vec![0.0f32; self.width()];
        self.encode(query, &mut out)?;
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::EncodingKind;
    use lmkg_store::{NodeId, NodeTerm, PredId, PredTerm, TriplePattern, VarId};

    fn codec() -> TermCodec {
        TermCodec::new(EncodingKind::Binary, 8, 4) // node 4 bits, pred 3 bits
    }

    fn star(k: usize) -> Query {
        let c = NodeTerm::Var(VarId(0));
        Query::new(
            (0..k)
                .map(|i| {
                    TriplePattern::new(
                        c,
                        PredTerm::Bound(PredId(i as u32 % 4)),
                        NodeTerm::Bound(NodeId(i as u32)),
                    )
                })
                .collect(),
        )
    }

    fn chain(k: usize) -> Query {
        Query::new(
            (0..k)
                .map(|i| {
                    TriplePattern::new(
                        NodeTerm::Var(VarId(i as u16)),
                        PredTerm::Bound(PredId(i as u32 % 4)),
                        NodeTerm::Var(VarId(i as u16 + 1)),
                    )
                })
                .collect(),
        )
    }

    #[test]
    fn width_formulas() {
        let e = PatternBoundEncoder::new(codec(), QueryShape::Star, 3);
        // node 4 bits, pred 3 bits: 4 + 3*(3+4) = 25.
        assert_eq!(e.width(), 25);
        let c = PatternBoundEncoder::new(codec(), QueryShape::Chain, 3);
        // 4 nodes * 4 + 3 preds * 3 = 25.
        assert_eq!(c.width(), 25);
    }

    #[test]
    fn chain_is_smaller_than_unshared_representation() {
        // 2k terms + k preds (pattern-bound chain) vs 2k nodes if objects
        // and subjects were encoded separately (flattened adjacency list).
        let c = PatternBoundEncoder::new(codec(), QueryShape::Chain, 5);
        let unshared = 5 * (4 + 3 + 4);
        assert!(c.width() < unshared);
    }

    #[test]
    fn star_encoding_layout() {
        let e = PatternBoundEncoder::new(codec(), QueryShape::Star, 2);
        let q = star(2);
        let v = e.encode_vec(&q).unwrap();
        // Center is a variable → first 4 features zero.
        assert!(v[..4].iter().all(|&x| x == 0.0));
        // First pair: pred 0 → code 1 → [001]; object 0 → code 1 → [0001].
        assert_eq!(&v[4..7], &[0.0, 0.0, 1.0]);
        assert_eq!(&v[7..11], &[0.0, 0.0, 0.0, 1.0]);
        // Second pair: pred 1 → code 2 → [010]; object 1 → code 2 → [0010].
        assert_eq!(&v[11..14], &[0.0, 1.0, 0.0]);
        assert_eq!(&v[14..18], &[0.0, 0.0, 1.0, 0.0]);
    }

    #[test]
    fn smaller_query_is_zero_padded() {
        let e = PatternBoundEncoder::new(codec(), QueryShape::Star, 4);
        let q = star(2);
        let v = e.encode_vec(&q).unwrap();
        let pair_w = 3 + 4;
        let tail = &v[4 + 2 * pair_w..];
        assert_eq!(tail.len(), 2 * pair_w);
        assert!(tail.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn oversized_query_rejected() {
        let e = PatternBoundEncoder::new(codec(), QueryShape::Star, 2);
        let err = e.encode_vec(&star(3)).unwrap_err();
        assert_eq!(err, EncodeError::TooLarge { capacity: 2, actual: 3 });
    }

    #[test]
    fn wrong_shape_rejected() {
        let e = PatternBoundEncoder::new(codec(), QueryShape::Star, 3);
        let err = e.encode_vec(&chain(2)).unwrap_err();
        assert!(matches!(err, EncodeError::WrongShape { .. }));
    }

    #[test]
    fn chain_encoding_shares_link_nodes() {
        let e = PatternBoundEncoder::new(codec(), QueryShape::Chain, 2);
        let mut q = chain(2);
        // Bind the middle node to id 5 → code 6 → [0110].
        q.triples[0].o = NodeTerm::Bound(NodeId(5));
        q.triples[1].s = NodeTerm::Bound(NodeId(5));
        let v = e.encode_vec(&q).unwrap();
        // Layout: n1(4) p1(3) n2(4) p2(3) n3(4); n2 at offset 7.
        assert_eq!(&v[7..11], &[0.0, 1.0, 1.0, 0.0]);
    }

    #[test]
    fn distinct_queries_encode_distinctly() {
        let e = PatternBoundEncoder::new(codec(), QueryShape::Star, 2);
        let a = e.encode_vec(&star(2)).unwrap();
        let mut q = star(2);
        q.triples[1].o = NodeTerm::Bound(NodeId(7));
        let b = e.encode_vec(&q).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn single_triple_accepted_by_both() {
        let q = Query::new(vec![TriplePattern::new(
            NodeTerm::Var(VarId(0)),
            PredTerm::Bound(PredId(1)),
            NodeTerm::Bound(NodeId(2)),
        )]);
        let s = PatternBoundEncoder::new(codec(), QueryShape::Star, 2);
        assert!(s.encode_vec(&q).is_ok());
        let c = PatternBoundEncoder::new(codec(), QueryShape::Chain, 2);
        assert!(c.encode_vec(&q).is_ok());
    }
}
