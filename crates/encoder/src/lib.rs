//! # lmkg-encoder
//!
//! Query featurization for LMKG (paper §V): term-level one-hot and binary
//! codecs, the topology-specific *pattern-bound* encoding, the novel
//! *SG-Encoding* `(A, X, E)` that represents arbitrary subgraph topologies in
//! one fixed-size input, and the log/min-max cardinality scaler used by the
//! supervised model.
//!
//! ```
//! use lmkg_encoder::{EncodingKind, PatternBoundEncoder, SgEncoder, TermCodec};
//! use lmkg_store::{NodeId, NodeTerm, PredId, PredTerm, Query, QueryShape, TriplePattern, VarId};
//!
//! // ?book :hasAuthor :king . ?book :genre :horror   (Fig. 2)
//! let q = Query::new(vec![
//!     TriplePattern::new(NodeTerm::Var(VarId(0)), PredTerm::Bound(PredId(2)), NodeTerm::Bound(NodeId(0))),
//!     TriplePattern::new(NodeTerm::Var(VarId(0)), PredTerm::Bound(PredId(1)), NodeTerm::Bound(NodeId(3))),
//! ]);
//!
//! let sg = SgEncoder::new(5, 3, 3, 2);
//! let features = sg.encode_vec(&q).unwrap();
//! assert_eq!(features.len(), sg.width());
//!
//! let pb = PatternBoundEncoder::new(TermCodec::new(EncodingKind::Binary, 5, 3), QueryShape::Star, 2);
//! assert!(pb.encode_vec(&q).is_ok());
//! ```

// No unsafe anywhere in this crate — enforced so the lmkg-xtask L1 lint
// and the sanitizer jobs only ever have the nn kernels and the serve
// signal shim to reason about.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod pattern_bound;
pub mod scaler;
pub mod sg;
pub mod term;

pub use batch::RowEncoder;
pub use pattern_bound::{EncodeError, PatternBoundEncoder};
pub use scaler::CardinalityScaler;
pub use sg::{SgEncoder, SgLayout};
pub use term::{binary_width, EncodingKind, TermCodec};
