//! Batched row encoding shared by every featurizer.
//!
//! The learned estimators consume query features as row-major matrices
//! (batch rows × feature columns). [`RowEncoder::encode_batch`] produces
//! those rows in one pass over one contiguous buffer, so the estimation
//! path never round-trips through per-query allocations.

use crate::pattern_bound::EncodeError;
use lmkg_store::Query;

/// A featurizer that encodes one query per fixed-width row.
pub trait RowEncoder {
    /// Feature width (columns per row).
    fn row_width(&self) -> usize;

    /// Encodes `query` into `out` (length [`Self::row_width`]).
    fn encode_row(&self, query: &Query, out: &mut [f32]) -> Result<(), EncodeError>;

    /// Encodes a batch, appending one row per *accepted* query to `out`
    /// and returning one status per input query, in order. Rejected
    /// queries contribute no row, so `out` grows by exactly
    /// `row_width() × number-of-Ok-statuses` and accepted rows stay
    /// contiguous in input order.
    fn encode_batch<'q, I>(&self, queries: I, out: &mut Vec<f32>) -> Vec<Result<(), EncodeError>>
    where
        I: IntoIterator<Item = &'q Query>,
    {
        let w = self.row_width();
        let queries = queries.into_iter();
        let mut statuses = Vec::with_capacity(queries.size_hint().0);
        for q in queries {
            let base = out.len();
            out.resize(base + w, 0.0);
            let status = self.encode_row(q, &mut out[base..]);
            if status.is_err() {
                out.truncate(base);
            }
            statuses.push(status);
        }
        statuses
    }
}

impl RowEncoder for crate::sg::SgEncoder {
    fn row_width(&self) -> usize {
        self.width()
    }

    fn encode_row(&self, query: &Query, out: &mut [f32]) -> Result<(), EncodeError> {
        self.encode(query, out)
    }
}

impl RowEncoder for crate::pattern_bound::PatternBoundEncoder {
    fn row_width(&self) -> usize {
        self.width()
    }

    fn encode_row(&self, query: &Query, out: &mut [f32]) -> Result<(), EncodeError> {
        self.encode(query, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sg::SgEncoder;
    use lmkg_store::{NodeId, NodeTerm, PredId, PredTerm, TriplePattern, VarId};

    fn star(k: usize) -> Query {
        Query::new(
            (0..k)
                .map(|i| {
                    TriplePattern::new(
                        NodeTerm::Var(VarId(0)),
                        PredTerm::Bound(PredId(i as u32 % 3)),
                        NodeTerm::Bound(NodeId(i as u32)),
                    )
                })
                .collect(),
        )
    }

    #[test]
    fn batch_matches_per_query_rows() {
        let enc = SgEncoder::new(16, 3, 3, 2);
        let queries = [star(1), star(2)];
        let mut rows = Vec::new();
        let statuses = enc.encode_batch(queries.iter(), &mut rows);
        assert!(statuses.iter().all(Result::is_ok));
        assert_eq!(rows.len(), 2 * enc.width());
        for (i, q) in queries.iter().enumerate() {
            let single = enc.encode_vec(q).unwrap();
            assert_eq!(&rows[i * enc.width()..(i + 1) * enc.width()], &single[..]);
        }
    }

    #[test]
    fn rejected_queries_contribute_no_rows() {
        let enc = SgEncoder::new(16, 3, 2, 1); // capacity: 2 nodes, 1 edge
        let queries = [star(1), star(3), star(1)];
        let mut rows = Vec::new();
        let statuses = enc.encode_batch(queries.iter(), &mut rows);
        assert!(statuses[0].is_ok() && statuses[1].is_err() && statuses[2].is_ok());
        assert_eq!(rows.len(), 2 * enc.width());
        let single = enc.encode_vec(&queries[2]).unwrap();
        assert_eq!(&rows[enc.width()..], &single[..]);
    }
}
