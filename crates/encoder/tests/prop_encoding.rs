//! Property tests for the encoders: losslessness of the binary codec,
//! structural invariants of SG-Encoding, and scaler monotonicity.

use lmkg_encoder::{binary_width, term, CardinalityScaler, EncodingKind, SgEncoder};
use lmkg_store::{NodeId, NodeTerm, PredId, PredTerm, Query, TriplePattern, VarId};
use proptest::prelude::*;

fn arb_node_term(domain: u32) -> impl Strategy<Value = NodeTerm> {
    prop_oneof![
        (0..domain).prop_map(|n| NodeTerm::Bound(NodeId(n))),
        (0u16..5).prop_map(|v| NodeTerm::Var(VarId(v))),
    ]
}

fn arb_pred_term(domain: u32) -> impl Strategy<Value = PredTerm> {
    prop_oneof![
        (0..domain).prop_map(|p| PredTerm::Bound(PredId(p))),
        (10u16..12).prop_map(|v| PredTerm::Var(VarId(v))),
    ]
}

fn arb_query(node_domain: u32, pred_domain: u32) -> impl Strategy<Value = Query> {
    prop::collection::vec(
        (
            arb_node_term(node_domain),
            arb_pred_term(pred_domain),
            arb_node_term(node_domain),
        ),
        1..5,
    )
    .prop_map(|ts| Query::new(ts.into_iter().map(|(s, p, o)| TriplePattern::new(s, p, o)).collect()))
}

proptest! {
    #[test]
    fn binary_codec_roundtrips(domain in 1usize..5000, id_frac in 0.0f64..1.0) {
        let id = ((domain as f64 - 1.0) * id_frac) as u32;
        let mut buf = vec![0.0f32; binary_width(domain)];
        term::encode_id(EncodingKind::Binary, domain, Some(id), &mut buf);
        prop_assert_eq!(term::decode_binary(&buf), Some(id));
    }

    #[test]
    fn binary_codes_are_injective(domain in 2usize..600, a in any::<u32>(), b in any::<u32>()) {
        let a = a % domain as u32;
        let b = b % domain as u32;
        prop_assume!(a != b);
        let w = binary_width(domain);
        let mut ba = vec![0.0f32; w];
        let mut bb = vec![0.0f32; w];
        term::encode_id(EncodingKind::Binary, domain, Some(a), &mut ba);
        term::encode_id(EncodingKind::Binary, domain, Some(b), &mut bb);
        prop_assert_ne!(ba, bb);
    }

    #[test]
    fn sg_adjacency_cell_count_matches_distinct_triples(q in arb_query(50, 8)) {
        let enc = SgEncoder::new(50, 8, 12, 8);
        let Ok(v) = enc.encode_vec(&q) else { return Ok(()); };
        let layout = enc.layout(&q).unwrap();
        let mut distinct = layout.triples.clone();
        distinct.sort_unstable();
        distinct.dedup();
        let ones = v[..enc.a_width()].iter().filter(|&&x| x == 1.0).count();
        prop_assert_eq!(ones, distinct.len());
    }

    #[test]
    fn sg_layout_slot_bounds(q in arb_query(50, 8)) {
        let enc = SgEncoder::new(50, 8, 12, 8);
        if let Ok(layout) = enc.layout(&q) {
            // A query of k triples touches at most 2k node slots, k edge slots.
            prop_assert!(layout.node_slots.len() <= 2 * q.size());
            prop_assert!(layout.edge_slots.len() <= q.size());
            // Every triple's slots are within the slot tables.
            for &(i, j, l) in &layout.triples {
                prop_assert!(i < layout.node_slots.len());
                prop_assert!(j < layout.node_slots.len());
                prop_assert!(l < layout.edge_slots.len());
            }
        }
    }

    #[test]
    fn sg_encoding_is_deterministic(q in arb_query(30, 5)) {
        let enc = SgEncoder::new(30, 5, 12, 8);
        if let (Ok(a), Ok(b)) = (enc.encode_vec(&q), enc.encode_vec(&q)) {
            prop_assert_eq!(a, b);
        }
    }

    #[test]
    fn scaler_is_monotone(mut cards in prop::collection::vec(1u64..1_000_000, 2..40)) {
        let scaler = CardinalityScaler::fit(cards.iter().copied());
        cards.sort_unstable();
        for w in cards.windows(2) {
            prop_assert!(scaler.scale(w[0]) <= scaler.scale(w[1]) + f32::EPSILON);
        }
    }

    #[test]
    fn scaler_roundtrip_q_error_is_tiny(cards in prop::collection::vec(1u64..1_000_000, 2..40), probe in 0usize..40) {
        let scaler = CardinalityScaler::fit(cards.iter().copied());
        let c = cards[probe % cards.len()];
        let back = scaler.unscale(scaler.scale(c));
        let q = (back / c as f64).max(c as f64 / back);
        prop_assert!(q < 1.01, "card {} → {} (q {})", c, back, q);
    }
}
