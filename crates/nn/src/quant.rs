//! Post-training quantization for frozen models: int8 and bf16 weights with
//! f32 accumulation.
//!
//! At serving time the models are memory-bound (see [`crate::gemv`]): the
//! binding cost of an estimate is streaming the weight matrices. Shrinking
//! the weights shrinks that traffic — and the resident model — by 4× (int8)
//! or 2× (bf16). The transform is one-shot and offline: a trained, frozen
//! `f32` model is walked once ([`crate::Sequential::quantized`],
//! [`crate::Made::quantized`]) and the compact representation serves all
//! subsequent inference. Training never sees quantized weights.
//!
//! Numerics:
//!
//! * **Int8** is symmetric per-output-channel: column `j` of a weight
//!   matrix stores `q = round(w / scale_j)` clamped to `[-127, 127]` with
//!   `scale_j = max|w[:, j]| / 127`, so every dequantized weight is within
//!   `scale_j / 2` of the original (the analytic bound the proptests
//!   enforce). The forward pass accumulates `Σ x·q` in f32 and applies the
//!   scale once per output: `y_j = scale_j · Σ_k x_k q_kj + b_j`.
//! * **Bf16** keeps the top 16 bits of the f32 representation
//!   (round-to-nearest-even), a ~2⁻⁸ relative error per weight; the forward
//!   pass widens each weight back to f32 and accumulates in f32.
//!
//! Unlike the GEMV/blocked split, quantized inference is **not** bitwise
//! equal to f32 inference — it is gated on estimator q-error instead (the
//! `quantized-parity` CI leg). Biases stay f32 in both modes: they are
//! `O(width)` against `O(width²)` weights, and estimator accuracy is
//! sensitive to output offsets.

use crate::tensor::Matrix;
use crate::workspace::Workspace;
use std::io::{self, Read, Write};

/// Which reduced-precision representation a quantized model uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QuantMode {
    /// Symmetric per-output-channel int8 weights (4× smaller than f32).
    Int8,
    /// Truncated-mantissa bf16 weights (2× smaller than f32).
    Bf16,
}

impl QuantMode {
    /// Stable human-readable name (flags, logs, bench artifacts).
    pub fn name(self) -> &'static str {
        match self {
            QuantMode::Int8 => "int8",
            QuantMode::Bf16 => "bf16",
        }
    }

    /// Parses the [`QuantMode::name`] form (case-insensitive).
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_lowercase().as_str() {
            "int8" => Some(QuantMode::Int8),
            "bf16" => Some(QuantMode::Bf16),
            _ => None,
        }
    }
}

/// Converts an `f32` to bf16 bits with round-to-nearest-even.
pub fn f32_to_bf16(x: f32) -> u16 {
    let bits = x.to_bits();
    if x.is_nan() {
        // Keep sign and a quiet payload so the value stays a NaN.
        return ((bits >> 16) as u16) | 0x0040;
    }
    let round = 0x7FFF + ((bits >> 16) & 1);
    ((bits.wrapping_add(round)) >> 16) as u16
}

/// Widens bf16 bits back to `f32` (exact).
pub fn bf16_to_f32(h: u16) -> f32 {
    f32::from_bits(u32::from(h) << 16)
}

/// The per-output-channel int8 scale for a weight column with maximum
/// absolute value `amax` (1.0 when the column is all-zero, so `q = 0`
/// round-trips exactly).
pub fn int8_scale(amax: f32) -> f32 {
    if amax == 0.0 {
        1.0
    } else {
        amax / 127.0
    }
}

/// Quantized weight storage of one dense layer (row-major `fan_in × fan_out`,
/// matching the f32 layout).
enum QuantWeights {
    /// `q = round(w / scale_col)` with one scale per output column.
    Int8 { q: Vec<i8>, scales: Vec<f32> },
    /// bf16 bit patterns of the original weights.
    Bf16 { h: Vec<u16> },
}

/// A frozen dense layer with reduced-precision weights and f32 bias —
/// the quantized form of both [`crate::Dense`] and [`crate::MaskedDense`]
/// (the connectivity mask is already baked into the weights: masked entries
/// are exactly zero and quantize to exactly zero).
pub struct QuantizedDense {
    fan_in: usize,
    fan_out: usize,
    weights: QuantWeights,
    bias: Vec<f32>,
}

impl QuantizedDense {
    /// Serializes this layer's payload (shape, weights, scales, bias) —
    /// shared by [`QuantizedSequential::save`] and `QuantizedMade::save`.
    /// The [`QuantMode`] is carried by the container, not repeated per layer.
    pub fn write_payload<W: Write>(&self, writer: &mut W) -> io::Result<()> {
        writer.write_all(&(self.fan_in as u32).to_le_bytes())?;
        writer.write_all(&(self.fan_out as u32).to_le_bytes())?;
        match &self.weights {
            QuantWeights::Int8 { q, scales } => {
                let bytes: Vec<u8> = q.iter().map(|&v| v as u8).collect();
                writer.write_all(&bytes)?;
                crate::serialize::write_f32s(writer, scales)?;
            }
            QuantWeights::Bf16 { h } => write_u16s(writer, h)?,
        }
        crate::serialize::write_f32s(writer, &self.bias)
    }

    /// Restores a layer payload written by [`QuantizedDense::write_payload`]
    /// at the given mode.
    pub fn read_payload<R: Read>(reader: &mut R, mode: QuantMode) -> io::Result<Self> {
        let fan_in = read_u32(reader)? as usize;
        let fan_out = read_u32(reader)? as usize;
        let len = fan_in * fan_out;
        let weights = match mode {
            QuantMode::Int8 => {
                let mut bytes = vec![0u8; len];
                reader.read_exact(&mut bytes)?;
                let q = bytes.iter().map(|&v| v as i8).collect();
                let scales = read_f32s(reader, fan_out)?;
                QuantWeights::Int8 { q, scales }
            }
            QuantMode::Bf16 => {
                let mut h = vec![0u16; len];
                read_u16s(reader, &mut h)?;
                QuantWeights::Bf16 { h }
            }
        };
        let bias = read_f32s(reader, fan_out)?;
        Ok(Self {
            fan_in,
            fan_out,
            weights,
            bias,
        })
    }

    /// Quantizes a `fan_in × fan_out` weight matrix plus bias row.
    pub fn from_weights(w: &Matrix, bias: &[f32], mode: QuantMode) -> Self {
        let (fan_in, fan_out) = (w.rows(), w.cols());
        assert_eq!(bias.len(), fan_out, "bias length must match fan_out");
        let weights = match mode {
            QuantMode::Int8 => {
                let mut scales = vec![0.0f32; fan_out];
                for r in 0..fan_in {
                    for (s, &v) in scales.iter_mut().zip(w.row(r)) {
                        *s = s.max(v.abs());
                    }
                }
                for s in &mut scales {
                    *s = int8_scale(*s);
                }
                let mut q = Vec::with_capacity(fan_in * fan_out);
                for r in 0..fan_in {
                    for (j, &v) in w.row(r).iter().enumerate() {
                        q.push((v / scales[j]).round().clamp(-127.0, 127.0) as i8);
                    }
                }
                QuantWeights::Int8 { q, scales }
            }
            QuantMode::Bf16 => QuantWeights::Bf16 {
                h: w.as_slice().iter().map(|&v| f32_to_bf16(v)).collect(),
            },
        };
        Self {
            fan_in,
            fan_out,
            weights,
            bias: bias.to_vec(),
        }
    }

    /// Input dimensionality.
    pub fn fan_in(&self) -> usize {
        self.fan_in
    }

    /// Output dimensionality.
    pub fn fan_out(&self) -> usize {
        self.fan_out
    }

    /// The quantization mode of this layer.
    pub fn mode(&self) -> QuantMode {
        match self.weights {
            QuantWeights::Int8 { .. } => QuantMode::Int8,
            QuantWeights::Bf16 { .. } => QuantMode::Bf16,
        }
    }

    /// Per-output-channel scales (int8 mode only).
    pub fn scales(&self) -> Option<&[f32]> {
        match &self.weights {
            QuantWeights::Int8 { scales, .. } => Some(scales),
            QuantWeights::Bf16 { .. } => None,
        }
    }

    /// The dequantized weight matrix `w' ≈ w` (test/diagnostic surface for
    /// the analytic error bounds).
    pub fn dequantized_weights(&self) -> Matrix {
        match &self.weights {
            QuantWeights::Int8 { q, scales } => Matrix::from_fn(self.fan_in, self.fan_out, |r, c| {
                f32::from(q[r * self.fan_out + c]) * scales[c]
            }),
            QuantWeights::Bf16 { h } => {
                Matrix::from_fn(self.fan_in, self.fan_out, |r, c| bf16_to_f32(h[r * self.fan_out + c]))
            }
        }
    }

    /// Actual bytes held by this layer (quantized weights + scales + f32
    /// bias) — the honest number behind quantized `memory_bytes`.
    pub fn memory_bytes(&self) -> usize {
        let w = match &self.weights {
            QuantWeights::Int8 { q, scales } => q.len() + scales.len() * 4,
            QuantWeights::Bf16 { h } => h.len() * 2,
        };
        w + self.bias.len() * 4
    }

    /// Number of scalar parameters represented (weights + bias).
    pub fn param_count(&self) -> usize {
        self.fan_in * self.fan_out + self.bias.len()
    }

    /// `y = x·W' + b` into a workspace buffer; accumulation is f32.
    pub fn forward_infer(&self, x: &Matrix, ws: &mut Workspace) -> Matrix {
        self.forward_columns_infer(x, 0, self.fan_out, ws)
    }

    /// Column-sliced forward `y = x·W'[:, lo..hi] + b[lo..hi]` — the
    /// quantized counterpart of
    /// [`crate::MaskedDense::forward_columns_infer`], used by the
    /// autoregressive sampler to evaluate one logit segment per step.
    pub fn forward_columns_infer(&self, x: &Matrix, lo: usize, hi: usize, ws: &mut Workspace) -> Matrix {
        assert_eq!(x.cols(), self.fan_in, "input width must match fan_in");
        assert!(lo <= hi && hi <= self.fan_out, "column slice out of range");
        let (m, n, width) = (x.rows(), self.fan_out, hi - lo);
        let mut y = ws.take(m, width);
        for r in 0..m {
            let xrow = x.row(r);
            let orow = y.row_mut(r);
            match &self.weights {
                QuantWeights::Int8 { q, scales } => {
                    for (kk, &xv) in xrow.iter().enumerate() {
                        if xv == 0.0 {
                            continue;
                        }
                        let wrow = &q[kk * n + lo..kk * n + hi];
                        for (o, &qv) in orow.iter_mut().zip(wrow) {
                            *o += xv * f32::from(qv);
                        }
                    }
                    for ((o, &s), &b) in orow.iter_mut().zip(&scales[lo..hi]).zip(&self.bias[lo..hi]) {
                        *o = *o * s + b;
                    }
                }
                QuantWeights::Bf16 { h } => {
                    for (kk, &xv) in xrow.iter().enumerate() {
                        if xv == 0.0 {
                            continue;
                        }
                        let wrow = &h[kk * n + lo..kk * n + hi];
                        for (o, &hv) in orow.iter_mut().zip(wrow) {
                            *o += xv * bf16_to_f32(hv);
                        }
                    }
                    for (o, &b) in orow.iter_mut().zip(&self.bias[lo..hi]) {
                        *o += b;
                    }
                }
            }
        }
        y
    }
}

/// One stage of a [`QuantizedSequential`]: the quantized forms of the five
/// layer kinds the f32 [`crate::Sequential`] models use.
pub enum QuantLayer {
    /// Quantized [`crate::Dense`] / [`crate::MaskedDense`].
    Dense(QuantizedDense),
    /// ReLU (parameter-free, unchanged by quantization).
    Relu,
    /// Logistic sigmoid (parameter-free).
    Sigmoid,
    /// Identity — the inference-time behavior of [`crate::Dropout`].
    Identity,
}

impl QuantLayer {
    fn forward_infer_owned(&self, x: Matrix, ws: &mut Workspace) -> Matrix {
        match self {
            QuantLayer::Dense(d) => {
                let y = d.forward_infer(&x, ws);
                ws.recycle(x);
                y
            }
            QuantLayer::Relu => {
                let mut x = x;
                x.as_mut_slice().iter_mut().for_each(|v| *v = v.max(0.0));
                x
            }
            QuantLayer::Sigmoid => {
                let mut x = x;
                x.as_mut_slice().iter_mut().for_each(|v| *v = 1.0 / (1.0 + (-*v).exp()));
                x
            }
            QuantLayer::Identity => x,
        }
    }

    fn memory_bytes(&self) -> usize {
        match self {
            QuantLayer::Dense(d) => d.memory_bytes(),
            _ => 0,
        }
    }

    fn param_count(&self) -> usize {
        match self {
            QuantLayer::Dense(d) => d.param_count(),
            _ => 0,
        }
    }
}

/// A frozen, quantized sequential model: the inference-only counterpart of
/// [`crate::Sequential`], produced by [`crate::Sequential::quantized`].
pub struct QuantizedSequential {
    mode: QuantMode,
    layers: Vec<QuantLayer>,
}

impl QuantizedSequential {
    /// Assembles a model from already-quantized layers.
    pub fn from_layers(mode: QuantMode, layers: Vec<QuantLayer>) -> Self {
        Self { mode, layers }
    }

    /// The quantization mode.
    pub fn mode(&self) -> QuantMode {
        self.mode
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Whether the stack is empty.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Shared-state inference forward, mirroring
    /// [`crate::Layer::forward_infer`]: buffers from the caller's
    /// [`Workspace`], safe from any number of threads concurrently.
    pub fn forward_infer(&self, x: &Matrix, ws: &mut Workspace) -> Matrix {
        let mut h = match self.layers.first() {
            Some(QuantLayer::Dense(d)) => d.forward_infer(x, ws),
            Some(_) | None => {
                let mut h = ws.take_full(x.rows(), x.cols());
                h.as_mut_slice().copy_from_slice(x.as_slice());
                if let Some(first) = self.layers.first() {
                    h = first.forward_infer_owned(h, ws);
                }
                h
            }
        };
        for layer in self.layers.iter().skip(1) {
            h = layer.forward_infer_owned(h, ws);
        }
        h
    }

    /// Actual resident bytes of the quantized parameters.
    pub fn memory_bytes(&self) -> usize {
        self.layers.iter().map(QuantLayer::memory_bytes).sum()
    }

    /// Number of scalar parameters represented.
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(QuantLayer::param_count).sum()
    }

    /// Serializes the model (self-describing; see [`QUANT_MAGIC`]).
    pub fn save<W: Write>(&self, writer: &mut W) -> io::Result<()> {
        writer.write_all(QUANT_MAGIC)?;
        writer.write_all(&[match self.mode {
            QuantMode::Int8 => 0u8,
            QuantMode::Bf16 => 1u8,
        }])?;
        writer.write_all(&(self.layers.len() as u32).to_le_bytes())?;
        for layer in &self.layers {
            match layer {
                QuantLayer::Dense(d) => {
                    writer.write_all(&[0u8])?;
                    d.write_payload(writer)?;
                }
                QuantLayer::Relu => writer.write_all(&[1u8])?,
                QuantLayer::Sigmoid => writer.write_all(&[2u8])?,
                QuantLayer::Identity => writer.write_all(&[3u8])?,
            }
        }
        Ok(())
    }

    /// Restores a model serialized by [`QuantizedSequential::save`].
    pub fn load<R: Read>(reader: &mut R) -> io::Result<Self> {
        let mut magic = [0u8; 8];
        reader.read_exact(&mut magic)?;
        if &magic != QUANT_MAGIC {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "bad magic: not an LMKG quantized-model file",
            ));
        }
        let mut byte = [0u8; 1];
        reader.read_exact(&mut byte)?;
        let mode = match byte[0] {
            0 => QuantMode::Int8,
            1 => QuantMode::Bf16,
            other => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("unknown quantization mode tag {other}"),
                ))
            }
        };
        let count = read_u32(reader)? as usize;
        let mut layers = Vec::with_capacity(count);
        for i in 0..count {
            reader.read_exact(&mut byte)?;
            match byte[0] {
                0 => layers.push(QuantLayer::Dense(QuantizedDense::read_payload(reader, mode)?)),
                1 => layers.push(QuantLayer::Relu),
                2 => layers.push(QuantLayer::Sigmoid),
                3 => layers.push(QuantLayer::Identity),
                other => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("layer {i}: unknown layer tag {other}"),
                    ))
                }
            }
        }
        Ok(Self { mode, layers })
    }
}

/// Magic prefix of the quantized-model format (parallel to the f32 format's
/// `LMKGNN1\0` in [`crate::serialize`]).
pub const QUANT_MAGIC: &[u8; 8] = b"LMKGQT1\0";

fn read_u32<R: Read>(reader: &mut R) -> io::Result<u32> {
    let mut buf = [0u8; 4];
    reader.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

fn read_f32s<R: Read>(reader: &mut R, n: usize) -> io::Result<Vec<f32>> {
    let mut out = vec![0.0f32; n];
    crate::serialize::read_f32s(reader, &mut out)?;
    Ok(out)
}

fn write_u16s<W: Write>(writer: &mut W, values: &[u16]) -> io::Result<()> {
    let mut bytes = Vec::with_capacity(values.len() * 2);
    for &v in values {
        bytes.extend_from_slice(&v.to_le_bytes());
    }
    writer.write_all(&bytes)
}

fn read_u16s<R: Read>(reader: &mut R, values: &mut [u16]) -> io::Result<()> {
    let mut bytes = vec![0u8; values.len() * 2];
    reader.read_exact(&mut bytes)?;
    for (v, src) in values.iter_mut().zip(bytes.chunks_exact(2)) {
        *v = u16::from_le_bytes(src.try_into().expect("2-byte chunk"));
    }
    Ok(())
}

/// A quantized embedding table (`vocab × dim`) with per-**row** int8 scales:
/// each vocabulary entry is one lookup unit, so its scale travels with the
/// row. The quantized form of [`crate::embedding::Embedding`].
pub struct QuantizedEmbedding {
    vocab: usize,
    dim: usize,
    table: QuantTable,
}

enum QuantTable {
    Int8 { q: Vec<i8>, scales: Vec<f32> },
    Bf16 { h: Vec<u16> },
}

impl QuantizedEmbedding {
    /// Quantizes a `vocab × dim` table.
    pub fn from_table(table: &Matrix, mode: QuantMode) -> Self {
        let (vocab, dim) = (table.rows(), table.cols());
        let t = match mode {
            QuantMode::Int8 => {
                let mut q = Vec::with_capacity(vocab * dim);
                let mut scales = Vec::with_capacity(vocab);
                for r in 0..vocab {
                    let row = table.row(r);
                    let amax = row.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
                    let scale = int8_scale(amax);
                    scales.push(scale);
                    q.extend(row.iter().map(|&v| (v / scale).round().clamp(-127.0, 127.0) as i8));
                }
                QuantTable::Int8 { q, scales }
            }
            QuantMode::Bf16 => QuantTable::Bf16 {
                h: table.as_slice().iter().map(|&v| f32_to_bf16(v)).collect(),
            },
        };
        Self { vocab, dim, table: t }
    }

    /// Embedding dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Vocabulary size.
    pub fn vocab(&self) -> usize {
        self.vocab
    }

    /// Writes the dequantized embedding of `id` into `out` (length `dim`).
    pub fn lookup_into(&self, id: usize, out: &mut [f32]) {
        debug_assert_eq!(out.len(), self.dim);
        match &self.table {
            QuantTable::Int8 { q, scales } => {
                let s = scales[id];
                for (o, &v) in out.iter_mut().zip(&q[id * self.dim..(id + 1) * self.dim]) {
                    *o = f32::from(v) * s;
                }
            }
            QuantTable::Bf16 { h } => {
                for (o, &v) in out.iter_mut().zip(&h[id * self.dim..(id + 1) * self.dim]) {
                    *o = bf16_to_f32(v);
                }
            }
        }
    }

    /// Actual bytes held by the table.
    pub fn memory_bytes(&self) -> usize {
        match &self.table {
            QuantTable::Int8 { q, scales } => q.len() + scales.len() * 4,
            QuantTable::Bf16 { h } => h.len() * 2,
        }
    }

    /// Number of scalar parameters represented.
    pub fn param_count(&self) -> usize {
        self.vocab * self.dim
    }

    /// Serializes the table payload (shape + quantized rows + scales); the
    /// [`QuantMode`] travels with the container, like
    /// [`QuantizedDense::write_payload`].
    pub fn write_payload<W: Write>(&self, writer: &mut W) -> io::Result<()> {
        writer.write_all(&(self.vocab as u32).to_le_bytes())?;
        writer.write_all(&(self.dim as u32).to_le_bytes())?;
        match &self.table {
            QuantTable::Int8 { q, scales } => {
                let bytes: Vec<u8> = q.iter().map(|&v| v as u8).collect();
                writer.write_all(&bytes)?;
                crate::serialize::write_f32s(writer, scales)
            }
            QuantTable::Bf16 { h } => write_u16s(writer, h),
        }
    }

    /// Restores a table payload written by
    /// [`QuantizedEmbedding::write_payload`] at the given mode.
    pub fn read_payload<R: Read>(reader: &mut R, mode: QuantMode) -> io::Result<Self> {
        let vocab = read_u32(reader)? as usize;
        let dim = read_u32(reader)? as usize;
        let len = vocab * dim;
        let table = match mode {
            QuantMode::Int8 => {
                let mut bytes = vec![0u8; len];
                reader.read_exact(&mut bytes)?;
                let q = bytes.iter().map(|&v| v as i8).collect();
                let scales = read_f32s(reader, vocab)?;
                QuantTable::Int8 { q, scales }
            }
            QuantMode::Bf16 => {
                let mut h = vec![0u16; len];
                read_u16s(reader, &mut h)?;
                QuantTable::Bf16 { h }
            }
        };
        Ok(Self { vocab, dim, table })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Dense, Dropout, Layer, Relu, Sequential, Sigmoid};
    use crate::test_support::seeded_matrix;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn fixture_model() -> Sequential {
        let mut rng = StdRng::seed_from_u64(42);
        let mut m = Sequential::new();
        m.push(Dense::new_he(&mut rng, 12, 64));
        m.push(Relu::new());
        m.push(Dropout::new(0.1, 7));
        m.push(Dense::new_he(&mut rng, 64, 64));
        m.push(Relu::new());
        m.push(Dense::new_xavier(&mut rng, 64, 1));
        m.push(Sigmoid::new());
        m
    }

    #[test]
    fn bf16_roundtrip_is_exact_for_representable_values() {
        for v in [0.0f32, -0.0, 1.0, -2.5, 0.15625, f32::INFINITY] {
            assert_eq!(bf16_to_f32(f32_to_bf16(v)), v);
        }
        assert!(bf16_to_f32(f32_to_bf16(f32::NAN)).is_nan());
    }

    #[test]
    fn bf16_error_is_bounded_relative() {
        let m = seeded_matrix(50, 40, 5);
        for &v in m.as_slice() {
            let back = bf16_to_f32(f32_to_bf16(v));
            assert!((back - v).abs() <= v.abs() / 256.0, "{v} -> {back}");
        }
    }

    #[test]
    fn int8_dequantization_error_within_half_scale() {
        let w = seeded_matrix(37, 23, 9);
        let d = QuantizedDense::from_weights(&w, &[0.0; 23], QuantMode::Int8);
        let scales = d.scales().unwrap();
        let wq = d.dequantized_weights();
        for r in 0..w.rows() {
            for (c, &scale) in scales.iter().enumerate() {
                let err = (w.get(r, c) - wq.get(r, c)).abs();
                assert!(
                    err <= scale / 2.0 + f32::EPSILON,
                    "({r},{c}): err {err} vs scale/2 {}",
                    scale / 2.0
                );
            }
        }
    }

    #[test]
    fn zero_columns_quantize_to_exact_zero() {
        let mut w = seeded_matrix(8, 3, 1);
        for r in 0..8 {
            w.set(r, 1, 0.0);
        }
        let d = QuantizedDense::from_weights(&w, &[0.0; 3], QuantMode::Int8);
        let wq = d.dequantized_weights();
        for r in 0..8 {
            assert_eq!(wq.get(r, 1), 0.0);
        }
        assert_eq!(d.scales().unwrap()[1], 1.0);
    }

    #[test]
    fn quantized_forward_tracks_f32_forward() {
        let mut model = fixture_model();
        let x = seeded_matrix(6, 12, 3);
        let expected = model.forward(&x, false);
        for mode in [QuantMode::Int8, QuantMode::Bf16] {
            let q = model.quantized(mode);
            let mut ws = Workspace::new();
            let got = q.forward_infer(&x, &mut ws);
            for (g, e) in got.as_slice().iter().zip(expected.as_slice()) {
                assert!((g - e).abs() < 0.05, "{} mode: {g} vs {e}", mode.name());
            }
        }
    }

    /// Measured at serving-representative widths (fan_in ≥ 64). Narrower
    /// layers keep their f32 biases and per-column scales, which dominate
    /// below that and cap the achievable ratio — the analytic ratio for a
    /// dense layer is `(4·fan_in + 4) / (fan_in + 8)`.
    #[test]
    fn memory_shrinks_by_mode_ratio() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut model = Sequential::new();
        model.push(Dense::new_he(&mut rng, 64, 128));
        model.push(Relu::new());
        model.push(Dense::new_he(&mut rng, 128, 128));
        model.push(Relu::new());
        model.push(Dense::new_xavier(&mut rng, 128, 1));
        model.push(Sigmoid::new());
        let f32_bytes = model.param_count() * 4;
        let int8 = model.quantized(QuantMode::Int8).memory_bytes();
        let bf16 = model.quantized(QuantMode::Bf16).memory_bytes();
        assert!(
            int8 * 7 / 2 <= f32_bytes,
            "int8 {int8} bytes must be ≥3.5× smaller than {f32_bytes}"
        );
        assert!(
            bf16 * 2 <= f32_bytes + model.param_count(),
            "bf16 {bf16} vs {f32_bytes}"
        );
        assert_eq!(model.quantized(QuantMode::Int8).param_count(), model.param_count());
    }

    #[test]
    fn serialize_roundtrip_reproduces_outputs_bitwise() {
        let mut model = fixture_model();
        let x = seeded_matrix(4, 12, 8);
        let _ = model.forward(&x, false);
        for mode in [QuantMode::Int8, QuantMode::Bf16] {
            let q = model.quantized(mode);
            let mut ws = Workspace::new();
            let expected = q.forward_infer(&x, &mut ws);
            let mut buf = Vec::new();
            q.save(&mut buf).unwrap();
            let loaded = QuantizedSequential::load(&mut buf.as_slice()).unwrap();
            assert_eq!(loaded.mode(), mode);
            assert_eq!(loaded.len(), q.len());
            assert_eq!(loaded.memory_bytes(), q.memory_bytes());
            let got = loaded.forward_infer(&x, &mut ws);
            assert_eq!(got, expected, "{} roundtrip must be bitwise", mode.name());
        }
    }

    #[test]
    fn load_rejects_bad_magic_and_bad_tags() {
        assert!(QuantizedSequential::load(&mut b"NOTQUANT".as_slice()).is_err());
        let mut buf = Vec::new();
        fixture_model().quantized(QuantMode::Int8).save(&mut buf).unwrap();
        buf[8] = 9; // invalid mode tag
        assert!(QuantizedSequential::load(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn quantized_embedding_lookup_matches_dequantized_table() {
        let table = seeded_matrix(11, 16, 21);
        for mode in [QuantMode::Int8, QuantMode::Bf16] {
            let qe = QuantizedEmbedding::from_table(&table, mode);
            assert_eq!((qe.vocab(), qe.dim()), (11, 16));
            let mut buf = vec![0.0f32; 16];
            for id in 0..11 {
                qe.lookup_into(id, &mut buf);
                let amax = table.row(id).iter().fold(0.0f32, |m, &v| m.max(v.abs()));
                let bound = match mode {
                    QuantMode::Int8 => int8_scale(amax) / 2.0 + f32::EPSILON,
                    QuantMode::Bf16 => amax / 256.0,
                };
                for (got, &want) in buf.iter().zip(table.row(id)) {
                    assert!((got - want).abs() <= bound, "id {id}: {got} vs {want}");
                }
            }
            assert!(qe.memory_bytes() < 11 * 16 * 4);
        }
    }
}
