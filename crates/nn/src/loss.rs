//! Loss functions.
//!
//! Every function returns `(mean loss, gradient w.r.t. predictions)` so the
//! caller can feed the gradient straight into `Layer::backward`.
//!
//! The paper trains LMKG-S on the *mean q-error*
//! `q(y, ŷ) = max(ŷ/y, y/ŷ)` over log-scaled, min-max-normalized targets
//! (§VI-A). In normalized-log space that is `exp(r·ln2·|Δ|)` where `r` is the
//! log-range; we clamp the exponent to keep early-training gradients finite.

use crate::tensor::Matrix;

/// Sign that is zero at zero (`f32::signum` maps ±0.0 to ±1.0, which would
/// produce a non-zero gradient at the optimum).
#[inline]
fn sign(d: f32) -> f32 {
    if d > 0.0 {
        1.0
    } else if d < 0.0 {
        -1.0
    } else {
        0.0
    }
}

/// Mean squared error.
pub fn mse(pred: &Matrix, target: &Matrix) -> (f32, Matrix) {
    assert_eq!((pred.rows(), pred.cols()), (target.rows(), target.cols()));
    let n = pred.len() as f32;
    let mut loss = 0.0f32;
    let grad = pred.zip_map(target, |p, t| {
        let d = p - t;
        loss += d * d;
        2.0 * d / n
    });
    (loss / n, grad)
}

/// Mean absolute error (L1). In normalized-log space this is the logarithm of
/// the geometric q-error — a robust alternative the framework exposes for
/// ablation.
pub fn mae(pred: &Matrix, target: &Matrix) -> (f32, Matrix) {
    assert_eq!((pred.rows(), pred.cols()), (target.rows(), target.cols()));
    let n = pred.len() as f32;
    let mut loss = 0.0f32;
    let grad = pred.zip_map(target, |p, t| {
        let d = p - t;
        loss += d.abs();
        sign(d) / n
    });
    (loss / n, grad)
}

/// Mean q-error over normalized-log predictions.
///
/// `pred` and `target` hold `minmax(log2(card))` values; `log_range` is the
/// span `max_log2 − min_log2` of the scaler, so that
/// `q = 2^(log_range·|pred−target|)`. The exponent is clamped at `max_exp`
/// (in log2 units) for numerical stability.
pub fn q_error(pred: &Matrix, target: &Matrix, log_range: f32, max_exp: f32) -> (f32, Matrix) {
    assert_eq!((pred.rows(), pred.cols()), (target.rows(), target.cols()));
    let n = pred.len() as f32;
    let ln2 = std::f32::consts::LN_2;
    let mut loss = 0.0f32;
    let grad = pred.zip_map(target, |p, t| {
        let d = p - t;
        let exponent = (log_range * d.abs()).min(max_exp);
        let q = exponent.exp2();
        loss += q;
        // dq/dp = ln2 · log_range · sign(d) · q, except where clamped (slope 0);
        // keep the clamped slope to preserve a descent direction.
        sign(d) * ln2 * log_range * q / n
    });
    (loss / n, grad)
}

/// Softmax cross-entropy over *segments* of the output vector.
///
/// Autoregressive models emit one logit block per position; `segments[i]`
/// is the width of block `i` and `targets[row][i]` the class index within
/// block `i`. Returns the mean (over rows) *sum* over blocks of per-block
/// CE — i.e. the negative log-likelihood of the tuple — plus the gradient.
pub fn segmented_cross_entropy(logits: &Matrix, segments: &[usize], targets: &[Vec<usize>]) -> (f32, Matrix) {
    let total: usize = segments.iter().sum();
    assert_eq!(logits.cols(), total, "logit width must equal sum of segments");
    assert_eq!(logits.rows(), targets.len(), "one target row per batch row");
    let batch = logits.rows();
    let mut grad = Matrix::zeros(batch, total);
    let mut loss = 0.0f64;

    for (r, target_row) in targets.iter().enumerate() {
        let row = logits.row(r);
        let grad_row = grad.row_mut(r);
        let mut offset = 0usize;
        for (i, &width) in segments.iter().enumerate() {
            let seg = &row[offset..offset + width];
            let target = target_row[i];
            assert!(
                target < width,
                "target {target} out of range for segment {i} (width {width})"
            );

            let max = seg.iter().fold(f32::NEG_INFINITY, |m, &x| m.max(x));
            let mut sum = 0.0f32;
            for &x in seg {
                sum += (x - max).exp();
            }
            let log_sum = sum.ln() + max;
            loss += f64::from(log_sum - seg[target]);

            let gseg = &mut grad_row[offset..offset + width];
            for (g, &x) in gseg.iter_mut().zip(seg) {
                *g = (x - log_sum).exp() / batch as f32;
            }
            gseg[target] -= 1.0 / batch as f32;
            offset += width;
        }
    }
    ((loss / batch as f64) as f32, grad)
}

/// Log-probabilities `log P(class = targets[r][i])` per row and segment,
/// computed with the same stable log-softmax as the loss. Used at inference
/// by the autoregressive sampler.
pub fn segmented_log_probs(logits: &Matrix, segments: &[usize], targets: &[Vec<usize>]) -> Vec<Vec<f32>> {
    let total: usize = segments.iter().sum();
    assert_eq!(logits.cols(), total);
    assert_eq!(logits.rows(), targets.len(), "one target row per logit row");
    let mut out = Vec::with_capacity(logits.rows());
    for (r, target_row) in targets.iter().enumerate() {
        let row = logits.row(r);
        let mut offset = 0;
        let mut per_seg = Vec::with_capacity(segments.len());
        for (i, &width) in segments.iter().enumerate() {
            let seg = &row[offset..offset + width];
            let target = target_row[i];
            let max = seg.iter().fold(f32::NEG_INFINITY, |m, &x| m.max(x));
            let sum: f32 = seg.iter().map(|&x| (x - max).exp()).sum();
            per_seg.push(seg[target] - max - sum.ln());
            offset += width;
        }
        out.push(per_seg);
    }
    out
}

/// Stable in-place softmax over a slice; returns nothing, mutates `xs`.
pub fn softmax_in_place(xs: &mut [f32]) {
    let max = xs.iter().fold(f32::NEG_INFINITY, |m, &x| m.max(x));
    let mut sum = 0.0f32;
    for x in xs.iter_mut() {
        *x = (*x - max).exp();
        sum += *x;
    }
    if sum > 0.0 {
        for x in xs.iter_mut() {
            *x /= sum;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mse_at_optimum_is_zero() {
        let p = Matrix::from_vec(1, 3, vec![1.0, 2.0, 3.0]);
        let (l, g) = mse(&p, &p);
        assert_eq!(l, 0.0);
        assert_eq!(g.max_abs(), 0.0);
    }

    #[test]
    fn mse_gradient_direction() {
        let p = Matrix::from_vec(1, 1, vec![2.0]);
        let t = Matrix::from_vec(1, 1, vec![1.0]);
        let (l, g) = mse(&p, &t);
        assert_eq!(l, 1.0);
        assert!(g.as_slice()[0] > 0.0); // prediction above target → positive grad
    }

    #[test]
    fn mae_matches_hand_computation() {
        let p = Matrix::from_vec(1, 2, vec![2.0, 0.0]);
        let t = Matrix::from_vec(1, 2, vec![1.0, 1.0]);
        let (l, g) = mae(&p, &t);
        assert_eq!(l, 1.0);
        assert_eq!(g.as_slice(), &[0.5, -0.5]);
    }

    #[test]
    fn q_error_is_one_at_optimum() {
        let p = Matrix::from_vec(1, 2, vec![0.25, 0.75]);
        let (l, g) = q_error(&p, &p, 20.0, 30.0);
        assert!((l - 1.0).abs() < 1e-6); // q-error of a perfect estimate is 1
        assert_eq!(g.max_abs(), 0.0);
    }

    #[test]
    fn q_error_matches_definition() {
        // Δ = 0.1 at range 10 → q = 2^1 = 2.
        let p = Matrix::from_vec(1, 1, vec![0.6]);
        let t = Matrix::from_vec(1, 1, vec![0.5]);
        let (l, _) = q_error(&p, &t, 10.0, 30.0);
        assert!((l - 2.0).abs() < 1e-4, "loss {l}");
    }

    #[test]
    fn q_error_clamps_exponent() {
        let p = Matrix::from_vec(1, 1, vec![1.0]);
        let t = Matrix::from_vec(1, 1, vec![0.0]);
        let (l, g) = q_error(&p, &t, 100.0, 10.0);
        assert!((l - 1024.0).abs() < 1e-2); // 2^10, not 2^100
        assert!(g.as_slice()[0].is_finite());
    }

    #[test]
    fn q_error_numeric_gradient() {
        let t = Matrix::from_vec(1, 1, vec![0.4]);
        let at = |v: f32| q_error(&Matrix::from_vec(1, 1, vec![v]), &t, 8.0, 30.0).0;
        let x = 0.55f32;
        let (_, g) = q_error(&Matrix::from_vec(1, 1, vec![x]), &t, 8.0, 30.0);
        let eps = 1e-3;
        let numeric = (at(x + eps) - at(x - eps)) / (2.0 * eps);
        let analytic = g.as_slice()[0];
        assert!(
            (numeric - analytic).abs() / numeric.abs().max(1e-3) < 0.02,
            "numeric {numeric} analytic {analytic}"
        );
    }

    #[test]
    fn segmented_ce_uniform_logits() {
        // Two segments of widths 2 and 4, uniform logits → loss = ln2 + ln4.
        let logits = Matrix::zeros(1, 6);
        let (l, g) = segmented_cross_entropy(&logits, &[2, 4], &[vec![0, 1]]);
        let expected = (2.0f32).ln() + (4.0f32).ln();
        assert!((l - expected).abs() < 1e-5);
        // Gradient sums to zero per segment.
        let row = g.row(0);
        let s1: f32 = row[..2].iter().sum();
        let s2: f32 = row[2..].iter().sum();
        assert!(s1.abs() < 1e-6 && s2.abs() < 1e-6);
    }

    #[test]
    fn segmented_ce_peaked_logits_low_loss() {
        let mut logits = Matrix::zeros(1, 4);
        logits.set(0, 1, 20.0); // segment 0 (cols 0..2): class 1
        logits.set(0, 3, 20.0);
        let (l, _) = segmented_cross_entropy(&logits, &[2, 2], &[vec![1, 1]]);
        assert!(l < 1e-3, "loss {l}");
    }

    #[test]
    fn segmented_ce_numeric_gradient() {
        let logits = Matrix::from_vec(1, 5, vec![0.3, -0.2, 0.5, 0.1, -0.4]);
        let segs = [2usize, 3];
        let targets = vec![vec![1usize, 2]];
        let (_, g) = segmented_cross_entropy(&logits, &segs, &targets);
        let eps = 1e-2f32;
        for i in 0..5 {
            let mut lp = logits.clone();
            lp.as_mut_slice()[i] += eps;
            let mut lm = logits.clone();
            lm.as_mut_slice()[i] -= eps;
            let numeric = (segmented_cross_entropy(&lp, &segs, &targets).0
                - segmented_cross_entropy(&lm, &segs, &targets).0)
                / (2.0 * eps);
            let analytic = g.as_slice()[i];
            assert!(
                (numeric - analytic).abs() < 2e-3,
                "elem {i}: numeric {numeric} analytic {analytic}"
            );
        }
    }

    #[test]
    fn segmented_log_probs_consistent_with_ce() {
        let logits = Matrix::from_vec(2, 4, vec![0.5, -0.5, 1.0, 2.0, 0.0, 0.0, 0.0, 0.0]);
        let segs = [2usize, 2];
        let targets = vec![vec![0, 1], vec![1, 0]];
        let lp = segmented_log_probs(&logits, &segs, &targets);
        // NLL from log-probs equals CE loss.
        let nll: f32 = lp.iter().map(|row| -row.iter().sum::<f32>()).sum::<f32>() / 2.0;
        let (ce, _) = segmented_cross_entropy(&logits, &segs, &targets);
        assert!((nll - ce).abs() < 1e-5);
    }

    #[test]
    fn softmax_in_place_normalizes() {
        let mut xs = vec![1.0f32, 2.0, 3.0];
        softmax_in_place(&mut xs);
        let sum: f32 = xs.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6);
        assert!(xs[2] > xs[1] && xs[1] > xs[0]);
    }
}
