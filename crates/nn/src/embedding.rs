//! Embedding tables: dense id → vector lookups with sparse-write gradients.
//!
//! LMKG-U applies a (default 32-dimensional) embedding to every term of the
//! pattern-bound encoding to keep the model small on heterogeneous KGs
//! (paper §VI-B). Tables are shared across positions of the same term space
//! (nodes share one table, predicates another).

use crate::init;
use crate::layers::Param;
use crate::tensor::Matrix;
use rand::Rng;

/// A `vocab × dim` embedding table.
pub struct Embedding {
    table: Param,
    dim: usize,
}

impl Embedding {
    /// A randomly initialized table.
    pub fn new<R: Rng>(rng: &mut R, vocab: usize, dim: usize) -> Self {
        Self {
            table: Param::new(init::embedding_init(rng, vocab, dim)),
            dim,
        }
    }

    /// Embedding dimensionality.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Vocabulary size.
    #[inline]
    pub fn vocab(&self) -> usize {
        self.table.value.rows()
    }

    /// Copies the embedding of `id` into `out` (length `dim`).
    pub fn lookup_into(&self, id: usize, out: &mut [f32]) {
        debug_assert_eq!(out.len(), self.dim);
        out.copy_from_slice(self.table.value.row(id));
    }

    /// Accumulates `grad` (length `dim`) into the gradient row of `id`.
    pub fn accumulate_grad(&mut self, id: usize, grad: &[f32]) {
        debug_assert_eq!(grad.len(), self.dim);
        for (g, &d) in self.table.grad.row_mut(id).iter_mut().zip(grad) {
            *g += d;
        }
    }

    /// Access to the underlying parameter (for optimizers/serialization).
    pub fn param_mut(&mut self) -> &mut Param {
        &mut self.table
    }

    /// Read-only access to the underlying parameter (for `&self` parameter
    /// walks).
    pub fn param(&self) -> &Param {
        &self.table
    }

    /// Read-only access to the table values.
    pub fn values(&self) -> &Matrix {
        &self.table.value
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn lookup_returns_table_row() {
        let mut rng = StdRng::seed_from_u64(0);
        let e = Embedding::new(&mut rng, 10, 4);
        let mut buf = vec![0.0; 4];
        e.lookup_into(3, &mut buf);
        assert_eq!(buf.as_slice(), e.values().row(3));
    }

    #[test]
    fn grad_accumulates_per_row() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut e = Embedding::new(&mut rng, 5, 2);
        e.accumulate_grad(2, &[1.0, 2.0]);
        e.accumulate_grad(2, &[0.5, 0.5]);
        e.accumulate_grad(4, &[-1.0, 0.0]);
        let g = &e.param_mut().grad;
        assert_eq!(g.row(2), &[1.5, 2.5]);
        assert_eq!(g.row(4), &[-1.0, 0.0]);
        assert_eq!(g.row(0), &[0.0, 0.0]);
    }

    #[test]
    fn dims_reported() {
        let mut rng = StdRng::seed_from_u64(1);
        let e = Embedding::new(&mut rng, 7, 3);
        assert_eq!(e.vocab(), 7);
        assert_eq!(e.dim(), 3);
    }
}
