//! Weight initialization schemes.

use crate::tensor::Matrix;
use rand::Rng;

/// Samples a standard normal via Box–Muller (rand's `StandardNormal` lives in
/// `rand_distr`, which is not on the offline crate list).
pub fn standard_normal<R: Rng>(rng: &mut R) -> f32 {
    loop {
        let u1: f32 = rng.gen::<f32>();
        if u1 <= f32::EPSILON {
            continue;
        }
        let u2: f32 = rng.gen::<f32>();
        return (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos();
    }
}

/// He (Kaiming) initialization — `N(0, sqrt(2 / fan_in))` — appropriate for
/// ReLU layers.
pub fn he<R: Rng>(rng: &mut R, fan_in: usize, fan_out: usize) -> Matrix {
    let std = (2.0 / fan_in as f32).sqrt();
    Matrix::from_fn(fan_in, fan_out, |_, _| standard_normal(rng) * std)
}

/// Xavier/Glorot uniform initialization — `U(±sqrt(6 / (fan_in + fan_out)))`
/// — appropriate for sigmoid/linear output layers.
pub fn xavier<R: Rng>(rng: &mut R, fan_in: usize, fan_out: usize) -> Matrix {
    let limit = (6.0 / (fan_in + fan_out) as f32).sqrt();
    Matrix::from_fn(fan_in, fan_out, |_, _| rng.gen_range(-limit..limit))
}

/// Small-uniform initialization for embedding tables.
pub fn embedding_init<R: Rng>(rng: &mut R, vocab: usize, dim: usize) -> Matrix {
    let limit = 1.0 / (dim as f32).sqrt();
    Matrix::from_fn(vocab, dim, |_, _| rng.gen_range(-limit..limit))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normal_has_plausible_moments() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 20_000;
        let samples: Vec<f32> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f32>() / n as f32;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / n as f32;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.08, "var {var}");
    }

    #[test]
    fn he_scale_matches_fan_in() {
        let mut rng = StdRng::seed_from_u64(1);
        let w = he(&mut rng, 256, 64);
        let var = w.as_slice().iter().map(|x| x * x).sum::<f32>() / w.len() as f32;
        let expected = 2.0 / 256.0;
        assert!((var - expected).abs() < expected * 0.3, "var {var} expected {expected}");
    }

    #[test]
    fn xavier_within_limits() {
        let mut rng = StdRng::seed_from_u64(2);
        let w = xavier(&mut rng, 100, 50);
        let limit = (6.0f32 / 150.0).sqrt();
        assert!(w.as_slice().iter().all(|x| x.abs() <= limit));
    }

    #[test]
    fn init_is_seed_deterministic() {
        let a = he(&mut StdRng::seed_from_u64(42), 10, 10);
        let b = he(&mut StdRng::seed_from_u64(42), 10, 10);
        assert_eq!(a, b);
    }
}
