//! Optimizers: SGD (with momentum) and Adam.
//!
//! Optimizers keep per-parameter state addressed by visitation order, which
//! is stable for a fixed model architecture (layers visit parameters in a
//! deterministic sequence).

use crate::layers::{Layer, Param};
use crate::tensor::Matrix;

/// Common optimizer interface.
pub trait Optimizer {
    /// Applies one update step using the gradients currently stored in the
    /// model's parameters, then zeroes the gradients.
    fn step(&mut self, model: &mut dyn Layer);

    /// The current learning rate.
    fn learning_rate(&self) -> f32;

    /// Overrides the learning rate (e.g. for decay schedules).
    fn set_learning_rate(&mut self, lr: f32);
}

/// Stochastic gradient descent with optional momentum.
pub struct Sgd {
    lr: f32,
    momentum: f32,
    velocity: Vec<Matrix>,
}

impl Sgd {
    /// Plain SGD.
    pub fn new(lr: f32) -> Self {
        Self {
            lr,
            momentum: 0.0,
            velocity: Vec::new(),
        }
    }

    /// SGD with classical momentum.
    pub fn with_momentum(lr: f32, momentum: f32) -> Self {
        Self {
            lr,
            momentum,
            velocity: Vec::new(),
        }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, model: &mut dyn Layer) {
        let mut idx = 0;
        let lr = self.lr;
        let momentum = self.momentum;
        let velocity = &mut self.velocity;
        model.visit_params(&mut |p: &mut Param| {
            if momentum == 0.0 {
                p.value.add_scaled(&p.grad, -lr);
            } else {
                if velocity.len() <= idx {
                    velocity.push(Matrix::zeros(p.value.rows(), p.value.cols()));
                }
                let v = &mut velocity[idx];
                v.scale(momentum);
                v.add_scaled(&p.grad, 1.0);
                p.value.add_scaled(v, -lr);
            }
            p.grad.fill(0.0);
            idx += 1;
        });
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Adam (Kingma & Ba) with bias correction.
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u64,
    m: Vec<Matrix>,
    v: Vec<Matrix>,
    /// Optional global gradient-value clamp applied before the update; `0`
    /// disables clamping. Stabilizes the exponential q-error loss.
    pub grad_clip: f32,
}

impl Adam {
    /// Adam with standard betas (0.9, 0.999).
    pub fn new(lr: f32) -> Self {
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
            grad_clip: 0.0,
        }
    }

    /// Sets elementwise gradient clamping (0 disables).
    pub fn with_grad_clip(mut self, clip: f32) -> Self {
        self.grad_clip = clip;
        self
    }
}

impl Optimizer for Adam {
    fn step(&mut self, model: &mut dyn Layer) {
        self.t += 1;
        let t = self.t as f32;
        let (lr, b1, b2, eps, clip) = (self.lr, self.beta1, self.beta2, self.eps, self.grad_clip);
        let bc1 = 1.0 - b1.powf(t);
        let bc2 = 1.0 - b2.powf(t);
        let mut idx = 0;
        let (m_state, v_state) = (&mut self.m, &mut self.v);
        model.visit_params(&mut |p: &mut Param| {
            if m_state.len() <= idx {
                m_state.push(Matrix::zeros(p.value.rows(), p.value.cols()));
                v_state.push(Matrix::zeros(p.value.rows(), p.value.cols()));
            }
            let m = &mut m_state[idx];
            let v = &mut v_state[idx];
            let pv = p.value.as_mut_slice();
            let pg = p.grad.as_mut_slice();
            let ms = m.as_mut_slice();
            let vs = v.as_mut_slice();
            for i in 0..pv.len() {
                let mut g = pg[i];
                if clip > 0.0 {
                    g = g.clamp(-clip, clip);
                }
                ms[i] = b1 * ms[i] + (1.0 - b1) * g;
                vs[i] = b2 * vs[i] + (1.0 - b2) * g * g;
                let m_hat = ms[i] / bc1;
                let v_hat = vs[i] / bc2;
                pv[i] -= lr * m_hat / (v_hat.sqrt() + eps);
                pg[i] = 0.0;
            }
            idx += 1;
        });
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Dense, Relu, Sequential};
    use crate::loss;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Trains y = 2x - 1 with a tiny MLP; loss must drop by ≥ 10×.
    fn train_regression(opt: &mut dyn Optimizer) -> (f32, f32) {
        let mut rng = StdRng::seed_from_u64(11);
        let mut model = Sequential::new();
        model.push(Dense::new_he(&mut rng, 1, 16));
        model.push(Relu::new());
        model.push(Dense::new_xavier(&mut rng, 16, 1));

        let xs: Vec<f32> = (0..64).map(|i| i as f32 / 64.0).collect();
        let ys: Vec<f32> = xs.iter().map(|x| 2.0 * x - 1.0).collect();
        let x = Matrix::from_vec(64, 1, xs);
        let t = Matrix::from_vec(64, 1, ys);

        let initial = {
            let y = model.forward(&x, false);
            loss::mse(&y, &t).0
        };
        for _ in 0..300 {
            let y = model.forward(&x, true);
            let (_, grad) = loss::mse(&y, &t);
            model.backward(&grad);
            opt.step(&mut model);
        }
        let final_loss = {
            let y = model.forward(&x, false);
            loss::mse(&y, &t).0
        };
        (initial, final_loss)
    }

    #[test]
    fn sgd_reduces_loss() {
        let (initial, final_loss) = train_regression(&mut Sgd::new(0.1));
        assert!(final_loss < initial / 10.0, "initial {initial}, final {final_loss}");
    }

    #[test]
    fn sgd_momentum_reduces_loss() {
        let (initial, final_loss) = train_regression(&mut Sgd::with_momentum(0.05, 0.9));
        assert!(final_loss < initial / 10.0, "initial {initial}, final {final_loss}");
    }

    #[test]
    fn adam_reduces_loss() {
        let (initial, final_loss) = train_regression(&mut Adam::new(0.01));
        assert!(final_loss < initial / 20.0, "initial {initial}, final {final_loss}");
    }

    #[test]
    fn adam_grad_clip_limits_updates() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut model = Sequential::new();
        model.push(Dense::new_he(&mut rng, 1, 1));
        // Plant a huge gradient.
        model.visit_params(&mut |p| p.grad.fill(1e9));
        let mut before = Vec::new();
        model.visit_params(&mut |p| before.push(p.value.clone()));
        let mut opt = Adam::new(0.001).with_grad_clip(1.0);
        opt.step(&mut model);
        // With clipping the first Adam step magnitude is ≤ lr (unit m̂/√v̂).
        let mut i = 0;
        model.visit_params(&mut |p| {
            let delta = (p.value.as_slice()[0] - before[i].as_slice()[0]).abs();
            assert!(delta <= 0.0011, "step too large: {delta}");
            i += 1;
        });
    }

    #[test]
    fn step_zeroes_gradients() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut model = Sequential::new();
        model.push(Dense::new_he(&mut rng, 2, 2));
        model.visit_params(&mut |p| p.grad.fill(1.0));
        Sgd::new(0.1).step(&mut model);
        model.visit_params(&mut |p| assert_eq!(p.grad.max_abs(), 0.0));
    }

    #[test]
    fn learning_rate_accessors() {
        let mut o = Adam::new(0.01);
        assert_eq!(o.learning_rate(), 0.01);
        o.set_learning_rate(0.005);
        assert_eq!(o.learning_rate(), 0.005);
    }
}
