//! # lmkg-nn
//!
//! A deliberately small, dependency-free CPU neural-network library built for
//! the LMKG reproduction. The paper trains its models in TensorFlow on a GPU;
//! the offline Rust ecosystem has no mature training crates, so this crate
//! provides exactly the substrate the paper's two model families need:
//!
//! * dense MLPs with ReLU/sigmoid/dropout (LMKG-S, MSCN),
//! * masked autoregressive networks with residual blocks and per-position
//!   embeddings — ResMADE (LMKG-U),
//! * Adam/SGD optimizers, MSE / mean-q-error / segmented-cross-entropy
//!   losses, and a tiny binary parameter format.
//!
//! Everything is gradient-checked against finite differences in the tests.
//!
//! ```
//! use lmkg_nn::layers::{Dense, Layer, Relu, Sequential, Sigmoid};
//! use lmkg_nn::optimizer::{Adam, Optimizer};
//! use lmkg_nn::tensor::Matrix;
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let mut rng = StdRng::seed_from_u64(0);
//! let mut model = Sequential::new();
//! model.push(Dense::new_he(&mut rng, 2, 16));
//! model.push(Relu::new());
//! model.push(Dense::new_xavier(&mut rng, 16, 1));
//! model.push(Sigmoid::new());
//!
//! let x = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
//! let t = Matrix::from_rows(&[&[1.0], &[0.0]]);
//! let mut opt = Adam::new(0.01);
//! for _ in 0..200 {
//!     let y = model.forward(&x, true);
//!     let (_, grad) = lmkg_nn::loss::mse(&y, &t);
//!     model.backward(&grad);
//!     opt.step(&mut model);
//! }
//! let y = model.forward(&x, false);
//! assert!(y.get(0, 0) > 0.8 && y.get(1, 0) < 0.2);
//! ```

// The AVX2 kernels are the only unsafe in the workspace's compute core;
// every unsafe block must carry its pointer-validity / feature-detection
// argument (the lmkg-xtask L1 lint enforces the same repo-wide).
#![deny(clippy::undocumented_unsafe_blocks)]
#![warn(missing_docs)]

pub mod embedding;
pub mod gemm;
pub mod gemv;
pub mod init;
pub mod layers;
pub mod loss;
pub mod made;
pub mod optimizer;
pub mod profile;
pub mod quant;
pub mod serialize;
pub mod tensor;
pub mod workspace;

pub use layers::{Dense, Dropout, Layer, MaskedDense, Param, Relu, Sequential, Sigmoid};
pub use made::{Made, MadeConfig, QuantizedMade};
pub use optimizer::{Adam, Optimizer, Sgd};
pub use quant::{QuantMode, QuantizedDense, QuantizedSequential};
pub use tensor::Matrix;
pub use workspace::Workspace;

/// Deterministic input generation shared by the kernel tests, the committed
/// kernel-parity fixture, and the GEMM benches. Not part of the supported
/// API surface — only public so those consumers use one generator instead of
/// drifting copies (the parity fixture depends on this exact sequence).
#[doc(hidden)]
pub mod test_support {
    use crate::Matrix;

    /// A `rows×cols` matrix of values in [-0.5, 0.5] from a splitmix-seeded
    /// LCG, fully determined by `(rows, cols, seed)`.
    pub fn seeded_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        Matrix::from_fn(rows, cols, |_, _| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f32 / (1u64 << 31) as f32) - 0.5
        })
    }
}
