//! Minimal binary (de)serialization of model parameters.
//!
//! No serde format crate is on the offline dependency list, so models are
//! persisted with a tiny explicit format:
//!
//! ```text
//! magic "LMKGNN1\0" | u32 param-count | per param: u32 rows, u32 cols, f32[rows*cols] LE
//! ```
//!
//! Loading walks the model's parameters in the same stable visitation order
//! used when saving, so the architecture must match exactly.

use crate::layers::Layer;
use crate::tensor::Matrix;
use std::io::{self, Read, Write};

const MAGIC: &[u8; 8] = b"LMKGNN1\0";

/// Serializes all parameters of `model` to `writer`. Saving is a read-only
/// walk, so it works on a shared (frozen, possibly `Arc`-held) model.
pub fn save_params<W: Write>(model: &dyn Layer, writer: &mut W) -> io::Result<()> {
    let mut params: Vec<Matrix> = Vec::new();
    model.visit_params_ref(&mut |p| params.push(p.value.clone()));
    writer.write_all(MAGIC)?;
    writer.write_all(&(params.len() as u32).to_le_bytes())?;
    for m in &params {
        writer.write_all(&(m.rows() as u32).to_le_bytes())?;
        writer.write_all(&(m.cols() as u32).to_le_bytes())?;
        for &v in m.as_slice() {
            writer.write_all(&v.to_le_bytes())?;
        }
    }
    Ok(())
}

/// Restores parameters into `model` (must have the exact same architecture
/// as the model that was saved).
pub fn load_params<R: Read>(model: &mut dyn Layer, reader: &mut R) -> io::Result<()> {
    let mut magic = [0u8; 8];
    reader.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "bad magic: not an LMKG parameter file",
        ));
    }
    let count = read_u32(reader)? as usize;

    let mut loaded: Vec<Matrix> = Vec::with_capacity(count);
    for _ in 0..count {
        let rows = read_u32(reader)? as usize;
        let cols = read_u32(reader)? as usize;
        let mut data = vec![0.0f32; rows * cols];
        let mut buf = [0u8; 4];
        for v in &mut data {
            reader.read_exact(&mut buf)?;
            *v = f32::from_le_bytes(buf);
        }
        loaded.push(Matrix::from_vec(rows, cols, data));
    }

    let mut idx = 0usize;
    let mut mismatch: Option<String> = None;
    model.visit_params(&mut |p| {
        if mismatch.is_some() {
            return;
        }
        match loaded.get(idx) {
            None => mismatch = Some(format!("file has {count} params, model expects more")),
            Some(m) => {
                if (m.rows(), m.cols()) != (p.value.rows(), p.value.cols()) {
                    mismatch = Some(format!(
                        "param {idx}: file {}×{} vs model {}×{}",
                        m.rows(),
                        m.cols(),
                        p.value.rows(),
                        p.value.cols()
                    ));
                } else {
                    p.value = m.clone();
                    p.grad.fill(0.0);
                }
            }
        }
        idx += 1;
    });
    if let Some(msg) = mismatch {
        return Err(io::Error::new(io::ErrorKind::InvalidData, msg));
    }
    if idx != count {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("file has {count} params, model visited {idx}"),
        ));
    }
    Ok(())
}

fn read_u32<R: Read>(reader: &mut R) -> io::Result<u32> {
    let mut buf = [0u8; 4];
    reader.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Dense, Relu, Sequential};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn model(seed: u64) -> Sequential {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut m = Sequential::new();
        m.push(Dense::new_he(&mut rng, 4, 8));
        m.push(Relu::new());
        m.push(Dense::new_xavier(&mut rng, 8, 2));
        m
    }

    #[test]
    fn roundtrip_restores_outputs() {
        let mut a = model(1);
        let mut b = model(2); // different weights

        let x = Matrix::from_vec(1, 4, vec![0.1, -0.2, 0.3, 0.4]);
        let ya = a.forward(&x, false);
        assert_ne!(ya, b.forward(&x, false));

        let mut buf = Vec::new();
        save_params(&a, &mut buf).unwrap();
        load_params(&mut b, &mut buf.as_slice()).unwrap();
        assert_eq!(ya, b.forward(&x, false));
    }

    #[test]
    fn rejects_bad_magic() {
        let mut m = model(1);
        let buf = b"NOTLMKG\0rest".to_vec();
        let err = load_params(&mut m, &mut buf.as_slice()).unwrap_err();
        assert!(err.to_string().contains("magic"));
    }

    #[test]
    fn rejects_architecture_mismatch() {
        let a = model(1);
        let mut buf = Vec::new();
        save_params(&a, &mut buf).unwrap();

        let mut rng = StdRng::seed_from_u64(0);
        let mut other = Sequential::new();
        other.push(Dense::new_he(&mut rng, 3, 8)); // wrong fan-in
        other.push(Dense::new_he(&mut rng, 8, 2));
        let err = load_params(&mut other, &mut buf.as_slice()).unwrap_err();
        assert!(err.to_string().contains("param 0"));
    }

    #[test]
    fn rejects_truncated_file() {
        let a = model(1);
        let mut buf = Vec::new();
        save_params(&a, &mut buf).unwrap();
        buf.truncate(buf.len() / 2);
        let mut b = model(2);
        assert!(load_params(&mut b, &mut buf.as_slice()).is_err());
    }
}
