//! Minimal binary (de)serialization of model parameters.
//!
//! No serde format crate is on the offline dependency list, so models are
//! persisted with a tiny explicit format:
//!
//! ```text
//! magic "LMKGNN1\0" | u32 param-count | per param: u32 rows, u32 cols, f32[rows*cols] LE
//! ```
//!
//! Loading walks the model's parameters in the same stable visitation order
//! used when saving, so the architecture must match exactly; any divergence
//! is a typed [`LoadError`] naming the offending parameter index.
//!
//! Values travel in bulk: the writer converts whole parameter matrices into
//! little-endian byte chunks and issues one `write_all` per chunk (a
//! serving-sized model is a handful of writes, not one per scalar), and the
//! reader mirrors that with chunked `read_exact` calls.

use crate::layers::Layer;
use crate::tensor::Matrix;
use std::fmt;
use std::io::{self, Read, Write};

const MAGIC: &[u8; 8] = b"LMKGNN1\0";

/// Scalars converted per buffered chunk: 16 Ki f32 = 64 KiB of I/O per call,
/// large enough to amortize syscalls, small enough to stay cache-friendly.
const CHUNK: usize = 16 * 1024;

/// Why restoring parameters from a stream failed.
#[derive(Debug)]
pub enum LoadError {
    /// The underlying reader failed (including truncation mid-value).
    Io(io::Error),
    /// The stream does not begin with the `LMKGNN1\0` magic.
    BadMagic,
    /// Parameter `index`'s stored shape does not match the target model's —
    /// the architectures have drifted.
    ShapeMismatch {
        /// Position in the stable parameter visitation order.
        index: usize,
        /// Shape recorded in the file, `(rows, cols)`.
        file: (usize, usize),
        /// Shape of the target model's parameter, `(rows, cols)`.
        model: (usize, usize),
    },
    /// The file and the target model disagree on the number of parameters.
    ParamCount {
        /// Parameters recorded in the file.
        file: usize,
        /// Parameters the target model visits.
        model: usize,
    },
}

impl fmt::Display for LoadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoadError::Io(e) => write!(f, "read failed: {e}"),
            LoadError::BadMagic => write!(f, "bad magic: not an LMKG parameter file"),
            LoadError::ShapeMismatch { index, file, model } => write!(
                f,
                "param {index}: file {}×{} vs model {}×{}",
                file.0, file.1, model.0, model.1
            ),
            LoadError::ParamCount { file, model } => {
                write!(f, "file has {file} params, model has {model}")
            }
        }
    }
}

impl std::error::Error for LoadError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LoadError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for LoadError {
    fn from(e: io::Error) -> Self {
        LoadError::Io(e)
    }
}

impl From<LoadError> for io::Error {
    fn from(e: LoadError) -> Self {
        match e {
            LoadError::Io(e) => e,
            other => io::Error::new(io::ErrorKind::InvalidData, other.to_string()),
        }
    }
}

/// Writes `values` as little-endian f32 bytes in bulk chunks.
pub(crate) fn write_f32s<W: Write>(writer: &mut W, values: &[f32]) -> io::Result<()> {
    let mut buf = [0u8; CHUNK * 4];
    for chunk in values.chunks(CHUNK) {
        let bytes = &mut buf[..chunk.len() * 4];
        for (dst, &v) in bytes.chunks_exact_mut(4).zip(chunk) {
            dst.copy_from_slice(&v.to_le_bytes());
        }
        writer.write_all(bytes)?;
    }
    Ok(())
}

/// Fills `values` from little-endian f32 bytes in bulk chunks.
pub(crate) fn read_f32s<R: Read>(reader: &mut R, values: &mut [f32]) -> io::Result<()> {
    let mut buf = [0u8; CHUNK * 4];
    for chunk in values.chunks_mut(CHUNK) {
        let bytes = &mut buf[..chunk.len() * 4];
        reader.read_exact(bytes)?;
        for (v, src) in chunk.iter_mut().zip(bytes.chunks_exact(4)) {
            *v = f32::from_le_bytes(src.try_into().expect("4-byte chunk"));
        }
    }
    Ok(())
}

/// Serializes all parameters of `model` to `writer`. Saving is a read-only
/// walk, so it works on a shared (frozen, possibly `Arc`-held) model.
pub fn save_params<W: Write>(model: &dyn Layer, writer: &mut W) -> io::Result<()> {
    let mut params: Vec<Matrix> = Vec::new();
    model.visit_params_ref(&mut |p| params.push(p.value.clone()));
    writer.write_all(MAGIC)?;
    writer.write_all(&(params.len() as u32).to_le_bytes())?;
    for m in &params {
        writer.write_all(&(m.rows() as u32).to_le_bytes())?;
        writer.write_all(&(m.cols() as u32).to_le_bytes())?;
        write_f32s(writer, m.as_slice())?;
    }
    Ok(())
}

/// Restores parameters into `model` (must have the exact same architecture
/// as the model that was saved). Every stored shape is validated against the
/// target parameter before anything is assigned, so architecture drift fails
/// with a typed [`LoadError::ShapeMismatch`] instead of mis-assigning.
pub fn load_params<R: Read>(model: &mut dyn Layer, reader: &mut R) -> Result<(), LoadError> {
    let mut magic = [0u8; 8];
    reader.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(LoadError::BadMagic);
    }
    let count = read_u32(reader)? as usize;

    let mut loaded: Vec<Matrix> = Vec::with_capacity(count);
    for _ in 0..count {
        let rows = read_u32(reader)? as usize;
        let cols = read_u32(reader)? as usize;
        let mut data = vec![0.0f32; rows * cols];
        read_f32s(reader, &mut data)?;
        loaded.push(Matrix::from_vec(rows, cols, data));
    }

    // Validate every shape against the target model before assigning any
    // value, so a mismatch leaves the model untouched.
    let mut shapes: Vec<(usize, usize)> = Vec::with_capacity(count);
    model.visit_params_ref(&mut |p| shapes.push((p.value.rows(), p.value.cols())));
    if shapes.len() != count {
        return Err(LoadError::ParamCount {
            file: count,
            model: shapes.len(),
        });
    }
    for (index, (m, &model_shape)) in loaded.iter().zip(&shapes).enumerate() {
        if (m.rows(), m.cols()) != model_shape {
            return Err(LoadError::ShapeMismatch {
                index,
                file: (m.rows(), m.cols()),
                model: model_shape,
            });
        }
    }

    let mut idx = 0usize;
    model.visit_params(&mut |p| {
        p.value = loaded[idx].clone();
        p.grad.fill(0.0);
        idx += 1;
    });
    debug_assert_eq!(idx, count, "visit_params and visit_params_ref must agree");
    Ok(())
}

fn read_u32<R: Read>(reader: &mut R) -> io::Result<u32> {
    let mut buf = [0u8; 4];
    reader.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Dense, Relu, Sequential};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn model(seed: u64) -> Sequential {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut m = Sequential::new();
        m.push(Dense::new_he(&mut rng, 4, 8));
        m.push(Relu::new());
        m.push(Dense::new_xavier(&mut rng, 8, 2));
        m
    }

    #[test]
    fn roundtrip_restores_outputs() {
        let mut a = model(1);
        let mut b = model(2); // different weights

        let x = Matrix::from_vec(1, 4, vec![0.1, -0.2, 0.3, 0.4]);
        let ya = a.forward(&x, false);
        assert_ne!(ya, b.forward(&x, false));

        let mut buf = Vec::new();
        save_params(&a, &mut buf).unwrap();
        load_params(&mut b, &mut buf.as_slice()).unwrap();
        assert_eq!(ya, b.forward(&x, false));
    }

    #[test]
    fn bulk_f32_io_roundtrips_bitwise_across_chunk_boundaries() {
        // Lengths straddling the chunk size: empty, tiny, exactly one chunk,
        // one chunk ± 1, and a multi-chunk run.
        for len in [0usize, 1, 7, CHUNK - 1, CHUNK, CHUNK + 1, 2 * CHUNK + 3] {
            let values: Vec<f32> = (0..len).map(|i| (i as f32).sin() * 1e3).collect();
            let mut buf = Vec::new();
            write_f32s(&mut buf, &values).unwrap();
            assert_eq!(buf.len(), len * 4);
            let mut back = vec![0.0f32; len];
            read_f32s(&mut buf.as_slice(), &mut back).unwrap();
            assert_eq!(
                values.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                back.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "len {len}"
            );
        }
    }

    #[test]
    fn rejects_bad_magic() {
        let mut m = model(1);
        let buf = b"NOTLMKG\0rest".to_vec();
        let err = load_params(&mut m, &mut buf.as_slice()).unwrap_err();
        assert!(matches!(err, LoadError::BadMagic));
        assert!(err.to_string().contains("magic"));
    }

    #[test]
    fn rejects_architecture_mismatch_with_param_index() {
        let a = model(1);
        let mut buf = Vec::new();
        save_params(&a, &mut buf).unwrap();

        let mut rng = StdRng::seed_from_u64(0);
        let mut other = Sequential::new();
        other.push(Dense::new_he(&mut rng, 3, 8)); // wrong fan-in
        other.push(Dense::new_he(&mut rng, 8, 2));
        let before: Vec<Vec<f32>> = {
            let mut v = Vec::new();
            other.visit_params_ref(&mut |p| v.push(p.value.as_slice().to_vec()));
            v
        };
        let err = load_params(&mut other, &mut buf.as_slice()).unwrap_err();
        match err {
            LoadError::ShapeMismatch { index, file, model } => {
                assert_eq!(index, 0);
                assert_eq!(file, (4, 8));
                assert_eq!(model, (3, 8));
            }
            other => panic!("expected ShapeMismatch, got {other:?}"),
        }
        assert!(err.to_string().contains("param 0"));
        // A failed load must not have assigned anything.
        let mut after = Vec::new();
        other.visit_params_ref(&mut |p| after.push(p.value.as_slice().to_vec()));
        assert_eq!(before, after, "mismatched load must leave the model untouched");
    }

    #[test]
    fn rejects_param_count_mismatch() {
        let a = model(1);
        let mut buf = Vec::new();
        save_params(&a, &mut buf).unwrap();

        let mut rng = StdRng::seed_from_u64(0);
        let mut fewer = Sequential::new();
        fewer.push(Dense::new_he(&mut rng, 4, 8)); // one dense instead of two
        let err = load_params(&mut fewer, &mut buf.as_slice()).unwrap_err();
        match err {
            LoadError::ParamCount { file, model } => {
                assert_eq!(file, 4);
                assert_eq!(model, 2);
            }
            other => panic!("expected ParamCount, got {other:?}"),
        }
    }

    #[test]
    fn rejects_truncated_file() {
        let a = model(1);
        let mut buf = Vec::new();
        save_params(&a, &mut buf).unwrap();
        buf.truncate(buf.len() / 2);
        let mut b = model(2);
        let err = load_params(&mut b, &mut buf.as_slice()).unwrap_err();
        assert!(matches!(err, LoadError::Io(_)));
    }
}
