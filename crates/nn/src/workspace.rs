//! Reusable scratch buffers for the shared-read (`&self`) inference path.
//!
//! Training forwards cache activations inside the layers, which is why
//! [`crate::layers::Layer::forward`] takes `&mut self`. Inference needs no
//! caches — but it does need output buffers, and allocating a fresh matrix
//! per layer per call is measurable on the serving hot path. A [`Workspace`]
//! is the caller-provided home for those buffers: every
//! [`forward_infer`](crate::layers::Layer::forward_infer) call draws its
//! outputs from the workspace pool and recycles its inputs back into it.
//! Reuse pays off within a call — across the layers of one forward, the
//! chunks of one batched prediction, the autoregressive steps of one
//! sampling pass — and callers that keep a workspace alive across calls
//! amortize further, while the model itself stays shared and immutable.
//!
//! The contract:
//! * a workspace is plain scratch — it carries **no** numeric state between
//!   calls, so any workspace (including a fresh one) produces bitwise
//!   identical results;
//! * workspaces are *not* shared between threads; each concurrent caller
//!   owns one (`Workspace` is `Send`, so it can move with its worker);
//! * matrices handed out by [`Workspace::take`] are zeroed, matching the
//!   accumulate-into-zeroed-output contract of the GEMM core;
//! * matrices handed out by [`Workspace::take_full`] have **unspecified**
//!   contents — stale data from earlier recycles included — and are only
//!   for callers that overwrite every element before reading any
//!   (elementwise activation outputs, input copies). GEMM outputs must
//!   keep using [`Workspace::take`].

use crate::tensor::{self, Matrix};

/// A pool of reusable `f32` buffers backing inference-time activations.
#[derive(Default)]
pub struct Workspace {
    pool: Vec<Vec<f32>>,
    /// Bytes ever allocated through this workspace's buffers (growth only —
    /// recycling returns capacity, it never shrinks). Folded into the
    /// process-wide high-water mark in [`crate::profile`].
    bytes: u64,
}

impl Workspace {
    /// An empty workspace. Buffers are created on first use and reused after
    /// [`Workspace::recycle`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of buffers currently pooled (diagnostic).
    pub fn pooled(&self) -> usize {
        self.pool.len()
    }

    /// A zeroed `rows × cols` matrix, backed by a pooled buffer when one is
    /// available.
    pub fn take(&mut self, rows: usize, cols: usize) -> Matrix {
        let len = rows * cols;
        let mut buf = self.pool.pop().unwrap_or_default();
        let cap_before = buf.capacity();
        buf.clear();
        buf.resize(len, 0.0);
        self.note_growth(cap_before, buf.capacity());
        Matrix::from_vec(rows, cols, buf)
    }

    /// A `rows × cols` matrix with **unspecified** contents, backed by a
    /// pooled buffer when one is available. Skips the zero fill of
    /// [`Workspace::take`], so it is only correct for callers that write
    /// every element before reading any — the dense forward paths use it
    /// for outputs they fully overwrite (activation maps, input copies).
    pub fn take_full(&mut self, rows: usize, cols: usize) -> Matrix {
        let len = rows * cols;
        let mut buf = self.pool.pop().unwrap_or_default();
        let cap_before = buf.capacity();
        buf.resize(len, 0.0);
        self.note_growth(cap_before, buf.capacity());
        Matrix::from_vec(rows, cols, buf)
    }

    /// Account buffer growth against this workspace and fold the footprint
    /// into the process-wide high-water mark. One branch on the hot path;
    /// the atomic is only touched when an allocation actually happened.
    #[inline]
    fn note_growth(&mut self, cap_before: usize, cap_after: usize) {
        if cap_after > cap_before {
            self.bytes += ((cap_after - cap_before) * std::mem::size_of::<f32>()) as u64;
            crate::profile::note_workspace_bytes(self.bytes);
        }
    }

    /// Returns a matrix's buffer to the pool for reuse.
    pub fn recycle(&mut self, m: Matrix) {
        self.pool.push(m.into_vec());
    }

    /// `A·B` into a pooled output buffer — the workspace counterpart of
    /// [`Matrix::matmul`], bitwise identical to it.
    pub fn matmul(&mut self, a: &Matrix, b: &Matrix) -> Matrix {
        let mut out = self.take(a.rows(), b.cols());
        tensor::matmul_into(a, b, &mut out);
        out
    }

    /// `A·B[:, lo..hi]` into a pooled output buffer — the workspace
    /// counterpart of [`Matrix::matmul_cols`], bitwise identical to it.
    pub fn matmul_cols(&mut self, a: &Matrix, b: &Matrix, lo: usize, hi: usize) -> Matrix {
        let mut out = self.take(a.rows(), hi - lo);
        tensor::matmul_cols_into(a, b, lo, hi, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::seeded_matrix;

    #[test]
    fn take_returns_zeroed_buffers_and_reuses_them() {
        let mut ws = Workspace::new();
        let mut m = ws.take(3, 4);
        assert_eq!(m.as_slice(), &[0.0; 12]);
        m.fill(7.0);
        ws.recycle(m);
        assert_eq!(ws.pooled(), 1);
        // Recycled storage comes back zeroed even at a different shape.
        let again = ws.take(2, 5);
        assert_eq!(ws.pooled(), 0);
        assert_eq!(again.as_slice(), &[0.0; 10]);
    }

    #[test]
    fn workspace_matmuls_are_bitwise_identical_to_matrix_matmuls() {
        let a = seeded_matrix(9, 17, 1);
        let b = seeded_matrix(17, 13, 2);
        let mut ws = Workspace::new();
        assert_eq!(ws.matmul(&a, &b), a.matmul(&b));
        assert_eq!(ws.matmul_cols(&a, &b, 3, 11), a.matmul_cols(&b, 3, 11));
        // And again through recycled buffers.
        let y = ws.matmul(&a, &b);
        ws.recycle(y);
        assert_eq!(ws.matmul(&a, &b), a.matmul(&b));
    }
}
