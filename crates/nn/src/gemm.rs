//! Blocked, packed GEMM core shared by every matmul entry point in
//! [`crate::tensor`].
//!
//! The classic three-level cache tiling (BLIS-style): output columns are
//! processed in [`NC`]-wide panels, the reduction dimension in [`KC`]-deep
//! blocks, and output rows in [`MC`]-tall blocks. For each (panel, block)
//! pair the operands are *packed* — copied into contiguous strips laid out
//! exactly as the register microkernel consumes them — so the innermost loop
//! streams sequentially regardless of the caller's storage order. Packing is
//! what lets one core serve `A·B`, `A·Bᵀ`, `Aᵀ·B`, and the column-sliced
//! `A·B[:, lo..hi]`: the four variants differ only in the strides of the
//! [`MatRef`] views handed to the pack routines.
//!
//! Two register microkernels compute [`MR`]`×`[`NR`] output tiles:
//!
//! * an x86-64 AVX2+FMA kernel (`std::arch`, 12 vector accumulators), picked
//!   at runtime via `is_x86_feature_detected!`, and
//! * a portable scalar kernel written so LLVM autovectorizes the
//!   [`NR`]-wide inner loop with baseline SIMD.
//!
//! The choice is made once per process ([`active_kernel`]) and can be pinned
//! to the scalar kernel with the `LMKG_FORCE_SCALAR` environment variable or
//! the `force-scalar` cargo feature — CI runs the test suite both ways and
//! diffs a committed fixture to bound SIMD/scalar divergence.
//!
//! # Determinism contract
//!
//! Every output element is produced by a *single* accumulator folded over
//! `k` in ascending order: the microkernel loads the current `C` tile into
//! its accumulators, fuses `kc` multiply-adds into them, and stores the tile
//! back, so splitting `k` into [`KC`] blocks never reassociates a sum. Lanes
//! of a SIMD register are independent accumulators. Consequently results are
//! bitwise-invariant to the batch size `m`, to the `lo..hi` column slice a
//! column lands in, to the tile constants, and to how many threads the
//! caller splits the output rows across. The batched-estimation and serving
//! parity suites rely on exactly this property. The scalar kernel performs
//! the same `mul` + `add` sequence (with the historical skip of zero `A`
//! entries) as the pre-blocked row kernels, so forced-scalar runs reproduce
//! the seed numerics bitwise for `matmul`, `matmul_tn`, and `matmul_cols`;
//! the seed's `matmul_nt` had no zero skip, so for that variant bitwise
//! seed-reproduction additionally assumes finite weights (a zero `A` entry
//! against a non-finite `B` entry now contributes nothing instead of NaN).
//! The FMA kernel rounds once per multiply-add and therefore differs from
//! scalar by a bounded ~1 ulp per step.

use std::sync::OnceLock;

/// Rows per register tile. Six rows × two 8-lane vectors = 12 accumulator
/// registers in the AVX2 microkernel, leaving three of the sixteen `ymm`
/// registers for the two `B` vectors and the broadcast `A` scalar.
pub const MR: usize = 6;

/// Columns per register tile (two 8-lane f32 vectors).
pub const NR: usize = 16;

/// Rows per cache block: the packed `MC×KC` slab of `A` (~96 KiB) stays
/// L2-resident while a full `B` panel streams against it.
pub const MC: usize = 96;

/// Reduction depth per cache block: `KC×NR` strips of packed `B` (~16 KiB)
/// fit L1 alongside the `A` strip the microkernel is consuming.
pub const KC: usize = 256;

/// Columns per cache panel: the packed `KC×NC` slab of `B` (~512 KiB) is
/// sized for L3 so it is packed once per `KC` block and reused by every row
/// block. Must be a multiple of [`NR`], as [`MC`] must be of [`MR`].
pub const NC: usize = 512;

/// A GEMM microkernel implementation, selected once per process.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Kernel {
    /// Portable scalar microkernel (autovectorized by the compiler).
    Scalar,
    /// Runtime-detected x86-64 AVX2 + FMA microkernel.
    Avx2Fma,
}

impl Kernel {
    /// Stable human-readable name (bench artifacts, logs).
    pub fn name(self) -> &'static str {
        match self {
            Kernel::Scalar => "scalar",
            Kernel::Avx2Fma => "avx2+fma",
        }
    }
}

/// Whether the scalar override is requested via the `force-scalar` cargo
/// feature or the `LMKG_FORCE_SCALAR` environment variable (`1`, `true`,
/// `yes`, or `on`, case-insensitive). Read once per process.
pub fn force_scalar_requested() -> bool {
    if cfg!(feature = "force-scalar") {
        return true;
    }
    static FORCED: OnceLock<bool> = OnceLock::new();
    *FORCED.get_or_init(|| {
        std::env::var("LMKG_FORCE_SCALAR")
            .map(|v| matches!(v.to_ascii_lowercase().as_str(), "1" | "true" | "yes" | "on"))
            .unwrap_or(false)
    })
}

/// The kernels usable on this machine, fastest first. [`Kernel::Scalar`] is
/// always present; [`Kernel::Avx2Fma`] is listed when the CPU supports it
/// (the scalar override does not remove it from this list — benches use it
/// to compare both paths in one process).
pub fn available_kernels() -> &'static [Kernel] {
    static KERNELS: OnceLock<Vec<Kernel>> = OnceLock::new();
    KERNELS.get_or_init(|| {
        let mut ks = Vec::new();
        #[cfg(target_arch = "x86_64")]
        if std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma") {
            ks.push(Kernel::Avx2Fma);
        }
        ks.push(Kernel::Scalar);
        ks
    })
}

/// The microkernel every matmul in this process dispatches to: the fastest
/// available one, unless the scalar override pins [`Kernel::Scalar`].
/// Detected once and cached.
pub fn active_kernel() -> Kernel {
    static ACTIVE: OnceLock<Kernel> = OnceLock::new();
    *ACTIVE.get_or_init(|| {
        if force_scalar_requested() {
            Kernel::Scalar
        } else {
            available_kernels()[0]
        }
    })
}

/// A read-only strided view of an `f32` matrix: element `(r, c)` lives at
/// `data[off + r*rs + c*cs]`. Strides express transposition and column
/// slicing without copying, so all four matmul variants share one driver.
#[derive(Clone, Copy)]
pub(crate) struct MatRef<'a> {
    data: &'a [f32],
    off: usize,
    rs: usize,
    cs: usize,
    rows: usize,
    cols: usize,
}

impl<'a> MatRef<'a> {
    /// A view with explicit geometry. `off` is the index of element (0, 0).
    pub(crate) fn new(data: &'a [f32], off: usize, rs: usize, cs: usize, rows: usize, cols: usize) -> Self {
        if rows > 0 && cols > 0 {
            let last = off + (rows - 1) * rs + (cols - 1) * cs;
            assert!(last < data.len(), "MatRef geometry out of bounds");
        }
        Self {
            data,
            off,
            rs,
            cs,
            rows,
            cols,
        }
    }

    /// Number of rows.
    #[inline]
    pub(crate) fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub(crate) fn cols(&self) -> usize {
        self.cols
    }

    /// Column stride ([`crate::gemv`] picks its inner loop by whether rows
    /// of `B` are contiguous).
    #[inline]
    pub(crate) fn cs(&self) -> usize {
        self.cs
    }

    #[inline]
    pub(crate) fn at(&self, r: usize, c: usize) -> f32 {
        self.data[self.off + r * self.rs + c * self.cs]
    }

    /// Row `r` as a contiguous slice. Only valid when `cs == 1`.
    #[inline]
    pub(crate) fn contiguous_row(&self, r: usize) -> &'a [f32] {
        debug_assert_eq!(self.cs, 1, "contiguous_row requires unit column stride");
        let start = self.off + r * self.rs;
        &self.data[start..start + self.cols]
    }

    /// The sub-view of `nrows` rows starting at `r0`.
    pub(crate) fn row_window(&self, r0: usize, nrows: usize) -> Self {
        debug_assert!(r0 + nrows <= self.rows);
        Self {
            off: self.off + r0 * self.rs,
            rows: nrows,
            ..*self
        }
    }
}

/// `c += a · b` over a row-major `c` of exactly `a.rows() × b.cols()`
/// elements, single-threaded. `c` must be zeroed by the caller for a plain
/// product. Callers parallelize by splitting `a`/`c` into row windows.
pub(crate) fn gemm_serial(kernel: Kernel, a: MatRef<'_>, b: MatRef<'_>, c: &mut [f32]) {
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    assert_eq!(a.cols(), b.rows(), "gemm inner dimensions must agree");
    assert_eq!(c.len(), m * n, "gemm output buffer must be m*n");
    if m == 0 || n == 0 || k == 0 {
        return;
    }

    // Pack buffers sized for one cache block each, reused across blocks.
    let kc_max = KC.min(k);
    let mc_max = MC.min(m.next_multiple_of(MR));
    let nc_max = NC.min(n.next_multiple_of(NR));
    let mut apack = vec![0.0f32; mc_max * kc_max];
    let mut bpack = vec![0.0f32; kc_max * nc_max];

    let mut jc = 0;
    while jc < n {
        let nc = NC.min(n - jc);
        let mut pc = 0;
        while pc < k {
            let kc = KC.min(k - pc);
            pack_b(b, pc, jc, kc, nc, &mut bpack);
            let mut ic = 0;
            while ic < m {
                let mc = MC.min(m - ic);
                pack_a(a, ic, pc, mc, kc, &mut apack);
                let mut jr = 0;
                while jr < nc {
                    let nr = NR.min(nc - jr);
                    let bp = &bpack[(jr / NR) * NR * kc..][..NR * kc];
                    let mut ir = 0;
                    while ir < mc {
                        let mr = MR.min(mc - ir);
                        let ap = &apack[(ir / MR) * MR * kc..][..MR * kc];
                        let c_tile = &mut c[(ic + ir) * n + jc + jr..];
                        microkernel(kernel, kc, ap, bp, c_tile, n, mr, nr);
                        ir += MR;
                    }
                    jr += NR;
                }
                ic += MC;
            }
            pc += KC;
        }
        jc += NC;
    }
}

/// Packs the `mc×kc` block of `a` at `(ic, pc)` into [`MR`]-row strips:
/// strip `s` holds rows `ic+s*MR..`, stored k-major so the microkernel reads
/// `MR` consecutive `A` values per `k` step. Rows past `mc` pack as zeros.
fn pack_a(a: MatRef<'_>, ic: usize, pc: usize, mc: usize, kc: usize, apack: &mut [f32]) {
    let strips = mc.div_ceil(MR);
    for s in 0..strips {
        let r0 = s * MR;
        let strip = &mut apack[s * MR * kc..(s + 1) * MR * kc];
        for (kk, chunk) in strip.chunks_exact_mut(MR).enumerate() {
            for (t, slot) in chunk.iter_mut().enumerate() {
                *slot = if r0 + t < mc { a.at(ic + r0 + t, pc + kk) } else { 0.0 };
            }
        }
    }
}

/// Packs the `kc×nc` block of `b` at `(pc, jc)` into [`NR`]-column strips:
/// strip `s` holds columns `jc+s*NR..`, stored k-major so the microkernel
/// loads two contiguous vectors per `k` step. Columns past `nc` pack as
/// zeros (their lanes compute garbage that is never stored).
fn pack_b(b: MatRef<'_>, pc: usize, jc: usize, kc: usize, nc: usize, bpack: &mut [f32]) {
    let strips = nc.div_ceil(NR);
    for s in 0..strips {
        let c0 = s * NR;
        let strip = &mut bpack[s * NR * kc..(s + 1) * NR * kc];
        for (kk, chunk) in strip.chunks_exact_mut(NR).enumerate() {
            for (j, slot) in chunk.iter_mut().enumerate() {
                *slot = if c0 + j < nc { b.at(pc + kk, jc + c0 + j) } else { 0.0 };
            }
        }
    }
}

/// Dispatches one `mr×nr` output tile (`mr ≤ MR`, `nr ≤ NR`) to the selected
/// microkernel. `c` addresses the tile's (0, 0) element with row stride
/// `ldc`; the tile is loaded, accumulated over `kc` steps, and stored back.
#[allow(clippy::too_many_arguments)]
fn microkernel(kernel: Kernel, kc: usize, ap: &[f32], bp: &[f32], c: &mut [f32], ldc: usize, mr: usize, nr: usize) {
    match kernel {
        Kernel::Scalar => microkernel_scalar(kc, ap, bp, c, ldc, mr, nr),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `Kernel::Avx2Fma` is only ever constructed after
        // `is_x86_feature_detected!("avx2")`/`("fma")` both succeed.
        Kernel::Avx2Fma => unsafe { microkernel_avx2(kc, ap, bp, c, ldc, mr, nr) },
        #[cfg(not(target_arch = "x86_64"))]
        Kernel::Avx2Fma => microkernel_scalar(kc, ap, bp, c, ldc, mr, nr),
    }
}

/// Portable microkernel: full-width accumulator tile in locals so the `NR`
/// inner loop autovectorizes; the `a == 0.0` skip preserves the seed row
/// kernels' exact operation sequence on the mostly-zero one-hot inputs.
#[allow(clippy::too_many_arguments)]
fn microkernel_scalar(kc: usize, ap: &[f32], bp: &[f32], c: &mut [f32], ldc: usize, mr: usize, nr: usize) {
    debug_assert!(ap.len() >= kc * MR && bp.len() >= kc * NR);
    let mut acc = [[0.0f32; NR]; MR];
    for (r, row) in acc.iter_mut().enumerate().take(mr) {
        row[..nr].copy_from_slice(&c[r * ldc..r * ldc + nr]);
    }
    for kk in 0..kc {
        let bs = &bp[kk * NR..(kk + 1) * NR];
        let avals = &ap[kk * MR..(kk + 1) * MR];
        for (row, &a) in acc.iter_mut().zip(avals) {
            if a == 0.0 {
                continue;
            }
            for (o, &bv) in row.iter_mut().zip(bs) {
                *o += a * bv;
            }
        }
    }
    for (r, row) in acc.iter().enumerate().take(mr) {
        c[r * ldc..r * ldc + nr].copy_from_slice(&row[..nr]);
    }
}

/// AVX2+FMA microkernel: 6×16 tile in twelve `ymm` accumulators, one fused
/// multiply-add per element per `k` step. Edge tiles round-trip through a
/// zero-padded scratch tile so the hot path stays branch-free.
///
/// # Safety
/// Caller must ensure the CPU supports AVX2 and FMA.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
#[allow(clippy::too_many_arguments)]
unsafe fn microkernel_avx2(kc: usize, ap: &[f32], bp: &[f32], c: &mut [f32], ldc: usize, mr: usize, nr: usize) {
    if mr == MR && nr == NR {
        microkernel_avx2_full(kc, ap, bp, c, ldc);
    } else {
        let mut scratch = [0.0f32; MR * NR];
        for r in 0..mr {
            scratch[r * NR..r * NR + nr].copy_from_slice(&c[r * ldc..r * ldc + nr]);
        }
        microkernel_avx2_full(kc, ap, bp, &mut scratch, NR);
        for r in 0..mr {
            c[r * ldc..r * ldc + nr].copy_from_slice(&scratch[r * NR..r * NR + nr]);
        }
    }
}

/// The full-tile AVX2 body: loads the 6×16 `C` tile, runs `kc` broadcast-FMA
/// steps from the packed strips, stores the tile back.
///
/// # Safety
/// Caller must ensure AVX2+FMA support, `ap.len() >= kc*MR`,
/// `bp.len() >= kc*NR`, and that `c` covers a 6-row × 16-column tile with
/// row stride `ldc`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn microkernel_avx2_full(kc: usize, ap: &[f32], bp: &[f32], c: &mut [f32], ldc: usize) {
    use std::arch::x86_64::*;
    debug_assert!(ap.len() >= kc * MR && bp.len() >= kc * NR);
    debug_assert!(c.len() >= (MR - 1) * ldc + NR);
    let cp = c.as_mut_ptr();
    let mut acc = [[_mm256_setzero_ps(); 2]; MR];
    for (r, row) in acc.iter_mut().enumerate() {
        row[0] = _mm256_loadu_ps(cp.add(r * ldc));
        row[1] = _mm256_loadu_ps(cp.add(r * ldc + 8));
    }
    let a_ptr = ap.as_ptr();
    let b_ptr = bp.as_ptr();
    for kk in 0..kc {
        let b0 = _mm256_loadu_ps(b_ptr.add(kk * NR));
        let b1 = _mm256_loadu_ps(b_ptr.add(kk * NR + 8));
        for (r, row) in acc.iter_mut().enumerate() {
            let a = _mm256_broadcast_ss(&*a_ptr.add(kk * MR + r));
            row[0] = _mm256_fmadd_ps(a, b0, row[0]);
            row[1] = _mm256_fmadd_ps(a, b1, row[1]);
        }
    }
    for (r, row) in acc.iter().enumerate() {
        _mm256_storeu_ps(cp.add(r * ldc), row[0]);
        _mm256_storeu_ps(cp.add(r * ldc + 8), row[1]);
    }
}

/// `A·B` through the blocked core with an explicit kernel — the bench and
/// parity-test surface. Production code should call [`crate::Matrix::matmul`],
/// which uses [`active_kernel`] and threads large products.
pub fn matmul_with_kernel(kernel: Kernel, a: &crate::Matrix, b: &crate::Matrix, parallel: bool) -> crate::Matrix {
    crate::tensor::matmul_dispatch(kernel, a, b, parallel)
}

/// `A·Bᵀ` with an explicit kernel; see [`crate::Matrix::matmul_nt`].
pub fn matmul_nt_with_kernel(kernel: Kernel, a: &crate::Matrix, b: &crate::Matrix, parallel: bool) -> crate::Matrix {
    crate::tensor::matmul_nt_dispatch(kernel, a, b, parallel)
}

/// `Aᵀ·B` with an explicit kernel; see [`crate::Matrix::matmul_tn`].
pub fn matmul_tn_with_kernel(kernel: Kernel, a: &crate::Matrix, b: &crate::Matrix, parallel: bool) -> crate::Matrix {
    crate::tensor::matmul_tn_dispatch(kernel, a, b, parallel)
}

/// `A·B[:, lo..hi]` with an explicit kernel; see
/// [`crate::Matrix::matmul_cols`].
pub fn matmul_cols_with_kernel(
    kernel: Kernel,
    a: &crate::Matrix,
    b: &crate::Matrix,
    lo: usize,
    hi: usize,
    parallel: bool,
) -> crate::Matrix {
    crate::tensor::matmul_cols_dispatch(kernel, a, b, lo, hi, parallel)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::seeded_matrix as test_matrix;
    use crate::Matrix;

    fn naive(a: &Matrix, b: &Matrix) -> Matrix {
        let mut c = Matrix::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for j in 0..b.cols() {
                let mut acc = 0.0f64;
                for k in 0..a.cols() {
                    acc += f64::from(a.get(i, k)) * f64::from(b.get(k, j));
                }
                c.set(i, j, acc as f32);
            }
        }
        c
    }

    /// Relative tolerance scaled by the reduction depth: each of `k` steps
    /// can shift the rounding by ~1 ulp, so `k` ulps of headroom covers any
    /// kernel against the f64 reference.
    fn assert_close(got: &Matrix, want: &Matrix, k: usize) {
        assert_eq!((got.rows(), got.cols()), (want.rows(), want.cols()));
        let tol = f32::EPSILON * (k as f32 + 4.0);
        for (i, (x, y)) in got.as_slice().iter().zip(want.as_slice()).enumerate() {
            let scale = 1.0f32.max(x.abs()).max(y.abs());
            assert!((x - y).abs() <= tol * scale, "element {i}: {x} vs {y} (k={k})");
        }
    }

    /// Shapes chosen to hit every edge: unit dims, sub-tile, exact MR/NR/MC/
    /// KC/NC multiples, and ragged overhangs of each.
    const SHAPES: &[(usize, usize, usize)] = &[
        (1, 1, 1),
        (1, 7, 5),
        (3, 4, 2),
        (6, 8, 16),
        (7, 13, 17),
        (12, 256, 32),
        (13, 257, 33),
        (96, 10, 512),
        (97, 300, 523),
        (5, 600, 40),
    ];

    #[test]
    fn every_kernel_matches_f64_reference() {
        for &kernel in available_kernels() {
            for &(m, k, n) in SHAPES {
                let a = test_matrix(m, k, m as u64 + 1);
                let b = test_matrix(k, n, n as u64 + 2);
                let got = matmul_with_kernel(kernel, &a, &b, false);
                assert_close(&got, &naive(&a, &b), k);
            }
        }
    }

    #[test]
    fn kernels_agree_within_tolerance() {
        for &(m, k, n) in SHAPES {
            let a = test_matrix(m, k, 11);
            let b = test_matrix(k, n, 13);
            let scalar = matmul_with_kernel(Kernel::Scalar, &a, &b, false);
            for &kernel in available_kernels() {
                let got = matmul_with_kernel(kernel, &a, &b, false);
                assert_close(&got, &scalar, k);
            }
        }
    }

    #[test]
    fn result_is_bitwise_invariant_to_batch_size() {
        // The parity suites depend on row i of a batched product being
        // bitwise equal to the same row computed alone, for every kernel.
        for &kernel in available_kernels() {
            let a = test_matrix(23, 37, 3);
            let b = test_matrix(37, 29, 4);
            let full = matmul_with_kernel(kernel, &a, &b, false);
            for i in [0usize, 5, 22] {
                let single = Matrix::from_rows(&[a.row(i)]);
                let got = matmul_with_kernel(kernel, &single, &b, false);
                assert_eq!(got.row(0), full.row(i), "kernel {} row {i}", kernel.name());
            }
        }
    }

    #[test]
    fn scalar_kernel_always_available_and_named() {
        let ks = available_kernels();
        assert!(ks.contains(&Kernel::Scalar));
        assert!(ks.iter().all(|k| !k.name().is_empty()));
        assert!(ks.contains(&active_kernel()) || active_kernel() == Kernel::Scalar);
    }
}
