//! Neural-network layers with explicit forward/backward passes.
//!
//! Each layer caches what it needs during `forward(train=true)` and consumes
//! the cache in `backward`. Parameters are exposed through [`Layer::visit_params`]
//! so optimizers and serializers can walk a model without knowing its shape.

use crate::init;
use crate::quant::{QuantLayer, QuantMode, QuantizedDense, QuantizedSequential};
use crate::tensor::Matrix;
use crate::workspace::Workspace;
use rand::Rng;

/// A trainable parameter: value plus gradient accumulator of identical shape.
#[derive(Clone, Debug)]
pub struct Param {
    /// Current value.
    pub value: Matrix,
    /// Gradient accumulated by the last backward pass.
    pub grad: Matrix,
}

impl Param {
    /// Wraps an initialized value with a zeroed gradient.
    pub fn new(value: Matrix) -> Self {
        let grad = Matrix::zeros(value.rows(), value.cols());
        Self { value, grad }
    }

    /// Number of scalar parameters.
    pub fn len(&self) -> usize {
        self.value.len()
    }

    /// Whether the parameter is empty.
    pub fn is_empty(&self) -> bool {
        self.value.is_empty()
    }
}

/// A differentiable layer operating on batched row-major matrices.
pub trait Layer {
    /// Computes outputs; caches activations when `train` is true.
    fn forward(&mut self, x: &Matrix, train: bool) -> Matrix;

    /// Forward pass that takes ownership of the input, letting layers that
    /// can operate in place (activations, eval-mode dropout) avoid
    /// allocating a fresh output buffer. Numerically identical to
    /// [`Layer::forward`]; the default delegates to it.
    fn forward_owned(&mut self, x: Matrix, train: bool) -> Matrix {
        self.forward(&x, train)
    }

    /// Inference-only forward over **shared** layer state: no activation is
    /// cached, so any number of threads may run `forward_infer` on one model
    /// concurrently. Output buffers come from the caller's [`Workspace`];
    /// results are bitwise identical to `forward(x, false)`.
    fn forward_infer(&self, x: &Matrix, ws: &mut Workspace) -> Matrix;

    /// Like [`Layer::forward_infer`] but takes ownership of the input,
    /// letting in-place layers (activations, eval-mode dropout) reuse it as
    /// the output. The default recycles the input into the workspace after a
    /// borrowed forward. Numerically identical to [`Layer::forward_infer`].
    fn forward_infer_owned(&self, x: Matrix, ws: &mut Workspace) -> Matrix {
        let y = self.forward_infer(&x, ws);
        ws.recycle(x);
        y
    }

    /// Propagates `grad_out` backwards, accumulating parameter gradients and
    /// returning the gradient with respect to the layer input. Must be called
    /// after a `forward(train=true)`.
    fn backward(&mut self, grad_out: &Matrix) -> Matrix;

    /// Visits all trainable parameters in a stable order.
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param));

    /// Visits all trainable parameters read-only, in the same stable order
    /// as [`Layer::visit_params`] — the shared-access walk behind `&self`
    /// parameter counting and memory accounting.
    fn visit_params_ref(&self, f: &mut dyn FnMut(&Param));

    /// Zeroes all parameter gradients.
    fn zero_grads(&mut self) {
        self.visit_params(&mut |p| p.grad.fill(0.0));
    }

    /// Total number of scalar parameters.
    fn param_count(&self) -> usize {
        let mut n = 0;
        self.visit_params_ref(&mut |p| n += p.len());
        n
    }

    /// The frozen-inference quantized form of this layer, or `None` when the
    /// layer does not support post-training quantization. Every layer in
    /// this crate implements it; the default exists for downstream custom
    /// layers.
    fn quantize_layer(&self, _mode: QuantMode) -> Option<QuantLayer> {
        None
    }
}

/// Fully connected layer `y = x·W + b`.
pub struct Dense {
    w: Param,
    b: Param,
    cached_input: Option<Matrix>,
}

impl Dense {
    /// He-initialized dense layer (for ReLU stacks).
    pub fn new_he<R: Rng>(rng: &mut R, fan_in: usize, fan_out: usize) -> Self {
        Self {
            w: Param::new(init::he(rng, fan_in, fan_out)),
            b: Param::new(Matrix::zeros(1, fan_out)),
            cached_input: None,
        }
    }

    /// Xavier-initialized dense layer (for sigmoid/linear outputs).
    pub fn new_xavier<R: Rng>(rng: &mut R, fan_in: usize, fan_out: usize) -> Self {
        Self {
            w: Param::new(init::xavier(rng, fan_in, fan_out)),
            b: Param::new(Matrix::zeros(1, fan_out)),
            cached_input: None,
        }
    }

    /// Input dimensionality.
    pub fn fan_in(&self) -> usize {
        self.w.value.rows()
    }

    /// Output dimensionality.
    pub fn fan_out(&self) -> usize {
        self.w.value.cols()
    }
}

impl Layer for Dense {
    fn forward(&mut self, x: &Matrix, train: bool) -> Matrix {
        let mut y = x.matmul(&self.w.value);
        y.add_row_vector(self.b.value.as_slice());
        if train {
            self.cached_input = Some(x.clone());
        }
        y
    }

    fn forward_infer(&self, x: &Matrix, ws: &mut Workspace) -> Matrix {
        let mut y = ws.matmul(x, &self.w.value);
        y.add_row_vector(self.b.value.as_slice());
        y
    }

    fn backward(&mut self, grad_out: &Matrix) -> Matrix {
        let x = self.cached_input.take().expect("backward without forward(train)");
        self.w.grad.add_assign(&x.matmul_tn(grad_out));
        let bias_grad = Matrix::from_vec(1, grad_out.cols(), grad_out.col_sums());
        self.b.grad.add_assign(&bias_grad);
        grad_out.matmul_nt(&self.w.value)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.w);
        f(&mut self.b);
    }

    fn visit_params_ref(&self, f: &mut dyn FnMut(&Param)) {
        f(&self.w);
        f(&self.b);
    }

    fn quantize_layer(&self, mode: QuantMode) -> Option<QuantLayer> {
        Some(QuantLayer::Dense(QuantizedDense::from_weights(
            &self.w.value,
            self.b.value.as_slice(),
            mode,
        )))
    }
}

/// Dense layer with a fixed binary connectivity mask on the weights — the
/// building block of MADE. The invariant `W = W ⊙ M` is maintained after
/// every gradient update by masking the gradient too.
pub struct MaskedDense {
    w: Param,
    b: Param,
    mask: Matrix,
    cached_input: Option<Matrix>,
}

impl MaskedDense {
    /// He-initialized masked layer; `mask` is `fan_in × fan_out` over {0,1}.
    pub fn new<R: Rng>(rng: &mut R, mask: Matrix) -> Self {
        let (fan_in, fan_out) = (mask.rows(), mask.cols());
        let mut w = init::he(rng, fan_in, fan_out);
        apply_mask(&mut w, &mask);
        Self {
            w: Param::new(w),
            b: Param::new(Matrix::zeros(1, fan_out)),
            mask,
            cached_input: None,
        }
    }

    /// The connectivity mask.
    pub fn mask(&self) -> &Matrix {
        &self.mask
    }

    /// Re-applies the mask to the weights (call after optimizer steps that do
    /// not go through `backward`'s masked gradients, e.g. weight decay).
    pub fn remask(&mut self) {
        apply_mask(&mut self.w.value, &self.mask);
    }

    /// Inference-only forward computing just output columns `lo..hi`
    /// (`y = x·W[:, lo..hi] + b[lo..hi]`). The autoregressive sampler uses
    /// this to evaluate one logit segment per step instead of the full
    /// output layer. No activations are cached.
    pub fn forward_columns(&self, x: &Matrix, lo: usize, hi: usize) -> Matrix {
        let mut y = x.matmul_cols(&self.w.value, lo, hi);
        y.add_row_vector(&self.b.value.as_slice()[lo..hi]);
        y
    }

    /// Workspace-backed [`MaskedDense::forward_columns`]: same computation,
    /// same bits, output drawn from the caller's buffer pool.
    pub fn forward_columns_infer(&self, x: &Matrix, lo: usize, hi: usize, ws: &mut Workspace) -> Matrix {
        let mut y = ws.matmul_cols(x, &self.w.value, lo, hi);
        y.add_row_vector(&self.b.value.as_slice()[lo..hi]);
        y
    }

    /// Maximum |weight| over masked-out connections. Zero as long as the
    /// masking invariant holds (diagnostic for tests).
    pub fn mask_violation(&self) -> f32 {
        self.w
            .value
            .as_slice()
            .iter()
            .zip(self.mask.as_slice())
            .filter(|&(_, &m)| m == 0.0)
            .fold(0.0f32, |acc, (&w, _)| acc.max(w.abs()))
    }
}

fn apply_mask(w: &mut Matrix, mask: &Matrix) {
    for (x, m) in w.as_mut_slice().iter_mut().zip(mask.as_slice()) {
        *x *= m;
    }
}

impl Layer for MaskedDense {
    fn forward(&mut self, x: &Matrix, train: bool) -> Matrix {
        let mut y = x.matmul(&self.w.value);
        y.add_row_vector(self.b.value.as_slice());
        if train {
            self.cached_input = Some(x.clone());
        }
        y
    }

    fn forward_infer(&self, x: &Matrix, ws: &mut Workspace) -> Matrix {
        let mut y = ws.matmul(x, &self.w.value);
        y.add_row_vector(self.b.value.as_slice());
        y
    }

    fn backward(&mut self, grad_out: &Matrix) -> Matrix {
        let x = self.cached_input.take().expect("backward without forward(train)");
        let mut wg = x.matmul_tn(grad_out);
        apply_mask(&mut wg, &self.mask);
        self.w.grad.add_assign(&wg);
        let bias_grad = Matrix::from_vec(1, grad_out.cols(), grad_out.col_sums());
        self.b.grad.add_assign(&bias_grad);
        grad_out.matmul_nt(&self.w.value)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.w);
        f(&mut self.b);
    }

    fn visit_params_ref(&self, f: &mut dyn FnMut(&Param)) {
        f(&self.w);
        f(&self.b);
    }

    /// The masking invariant `W = W ⊙ M` means masked-out weights are
    /// exactly zero, which int8/bf16 both represent exactly — the quantized
    /// layer preserves autoregressive connectivity with no mask of its own.
    fn quantize_layer(&self, mode: QuantMode) -> Option<QuantLayer> {
        Some(QuantLayer::Dense(QuantizedDense::from_weights(
            &self.w.value,
            self.b.value.as_slice(),
            mode,
        )))
    }
}

/// Rectified linear unit.
#[derive(Default)]
pub struct Relu {
    cached_output_mask: Option<Matrix>,
}

impl Relu {
    /// Creates a ReLU activation.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for Relu {
    fn forward(&mut self, x: &Matrix, train: bool) -> Matrix {
        let y = x.map(|v| v.max(0.0));
        if train {
            self.cached_output_mask = Some(x.map(|v| if v > 0.0 { 1.0 } else { 0.0 }));
        }
        y
    }

    fn forward_owned(&mut self, mut x: Matrix, train: bool) -> Matrix {
        if train {
            self.cached_output_mask = Some(x.map(|v| if v > 0.0 { 1.0 } else { 0.0 }));
        }
        x.as_mut_slice().iter_mut().for_each(|v| *v = v.max(0.0));
        x
    }

    fn forward_infer(&self, x: &Matrix, ws: &mut Workspace) -> Matrix {
        // Every element is written before any is read, so the pooled buffer
        // can skip its zero fill.
        let mut y = ws.take_full(x.rows(), x.cols());
        for (o, &v) in y.as_mut_slice().iter_mut().zip(x.as_slice()) {
            *o = v.max(0.0);
        }
        y
    }

    fn forward_infer_owned(&self, mut x: Matrix, _ws: &mut Workspace) -> Matrix {
        x.as_mut_slice().iter_mut().for_each(|v| *v = v.max(0.0));
        x
    }

    fn backward(&mut self, grad_out: &Matrix) -> Matrix {
        let mask = self.cached_output_mask.take().expect("backward without forward(train)");
        grad_out.zip_map(&mask, |g, m| g * m)
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Param)) {}

    fn visit_params_ref(&self, _f: &mut dyn FnMut(&Param)) {}

    fn quantize_layer(&self, _mode: QuantMode) -> Option<QuantLayer> {
        Some(QuantLayer::Relu)
    }
}

/// Logistic sigmoid.
#[derive(Default)]
pub struct Sigmoid {
    cached_output: Option<Matrix>,
}

impl Sigmoid {
    /// Creates a sigmoid activation.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for Sigmoid {
    fn forward(&mut self, x: &Matrix, train: bool) -> Matrix {
        let y = x.map(|v| 1.0 / (1.0 + (-v).exp()));
        if train {
            self.cached_output = Some(y.clone());
        }
        y
    }

    fn forward_owned(&mut self, mut x: Matrix, train: bool) -> Matrix {
        x.as_mut_slice().iter_mut().for_each(|v| *v = 1.0 / (1.0 + (-*v).exp()));
        if train {
            self.cached_output = Some(x.clone());
        }
        x
    }

    fn forward_infer(&self, x: &Matrix, ws: &mut Workspace) -> Matrix {
        let mut y = ws.take_full(x.rows(), x.cols());
        for (o, &v) in y.as_mut_slice().iter_mut().zip(x.as_slice()) {
            *o = 1.0 / (1.0 + (-v).exp());
        }
        y
    }

    fn forward_infer_owned(&self, mut x: Matrix, _ws: &mut Workspace) -> Matrix {
        x.as_mut_slice().iter_mut().for_each(|v| *v = 1.0 / (1.0 + (-*v).exp()));
        x
    }

    fn backward(&mut self, grad_out: &Matrix) -> Matrix {
        let y = self.cached_output.take().expect("backward without forward(train)");
        grad_out.zip_map(&y, |g, s| g * s * (1.0 - s))
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Param)) {}

    fn visit_params_ref(&self, _f: &mut dyn FnMut(&Param)) {}

    fn quantize_layer(&self, _mode: QuantMode) -> Option<QuantLayer> {
        Some(QuantLayer::Sigmoid)
    }
}

/// Inverted dropout: scales surviving activations by `1/(1-p)` at train time,
/// identity at inference (paper Fig. 3 includes a dropout stage in LMKG-S).
pub struct Dropout {
    p: f32,
    rng_state: u64,
    cached_mask: Option<Matrix>,
}

impl Dropout {
    /// `p` is the drop probability in `[0, 1)`. `seed` makes runs repeatable.
    pub fn new(p: f32, seed: u64) -> Self {
        assert!((0.0..1.0).contains(&p), "dropout probability must be in [0,1)");
        Self {
            p,
            rng_state: seed | 1,
            cached_mask: None,
        }
    }

    #[inline]
    fn next_uniform(&mut self) -> f32 {
        // xorshift64*; light-weight, state-local, deterministic.
        let mut x = self.rng_state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng_state = x;
        ((x.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 40) as f32) / (1u64 << 24) as f32
    }
}

impl Layer for Dropout {
    fn forward(&mut self, x: &Matrix, train: bool) -> Matrix {
        if !train || self.p == 0.0 {
            return x.clone();
        }
        let keep = 1.0 - self.p;
        let mask = Matrix::from_fn(x.rows(), x.cols(), |_, _| {
            if self.next_uniform() < keep {
                1.0 / keep
            } else {
                0.0
            }
        });
        let y = x.zip_map(&mask, |v, m| v * m);
        self.cached_mask = Some(mask);
        y
    }

    fn forward_owned(&mut self, x: Matrix, train: bool) -> Matrix {
        if !train || self.p == 0.0 {
            return x;
        }
        self.forward(&x, train)
    }

    fn forward_infer(&self, x: &Matrix, ws: &mut Workspace) -> Matrix {
        // Inverted dropout is the identity at inference; the copy overwrites
        // the whole buffer, so no zero fill is needed.
        let mut y = ws.take_full(x.rows(), x.cols());
        y.as_mut_slice().copy_from_slice(x.as_slice());
        y
    }

    fn forward_infer_owned(&self, x: Matrix, _ws: &mut Workspace) -> Matrix {
        x
    }

    fn backward(&mut self, grad_out: &Matrix) -> Matrix {
        match self.cached_mask.take() {
            Some(mask) => grad_out.zip_map(&mask, |g, m| g * m),
            None => grad_out.clone(),
        }
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Param)) {}

    fn visit_params_ref(&self, _f: &mut dyn FnMut(&Param)) {}

    /// Inverted dropout is the identity at inference, so its quantized form
    /// is the identity stage.
    fn quantize_layer(&self, _mode: QuantMode) -> Option<QuantLayer> {
        Some(QuantLayer::Identity)
    }
}

/// A sequential stack of layers.
#[derive(Default)]
pub struct Sequential {
    layers: Vec<Box<dyn Layer + Send + Sync>>,
}

impl Sequential {
    /// Creates an empty stack.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a layer. `Sync` is required so whole models can be shared
    /// behind `Arc` by concurrent inference threads (all layers in this
    /// crate are plain data and qualify).
    pub fn push(&mut self, layer: impl Layer + Send + Sync + 'static) -> &mut Self {
        self.layers.push(Box::new(layer));
        self
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Whether the stack is empty.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// One-shot post-training quantization of the frozen stack: every layer
    /// is converted to its reduced-precision inference form (see
    /// [`crate::quant`]). Panics if a layer does not support quantization —
    /// all layers in this crate do.
    pub fn quantized(&self, mode: QuantMode) -> QuantizedSequential {
        let layers = self
            .layers
            .iter()
            .enumerate()
            .map(|(i, l)| {
                l.quantize_layer(mode)
                    .unwrap_or_else(|| panic!("layer {i} does not support quantization"))
            })
            .collect();
        QuantizedSequential::from_layers(mode, layers)
    }
}

impl Layer for Sequential {
    fn forward(&mut self, x: &Matrix, train: bool) -> Matrix {
        let (first, rest) = match self.layers.split_first_mut() {
            Some(split) => split,
            None => return x.clone(),
        };
        let mut h = first.forward(x, train);
        for layer in rest {
            h = layer.forward_owned(h, train);
        }
        h
    }

    fn forward_owned(&mut self, x: Matrix, train: bool) -> Matrix {
        let mut h = x;
        for layer in &mut self.layers {
            h = layer.forward_owned(h, train);
        }
        h
    }

    fn forward_infer(&self, x: &Matrix, ws: &mut Workspace) -> Matrix {
        let (first, rest) = match self.layers.split_first() {
            Some(split) => split,
            None => return x.clone(),
        };
        let mut h = first.forward_infer(x, ws);
        for layer in rest {
            h = layer.forward_infer_owned(h, ws);
        }
        h
    }

    fn forward_infer_owned(&self, x: Matrix, ws: &mut Workspace) -> Matrix {
        let mut h = x;
        for layer in &self.layers {
            h = layer.forward_infer_owned(h, ws);
        }
        h
    }

    fn backward(&mut self, grad_out: &Matrix) -> Matrix {
        let mut g = grad_out.clone();
        for layer in self.layers.iter_mut().rev() {
            g = layer.backward(&g);
        }
        g
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        for layer in &mut self.layers {
            layer.visit_params(f);
        }
    }

    fn visit_params_ref(&self, f: &mut dyn FnMut(&Param)) {
        for layer in &self.layers {
            layer.visit_params_ref(f);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn dense_forward_shape_and_bias() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut d = Dense::new_he(&mut rng, 3, 2);
        d.b.value.as_mut_slice().copy_from_slice(&[1.0, -1.0]);
        let x = Matrix::zeros(4, 3);
        let y = d.forward(&x, false);
        assert_eq!((y.rows(), y.cols()), (4, 2));
        // Zero input → output is exactly the bias.
        for r in 0..4 {
            assert_eq!(y.row(r), &[1.0, -1.0]);
        }
    }

    #[test]
    fn relu_clamps_and_gates_gradient() {
        let mut relu = Relu::new();
        let x = Matrix::from_vec(1, 4, vec![-1.0, 0.0, 0.5, 2.0]);
        let y = relu.forward(&x, true);
        assert_eq!(y.as_slice(), &[0.0, 0.0, 0.5, 2.0]);
        let g = relu.backward(&Matrix::from_vec(1, 4, vec![1.0; 4]));
        assert_eq!(g.as_slice(), &[0.0, 0.0, 1.0, 1.0]);
    }

    #[test]
    fn sigmoid_range_and_gradient() {
        let mut s = Sigmoid::new();
        let x = Matrix::from_vec(1, 3, vec![-10.0, 0.0, 10.0]);
        let y = s.forward(&x, true);
        assert!(y.as_slice()[0] < 1e-4);
        assert!((y.as_slice()[1] - 0.5).abs() < 1e-6);
        assert!(y.as_slice()[2] > 1.0 - 1e-4);
        let g = s.backward(&Matrix::from_vec(1, 3, vec![1.0; 3]));
        // Max derivative at 0 is 0.25.
        assert!((g.as_slice()[1] - 0.25).abs() < 1e-6);
    }

    #[test]
    fn dropout_inference_is_identity() {
        let mut d = Dropout::new(0.5, 3);
        let x = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(d.forward(&x, false), x);
    }

    #[test]
    fn dropout_preserves_expectation_roughly() {
        let mut d = Dropout::new(0.3, 7);
        let x = Matrix::from_vec(1, 10_000, vec![1.0; 10_000]);
        let y = d.forward(&x, true);
        let mean = y.as_slice().iter().sum::<f32>() / 10_000.0;
        assert!((mean - 1.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn masked_dense_respects_mask() {
        let mut rng = StdRng::seed_from_u64(0);
        let mask = Matrix::from_vec(2, 2, vec![1.0, 0.0, 0.0, 1.0]);
        let mut md = MaskedDense::new(&mut rng, mask);
        // Masked entries are zero in the weights.
        assert_eq!(md.w.value.get(0, 1), 0.0);
        assert_eq!(md.w.value.get(1, 0), 0.0);
        // Input feature 0 can only influence output 0.
        let x0 = Matrix::from_vec(1, 2, vec![1.0, 0.0]);
        let y0 = md.forward(&x0, false);
        assert_eq!(y0.get(0, 1), md.b.value.get(0, 1));
        // Gradients stay masked after backward.
        let _ = md.forward(&x0, true);
        let _ = md.backward(&Matrix::from_vec(1, 2, vec![1.0, 1.0]));
        assert_eq!(md.w.grad.get(0, 1), 0.0);
        assert_eq!(md.w.grad.get(1, 0), 0.0);
    }

    #[test]
    fn sequential_composes() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut model = Sequential::new();
        model.push(Dense::new_he(&mut rng, 4, 8));
        model.push(Relu::new());
        model.push(Dense::new_xavier(&mut rng, 8, 1));
        model.push(Sigmoid::new());
        let x = Matrix::zeros(2, 4);
        let y = model.forward(&x, false);
        assert_eq!((y.rows(), y.cols()), (2, 1));
        assert!(y.as_slice().iter().all(|&v| (0.0..=1.0).contains(&v)));
        assert!(model.param_count() > 0);
    }

    /// The `&self` inference path must reproduce `forward(x, false)`
    /// bitwise, with and without a warmed workspace pool, and the read-only
    /// parameter walk must agree with the mutable one.
    #[test]
    fn forward_infer_matches_eval_forward_bitwise() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut model = Sequential::new();
        model.push(Dense::new_he(&mut rng, 6, 16));
        model.push(Relu::new());
        model.push(Dropout::new(0.25, 9));
        model.push(Dense::new_xavier(&mut rng, 16, 3));
        model.push(Sigmoid::new());

        let x = crate::test_support::seeded_matrix(5, 6, 31);
        let expected = model.forward(&x, false);
        let mut ws = Workspace::new();
        let cold = model.forward_infer(&x, &mut ws);
        assert_eq!(cold, expected);
        ws.recycle(cold);
        let warm = model.forward_infer(&x, &mut ws);
        assert_eq!(warm, expected, "recycled buffers must not change results");

        let mut mutable_count = 0;
        model.visit_params(&mut |p| mutable_count += p.len());
        assert_eq!(model.param_count(), mutable_count);
    }

    #[test]
    fn zero_grads_resets() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut d = Dense::new_he(&mut rng, 2, 2);
        let x = Matrix::from_vec(1, 2, vec![1.0, 2.0]);
        let _ = d.forward(&x, true);
        let _ = d.backward(&Matrix::from_vec(1, 2, vec![1.0, 1.0]));
        assert!(d.w.grad.max_abs() > 0.0);
        d.zero_grads();
        assert_eq!(d.w.grad.max_abs(), 0.0);
    }

    /// Numerical gradient check for a small Dense+ReLU+Dense stack with MSE.
    #[test]
    fn gradient_check_dense_stack() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut model = Sequential::new();
        model.push(Dense::new_he(&mut rng, 3, 5));
        model.push(Relu::new());
        model.push(Dense::new_xavier(&mut rng, 5, 1));

        let x = Matrix::from_vec(2, 3, vec![0.5, -0.2, 0.8, 0.1, 0.4, -0.6]);
        let target = Matrix::from_vec(2, 1, vec![0.3, -0.7]);

        // Analytic gradient: L = mean((y - t)^2).
        let y = model.forward(&x, true);
        let n = y.len() as f32;
        let grad = y.zip_map(&target, |a, b| 2.0 * (a - b) / n);
        model.zero_grads();
        let _ = model.backward(&grad);

        let loss_fn = |model: &mut Sequential, x: &Matrix, t: &Matrix| -> f32 {
            let y = model.forward(x, false);
            y.zip_map(t, |a, b| (a - b) * (a - b)).as_slice().iter().sum::<f32>() / y.len() as f32
        };

        // Spot-check several parameters with central differences.
        let eps = 1e-2f32;
        let mut checked = 0;
        let mut max_rel_err = 0.0f32;
        for p_idx in 0..4 {
            for elem in [0usize, 1] {
                let mut analytic = None;
                let mut i = 0;
                model.visit_params(&mut |p| {
                    if i == p_idx && elem < p.value.len() {
                        analytic = Some(p.grad.as_slice()[elem]);
                    }
                    i += 1;
                });
                let Some(analytic) = analytic else { continue };

                let perturb = |model: &mut Sequential, delta: f32| {
                    let mut i = 0;
                    model.visit_params(&mut |p| {
                        if i == p_idx && elem < p.value.len() {
                            p.value.as_mut_slice()[elem] += delta;
                        }
                        i += 1;
                    });
                };
                perturb(&mut model, eps);
                let lp = loss_fn(&mut model, &x, &target);
                perturb(&mut model, -2.0 * eps);
                let lm = loss_fn(&mut model, &x, &target);
                perturb(&mut model, eps);
                let numeric = (lp - lm) / (2.0 * eps);
                let denom = analytic.abs().max(numeric.abs()).max(1e-4);
                max_rel_err = max_rel_err.max((analytic - numeric).abs() / denom);
                checked += 1;
            }
        }
        assert!(checked >= 6);
        assert!(max_rel_err < 0.05, "max relative gradient error {max_rel_err}");
    }
}
