//! Cheap, always-on profiling counters for the GEMM core.
//!
//! The serving stack wants to know *which* compute paths a workload is
//! exercising — GEMV fast path vs. blocked packed core, SIMD vs. scalar
//! microkernel — plus cumulative FLOP counts and the workspace memory
//! high-water mark, without nn depending on any observability crate. The
//! answer is a handful of process-global relaxed atomics: recording is one
//! `fetch_add` per matmul dispatch (noise next to the matmul itself), and
//! scrapers pull a [`snapshot`] whenever they render metrics.
//!
//! Counters are cumulative since process start (or the last [`reset`], which
//! exists for tests and benches). They deliberately count only the
//! *auto-dispatched* serial core — the serving path — not the forced-path
//! bench entry points, so dispatch counts answer "what did real traffic
//! run", not "what did a parity harness run".

use std::sync::atomic::{AtomicU64, Ordering};

use crate::gemm::Kernel;

static GEMV_SCALAR: AtomicU64 = AtomicU64::new(0);
static GEMV_SIMD: AtomicU64 = AtomicU64::new(0);
static BLOCKED_SCALAR: AtomicU64 = AtomicU64::new(0);
static BLOCKED_SIMD: AtomicU64 = AtomicU64::new(0);
static FLOPS: AtomicU64 = AtomicU64::new(0);
static WORKSPACE_HIGH_WATER: AtomicU64 = AtomicU64::new(0);

/// A point-in-time copy of the profiling counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ProfileSnapshot {
    /// Auto-dispatched matmuls that took the GEMV fast path, scalar kernel.
    pub gemv_scalar: u64,
    /// Auto-dispatched matmuls that took the GEMV fast path, SIMD kernel.
    pub gemv_simd: u64,
    /// Auto-dispatched matmuls that took the blocked packed core, scalar kernel.
    pub blocked_scalar: u64,
    /// Auto-dispatched matmuls that took the blocked packed core, SIMD kernel.
    pub blocked_simd: u64,
    /// Cumulative floating-point operations (2·m·k·n per dispatch).
    pub flops: u64,
    /// Largest buffer-pool footprint (bytes) any single [`crate::workspace::Workspace`]
    /// has grown to.
    pub workspace_high_water_bytes: u64,
}

impl ProfileSnapshot {
    /// Dispatch counts as `(path, kernel, count)` rows, every combination
    /// present (zeros included) so exposition series are stable.
    pub fn dispatch_rows(&self) -> [(&'static str, &'static str, u64); 4] {
        [
            ("gemv", "scalar", self.gemv_scalar),
            ("gemv", "avx2+fma", self.gemv_simd),
            ("blocked", "scalar", self.blocked_scalar),
            ("blocked", "avx2+fma", self.blocked_simd),
        ]
    }

    /// Total auto-dispatched matmuls across all paths and kernels.
    pub fn total_dispatches(&self) -> u64 {
        self.gemv_scalar + self.gemv_simd + self.blocked_scalar + self.blocked_simd
    }
}

/// Record one auto-dispatched serial matmul: which core ran, under which
/// kernel, and its `2·m·k·n` FLOP cost.
#[inline]
pub(crate) fn note_dispatch(gemv: bool, kernel: Kernel, m: usize, k: usize, n: usize) {
    let counter = match (gemv, kernel) {
        (true, Kernel::Scalar) => &GEMV_SCALAR,
        (true, Kernel::Avx2Fma) => &GEMV_SIMD,
        (false, Kernel::Scalar) => &BLOCKED_SCALAR,
        (false, Kernel::Avx2Fma) => &BLOCKED_SIMD,
    };
    counter.fetch_add(1, Ordering::Relaxed);
    FLOPS.fetch_add(2 * (m as u64) * (k as u64) * (n as u64), Ordering::Relaxed);
}

/// Fold one workspace's current buffer-pool footprint into the global
/// high-water mark.
#[inline]
pub(crate) fn note_workspace_bytes(bytes: u64) {
    WORKSPACE_HIGH_WATER.fetch_max(bytes, Ordering::Relaxed);
}

/// Copy the current counter values.
pub fn snapshot() -> ProfileSnapshot {
    ProfileSnapshot {
        gemv_scalar: GEMV_SCALAR.load(Ordering::Relaxed),
        gemv_simd: GEMV_SIMD.load(Ordering::Relaxed),
        blocked_scalar: BLOCKED_SCALAR.load(Ordering::Relaxed),
        blocked_simd: BLOCKED_SIMD.load(Ordering::Relaxed),
        flops: FLOPS.load(Ordering::Relaxed),
        workspace_high_water_bytes: WORKSPACE_HIGH_WATER.load(Ordering::Relaxed),
    }
}

/// Zero all counters. For tests and bench harnesses; racing concurrent
/// matmuls may land increments on either side of the reset.
pub fn reset() {
    GEMV_SCALAR.store(0, Ordering::Relaxed);
    GEMV_SIMD.store(0, Ordering::Relaxed);
    BLOCKED_SCALAR.store(0, Ordering::Relaxed);
    BLOCKED_SIMD.store(0, Ordering::Relaxed);
    FLOPS.store(0, Ordering::Relaxed);
    WORKSPACE_HIGH_WATER.store(0, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    // Counters are process-global; this single test exercises dispatch,
    // FLOP accounting, and the workspace high-water mark in one sequential
    // body so parallel test threads in *this* module can't interleave.
    // (Other test binaries' matmuls only ever add counts, which the >=
    // assertions tolerate.)
    #[test]
    fn dispatch_flops_and_high_water_accumulate() {
        let before = snapshot();

        // 2x3 · 3x4: m=2 <= GEMV_MAX_M, so this is a GEMV dispatch.
        let a = crate::tensor::Matrix::from_vec(2, 3, vec![1.0; 6]);
        let b = crate::tensor::Matrix::from_vec(3, 4, vec![1.0; 12]);
        let _ = a.matmul(&b);

        // 16x3 · 3x4: m=16 > GEMV_MAX_M, so this is a blocked dispatch.
        let big = crate::tensor::Matrix::from_vec(16, 3, vec![1.0; 48]);
        let _ = big.matmul(&b);

        let after = snapshot();
        let gemv_delta = (after.gemv_scalar + after.gemv_simd) - (before.gemv_scalar + before.gemv_simd);
        let blocked_delta = (after.blocked_scalar + after.blocked_simd) - (before.blocked_scalar + before.blocked_simd);
        assert!(gemv_delta >= 1, "small-M matmul must count as a GEMV dispatch");
        assert!(blocked_delta >= 1, "large-M matmul must count as a blocked dispatch");
        // 2*2*3*4 + 2*16*3*4 = 48 + 384.
        assert!(after.flops - before.flops >= 432, "FLOP accounting undercounts");

        let mut ws = crate::workspace::Workspace::new();
        let m = ws.take(64, 64);
        ws.recycle(m);
        assert!(
            snapshot().workspace_high_water_bytes >= 64 * 64 * 4,
            "workspace growth must raise the high-water mark"
        );

        // Rows cover every (path, kernel) combination, zeros included.
        assert_eq!(snapshot().dispatch_rows().len(), 4);
    }
}
