//! Dense row-major `f32` matrices and the handful of BLAS-like kernels the
//! models need. Batches are rows; features are columns.
//!
//! The matmul variants cover a full MLP training step without explicit
//! transposes:
//! * [`Matrix::matmul`]      — `C = A·B`            (forward pass),
//! * [`Matrix::matmul_nt`]   — `C = A·Bᵀ`           (input gradient: `dX = dY·Wᵀ`),
//! * [`Matrix::matmul_tn`]   — `C = Aᵀ·B`           (weight gradient: `dW = Xᵀ·dY`),
//! * [`Matrix::matmul_cols`] — `C = A·B[:, lo..hi]` (autoregressive sampler).
//!
//! All four are strided views into one blocked, packed GEMM core
//! ([`crate::gemm`]) with a runtime-dispatched AVX2+FMA microkernel and a
//! scalar fallback (override with `LMKG_FORCE_SCALAR=1`). Large
//! multiplications split output rows across OS threads sized from
//! [`std::thread::available_parallelism`]; small ones stay single-threaded
//! because thread spawn/join overhead dominates below
//! [`DEFAULT_PARALLEL_FLOP_THRESHOLD`]. Results are bitwise-identical
//! regardless of kernel tiling, batch shape, column slicing, and thread
//! count (see the determinism contract in [`crate::gemm`]).

use crate::gemm::{self, Kernel, MatRef};
use crate::gemv;
use std::sync::OnceLock;

/// Default minimum work size (`m·k·n` multiply-adds) before a matmul is
/// split across threads.
///
/// Rationale: spawning and joining a scoped thread costs on the order of
/// 10–50 µs; a single core sustains roughly 1 multiply-add per cycle on
/// this scalar kernel, so `2²² ≈ 4.2 M` multiply-adds ≈ 1–2 ms of work —
/// enough that even a 2-way split recoups the spawn cost more than 10×
/// over. Below the threshold the sequential kernel is strictly faster.
/// Tune per machine with the `LMKG_PARALLEL_FLOP_THRESHOLD` environment
/// variable (read once per process).
pub const DEFAULT_PARALLEL_FLOP_THRESHOLD: usize = 1 << 22;

/// The effective parallelism threshold: `LMKG_PARALLEL_FLOP_THRESHOLD` if
/// set and parseable, otherwise [`DEFAULT_PARALLEL_FLOP_THRESHOLD`].
pub fn parallel_flop_threshold() -> usize {
    static THRESHOLD: OnceLock<usize> = OnceLock::new();
    *THRESHOLD.get_or_init(|| {
        std::env::var("LMKG_PARALLEL_FLOP_THRESHOLD")
            .ok()
            .and_then(|s| s.parse().ok())
            .filter(|&t: &usize| t > 0) // 0 would divide-by-zero in thread_budget
            .unwrap_or(DEFAULT_PARALLEL_FLOP_THRESHOLD)
    })
}

/// Number of worker threads for a kernel doing `work` multiply-adds over
/// `rows` independent output rows: 1 below the threshold, otherwise scaled
/// so each worker gets at least one threshold's worth of work, capped by
/// the machine's available parallelism and the row count.
fn thread_budget(work: usize, rows: usize) -> usize {
    let threshold = parallel_flop_threshold();
    if work < threshold || rows < 2 {
        return 1;
    }
    let available = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(2);
    (work / threshold + 1).min(available).min(rows)
}

/// A dense row-major matrix of `f32`.
#[derive(Clone, Debug, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// An all-zeros matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Builds a matrix from a generator over `(row, col)`.
    ///
    /// The generator runs strictly in row-major order — stateful closures
    /// (weight-init RNGs in particular) depend on that sequence, which is
    /// why this constructor is *not* parallel. Order-independent generators
    /// can use [`Matrix::from_fn_par`].
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// Builds a matrix from a pure generator, splitting rows across threads
    /// sized from [`std::thread::available_parallelism`] when the element
    /// count crosses [`parallel_flop_threshold`].
    pub fn from_fn_par(rows: usize, cols: usize, f: impl Fn(usize, usize) -> f32 + Sync) -> Self {
        let mut out = Matrix::zeros(rows, cols);
        let threads = thread_budget(rows * cols, rows);
        if threads > 1 {
            let chunk = rows.div_ceil(threads);
            std::thread::scope(|s| {
                let mut rest = out.data.as_mut_slice();
                let mut row0 = 0usize;
                while row0 + chunk < rows {
                    let (head, tail) = rest.split_at_mut(chunk * cols);
                    rest = tail;
                    let f = &f;
                    s.spawn(move || fill_rows(head, row0, cols, f));
                    row0 += chunk;
                }
                fill_rows(rest, row0, cols, &f);
            });
        } else {
            fill_rows(&mut out.data, 0, cols, &f);
        }
        out
    }

    /// Wraps an existing row-major buffer. Panics if sizes disagree.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer size must be rows*cols");
        Self { rows, cols, data }
    }

    /// Stacks equal-length row slices into a matrix.
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        assert!(!rows.is_empty(), "from_rows needs at least one row");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "all rows must have equal length");
            data.extend_from_slice(r);
        }
        Self {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the matrix has no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The underlying row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable access to the underlying buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Row `r` as a mutable slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        self.data[r * self.cols + c]
    }

    /// Element setter.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        self.data[r * self.cols + c] = v;
    }

    /// Fills every element with `v`.
    pub fn fill(&mut self, v: f32) {
        self.data.iter_mut().for_each(|x| *x = v);
    }

    /// `self += other` elementwise.
    pub fn add_assign(&mut self, other: &Matrix) {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// `self += alpha * other` elementwise.
    pub fn add_scaled(&mut self, other: &Matrix, alpha: f32) {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// Multiplies every element by `alpha`.
    pub fn scale(&mut self, alpha: f32) {
        self.data.iter_mut().for_each(|x| *x *= alpha);
    }

    /// Elementwise map into a new matrix.
    pub fn map(&self, mut f: impl FnMut(f32) -> f32) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Elementwise combination `f(self, other)` into a new matrix.
    pub fn zip_map(&self, other: &Matrix, mut f: impl FnMut(f32, f32) -> f32) -> Matrix {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().zip(&other.data).map(|(&a, &b)| f(a, b)).collect(),
        }
    }

    /// Adds a row vector to every row (bias broadcast).
    pub fn add_row_vector(&mut self, bias: &[f32]) {
        assert_eq!(bias.len(), self.cols);
        for r in 0..self.rows {
            for (x, b) in self.row_mut(r).iter_mut().zip(bias) {
                *x += b;
            }
        }
    }

    /// Column sums (bias gradients).
    pub fn col_sums(&self) -> Vec<f32> {
        let mut sums = vec![0.0f32; self.cols];
        for r in 0..self.rows {
            for (s, x) in sums.iter_mut().zip(self.row(r)) {
                *s += x;
            }
        }
        sums
    }

    /// `C = self · other`; `self` is `m×k`, `other` is `k×n`.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        matmul_dispatch(gemm::active_kernel(), self, other, true)
    }

    /// `C = self · otherᵀ`; `self` is `m×k`, `other` is `n×k`.
    pub fn matmul_nt(&self, other: &Matrix) -> Matrix {
        matmul_nt_dispatch(gemm::active_kernel(), self, other, true)
    }

    /// `C = selfᵀ · other`; `self` is `b×m`, `other` is `b×n`.
    pub fn matmul_tn(&self, other: &Matrix) -> Matrix {
        matmul_tn_dispatch(gemm::active_kernel(), self, other, true)
    }

    /// `C = self · other[:, lo..hi]` — matmul against a column slice of
    /// `other`, avoiding computation of unneeded output columns. Used by the
    /// autoregressive sampler, which needs one logit segment per step.
    /// Bitwise equal to the corresponding column slice of the full
    /// [`Matrix::matmul`] product, and threaded by the same budget.
    pub fn matmul_cols(&self, other: &Matrix, lo: usize, hi: usize) -> Matrix {
        matmul_cols_dispatch(gemm::active_kernel(), self, other, lo, hi, true)
    }

    /// Consumes the matrix, returning its row-major buffer (workspace
    /// recycling).
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix {
        Matrix::from_fn_par(self.cols, self.rows, |r, c| self.get(c, r))
    }

    /// Maximum absolute element (grad-norm diagnostics).
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, &x| m.max(x.abs()))
    }
}

/// Fills `out` (rows starting at absolute index `row0`) from a generator.
fn fill_rows(out: &mut [f32], row0: usize, cols: usize, f: &(impl Fn(usize, usize) -> f32 + Sync)) {
    for (i, x) in out.iter_mut().enumerate() {
        *x = f(row0 + i / cols, i % cols);
    }
}

/// `C = A·B` through the blocked core with an explicit kernel and optional
/// threading — shared by [`Matrix::matmul`] and the bench/parity surface
/// [`crate::gemm::matmul_with_kernel`].
pub(crate) fn matmul_dispatch(kernel: Kernel, a: &Matrix, b: &Matrix, parallel: bool) -> Matrix {
    let mut out = Matrix::zeros(a.rows, b.cols);
    matmul_dispatch_into(kernel, a, b, &mut out, parallel);
    out
}

/// `out += A·B` into a caller-provided (zeroed) output — the allocation-free
/// entry point behind [`crate::workspace::Workspace::matmul`].
pub(crate) fn matmul_into(a: &Matrix, b: &Matrix, out: &mut Matrix) {
    matmul_dispatch_into(gemm::active_kernel(), a, b, out, true);
}

/// `out += A·B[:, lo..hi]` into a caller-provided (zeroed) output — behind
/// [`crate::workspace::Workspace::matmul_cols`].
pub(crate) fn matmul_cols_into(a: &Matrix, b: &Matrix, lo: usize, hi: usize, out: &mut Matrix) {
    matmul_cols_dispatch_into(gemm::active_kernel(), a, b, lo, hi, out, true);
}

fn matmul_dispatch_into(kernel: Kernel, a: &Matrix, b: &Matrix, out: &mut Matrix, parallel: bool) {
    assert_eq!(a.cols, b.rows, "matmul inner dimensions must agree");
    let (m, k, n) = (a.rows, a.cols, b.cols);
    assert_eq!((out.rows, out.cols), (m, n), "output shape must be m × n");
    let av = MatRef::new(&a.data, 0, k, 1, m, k);
    let bv = MatRef::new(&b.data, 0, n, 1, k, n);
    let threads = if parallel { thread_budget(m * k * n, m) } else { 1 };
    gemm_threaded(kernel, av, bv, &mut out.data, threads);
}

/// `C = A·Bᵀ` with an explicit kernel; see [`Matrix::matmul_nt`].
pub(crate) fn matmul_nt_dispatch(kernel: Kernel, a: &Matrix, b: &Matrix, parallel: bool) -> Matrix {
    assert_eq!(a.cols, b.cols, "matmul_nt inner dimensions must agree");
    let (m, k, n) = (a.rows, a.cols, b.rows);
    let mut out = Matrix::zeros(m, n);
    let av = MatRef::new(&a.data, 0, k, 1, m, k);
    // `Bᵀ` without a copy: element (kk, j) of Bᵀ is b[j*k + kk].
    let bv = MatRef::new(&b.data, 0, 1, k, k, n);
    let threads = if parallel { thread_budget(m * k * n, m) } else { 1 };
    gemm_threaded(kernel, av, bv, &mut out.data, threads);
    out
}

/// `C = Aᵀ·B` with an explicit kernel; see [`Matrix::matmul_tn`].
pub(crate) fn matmul_tn_dispatch(kernel: Kernel, a: &Matrix, b: &Matrix, parallel: bool) -> Matrix {
    assert_eq!(a.rows, b.rows, "matmul_tn batch dimensions must agree");
    let (batch, m, n) = (a.rows, a.cols, b.cols);
    let mut out = Matrix::zeros(m, n);
    // `Aᵀ` without a copy: element (i, kk) of Aᵀ is a[kk*m + i].
    let av = MatRef::new(&a.data, 0, 1, m, m, batch);
    let bv = MatRef::new(&b.data, 0, n, 1, batch, n);
    let threads = if parallel { thread_budget(batch * m * n, m) } else { 1 };
    gemm_threaded(kernel, av, bv, &mut out.data, threads);
    out
}

/// `C = A·B[:, lo..hi]` with an explicit kernel; see [`Matrix::matmul_cols`].
pub(crate) fn matmul_cols_dispatch(
    kernel: Kernel,
    a: &Matrix,
    b: &Matrix,
    lo: usize,
    hi: usize,
    parallel: bool,
) -> Matrix {
    assert!(lo <= hi && hi <= b.cols, "column slice out of range");
    let mut out = Matrix::zeros(a.rows, hi - lo);
    matmul_cols_dispatch_into(kernel, a, b, lo, hi, &mut out, parallel);
    out
}

fn matmul_cols_dispatch_into(
    kernel: Kernel,
    a: &Matrix,
    b: &Matrix,
    lo: usize,
    hi: usize,
    out: &mut Matrix,
    parallel: bool,
) {
    assert_eq!(a.cols, b.rows, "matmul inner dimensions must agree");
    assert!(lo <= hi && hi <= b.cols, "column slice out of range");
    let (m, k, n) = (a.rows, a.cols, hi - lo);
    assert_eq!((out.rows, out.cols), (m, n), "output shape must be m × (hi-lo)");
    let av = MatRef::new(&a.data, 0, k, 1, m, k);
    // The slice is a column-offset view: element (kk, j) is b[kk*cols + lo + j].
    let bv = MatRef::new(&b.data, lo, b.cols, 1, k, n);
    let threads = if parallel { thread_budget(m * k * n, m) } else { 1 };
    gemm_threaded(kernel, av, bv, &mut out.data, threads);
}

/// Splits the output rows of `c = a·b` into contiguous chunks, one scoped
/// thread each, and runs the serial core on every chunk. Each output
/// element is produced by exactly one thread with the same ascending-`k`
/// accumulation order, so the thread count never changes results.
fn gemm_threaded(kernel: Kernel, a: MatRef<'_>, b: MatRef<'_>, out: &mut [f32], threads: usize) {
    let (m, n) = (a.rows(), b.cols());
    if threads > 1 {
        let chunk = m.div_ceil(threads);
        std::thread::scope(|s| {
            let mut rest = out;
            let mut row0 = 0usize;
            while row0 + chunk < m {
                let (head, tail) = rest.split_at_mut(chunk * n);
                rest = tail;
                let a_part = a.row_window(row0, chunk);
                s.spawn(move || gemm_serial_auto(kernel, a_part, b, head));
                row0 += chunk;
            }
            gemm_serial_auto(kernel, a.row_window(row0, m - row0), b, rest);
        });
    } else {
        gemm_serial_auto(kernel, a, b, out);
    }
}

/// Serial core selection: row windows of at most [`gemv::GEMV_MAX_M`] rows
/// take the pack-free GEMV fast path, everything else the blocked packed
/// core. The two are bitwise-equal (see [`crate::gemv`]), so this is purely
/// a performance decision.
fn gemm_serial_auto(kernel: Kernel, a: MatRef<'_>, b: MatRef<'_>, out: &mut [f32]) {
    let use_gemv = a.rows() <= gemv::GEMV_MAX_M;
    crate::profile::note_dispatch(use_gemv, kernel, a.rows(), a.cols(), b.cols());
    if use_gemv {
        gemv::gemv_serial(kernel, a, b, out);
    } else {
        gemm::gemm_serial(kernel, a, b, out);
    }
}

/// `A·B` through an explicitly chosen serial core — the forced-path surface
/// behind [`crate::gemv`]'s bench/parity entry points.
pub(crate) fn matmul_forced(kernel: Kernel, a: &Matrix, b: &Matrix, use_gemv: bool) -> Matrix {
    assert_eq!(a.cols, b.rows, "matmul inner dimensions must agree");
    let (m, k, n) = (a.rows, a.cols, b.cols);
    let mut out = Matrix::zeros(m, n);
    let av = MatRef::new(&a.data, 0, k, 1, m, k);
    let bv = MatRef::new(&b.data, 0, n, 1, k, n);
    run_forced(kernel, av, bv, &mut out.data, use_gemv);
    out
}

/// `A·Bᵀ` through an explicitly chosen serial core.
pub(crate) fn matmul_nt_forced(kernel: Kernel, a: &Matrix, b: &Matrix, use_gemv: bool) -> Matrix {
    assert_eq!(a.cols, b.cols, "matmul_nt inner dimensions must agree");
    let (m, k, n) = (a.rows, a.cols, b.rows);
    let mut out = Matrix::zeros(m, n);
    let av = MatRef::new(&a.data, 0, k, 1, m, k);
    let bv = MatRef::new(&b.data, 0, 1, k, k, n);
    run_forced(kernel, av, bv, &mut out.data, use_gemv);
    out
}

/// `Aᵀ·B` through an explicitly chosen serial core.
pub(crate) fn matmul_tn_forced(kernel: Kernel, a: &Matrix, b: &Matrix, use_gemv: bool) -> Matrix {
    assert_eq!(a.rows, b.rows, "matmul_tn batch dimensions must agree");
    let (batch, m, n) = (a.rows, a.cols, b.cols);
    let mut out = Matrix::zeros(m, n);
    let av = MatRef::new(&a.data, 0, 1, m, m, batch);
    let bv = MatRef::new(&b.data, 0, n, 1, batch, n);
    run_forced(kernel, av, bv, &mut out.data, use_gemv);
    out
}

/// `A·B[:, lo..hi]` through an explicitly chosen serial core.
pub(crate) fn matmul_cols_forced(
    kernel: Kernel,
    a: &Matrix,
    b: &Matrix,
    lo: usize,
    hi: usize,
    use_gemv: bool,
) -> Matrix {
    assert_eq!(a.cols, b.rows, "matmul inner dimensions must agree");
    assert!(lo <= hi && hi <= b.cols, "column slice out of range");
    let (m, k, n) = (a.rows, a.cols, hi - lo);
    let mut out = Matrix::zeros(m, n);
    let av = MatRef::new(&a.data, 0, k, 1, m, k);
    let bv = MatRef::new(&b.data, lo, b.cols, 1, k, n);
    run_forced(kernel, av, bv, &mut out.data, use_gemv);
    out
}

fn run_forced(kernel: Kernel, av: MatRef<'_>, bv: MatRef<'_>, out: &mut [f32], use_gemv: bool) {
    if use_gemv {
        gemv::gemv_serial(kernel, av, bv, out);
    } else {
        gemm::gemm_serial(kernel, av, bv, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_matmul(a: &Matrix, b: &Matrix) -> Matrix {
        let mut c = Matrix::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for j in 0..b.cols() {
                let mut acc = 0.0;
                for k in 0..a.cols() {
                    acc += a.get(i, k) * b.get(k, j);
                }
                c.set(i, j, acc);
            }
        }
        c
    }

    fn approx_eq(a: &Matrix, b: &Matrix, tol: f32) -> bool {
        a.rows() == b.rows()
            && a.cols() == b.cols()
            && a.as_slice().iter().zip(b.as_slice()).all(|(x, y)| (x - y).abs() <= tol)
    }

    use crate::test_support::seeded_matrix as test_matrix;

    #[test]
    fn matmul_matches_naive() {
        let a = test_matrix(7, 5, 1);
        let b = test_matrix(5, 9, 2);
        assert!(approx_eq(&a.matmul(&b), &naive_matmul(&a, &b), 1e-4));
    }

    #[test]
    fn matmul_nt_matches_naive_transpose() {
        let a = test_matrix(4, 6, 3);
        let b = test_matrix(8, 6, 4);
        assert!(approx_eq(&a.matmul_nt(&b), &naive_matmul(&a, &b.transpose()), 1e-4));
    }

    #[test]
    fn matmul_tn_matches_naive_transpose() {
        let a = test_matrix(6, 4, 5);
        let b = test_matrix(6, 7, 6);
        assert!(approx_eq(&a.matmul_tn(&b), &naive_matmul(&a.transpose(), &b), 1e-4));
    }

    #[test]
    fn parallel_path_matches_naive() {
        // Force the threaded path with a matrix above the threshold.
        let a = test_matrix(260, 130, 7);
        let b = test_matrix(130, 140, 8);
        assert!(approx_eq(&a.matmul(&b), &naive_matmul(&a, &b), 1e-2));
        let bt = test_matrix(140, 130, 9);
        assert!(approx_eq(&a.matmul_nt(&bt), &naive_matmul(&a, &bt.transpose()), 1e-2));
        let c = test_matrix(260, 140, 10);
        assert!(approx_eq(&a.matmul_tn(&c), &naive_matmul(&a.transpose(), &c), 1e-2));
    }

    #[test]
    fn bias_broadcast_and_col_sums() {
        let mut m = Matrix::zeros(3, 2);
        m.add_row_vector(&[1.0, 2.0]);
        assert_eq!(m.as_slice(), &[1.0, 2.0, 1.0, 2.0, 1.0, 2.0]);
        assert_eq!(m.col_sums(), vec![3.0, 6.0]);
    }

    #[test]
    fn elementwise_ops() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let b = Matrix::from_vec(2, 2, vec![4.0, 3.0, 2.0, 1.0]);
        let mut c = a.clone();
        c.add_assign(&b);
        assert_eq!(c.as_slice(), &[5.0; 4]);
        let d = a.zip_map(&b, |x, y| x * y);
        assert_eq!(d.as_slice(), &[4.0, 6.0, 6.0, 4.0]);
        let e = a.map(|x| x * 2.0);
        assert_eq!(e.as_slice(), &[2.0, 4.0, 6.0, 8.0]);
        let mut f = a.clone();
        f.add_scaled(&b, 0.5);
        assert_eq!(f.as_slice(), &[3.0, 3.5, 4.0, 4.5]);
    }

    #[test]
    fn from_rows_builds_expected_layout() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.row(1), &[3.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn matmul_dimension_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(4, 2);
        let _ = a.matmul(&b);
    }

    #[test]
    fn max_abs_works() {
        let m = Matrix::from_vec(1, 3, vec![-5.0, 2.0, 4.0]);
        assert_eq!(m.max_abs(), 5.0);
    }

    #[test]
    fn from_fn_par_matches_sequential() {
        // Large enough to cross the parallel threshold (rows*cols > 2²²).
        let gen = |r: usize, c: usize| ((r * 7919 + c * 31) % 101) as f32;
        let a = Matrix::from_fn(2100, 2100, gen);
        let b = Matrix::from_fn_par(2100, 2100, gen);
        assert_eq!(a, b);
        // And below it.
        let c = Matrix::from_fn(3, 5, gen);
        let d = Matrix::from_fn_par(3, 5, gen);
        assert_eq!(c, d);
    }

    #[test]
    fn thread_budget_respects_bounds() {
        let threshold = parallel_flop_threshold();
        assert_eq!(thread_budget(threshold - 1, 1024), 1);
        assert_eq!(thread_budget(threshold * 16, 1), 1);
        let avail = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(2);
        let t = thread_budget(threshold * 16, 1024);
        if avail >= 2 {
            assert!(t >= 2, "above-threshold work must parallelize on a multi-core box");
        }
        assert!(t <= avail, "budget {t} must not exceed available parallelism {avail}");
        assert!(
            thread_budget(threshold * 1000, 3) <= 3,
            "budget must not exceed row count"
        );
    }

    #[test]
    fn matmul_cols_slice_is_bitwise_equal_to_full_product_columns() {
        // Large enough that the sliced work alone (512·256·64 ≈ 8.4 M
        // multiply-adds) crosses the parallel threshold, so on multi-core
        // machines the sliced path runs threaded — the seed implementation
        // ignored `thread_budget` entirely. Bitwise equality with the full
        // product's column slice is the GEMM core's determinism contract.
        let a = test_matrix(512, 256, 21);
        let b = test_matrix(256, 256, 22);
        let (lo, hi) = (97, 161);
        assert!(a.rows() * a.cols() * (hi - lo) > parallel_flop_threshold());
        let sliced = a.matmul_cols(&b, lo, hi);
        let full = a.matmul(&b);
        assert_eq!((sliced.rows(), sliced.cols()), (a.rows(), hi - lo));
        for i in 0..a.rows() {
            assert_eq!(
                sliced.row(i),
                &full.row(i)[lo..hi],
                "row {i} diverged from the full product"
            );
        }
    }

    #[test]
    fn matmul_cols_edge_slices() {
        let a = test_matrix(5, 11, 23);
        let b = test_matrix(11, 19, 24);
        let full = a.matmul(&b);
        // Empty slice.
        let empty = a.matmul_cols(&b, 7, 7);
        assert_eq!((empty.rows(), empty.cols()), (5, 0));
        // Full-width slice equals the plain product bitwise.
        assert_eq!(a.matmul_cols(&b, 0, 19), full);
        // Last column alone.
        let last = a.matmul_cols(&b, 18, 19);
        for i in 0..5 {
            assert_eq!(last.get(i, 0), full.get(i, 18));
        }
    }

    #[test]
    fn parallel_chunked_path_matches_naive_many_threads() {
        // A tall matmul whose work is many multiples of the threshold, so
        // the chunked scope spawns as many workers as the machine allows.
        let a = test_matrix(1024, 96, 11);
        let b = test_matrix(96, 200, 12);
        assert!(approx_eq(&a.matmul(&b), &naive_matmul(&a, &b), 1e-2));
    }
}
