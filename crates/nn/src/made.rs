//! ResMADE: a masked autoregressive density estimator with residual blocks.
//!
//! LMKG-U (paper §VI-B) uses "ResMADE, a modified version of MADE enhanced by
//! residual connections". For a position ordering `x₁ … x_K` the network's
//! logit block for position `i` depends only on inputs at positions `< i`,
//! so one forward pass yields every conditional
//! `P(x_i | x₁ … x_{i−1})` and their product is the tuple density.
//!
//! Implementation notes:
//! * positions take categorical ids; the input is either per-position
//!   embeddings (shared per term space — nodes vs. predicates) or one-hot;
//! * all hidden layers share one degree assignment (cycling `1..K−1`), which
//!   makes residual skip-connections autoregressive-safe;
//! * the output layer emits one logit segment per position, masked so that
//!   segment `i` sees only hidden units with degree `≤ i−1`; segment 1
//!   receives only its bias, i.e. the learned marginal of `x₁`.

use crate::embedding::Embedding;
use crate::layers::{Layer, MaskedDense, Param, Relu};
use crate::quant::{QuantLayer, QuantMode, QuantizedDense, QuantizedEmbedding};
use crate::tensor::Matrix;
use crate::workspace::Workspace;
use rand::Rng;

/// Configuration of a [`Made`] network.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MadeConfig {
    /// Vocabulary size per term space (e.g. `[num_nodes, num_preds]`).
    pub vocab_sizes: Vec<usize>,
    /// For each autoregressive position, the index of its term space.
    pub spaces: Vec<usize>,
    /// Hidden width (all hidden layers share it; required by residual skips).
    pub hidden: usize,
    /// Number of residual blocks after the input layer.
    pub blocks: usize,
    /// Embedding dimensionality; `0` selects one-hot input.
    pub embed_dim: usize,
}

impl MadeConfig {
    /// Number of autoregressive positions.
    pub fn positions(&self) -> usize {
        self.spaces.len()
    }

    /// Logit segment widths (vocab of each position's space).
    pub fn segments(&self) -> Vec<usize> {
        self.spaces.iter().map(|&s| self.vocab_sizes[s]).collect()
    }

    fn validate(&self) {
        assert!(self.positions() >= 2, "MADE needs at least two positions");
        assert!(!self.vocab_sizes.is_empty(), "at least one term space");
        assert!(
            self.spaces.iter().all(|&s| s < self.vocab_sizes.len()),
            "space index out of range"
        );
        assert!(self.vocab_sizes.iter().all(|&v| v >= 1), "empty vocabulary");
        assert!(self.hidden >= 1, "hidden width must be positive");
    }
}

/// One residual block: `y = relu(x + M₂(relu(M₁(x))))`.
struct ResBlock {
    l1: MaskedDense,
    r1: Relu,
    l2: MaskedDense,
    out_relu: Relu,
}

impl ResBlock {
    fn forward(&mut self, x: &Matrix, train: bool) -> Matrix {
        let a = self.l1.forward(x, train);
        let b = self.r1.forward(&a, train);
        let mut c = self.l2.forward(&b, train);
        c.add_assign(x);
        self.out_relu.forward(&c, train)
    }

    fn forward_infer(&self, x: &Matrix, ws: &mut Workspace) -> Matrix {
        let a = self.l1.forward_infer(x, ws);
        let b = self.r1.forward_infer_owned(a, ws);
        let mut c = self.l2.forward_infer(&b, ws);
        ws.recycle(b);
        c.add_assign(x);
        self.out_relu.forward_infer_owned(c, ws)
    }

    fn backward(&mut self, grad_out: &Matrix) -> Matrix {
        let ds = self.out_relu.backward(grad_out);
        let db = self.l2.backward(&ds);
        let da = self.r1.backward(&db);
        let mut dx = self.l1.backward(&da);
        dx.add_assign(&ds); // skip path
        dx
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.l1.visit_params(f);
        self.l2.visit_params(f);
    }

    fn visit_params_ref(&self, f: &mut dyn FnMut(&Param)) {
        self.l1.visit_params_ref(f);
        self.l2.visit_params_ref(f);
    }
}

/// A ResMADE density model over categorical positions.
pub struct Made {
    cfg: MadeConfig,
    segments: Vec<usize>,
    /// One embedding table per term space (empty when `embed_dim == 0`).
    embeddings: Vec<Embedding>,
    input_layer: MaskedDense,
    input_relu: Relu,
    blocks: Vec<ResBlock>,
    output_layer: MaskedDense,
    /// Cached per-position input-gradient slices for embedding backward.
    cached_ids: Option<Vec<Vec<usize>>>,
}

impl Made {
    /// Builds a ResMADE with the given configuration.
    pub fn new<R: Rng>(rng: &mut R, cfg: MadeConfig) -> Self {
        cfg.validate();
        let k = cfg.positions();
        let segments = cfg.segments();
        let hidden = cfg.hidden;

        // Input unit degrees: position index (1-based) per embedding/one-hot block.
        let input_width: usize = if cfg.embed_dim > 0 {
            k * cfg.embed_dim
        } else {
            segments.iter().sum()
        };
        let mut input_degrees = Vec::with_capacity(input_width);
        for (pos, &seg) in segments.iter().enumerate() {
            let width = if cfg.embed_dim > 0 { cfg.embed_dim } else { seg };
            input_degrees.extend(std::iter::repeat_n(pos + 1, width));
        }

        // Hidden degrees cycle 1..=K-1 and are shared by every hidden layer.
        let max_deg = (k - 1).max(1);
        let hidden_degrees: Vec<usize> = (0..hidden).map(|i| 1 + (i % max_deg)).collect();

        let mask_in = Matrix::from_fn(input_width, hidden, |u, h| {
            if hidden_degrees[h] >= input_degrees[u] {
                1.0
            } else {
                0.0
            }
        });
        let mask_hh = Matrix::from_fn(hidden, hidden, |a, b| {
            if hidden_degrees[b] >= hidden_degrees[a] {
                1.0
            } else {
                0.0
            }
        });
        let out_width: usize = segments.iter().sum();
        let mut out_pos = Vec::with_capacity(out_width);
        for (pos, &seg) in segments.iter().enumerate() {
            out_pos.extend(std::iter::repeat_n(pos + 1, seg));
        }
        let mask_out = Matrix::from_fn(hidden, out_width, |h, o| {
            if out_pos[o] > hidden_degrees[h] {
                1.0
            } else {
                0.0
            }
        });

        let embeddings = if cfg.embed_dim > 0 {
            cfg.vocab_sizes
                .iter()
                .map(|&v| Embedding::new(rng, v, cfg.embed_dim))
                .collect()
        } else {
            Vec::new()
        };

        let input_layer = MaskedDense::new(rng, mask_in);
        let blocks = (0..cfg.blocks)
            .map(|_| ResBlock {
                l1: MaskedDense::new(rng, mask_hh.clone()),
                r1: Relu::new(),
                l2: MaskedDense::new(rng, mask_hh.clone()),
                out_relu: Relu::new(),
            })
            .collect();
        let output_layer = MaskedDense::new(rng, mask_out);

        Self {
            cfg,
            segments,
            embeddings,
            input_layer,
            input_relu: Relu::new(),
            blocks,
            output_layer,
            cached_ids: None,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &MadeConfig {
        &self.cfg
    }

    /// Logit segment widths per position.
    pub fn segments(&self) -> &[usize] {
        &self.segments
    }

    /// Encodes a batch of id tuples into the network input matrix, drawing
    /// the buffer from `ws`.
    fn encode_input(&self, batch_ids: &[Vec<usize>], ws: &mut Workspace) -> Matrix {
        let k = self.cfg.positions();
        if self.cfg.embed_dim > 0 {
            let dim = self.cfg.embed_dim;
            let mut x = ws.take(batch_ids.len(), k * dim);
            for (r, ids) in batch_ids.iter().enumerate() {
                debug_assert_eq!(ids.len(), k);
                let row = x.row_mut(r);
                for (pos, &id) in ids.iter().enumerate() {
                    let table = &self.embeddings[self.cfg.spaces[pos]];
                    table.lookup_into(id, &mut row[pos * dim..(pos + 1) * dim]);
                }
            }
            x
        } else {
            let width: usize = self.segments.iter().sum();
            let mut x = ws.take(batch_ids.len(), width);
            for (r, ids) in batch_ids.iter().enumerate() {
                let row = x.row_mut(r);
                let mut offset = 0;
                for (pos, &id) in ids.iter().enumerate() {
                    row[offset + id] = 1.0;
                    offset += self.segments[pos];
                }
            }
            x
        }
    }

    /// Forward pass over a batch of complete id tuples, returning logits
    /// (`batch × Σ segments`). Positions the caller has not decided yet may
    /// hold any placeholder id — the autoregressive masks guarantee they
    /// cannot influence earlier segments.
    pub fn forward_ids(&mut self, batch_ids: &[Vec<usize>], train: bool) -> Matrix {
        let mut ws = Workspace::new();
        let x = self.encode_input(batch_ids, &mut ws);
        if train {
            self.cached_ids = Some(batch_ids.to_vec());
        }
        let mut h = self.input_layer.forward(&x, train);
        h = self.input_relu.forward(&h, train);
        for b in &mut self.blocks {
            h = b.forward(&h, train);
        }
        self.output_layer.forward(&h, train)
    }

    /// Inference-only full forward over **shared** model state: no caching,
    /// buffers from the caller's [`Workspace`], safe to run from any number
    /// of threads concurrently. Bitwise identical to
    /// `forward_ids(batch_ids, false)`.
    pub fn forward_ids_infer(&self, batch_ids: &[Vec<usize>], ws: &mut Workspace) -> Matrix {
        let h = self.hidden_infer(batch_ids, ws);
        let out = self.output_layer.forward_infer(&h, ws);
        ws.recycle(h);
        out
    }

    /// Inference-only forward returning just the logit segment of one
    /// position (`batch × segments[pos]`). Runs the hidden stack once and a
    /// column-sliced output layer — the fast path of the likelihood-weighted
    /// sampler, which needs exactly one segment per autoregressive step.
    /// Shared-state (`&self`) like [`Made::forward_ids_infer`].
    pub fn forward_ids_segment(&self, batch_ids: &[Vec<usize>], pos: usize, ws: &mut Workspace) -> Matrix {
        let h = self.hidden_infer(batch_ids, ws);
        let lo: usize = self.segments[..pos].iter().sum();
        let hi = lo + self.segments[pos];
        let out = self.output_layer.forward_columns_infer(&h, lo, hi, ws);
        ws.recycle(h);
        out
    }

    /// The shared hidden stack of the inference paths: encode → input layer
    /// → ReLU → residual blocks.
    fn hidden_infer(&self, batch_ids: &[Vec<usize>], ws: &mut Workspace) -> Matrix {
        let x = self.encode_input(batch_ids, ws);
        let mut h = self.input_layer.forward_infer(&x, ws);
        ws.recycle(x);
        h = self.input_relu.forward_infer_owned(h, ws);
        for b in &self.blocks {
            let next = b.forward_infer(&h, ws);
            ws.recycle(h);
            h = next;
        }
        h
    }

    /// Backward pass from logit gradients; accumulates gradients in all
    /// weights and embedding tables.
    pub fn backward_ids(&mut self, grad_logits: &Matrix) {
        let mut g = self.output_layer.backward(grad_logits);
        for b in self.blocks.iter_mut().rev() {
            g = b.backward(&g);
        }
        g = self.input_relu.backward(&g);
        let gx = self.input_layer.backward(&g);

        if self.cfg.embed_dim > 0 {
            let ids = self.cached_ids.take().expect("backward_ids without forward_ids(train)");
            let dim = self.cfg.embed_dim;
            for (r, row_ids) in ids.iter().enumerate() {
                let grow = gx.row(r);
                for (pos, &id) in row_ids.iter().enumerate() {
                    let space = self.cfg.spaces[pos];
                    self.embeddings[space].accumulate_grad(id, &grow[pos * dim..(pos + 1) * dim]);
                }
            }
        } else {
            self.cached_ids = None;
        }
    }

    /// Total scalar parameter count (read-only walk).
    pub fn param_count(&self) -> usize {
        let mut n = 0;
        self.visit_params_ref(&mut |p| n += p.len());
        n
    }

    /// Model size in bytes (f32 parameters).
    pub fn memory_bytes(&self) -> usize {
        self.param_count() * std::mem::size_of::<f32>()
    }

    /// Maximum |weight| over masked-out connections across all masked layers.
    /// Must remain zero under training (diagnostic).
    pub fn mask_violation(&self) -> f32 {
        let mut v = self
            .input_layer
            .mask_violation()
            .max(self.output_layer.mask_violation());
        for b in &self.blocks {
            v = v.max(b.l1.mask_violation()).max(b.l2.mask_violation());
        }
        v
    }

    /// One-shot quantization of the frozen model: every masked layer's
    /// weights (masked entries are exactly zero, so they quantize to exactly
    /// zero and the autoregressive property survives) and every embedding
    /// table, at the given [`QuantMode`]. The result owns no f32 weights.
    pub fn quantized(&self, mode: QuantMode) -> QuantizedMade {
        let embeddings = self
            .embeddings
            .iter()
            .map(|e| QuantizedEmbedding::from_table(e.values(), mode))
            .collect();
        QuantizedMade {
            spaces: self.cfg.spaces.clone(),
            embed_dim: self.cfg.embed_dim,
            segments: self.segments.clone(),
            embeddings,
            input_layer: quantize_masked(&self.input_layer, mode),
            blocks: self
                .blocks
                .iter()
                .map(|b| (quantize_masked(&b.l1, mode), quantize_masked(&b.l2, mode)))
                .collect(),
            output_layer: quantize_masked(&self.output_layer, mode),
            mode,
        }
    }
}

fn quantize_masked(layer: &MaskedDense, mode: QuantMode) -> QuantizedDense {
    match layer.quantize_layer(mode) {
        Some(QuantLayer::Dense(d)) => d,
        _ => unreachable!("MaskedDense quantizes to a dense stage"),
    }
}

fn relu_in_place(m: &mut Matrix) {
    for v in m.as_mut_slice() {
        *v = v.max(0.0);
    }
}

/// A frozen, quantized ResMADE: the inference surface of [`Made`]
/// (`forward_ids_infer` / `forward_ids_segment`) over int8 or bf16 weights
/// with f32 accumulation. Built by [`Made::quantized`]; owns no f32 weights,
/// so [`QuantizedMade::memory_bytes`] reports the true quantized footprint.
pub struct QuantizedMade {
    spaces: Vec<usize>,
    embed_dim: usize,
    segments: Vec<usize>,
    embeddings: Vec<QuantizedEmbedding>,
    input_layer: QuantizedDense,
    blocks: Vec<(QuantizedDense, QuantizedDense)>,
    output_layer: QuantizedDense,
    mode: QuantMode,
}

impl QuantizedMade {
    /// The quantization mode this model was built with.
    pub fn mode(&self) -> QuantMode {
        self.mode
    }

    /// Logit segment widths per position.
    pub fn segments(&self) -> &[usize] {
        &self.segments
    }

    /// Number of autoregressive positions.
    pub fn positions(&self) -> usize {
        self.spaces.len()
    }

    fn encode_input(&self, batch_ids: &[Vec<usize>], ws: &mut Workspace) -> Matrix {
        let k = self.positions();
        if self.embed_dim > 0 {
            let dim = self.embed_dim;
            // Every row is fully overwritten (the position blocks tile it),
            // so the unspecified-contents buffer is safe here.
            let mut x = ws.take_full(batch_ids.len(), k * dim);
            for (r, ids) in batch_ids.iter().enumerate() {
                debug_assert_eq!(ids.len(), k);
                let row = x.row_mut(r);
                for (pos, &id) in ids.iter().enumerate() {
                    let table = &self.embeddings[self.spaces[pos]];
                    table.lookup_into(id, &mut row[pos * dim..(pos + 1) * dim]);
                }
            }
            x
        } else {
            // One-hot relies on the zeroed `take` contract.
            let width: usize = self.segments.iter().sum();
            let mut x = ws.take(batch_ids.len(), width);
            for (r, ids) in batch_ids.iter().enumerate() {
                let row = x.row_mut(r);
                let mut offset = 0;
                for (pos, &id) in ids.iter().enumerate() {
                    row[offset + id] = 1.0;
                    offset += self.segments[pos];
                }
            }
            x
        }
    }

    fn hidden_infer(&self, batch_ids: &[Vec<usize>], ws: &mut Workspace) -> Matrix {
        let x = self.encode_input(batch_ids, ws);
        let mut h = self.input_layer.forward_infer(&x, ws);
        ws.recycle(x);
        relu_in_place(&mut h);
        for (l1, l2) in &self.blocks {
            let mut a = l1.forward_infer(&h, ws);
            relu_in_place(&mut a);
            let mut c = l2.forward_infer(&a, ws);
            ws.recycle(a);
            c.add_assign(&h);
            relu_in_place(&mut c);
            ws.recycle(h);
            h = c;
        }
        h
    }

    /// Full-logit inference forward (`batch × Σ segments`); the quantized
    /// counterpart of [`Made::forward_ids_infer`]. Shared-state (`&self`),
    /// buffers from the caller's [`Workspace`].
    pub fn forward_ids_infer(&self, batch_ids: &[Vec<usize>], ws: &mut Workspace) -> Matrix {
        let h = self.hidden_infer(batch_ids, ws);
        let out = self.output_layer.forward_infer(&h, ws);
        ws.recycle(h);
        out
    }

    /// Single-segment inference forward (`batch × segments[pos]`); the
    /// quantized counterpart of [`Made::forward_ids_segment`].
    pub fn forward_ids_segment(&self, batch_ids: &[Vec<usize>], pos: usize, ws: &mut Workspace) -> Matrix {
        let h = self.hidden_infer(batch_ids, ws);
        let lo: usize = self.segments[..pos].iter().sum();
        let hi = lo + self.segments[pos];
        let out = self.output_layer.forward_columns_infer(&h, lo, hi, ws);
        ws.recycle(h);
        out
    }

    /// Total scalar parameter count (weights, scales, biases, embeddings).
    pub fn param_count(&self) -> usize {
        let mut n: usize = self.embeddings.iter().map(|e| e.param_count()).sum();
        n += self.input_layer.param_count() + self.output_layer.param_count();
        for (l1, l2) in &self.blocks {
            n += l1.param_count() + l2.param_count();
        }
        n
    }

    /// Model size in bytes at the quantized representation.
    pub fn memory_bytes(&self) -> usize {
        let mut n: usize = self.embeddings.iter().map(|e| e.memory_bytes()).sum();
        n += self.input_layer.memory_bytes() + self.output_layer.memory_bytes();
        for (l1, l2) in &self.blocks {
            n += l1.memory_bytes() + l2.memory_bytes();
        }
        n
    }

    /// Serializes the quantized ResMADE (self-describing; see
    /// [`QUANT_MADE_MAGIC`]): mode, routing metadata, embedding tables, and
    /// every quantized layer in forward order.
    pub fn save<W: std::io::Write>(&self, writer: &mut W) -> std::io::Result<()> {
        writer.write_all(QUANT_MADE_MAGIC)?;
        writer.write_all(&[match self.mode {
            QuantMode::Int8 => 0u8,
            QuantMode::Bf16 => 1u8,
        }])?;
        let write_usizes = |writer: &mut W, values: &[usize]| -> std::io::Result<()> {
            writer.write_all(&(values.len() as u32).to_le_bytes())?;
            for &v in values {
                writer.write_all(&(v as u32).to_le_bytes())?;
            }
            Ok(())
        };
        write_usizes(writer, &self.spaces)?;
        writer.write_all(&(self.embed_dim as u32).to_le_bytes())?;
        write_usizes(writer, &self.segments)?;
        writer.write_all(&(self.embeddings.len() as u32).to_le_bytes())?;
        for e in &self.embeddings {
            e.write_payload(writer)?;
        }
        self.input_layer.write_payload(writer)?;
        writer.write_all(&(self.blocks.len() as u32).to_le_bytes())?;
        for (l1, l2) in &self.blocks {
            l1.write_payload(writer)?;
            l2.write_payload(writer)?;
        }
        self.output_layer.write_payload(writer)
    }

    /// Restores a model serialized by [`QuantizedMade::save`]. Needs no
    /// graph or RNG: the quantized representation is self-contained.
    pub fn load<R: std::io::Read>(reader: &mut R) -> std::io::Result<Self> {
        let mut magic = [0u8; 8];
        reader.read_exact(&mut magic)?;
        if &magic != QUANT_MADE_MAGIC {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "bad magic: not an LMKG quantized-MADE file",
            ));
        }
        let mut byte = [0u8; 1];
        reader.read_exact(&mut byte)?;
        let mode = match byte[0] {
            0 => QuantMode::Int8,
            1 => QuantMode::Bf16,
            other => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("unknown quantization mode tag {other}"),
                ))
            }
        };
        let read_u32 = |reader: &mut R| -> std::io::Result<u32> {
            let mut buf = [0u8; 4];
            reader.read_exact(&mut buf)?;
            Ok(u32::from_le_bytes(buf))
        };
        let read_usizes = |reader: &mut R| -> std::io::Result<Vec<usize>> {
            let n = read_u32(reader)? as usize;
            (0..n).map(|_| Ok(read_u32(reader)? as usize)).collect()
        };
        let spaces = read_usizes(reader)?;
        let embed_dim = read_u32(reader)? as usize;
        let segments = read_usizes(reader)?;
        let n_embeddings = read_u32(reader)? as usize;
        let embeddings = (0..n_embeddings)
            .map(|_| QuantizedEmbedding::read_payload(reader, mode))
            .collect::<std::io::Result<Vec<_>>>()?;
        let input_layer = QuantizedDense::read_payload(reader, mode)?;
        let n_blocks = read_u32(reader)? as usize;
        let blocks = (0..n_blocks)
            .map(|_| {
                Ok((
                    QuantizedDense::read_payload(reader, mode)?,
                    QuantizedDense::read_payload(reader, mode)?,
                ))
            })
            .collect::<std::io::Result<Vec<_>>>()?;
        let output_layer = QuantizedDense::read_payload(reader, mode)?;
        Ok(Self {
            spaces,
            embed_dim,
            segments,
            embeddings,
            input_layer,
            blocks,
            output_layer,
            mode,
        })
    }
}

/// Magic prefix of the quantized-ResMADE format (parallel to
/// [`crate::quant::QUANT_MAGIC`] for sequential stacks).
pub const QUANT_MADE_MAGIC: &[u8; 8] = b"LMKGQM1\0";

impl Layer for Made {
    fn forward(&mut self, _x: &Matrix, _train: bool) -> Matrix {
        unimplemented!("Made consumes id tuples; use forward_ids")
    }

    fn forward_infer(&self, _x: &Matrix, _ws: &mut Workspace) -> Matrix {
        unimplemented!("Made consumes id tuples; use forward_ids_infer")
    }

    fn backward(&mut self, _grad_out: &Matrix) -> Matrix {
        unimplemented!("Made consumes id tuples; use backward_ids")
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        for e in &mut self.embeddings {
            f(e.param_mut());
        }
        self.input_layer.visit_params(f);
        for b in &mut self.blocks {
            b.visit_params(f);
        }
        self.output_layer.visit_params(f);
    }

    fn visit_params_ref(&self, f: &mut dyn FnMut(&Param)) {
        for e in &self.embeddings {
            f(e.param());
        }
        self.input_layer.visit_params_ref(f);
        for b in &self.blocks {
            b.visit_params_ref(f);
        }
        self.output_layer.visit_params_ref(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss;
    use crate::optimizer::{Adam, Optimizer};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_cfg(embed: usize) -> MadeConfig {
        MadeConfig {
            vocab_sizes: vec![4, 3],
            spaces: vec![0, 1, 0], // node, pred, node
            hidden: 16,
            blocks: 1,
            embed_dim: embed,
        }
    }

    #[test]
    fn shapes_are_consistent() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut made = Made::new(&mut rng, tiny_cfg(4));
        assert_eq!(made.segments(), &[4, 3, 4]);
        let logits = made.forward_ids(&[vec![0, 1, 2], vec![3, 0, 0]], false);
        assert_eq!((logits.rows(), logits.cols()), (2, 11));
    }

    /// Core MADE invariant: perturbing position j leaves segments ≤ j intact.
    #[test]
    fn autoregressive_property_embeddings() {
        autoregressive_property(4);
    }

    #[test]
    fn autoregressive_property_one_hot() {
        autoregressive_property(0);
    }

    fn autoregressive_property(embed: usize) {
        let mut rng = StdRng::seed_from_u64(42);
        let mut made = Made::new(&mut rng, tiny_cfg(embed));
        let base = vec![1usize, 2, 3];
        let logits0 = made.forward_ids(std::slice::from_ref(&base), false);

        for pos in 0..3 {
            let mut perturbed = base.clone();
            perturbed[pos] = (perturbed[pos] + 1) % made.segments()[pos];
            let logits1 = made.forward_ids(&[perturbed], false);

            let mut offset = 0;
            for (i, &seg) in made.segments().to_vec().iter().enumerate() {
                let a = &logits0.row(0)[offset..offset + seg];
                let b = &logits1.row(0)[offset..offset + seg];
                if i <= pos {
                    assert_eq!(a, b, "segment {i} changed after perturbing position {pos}");
                }
                offset += seg;
            }
        }
    }

    /// First segment must be input-independent (bias-only marginal).
    #[test]
    fn first_segment_is_constant() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut made = Made::new(&mut rng, tiny_cfg(4));
        let l1 = made.forward_ids(&[vec![0, 0, 0]], false);
        let l2 = made.forward_ids(&[vec![3, 2, 3]], false);
        assert_eq!(&l1.row(0)[..4], &l2.row(0)[..4]);
    }

    /// Training on a deterministic dependency must drive NLL near zero for
    /// the dependent positions.
    #[test]
    fn learns_simple_dependency() {
        let mut rng = StdRng::seed_from_u64(7);
        let cfg = MadeConfig {
            vocab_sizes: vec![4],
            spaces: vec![0, 0],
            hidden: 32,
            blocks: 1,
            embed_dim: 8,
        };
        let mut made = Made::new(&mut rng, cfg);
        let segments = made.segments().to_vec();

        // x2 = (x1 + 1) mod 4, x1 uniform.
        let data: Vec<Vec<usize>> = (0..64).map(|i| vec![i % 4, (i + 1) % 4]).collect();
        let mut opt = Adam::new(5e-3);
        let mut final_loss = f32::MAX;
        for _ in 0..150 {
            let logits = made.forward_ids(&data, true);
            let (l, grad) = loss::segmented_cross_entropy(&logits, &segments, &data);
            made.backward_ids(&grad);
            opt.step(&mut made);
            final_loss = l;
        }
        // Ideal NLL = H(x1) + H(x2|x1) = ln4 + 0 ≈ 1.386.
        assert!(final_loss < 1.5, "final NLL {final_loss}");

        // The conditional P(x2 | x1) must be concentrated on (x1+1)%4.
        let logits = made.forward_ids(&[vec![2, 0]], false);
        let seg2 = &logits.row(0)[4..8];
        let mut probs = seg2.to_vec();
        loss::softmax_in_place(&mut probs);
        assert!(probs[3] > 0.9, "P(x2=3 | x1=2) = {}", probs[3]);
    }

    #[test]
    fn gradient_check_small_made() {
        let mut rng = StdRng::seed_from_u64(3);
        let cfg = MadeConfig {
            vocab_sizes: vec![3, 2],
            spaces: vec![0, 1],
            hidden: 8,
            blocks: 1,
            embed_dim: 3,
        };
        let mut made = Made::new(&mut rng, cfg);
        let segments = made.segments().to_vec();
        let data = vec![vec![1usize, 0], vec![2, 1]];

        let logits = made.forward_ids(&data, true);
        let (_, grad) = loss::segmented_cross_entropy(&logits, &segments, &data);
        made.zero_grads();
        made.backward_ids(&grad);

        // Collect analytic grads in visit order.
        let mut analytic = Vec::new();
        made.visit_params(&mut |p| analytic.push(p.grad.clone()));

        // eps must thread the needle between f32 rounding in the loss and
        // ReLU kink crossings; 1e-3 plus the filters below is reliable.
        let eps = 1e-3f32;
        let mut max_err = 0.0f32;
        let mut checked = 0;
        for (p_idx, analytic_grad) in analytic.iter().enumerate() {
            for elem in [0usize, 1, 2, 3, 5, 7] {
                if elem >= analytic_grad.len() {
                    continue;
                }
                let perturb = |made: &mut Made, delta: f32| {
                    let mut i = 0;
                    made.visit_params(&mut |p| {
                        if i == p_idx {
                            p.value.as_mut_slice()[elem] += delta;
                        }
                        i += 1;
                    });
                };
                let eval = |made: &mut Made| {
                    let logits = made.forward_ids(&data, false);
                    loss::segmented_cross_entropy(&logits, &segments, &data).0
                };
                let central_diff = |made: &mut Made, eps: f32| {
                    perturb(made, eps);
                    let lp = eval(made);
                    perturb(made, -2.0 * eps);
                    let lm = eval(made);
                    perturb(made, eps);
                    (lp - lm) / (2.0 * eps)
                };
                let numeric = central_diff(&mut made, eps);
                let numeric_half = central_diff(&mut made, eps / 2.0);
                // Elements whose numeric estimate is eps-sensitive sit on a
                // ReLU kink — finite differences are meaningless there.
                if (numeric - numeric_half).abs() > 0.1 * numeric.abs().max(numeric_half.abs()).max(1e-3) {
                    continue;
                }
                let a = analytic_grad.as_slice()[elem];
                // Masked-out weights carry an exactly-zero analytic gradient
                // but DO perturb the loss (the mask is enforced on values and
                // gradients, not re-applied inside forward). Near-zero
                // gradients are dominated by kink artifacts. Skip both; the
                // dedicated mask-invariance test covers the former.
                if a.abs() < 0.02 {
                    continue;
                }
                max_err = max_err.max((a - numeric_half).abs() / a.abs());
                checked += 1;
            }
        }
        assert!(checked > 10, "too few checked gradients ({checked})");
        assert!(max_err < 0.08, "max relative grad error {max_err}");
    }

    /// The sliced segment forward must agree exactly with the corresponding
    /// slice of the full forward pass — and the shared-state (`&self`)
    /// inference forwards must reproduce the training-path eval forward
    /// bitwise.
    #[test]
    fn segment_forward_matches_full_forward() {
        let mut rng = StdRng::seed_from_u64(21);
        let mut made = Made::new(&mut rng, tiny_cfg(4));
        let batch = vec![vec![0usize, 2, 1], vec![3, 0, 2]];
        let full = made.forward_ids(&batch, false);
        let mut ws = Workspace::new();
        assert_eq!(made.forward_ids_infer(&batch, &mut ws), full);
        let mut offset = 0;
        for pos in 0..made.segments().len() {
            let width = made.segments()[pos];
            let sliced = made.forward_ids_segment(&batch, pos, &mut ws);
            assert_eq!((sliced.rows(), sliced.cols()), (2, width));
            for r in 0..2 {
                assert_eq!(sliced.row(r), &full.row(r)[offset..offset + width], "pos {pos} row {r}");
            }
            offset += width;
        }
    }

    /// Masked weights must stay exactly zero across real training steps —
    /// otherwise the autoregressive property silently breaks.
    #[test]
    fn masked_weights_stay_zero_under_training() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut made = Made::new(&mut rng, tiny_cfg(4));
        let segments = made.segments().to_vec();
        let data: Vec<Vec<usize>> = (0..32).map(|i| vec![i % 4, i % 3, (i + 1) % 4]).collect();
        let mut opt = Adam::new(1e-2);
        for _ in 0..25 {
            let logits = made.forward_ids(&data, true);
            let (_, grad) = loss::segmented_cross_entropy(&logits, &segments, &data);
            made.backward_ids(&grad);
            opt.step(&mut made);
        }
        assert_eq!(made.mask_violation(), 0.0);
    }

    #[test]
    fn param_count_positive_and_memory() {
        let mut rng = StdRng::seed_from_u64(0);
        let made = Made::new(&mut rng, tiny_cfg(4));
        let n = made.param_count();
        assert!(n > 0);
        assert_eq!(made.memory_bytes(), n * 4);
    }

    /// Quantized inference must track the f32 model closely (it is not
    /// bitwise — the analytic error bound is `scale/2` per weight — but on a
    /// trained-scale random model the logit drift stays small) and the
    /// quantized model's own segment forward must slice its full forward
    /// bitwise.
    #[test]
    fn quantized_forward_tracks_f32_and_slices_consistently() {
        for embed in [4usize, 0] {
            let mut rng = StdRng::seed_from_u64(17);
            let made = Made::new(&mut rng, tiny_cfg(embed));
            let batch = vec![vec![0usize, 2, 1], vec![3, 0, 2], vec![1, 1, 3]];
            let mut ws = Workspace::new();
            let full_f32 = made.forward_ids_infer(&batch, &mut ws);

            for mode in [QuantMode::Int8, QuantMode::Bf16] {
                let q = made.quantized(mode);
                assert_eq!(q.segments(), made.segments());
                let full_q = q.forward_ids_infer(&batch, &mut ws);
                assert_eq!((full_q.rows(), full_q.cols()), (full_f32.rows(), full_f32.cols()));
                for (a, b) in full_f32.as_slice().iter().zip(full_q.as_slice()) {
                    assert!((a - b).abs() < 0.05, "mode {mode:?} embed {embed}: {a} vs {b}");
                }
                let mut offset = 0;
                for pos in 0..q.segments().len() {
                    let width = q.segments()[pos];
                    let sliced = q.forward_ids_segment(&batch, pos, &mut ws);
                    for r in 0..batch.len() {
                        assert_eq!(sliced.row(r), &full_q.row(r)[offset..offset + width]);
                    }
                    offset += width;
                }
            }
        }
    }

    /// Int8 quantization must shrink the model ≥ 3.5×, bf16 ≥ 2×.
    #[test]
    fn quantized_memory_shrinks_by_mode_ratio() {
        let mut rng = StdRng::seed_from_u64(5);
        let cfg = MadeConfig {
            vocab_sizes: vec![64, 32],
            spaces: vec![0, 1, 0],
            hidden: 128,
            blocks: 2,
            embed_dim: 32,
        };
        let made = Made::new(&mut rng, cfg);
        let f32_bytes = made.memory_bytes();
        let int8 = made.quantized(QuantMode::Int8).memory_bytes();
        let bf16 = made.quantized(QuantMode::Bf16).memory_bytes();
        assert!(int8 * 7 <= f32_bytes * 2, "int8 {int8} vs f32 {f32_bytes}");
        // bf16 halves the weights but keeps f32 biases, so allow that margin.
        assert!(
            bf16 * 2 <= f32_bytes + made.param_count(),
            "bf16 {bf16} vs f32 {f32_bytes}"
        );
    }

    /// Serialized quantized ResMADEs must restore to bitwise-identical
    /// forwards, in both modes and for both input encodings.
    #[test]
    fn quantized_made_save_load_roundtrips_bitwise() {
        for embed in [4usize, 0] {
            let mut rng = StdRng::seed_from_u64(33);
            let made = Made::new(&mut rng, tiny_cfg(embed));
            let batch = vec![vec![0usize, 2, 1], vec![3, 0, 2]];
            let mut ws = Workspace::new();
            for mode in [QuantMode::Int8, QuantMode::Bf16] {
                let q = made.quantized(mode);
                let expected = q.forward_ids_infer(&batch, &mut ws);
                let mut buf = Vec::new();
                q.save(&mut buf).unwrap();
                let loaded = QuantizedMade::load(&mut buf.as_slice()).unwrap();
                assert_eq!(loaded.mode(), mode);
                assert_eq!(loaded.segments(), q.segments());
                assert_eq!(loaded.memory_bytes(), q.memory_bytes());
                let got = loaded.forward_ids_infer(&batch, &mut ws);
                assert_eq!(got, expected, "mode {mode:?} embed {embed}");
                for pos in 0..q.segments().len() {
                    assert_eq!(
                        loaded.forward_ids_segment(&batch, pos, &mut ws),
                        q.forward_ids_segment(&batch, pos, &mut ws),
                        "sliced forward at pos {pos}"
                    );
                }
            }
        }
    }

    #[test]
    fn quantized_made_load_rejects_bad_magic_and_truncation() {
        assert!(QuantizedMade::load(&mut b"NOTAMADE".as_slice()).is_err());
        let mut rng = StdRng::seed_from_u64(33);
        let made = Made::new(&mut rng, tiny_cfg(4));
        let mut buf = Vec::new();
        made.quantized(QuantMode::Int8).save(&mut buf).unwrap();
        buf.truncate(buf.len() - 7);
        assert!(QuantizedMade::load(&mut buf.as_slice()).is_err());
    }

    #[test]
    #[should_panic(expected = "at least two positions")]
    fn rejects_single_position() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = Made::new(
            &mut rng,
            MadeConfig {
                vocab_sizes: vec![4],
                spaces: vec![0],
                hidden: 8,
                blocks: 1,
                embed_dim: 0,
            },
        );
    }
}
