//! Pack-free small-`M` kernel: the serving fast path.
//!
//! The blocked core in [`crate::gemm`] is tuned for large batches — it
//! copies both operands into cache-tiled strips before the microkernel
//! touches them. At serving shapes (`M ≤ 8` query rows against a frozen
//! weight matrix) that packing traffic dominates: the whole product is one
//! pass over `B`, so copying `B` first doubles the memory traffic of a
//! memory-bound operation. This module computes the same product directly
//! from the strided [`MatRef`] views, streaming each row of `B` exactly
//! once.
//!
//! Two kernels mirror [`crate::gemm`]'s dispatch:
//!
//! * an AVX2+FMA kernel holding `m × NB` independent vector accumulators
//!   (the `k` recurrence has 4–5 cycles of FMA latency, so at `m = 1` eight
//!   independent column chunks are needed to keep the FMA pipes busy), and
//! * a portable scalar kernel whose `n`-wide inner loop autovectorizes.
//!
//! Kernel selection, the `LMKG_FORCE_SCALAR` override, and the `force-scalar`
//! feature are shared with [`crate::gemm`] — there is one switch for both
//! paths.
//!
//! # Bitwise parity with the blocked core
//!
//! Routing must never change results, so each kernel reproduces the blocked
//! kernel's per-element operation sequence exactly:
//!
//! * **AVX2**: the blocked microkernel produces every output element with a
//!   single accumulator updated by one fused multiply-add per ascending `k`
//!   step. The GEMV tile does the identical update (SIMD lanes are
//!   independent accumulators); column tails and strided-`B` views use
//!   [`f32::mul_add`], which performs the same correctly-rounded fused
//!   operation one element at a time.
//! * **Scalar**: the blocked scalar kernel does an unfused multiply then
//!   add per step and skips zero `A` entries; the scalar GEMV loop repeats
//!   that exact sequence.
//!
//! Hence `matmul` results are bitwise-invariant to whether the GEMV or the
//! blocked path ran — the batch/serve/concurrent parity suites hold
//! unchanged, enforced by the tests below and the dedicated small-M
//! proptest in `tests/prop_nn.rs`.

use crate::gemm::{Kernel, MatRef};
use crate::tensor;
use crate::Matrix;

/// Largest number of `A` rows routed to the pack-free GEMV path by
/// [`crate::tensor`]'s dispatchers (single-threaded products only; larger
/// or threaded products use the blocked core).
pub const GEMV_MAX_M: usize = 8;

/// `c += a · b` over a row-major `c` of exactly `a.rows() × b.cols()`
/// elements, without packing. Requires `a.rows() <= GEMV_MAX_M`. Bitwise
/// equal to [`crate::gemm::gemm_serial`] with the same kernel.
pub(crate) fn gemv_serial(kernel: Kernel, a: MatRef<'_>, b: MatRef<'_>, c: &mut [f32]) {
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    assert!(m <= GEMV_MAX_M, "gemv_serial requires m <= {GEMV_MAX_M}");
    assert_eq!(a.cols(), b.rows(), "gemv inner dimensions must agree");
    assert_eq!(c.len(), m * n, "gemv output buffer must be m*n");
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    match kernel {
        Kernel::Scalar => gemv_scalar(a, b, c),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `Kernel::Avx2Fma` is only ever constructed after
        // `is_x86_feature_detected!("avx2")`/`("fma")` both succeed.
        Kernel::Avx2Fma => unsafe { gemv_avx2(a, b, c) },
        #[cfg(not(target_arch = "x86_64"))]
        Kernel::Avx2Fma => gemv_scalar(a, b, c),
    }
}

/// Scalar GEMV: same unfused multiply-then-add per ascending `k` step, with
/// the same zero-`A` skip, as the blocked scalar microkernel.
fn gemv_scalar(a: MatRef<'_>, b: MatRef<'_>, c: &mut [f32]) {
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    for r in 0..m {
        let crow = &mut c[r * n..(r + 1) * n];
        if b.cs() == 1 {
            for kk in 0..k {
                let av = a.at(r, kk);
                if av == 0.0 {
                    continue;
                }
                for (o, &bv) in crow.iter_mut().zip(b.contiguous_row(kk)) {
                    *o += av * bv;
                }
            }
        } else {
            for (j, o) in crow.iter_mut().enumerate() {
                let mut acc = *o;
                for kk in 0..k {
                    let av = a.at(r, kk);
                    if av == 0.0 {
                        continue;
                    }
                    acc += av * b.at(kk, j);
                }
                *o = acc;
            }
        }
    }
}

/// Fused per-element dot products for column ranges the vector tiles cannot
/// cover: `n % 8` tails and strided-`B` views (the `matmul_nt` case).
/// [`f32::mul_add`] is the same correctly-rounded fused multiply-add the
/// AVX2 kernels execute, so results stay bitwise-equal to the blocked path.
fn gemv_mul_add_cols(a: MatRef<'_>, b: MatRef<'_>, c: &mut [f32], j_lo: usize, j_hi: usize) {
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    for r in 0..m {
        for j in j_lo..j_hi {
            let mut acc = c[r * n + j];
            for kk in 0..k {
                acc = a.at(r, kk).mul_add(b.at(kk, j), acc);
            }
            c[r * n + j] = acc;
        }
    }
}

/// How many 8-lane column chunks to accumulate per row so the kernel always
/// has ~8 independent FMA chains in flight.
#[cfg(target_arch = "x86_64")]
fn chunks_per_row(m: usize) -> usize {
    match m {
        1 => 8,
        2 => 4,
        3 | 4 => 2,
        _ => 1,
    }
}

/// AVX2+FMA GEMV driver: vector tiles over contiguous `B` rows, fused
/// scalar fallback for tails and strided views.
///
/// # Safety
/// Caller must ensure the CPU supports AVX2 and FMA.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn gemv_avx2(a: MatRef<'_>, b: MatRef<'_>, c: &mut [f32]) {
    let (m, n) = (a.rows(), b.cols());
    if b.cs() != 1 {
        gemv_mul_add_cols(a, b, c, 0, n);
        return;
    }
    let wide = chunks_per_row(m) * 8;
    let mut j = 0;
    while j + wide <= n {
        gemv_tile_dispatch(m, true, a, b, c, j);
        j += wide;
    }
    while j + 8 <= n {
        gemv_tile_dispatch(m, false, a, b, c, j);
        j += 8;
    }
    if j < n {
        gemv_mul_add_cols(a, b, c, j, n);
    }
}

/// Monomorphized tile selection: `wide` tiles use [`chunks_per_row`] chunks,
/// remainder strips use one chunk per row.
///
/// # Safety
/// Caller must ensure AVX2+FMA support, `1 <= m <= GEMV_MAX_M`, `b.cs() == 1`,
/// and that columns `j0..j0 + chunks*8` are in range.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn gemv_tile_dispatch(m: usize, wide: bool, a: MatRef<'_>, b: MatRef<'_>, c: &mut [f32], j0: usize) {
    match (m, wide) {
        (1, true) => gemv_tile::<1, 8>(a, b, c, j0),
        (2, true) => gemv_tile::<2, 4>(a, b, c, j0),
        (3, true) => gemv_tile::<3, 2>(a, b, c, j0),
        (4, true) => gemv_tile::<4, 2>(a, b, c, j0),
        (1, false) => gemv_tile::<1, 1>(a, b, c, j0),
        (2, false) => gemv_tile::<2, 1>(a, b, c, j0),
        (3, false) => gemv_tile::<3, 1>(a, b, c, j0),
        (4, false) => gemv_tile::<4, 1>(a, b, c, j0),
        (5, _) => gemv_tile::<5, 1>(a, b, c, j0),
        (6, _) => gemv_tile::<6, 1>(a, b, c, j0),
        (7, _) => gemv_tile::<7, 1>(a, b, c, j0),
        (8, _) => gemv_tile::<8, 1>(a, b, c, j0),
        _ => unreachable!("gemv tile called with m > GEMV_MAX_M"),
    }
}

/// One `MB`-row × `NB*8`-column tile: accumulators load the current `C`
/// values, take one broadcast-FMA per ascending `k` step per element —
/// exactly the blocked AVX2 microkernel's per-element sequence — and store
/// back.
///
/// # Safety
/// Caller must ensure AVX2+FMA support, `a.rows() == MB`, `b.cs() == 1`,
/// and that columns `j0..j0 + NB*8` are in range.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn gemv_tile<const MB: usize, const NB: usize>(a: MatRef<'_>, b: MatRef<'_>, c: &mut [f32], j0: usize) {
    use std::arch::x86_64::*;
    let k = a.cols();
    let n = b.cols();
    debug_assert!(a.rows() == MB && j0 + NB * 8 <= n);
    let cp = c.as_mut_ptr();
    let mut acc = [[_mm256_setzero_ps(); NB]; MB];
    for (r, row) in acc.iter_mut().enumerate() {
        for (t, slot) in row.iter_mut().enumerate() {
            *slot = _mm256_loadu_ps(cp.add(r * n + j0 + t * 8));
        }
    }
    for kk in 0..k {
        let brow = b.contiguous_row(kk).as_ptr().add(j0);
        let mut bv = [_mm256_setzero_ps(); NB];
        for (t, slot) in bv.iter_mut().enumerate() {
            *slot = _mm256_loadu_ps(brow.add(t * 8));
        }
        for (r, row) in acc.iter_mut().enumerate() {
            let av = _mm256_set1_ps(a.at(r, kk));
            for (t, slot) in row.iter_mut().enumerate() {
                *slot = _mm256_fmadd_ps(av, bv[t], *slot);
            }
        }
    }
    for (r, row) in acc.iter().enumerate() {
        for (t, slot) in row.iter().enumerate() {
            _mm256_storeu_ps(cp.add(r * n + j0 + t * 8), *slot);
        }
    }
}

/// `A·B` forced through the GEMV path (bench/parity surface). Panics if
/// `a.rows() > GEMV_MAX_M`. Production code should call
/// [`crate::Matrix::matmul`], which routes small single-threaded products
/// here automatically.
pub fn matmul_gemv_with_kernel(kernel: Kernel, a: &Matrix, b: &Matrix) -> Matrix {
    tensor::matmul_forced(kernel, a, b, true)
}

/// `A·B` forced through the blocked packed core, bypassing the GEMV
/// routing — the reference side of the small-M parity and bench
/// comparisons.
pub fn matmul_blocked_with_kernel(kernel: Kernel, a: &Matrix, b: &Matrix) -> Matrix {
    tensor::matmul_forced(kernel, a, b, false)
}

/// `A·Bᵀ` forced through the GEMV path; see [`matmul_gemv_with_kernel`].
pub fn matmul_nt_gemv_with_kernel(kernel: Kernel, a: &Matrix, b: &Matrix) -> Matrix {
    tensor::matmul_nt_forced(kernel, a, b, true)
}

/// `A·Bᵀ` forced through the blocked core; see
/// [`matmul_blocked_with_kernel`].
pub fn matmul_nt_blocked_with_kernel(kernel: Kernel, a: &Matrix, b: &Matrix) -> Matrix {
    tensor::matmul_nt_forced(kernel, a, b, false)
}

/// `Aᵀ·B` forced through the GEMV path; see [`matmul_gemv_with_kernel`].
pub fn matmul_tn_gemv_with_kernel(kernel: Kernel, a: &Matrix, b: &Matrix) -> Matrix {
    tensor::matmul_tn_forced(kernel, a, b, true)
}

/// `Aᵀ·B` forced through the blocked core; see
/// [`matmul_blocked_with_kernel`].
pub fn matmul_tn_blocked_with_kernel(kernel: Kernel, a: &Matrix, b: &Matrix) -> Matrix {
    tensor::matmul_tn_forced(kernel, a, b, false)
}

/// `A·B[:, lo..hi]` forced through the GEMV path; see
/// [`matmul_gemv_with_kernel`].
pub fn matmul_cols_gemv_with_kernel(kernel: Kernel, a: &Matrix, b: &Matrix, lo: usize, hi: usize) -> Matrix {
    tensor::matmul_cols_forced(kernel, a, b, lo, hi, true)
}

/// `A·B[:, lo..hi]` forced through the blocked core; see
/// [`matmul_blocked_with_kernel`].
pub fn matmul_cols_blocked_with_kernel(kernel: Kernel, a: &Matrix, b: &Matrix, lo: usize, hi: usize) -> Matrix {
    tensor::matmul_cols_forced(kernel, a, b, lo, hi, false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::available_kernels;
    use crate::test_support::seeded_matrix as test_matrix;

    /// Small-M shapes hitting every tile width, remainder strip, and scalar
    /// tail: n below 8, exact chunk multiples, and ragged overhangs.
    const SHAPES: &[(usize, usize, usize)] = &[
        (1, 1, 1),
        (1, 7, 5),
        (1, 512, 128),
        (1, 64, 64),
        (1, 300, 67),
        (2, 96, 33),
        (3, 17, 40),
        (4, 128, 128),
        (5, 31, 9),
        (6, 256, 64),
        (7, 13, 100),
        (8, 512, 128),
        (8, 1, 1),
    ];

    #[test]
    fn gemv_is_bitwise_equal_to_blocked_matmul() {
        for &kernel in available_kernels() {
            for &(m, k, n) in SHAPES {
                let a = test_matrix(m, k, m as u64 * 31 + 1);
                let b = test_matrix(k, n, n as u64 * 17 + 2);
                let gemv = matmul_gemv_with_kernel(kernel, &a, &b);
                let blocked = matmul_blocked_with_kernel(kernel, &a, &b);
                assert_eq!(
                    gemv.as_slice(),
                    blocked.as_slice(),
                    "kernel {} shape {m}x{k}x{n}",
                    kernel.name()
                );
            }
        }
    }

    #[test]
    fn gemv_nt_is_bitwise_equal_to_blocked() {
        // The Bᵀ view has non-unit column stride: exercises the fused
        // per-element fallback on AVX2.
        for &kernel in available_kernels() {
            for &(m, k, n) in SHAPES {
                let a = test_matrix(m, k, 3);
                let bt = test_matrix(n, k, 4);
                let gemv = matmul_nt_gemv_with_kernel(kernel, &a, &bt);
                let blocked = matmul_nt_blocked_with_kernel(kernel, &a, &bt);
                assert_eq!(
                    gemv.as_slice(),
                    blocked.as_slice(),
                    "kernel {} shape {m}x{k}x{n}",
                    kernel.name()
                );
            }
        }
    }

    #[test]
    fn gemv_tn_is_bitwise_equal_to_blocked() {
        // The Aᵀ view has non-unit row access on A (scalar loads), B stays
        // contiguous: the vector tiles run against a strided A.
        for &kernel in available_kernels() {
            for &(m, k, n) in SHAPES {
                let at = test_matrix(k, m, 5);
                let b = test_matrix(k, n, 6);
                let gemv = matmul_tn_gemv_with_kernel(kernel, &at, &b);
                let blocked = matmul_tn_blocked_with_kernel(kernel, &at, &b);
                assert_eq!(
                    gemv.as_slice(),
                    blocked.as_slice(),
                    "kernel {} shape {m}x{k}x{n}",
                    kernel.name()
                );
            }
        }
    }

    #[test]
    fn gemv_cols_is_bitwise_equal_to_blocked_and_full_slice() {
        for &kernel in available_kernels() {
            let a = test_matrix(2, 96, 7);
            let b = test_matrix(96, 120, 8);
            let full = matmul_gemv_with_kernel(kernel, &a, &b);
            for &(lo, hi) in &[(0usize, 120usize), (8, 40), (3, 11), (100, 120), (55, 56)] {
                let gemv = matmul_cols_gemv_with_kernel(kernel, &a, &b, lo, hi);
                let blocked = matmul_cols_blocked_with_kernel(kernel, &a, &b, lo, hi);
                assert_eq!(gemv.as_slice(), blocked.as_slice(), "kernel {}", kernel.name());
                for r in 0..a.rows() {
                    assert_eq!(gemv.row(r), &full.row(r)[lo..hi], "slice {lo}..{hi} row {r}");
                }
            }
        }
    }

    #[test]
    fn routed_matmul_uses_gemv_result_at_small_m() {
        // The public entry points must agree bitwise with both forced paths
        // (they are bitwise-equal to each other, so this pins the routing).
        for &(m, k, n) in SHAPES {
            let a = test_matrix(m, k, 9);
            let b = test_matrix(k, n, 10);
            let routed = a.matmul(&b);
            let forced = matmul_gemv_with_kernel(crate::gemm::active_kernel(), &a, &b);
            assert_eq!(routed.as_slice(), forced.as_slice(), "shape {m}x{k}x{n}");
        }
    }

    #[test]
    #[should_panic(expected = "gemv_serial requires m <=")]
    fn forced_gemv_rejects_large_m() {
        let a = test_matrix(GEMV_MAX_M + 1, 4, 1);
        let b = test_matrix(4, 4, 2);
        matmul_gemv_with_kernel(Kernel::Scalar, &a, &b);
    }
}
