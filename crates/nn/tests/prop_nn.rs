//! Property tests for the NN substrate: linear-algebra identities of the
//! matmul kernels, loss-gradient invariants, and the MADE autoregressive
//! property over randomized configurations.

use lmkg_nn::gemm::available_kernels;
use lmkg_nn::gemv;
use lmkg_nn::layers::{Dense, Layer, Relu, Sequential, Sigmoid};
use lmkg_nn::loss;
use lmkg_nn::made::{Made, MadeConfig};
use lmkg_nn::quant::int8_scale;
use lmkg_nn::tensor::Matrix;
use lmkg_nn::workspace::Workspace;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

// Shapes are proptest-driven; the data comes from the shared seeded LCG so
// dynamic sizes don't need size-coupled vec strategies.
use lmkg_nn::test_support::seeded_matrix;

/// Naive i-j-k triple loop in f64 — the reference the blocked kernels are
/// checked against within a `k`-ulp-scaled tolerance.
fn naive_matmul(a: &Matrix, b: &Matrix) -> Matrix {
    let mut c = Matrix::zeros(a.rows(), b.cols());
    for i in 0..a.rows() {
        for j in 0..b.cols() {
            let mut acc = 0.0f64;
            for k in 0..a.cols() {
                acc += f64::from(a.get(i, k)) * f64::from(b.get(k, j));
            }
            c.set(i, j, acc as f32);
        }
    }
    c
}

/// `|x - y| ≤ (k+4)·ε·max(1, |x|, |y|)` — 1 ulp of headroom per accumulation
/// step, covering FMA-vs-two-roundings divergence for any reduction depth.
fn within_ulp_scaled(got: &Matrix, want: &Matrix, k: usize) -> Result<(), String> {
    let tol = f32::EPSILON * (k as f32 + 4.0);
    for (i, (x, y)) in got.as_slice().iter().zip(want.as_slice()).enumerate() {
        let scale = 1.0f32.max(x.abs()).max(y.abs());
        if (x - y).abs() > tol * scale {
            return Err(format!("element {i}: {x} vs {y} exceeds {tol:e}·{scale}"));
        }
    }
    Ok(())
}

fn arb_matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(-2.0f32..2.0, rows * cols).prop_map(move |v| Matrix::from_vec(rows, cols, v))
}

fn approx_eq(a: &Matrix, b: &Matrix, tol: f32) -> bool {
    a.as_slice()
        .iter()
        .zip(b.as_slice())
        .all(|(x, y)| (x - y).abs() <= tol * (1.0 + x.abs().max(y.abs())))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Distributivity: A·(B + C) == A·B + A·C.
    #[test]
    fn matmul_distributes(a in arb_matrix(4, 5), b in arb_matrix(5, 3), c in arb_matrix(5, 3)) {
        let mut bc = b.clone();
        bc.add_assign(&c);
        let lhs = a.matmul(&bc);
        let mut rhs = a.matmul(&b);
        rhs.add_assign(&a.matmul(&c));
        prop_assert!(approx_eq(&lhs, &rhs, 1e-4));
    }

    /// The fused variants agree with explicit transposes.
    #[test]
    fn matmul_variants_agree(a in arb_matrix(4, 6), b in arb_matrix(5, 6), c in arb_matrix(4, 3)) {
        // A·Bᵀ.
        let nt = a.matmul_nt(&b);
        let explicit = a.matmul(&b.transpose());
        prop_assert!(approx_eq(&nt, &explicit, 1e-4));
        // Aᵀ·C.
        let tn = a.matmul_tn(&c);
        let explicit = a.transpose().matmul(&c);
        prop_assert!(approx_eq(&tn, &explicit, 1e-4));
    }

    /// The blocked GEMM core matches the naive triple loop on ragged shapes
    /// (m, k, n deliberately not multiples of the MR/NR tile sizes; k ranges
    /// past KC=256 so the k-block resume path — reloading the partial C tile
    /// into accumulators — gets genuine block-boundary coverage).
    #[test]
    fn blocked_matmul_matches_naive_on_ragged_shapes(m in 1usize..23, k in 1usize..600,
                                                     n in 1usize..39, seed in 0u64..1000) {
        let a = seeded_matrix(m, k, seed);
        let b = seeded_matrix(k, n, seed.wrapping_add(1));
        let nn = within_ulp_scaled(&a.matmul(&b), &naive_matmul(&a, &b), k);
        prop_assert!(nn.is_ok(), "matmul {}x{}x{}: {:?}", m, k, n, nn);
        // The fused transpose variants against explicit transposes.
        let bt = seeded_matrix(n, k, seed.wrapping_add(2));
        let nt = within_ulp_scaled(&a.matmul_nt(&bt), &naive_matmul(&a, &bt.transpose()), k);
        prop_assert!(nt.is_ok(), "matmul_nt {}x{}x{}: {:?}", m, k, n, nt);
        let c = seeded_matrix(m, n, seed.wrapping_add(3));
        let tn = within_ulp_scaled(&a.matmul_tn(&c), &naive_matmul(&a.transpose(), &c), m);
        prop_assert!(tn.is_ok(), "matmul_tn {}x{}x{}: {:?}", m, k, n, tn);
    }

    /// `matmul_cols` is bitwise equal to the column slice of the full
    /// product for every lo/hi, including empty and full-width slices —
    /// the GEMM core's determinism contract for the sampler's fast path.
    #[test]
    fn matmul_cols_slice_is_bitwise_exact(m in 1usize..14, k in 1usize..30, n in 1usize..40,
                                          lo_w in 0usize..40, width in 0usize..40, seed in 0u64..1000) {
        let a = seeded_matrix(m, k, seed);
        let b = seeded_matrix(k, n, seed.wrapping_add(7));
        let lo = lo_w % n;
        let hi = (lo + width % (n - lo + 1)).min(n);
        let sliced = a.matmul_cols(&b, lo, hi);
        let full = a.matmul(&b);
        prop_assert_eq!((sliced.rows(), sliced.cols()), (m, hi - lo));
        for i in 0..m {
            prop_assert_eq!(sliced.row(i), &full.row(i)[lo..hi], "row {} of slice {}..{}", i, lo, hi);
        }
    }

    /// Softmax output is a probability vector.
    #[test]
    fn softmax_is_normalized(mut xs in prop::collection::vec(-30.0f32..30.0, 1..40)) {
        loss::softmax_in_place(&mut xs);
        let sum: f32 = xs.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-4);
        prop_assert!(xs.iter().all(|&p| (0.0..=1.0).contains(&p)));
    }

    /// Segmented cross-entropy gradients sum to zero within every segment
    /// (softmax Jacobian property) and the loss is non-negative.
    #[test]
    fn segmented_ce_invariants(logits_v in prop::collection::vec(-5.0f32..5.0, 7),
                               t1 in 0usize..3, t2 in 0usize..4) {
        let logits = Matrix::from_vec(1, 7, logits_v);
        let segments = [3usize, 4];
        let targets = vec![vec![t1, t2]];
        let (l, grad) = loss::segmented_cross_entropy(&logits, &segments, &targets);
        prop_assert!(l >= 0.0);
        let row = grad.row(0);
        prop_assert!(row[..3].iter().sum::<f32>().abs() < 1e-5);
        prop_assert!(row[3..].iter().sum::<f32>().abs() < 1e-5);
    }

    /// The q-error loss is minimized exactly at the target.
    #[test]
    fn q_error_minimum_at_target(t in 0.05f32..0.95, delta in 0.01f32..0.2) {
        let target = Matrix::from_vec(1, 1, vec![t]);
        let at = |v: f32| loss::q_error(&Matrix::from_vec(1, 1, vec![v]), &target, 10.0, 30.0).0;
        prop_assert!(at(t) <= at(t + delta));
        prop_assert!(at(t) <= at(t - delta));
    }

    /// MADE stays autoregressive for random widths/depths/embeddings.
    #[test]
    fn made_autoregressive_for_random_configs(hidden in 4usize..24,
                                              blocks in 0usize..3,
                                              embed in 0usize..6,
                                              seed in 0u64..1000) {
        let cfg = MadeConfig {
            vocab_sizes: vec![5, 3],
            spaces: vec![0, 1, 0],
            hidden,
            blocks,
            embed_dim: embed,
        };
        let mut rng = StdRng::seed_from_u64(seed);
        let mut made = Made::new(&mut rng, cfg);
        let base = vec![2usize, 1, 4];
        let logits0 = made.forward_ids(std::slice::from_ref(&base), false);
        for pos in 0..3 {
            let mut perturbed = base.clone();
            perturbed[pos] = (perturbed[pos] + 1) % made.segments()[pos];
            let logits1 = made.forward_ids(&[perturbed], false);
            let mut offset = 0;
            for (i, &seg) in made.segments().to_vec().iter().enumerate() {
                if i <= pos {
                    prop_assert_eq!(
                        &logits0.row(0)[offset..offset + seg],
                        &logits1.row(0)[offset..offset + seg],
                        "segment {} leaked from position {}", i, pos
                    );
                }
                offset += seg;
            }
        }
    }

    /// The dedicated small-M GEMV path is **bitwise** equal to the blocked
    /// GEMM path on every kernel and every entry-point view, for all
    /// m ≤ GEMV_MAX_M and ragged k/n (k past the 8-wide chunk tiles, n past
    /// the register-blocked column strips).
    #[test]
    fn gemv_path_is_bitwise_equal_to_blocked(m in 1usize..=gemv::GEMV_MAX_M, k in 1usize..300,
                                             n in 1usize..70, seed in 0u64..1000) {
        let a = seeded_matrix(m, k, seed);
        let b = seeded_matrix(k, n, seed.wrapping_add(1));
        let bt = seeded_matrix(n, k, seed.wrapping_add(2));
        let at = seeded_matrix(k, m, seed.wrapping_add(3));
        let lo = (seed as usize) % n;
        let hi = lo + (seed as usize >> 3) % (n - lo) + 1;
        for &kernel in available_kernels() {
            prop_assert_eq!(
                gemv::matmul_gemv_with_kernel(kernel, &a, &b),
                gemv::matmul_blocked_with_kernel(kernel, &a, &b),
                "matmul {}x{}x{} on {}", m, k, n, kernel.name()
            );
            prop_assert_eq!(
                gemv::matmul_nt_gemv_with_kernel(kernel, &a, &bt),
                gemv::matmul_nt_blocked_with_kernel(kernel, &a, &bt),
                "matmul_nt {}x{}x{} on {}", m, k, n, kernel.name()
            );
            prop_assert_eq!(
                gemv::matmul_tn_gemv_with_kernel(kernel, &at, &b),
                gemv::matmul_tn_blocked_with_kernel(kernel, &at, &b),
                "matmul_tn {}x{}x{} on {}", m, k, n, kernel.name()
            );
            prop_assert_eq!(
                gemv::matmul_cols_gemv_with_kernel(kernel, &a, &b, lo, hi),
                gemv::matmul_cols_blocked_with_kernel(kernel, &a, &b, lo, hi),
                "matmul_cols {}x{}x{} [{}..{}] on {}", m, k, n, lo, hi, kernel.name()
            );
        }
    }

    /// Symmetric int8 quantization reconstructs every weight within half a
    /// quantization step: `|w - scale·q| ≤ scale/2`.
    #[test]
    fn int8_dequant_error_is_within_half_scale(ws in prop::collection::vec(-10.0f32..10.0, 1..64)) {
        let amax = ws.iter().fold(0.0f32, |m, w| m.max(w.abs()));
        let scale = int8_scale(amax);
        prop_assert!(scale > 0.0);
        for &w in &ws {
            let q = (w / scale).round().clamp(-127.0, 127.0) as i8;
            let err = (w - scale * f32::from(q)).abs();
            prop_assert!(err <= scale / 2.0 + f32::EPSILON, "w {} q {} scale {} err {}", w, q, scale, err);
        }
    }

    /// Workspace scratch carries no numeric state: a workspace whose pool is
    /// poisoned with NaN-filled recycled buffers (which `take_full` hands
    /// back unzeroed) still reproduces a fresh run bitwise, through both the
    /// dense inference stack and the raw take/take_full surface.
    #[test]
    fn poisoned_workspace_inference_is_bitwise_clean(rows in 1usize..7, seed in 0u64..1000,
                                                     poison_bufs in 1usize..5) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut model = Sequential::new();
        model.push(Dense::new_he(&mut rng, 9, 13));
        model.push(Relu::new());
        model.push(Dense::new_xavier(&mut rng, 13, 1));
        model.push(Sigmoid::new());
        let x = seeded_matrix(rows, 9, seed);

        let mut fresh = Workspace::new();
        let clean = model.forward_infer(&x, &mut fresh);

        let mut poisoned = Workspace::new();
        for i in 0..poison_bufs {
            let junk = Matrix::from_vec(3, 5 + i, vec![f32::NAN; 3 * (5 + i)]);
            poisoned.recycle(junk);
        }
        let got = model.forward_infer(&x, &mut poisoned);
        prop_assert_eq!(got.as_slice(), clean.as_slice());

        // take stays zeroed over a poisoned pool; take_full only promises
        // shape, so every element must be writable without UB-level surprises.
        let z = poisoned.take(2, 3);
        prop_assert_eq!(z.as_slice(), &[0.0f32; 6][..]);
        poisoned.recycle(z);
        let mut f = poisoned.take_full(2, 3);
        f.fill(1.5);
        prop_assert_eq!(f.as_slice(), &[1.5f32; 6][..]);
    }

    /// Bias broadcast + column sums are adjoint.
    #[test]
    fn bias_and_colsum_are_adjoint(m in arb_matrix(3, 4), bias in prop::collection::vec(-1.0f32..1.0, 4)) {
        // <m + 1·bᵀ, m + 1·bᵀ> grows by 2·<col_sums(m), b> + rows·<b,b>.
        let dot = |a: &Matrix, b: &Matrix| a.as_slice().iter().zip(b.as_slice()).map(|(x, y)| x * y).sum::<f32>();
        let mut shifted = m.clone();
        shifted.add_row_vector(&bias);
        let lhs = dot(&shifted, &shifted) - dot(&m, &m);
        let col_sums = m.col_sums();
        let cross: f32 = col_sums.iter().zip(&bias).map(|(c, b)| c * b).sum();
        let bb: f32 = bias.iter().map(|b| b * b).sum();
        let rhs = 2.0 * cross + 3.0 * bb;
        prop_assert!((lhs - rhs).abs() < 1e-3 * (1.0 + lhs.abs()), "lhs {lhs} rhs {rhs}");
    }
}
