//! `lmkg-xtask` — the repo's static-analysis driver.
//!
//! Usage: `cargo run -p lmkg-xtask -- check [--root <path>]`
//!
//! Walks every `crates/*/src/**/*.rs` (tests and vendored code are out
//! of scope — the lints guard production code) and enforces:
//!
//! * **L1** — every `unsafe` site carries a `// SAFETY:` comment or a
//!   `# Safety` doc section.
//! * **L2** — no `unwrap()` / `expect()` / `panic!` / `unreachable!` in
//!   the serving hot paths, minus the justified `allow.toml` residue.
//! * **L3** — protocol verbs and `ERR code=` codes in `protocol.rs`
//!   match the README grammar exactly.
//! * **L4** — every `lmkg_*` series rendered by the expositions is in
//!   `crates/serve/src/metrics_registry.rs`, and vice versa.
//! * **L5** — explicit atomic orderings only in files whose `allow.toml`
//!   entry names the synchronization argument, with a per-file cap.
//!
//! Exit status: 0 when clean, 1 with findings, 2 on usage/setup errors.

mod allow;
mod lexer;
mod lints;

use lints::{Finding, SourceFile};
use std::path::{Path, PathBuf};

fn workspace_root(cli_root: Option<PathBuf>) -> Result<PathBuf, String> {
    let root = match cli_root {
        Some(r) => r,
        None => Path::new(env!("CARGO_MANIFEST_DIR")).join("../.."),
    };
    let root = root
        .canonicalize()
        .map_err(|e| format!("cannot resolve workspace root {}: {e}", root.display()))?;
    if !root.join("Cargo.toml").is_file() {
        return Err(format!("{} does not look like the workspace root", root.display()));
    }
    Ok(root)
}

/// All `crates/*/src/**/*.rs`, as root-relative `/`-separated paths.
fn collect_sources(root: &Path) -> Result<Vec<String>, String> {
    let crates_dir = root.join("crates");
    let mut out = Vec::new();
    let entries = std::fs::read_dir(&crates_dir).map_err(|e| format!("reading {}: {e}", crates_dir.display()))?;
    for entry in entries.flatten() {
        let src_dir = entry.path().join("src");
        if src_dir.is_dir() {
            walk_rs(&src_dir, &mut out)?;
        }
    }
    let mut rels: Vec<String> = out
        .iter()
        .map(|p| p.strip_prefix(root).unwrap_or(p).to_string_lossy().replace('\\', "/"))
        .collect();
    rels.sort();
    Ok(rels)
}

fn walk_rs(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries = std::fs::read_dir(dir).map_err(|e| format!("reading {}: {e}", dir.display()))?;
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            walk_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn run_check(root: &Path) -> Result<Vec<Finding>, String> {
    let allow_path = root.join("crates/xtask/allow.toml");
    let allow_text =
        std::fs::read_to_string(&allow_path).map_err(|e| format!("reading {}: {e}", allow_path.display()))?;
    let allow = allow::parse(&allow_text).map_err(|e| e.to_string())?;

    let rels = collect_sources(root)?;
    let mut files = Vec::with_capacity(rels.len());
    for rel in &rels {
        let src = std::fs::read_to_string(root.join(rel)).map_err(|e| format!("reading {rel}: {e}"))?;
        files.push(SourceFile::from_source(rel, &src));
    }

    let mut findings = Vec::new();
    let mut unwrap_used = vec![false; allow.unwraps.len()];
    let mut ordering_used = vec![false; allow.orderings.len()];

    for f in &files {
        findings.extend(lints::l1_safety_comments(f));
        findings.extend(lints::l2_hot_path_panics(f, &allow, &mut unwrap_used));
        findings.extend(lints::l5_atomic_orderings(f, &allow, &mut ordering_used));
    }

    let readme = std::fs::read_to_string(root.join("README.md")).map_err(|e| format!("reading README.md: {e}"))?;
    match files.iter().find(|f| f.rel == "crates/serve/src/protocol.rs") {
        Some(protocol) => findings.extend(lints::l3_protocol_drift(protocol, &readme)),
        None => return Err("crates/serve/src/protocol.rs not found — L3 has nothing to check".into()),
    }

    let sources: Vec<&SourceFile> = files
        .iter()
        .filter(|f| lints::METRIC_SOURCES.contains(&f.rel.as_str()))
        .collect();
    let registry = files.iter().find(|f| f.rel == lints::METRIC_REGISTRY);
    findings.extend(lints::l4_metrics_registry(&sources, registry));

    findings.extend(lints::unused_allow_entries(&allow, &unwrap_used, &ordering_used));

    findings.sort_by(|a, b| (a.lint, &a.file, a.line).cmp(&(b.lint, &b.file, b.line)));
    Ok(findings)
}

fn usage() -> ! {
    eprintln!("usage: cargo run -p lmkg-xtask -- check [--root <path>]");
    std::process::exit(2);
}

fn main() {
    let mut args = std::env::args().skip(1);
    let Some(cmd) = args.next() else { usage() };
    if cmd != "check" {
        usage();
    }
    let mut cli_root = None;
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--root" => match args.next() {
                Some(v) => cli_root = Some(PathBuf::from(v)),
                None => usage(),
            },
            _ => usage(),
        }
    }

    let root = match workspace_root(cli_root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("lmkg-xtask: {e}");
            std::process::exit(2);
        }
    };
    match run_check(&root) {
        Ok(findings) if findings.is_empty() => {
            println!("lmkg-xtask check: clean (L1 safety, L2 hot-path panics, L3 protocol drift, L4 metrics registry, L5 atomic orderings)");
        }
        Ok(findings) => {
            for f in &findings {
                println!("{f}");
            }
            println!("lmkg-xtask check: {} finding(s)", findings.len());
            std::process::exit(1);
        }
        Err(e) => {
            eprintln!("lmkg-xtask: {e}");
            std::process::exit(2);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// End-to-end on the real tree: the checked-in workspace must be
    /// clean, which is exactly what CI asserts via the binary.
    #[test]
    fn the_workspace_is_clean() {
        let root = workspace_root(None).expect("workspace root resolves");
        let findings = run_check(&root).expect("check runs");
        assert!(
            findings.is_empty(),
            "workspace has lint findings:\n{}",
            findings.iter().map(|f| f.to_string()).collect::<Vec<_>>().join("\n")
        );
    }
}
