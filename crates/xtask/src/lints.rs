//! The five repo-specific lints. Each works on masked source (see
//! [`crate::lexer`]) so comments and string literals can never
//! false-positive, and each skips `#[cfg(test)]` regions — the lints
//! guard production code; tests are free to unwrap.

use crate::allow::Allowlist;
use crate::lexer::{ident_occurrences, lex, line_of, strip_tests, Lexed};

#[derive(Debug)]
pub struct Finding {
    pub lint: &'static str,
    pub file: String,
    pub line: usize,
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}:{}: {}", self.lint, self.file, self.line, self.message)
    }
}

/// A lexed workspace source, ready for linting.
pub struct SourceFile {
    /// Path relative to the repo root, `/`-separated.
    pub rel: String,
    pub src: String,
    pub lexed: Lexed,
    /// Masked source with `#[cfg(test)]` regions blanked too.
    pub stripped: String,
    pub test_regions: Vec<(usize, usize)>,
}

impl SourceFile {
    pub fn from_source(rel: &str, src: &str) -> SourceFile {
        let lexed = lex(src);
        let (stripped, test_regions) = strip_tests(&lexed.masked);
        SourceFile {
            rel: rel.to_string(),
            src: src.to_string(),
            lexed,
            stripped,
            test_regions,
        }
    }

    fn in_test_region(&self, offset: usize) -> bool {
        self.test_regions.iter().any(|&(a, b)| offset >= a && offset < b)
    }

    fn src_line(&self, line: usize) -> &str {
        self.src.lines().nth(line.saturating_sub(1)).unwrap_or("")
    }
}

// ---------------------------------------------------------------- L1 --

/// How far above an `unsafe` token a `SAFETY:` / `# Safety` comment may
/// sit. Covers a doc block plus stacked attributes between the comment
/// and the keyword.
const SAFETY_WINDOW: usize = 16;

/// L1: every `unsafe` block / fn / impl carries a safety argument — a
/// `// SAFETY:` comment or a `# Safety` doc section ending within
/// [`SAFETY_WINDOW`] lines above the keyword.
pub fn l1_safety_comments(file: &SourceFile) -> Vec<Finding> {
    let mut findings = Vec::new();
    for off in ident_occurrences(&file.stripped, "unsafe") {
        let line = line_of(&file.stripped, off);
        let lo = line.saturating_sub(SAFETY_WINDOW);
        let documented = file
            .lexed
            .comments
            .iter()
            .any(|c| c.line >= lo && c.line <= line && (c.text.contains("SAFETY:") || c.text.contains("# Safety")));
        if !documented {
            findings.push(Finding {
                lint: "L1",
                file: file.rel.clone(),
                line,
                message: format!(
                    "`unsafe` without a `// SAFETY:` comment (or `# Safety` doc) within {SAFETY_WINDOW} lines: `{}`",
                    file.src_line(line).trim()
                ),
            });
        }
    }
    findings
}

// ---------------------------------------------------------------- L2 --

/// The serving hot paths: a panic here takes down a worker mid-request.
pub const HOT_PATHS: &[&str] = &[
    "crates/serve/src/server.rs",
    "crates/serve/src/batcher.rs",
    "crates/serve/src/protocol.rs",
    "crates/serve/src/latency.rs",
    "crates/serve/src/expose.rs",
    "crates/nn/src/gemm.rs",
    "crates/nn/src/gemv.rs",
    "crates/nn/src/tensor.rs",
];

/// L2: no `unwrap()` / `expect()` / `panic!` / `unreachable!` /
/// `todo!` / `unimplemented!` in hot-path production code, except
/// where `allow.toml` carries a justified entry matching the line.
/// `used` marks allowlist entries that matched at least one site.
pub fn l2_hot_path_panics(file: &SourceFile, allow: &Allowlist, used: &mut [bool]) -> Vec<Finding> {
    if !HOT_PATHS.contains(&file.rel.as_str()) {
        return Vec::new();
    }
    let bytes = file.stripped.as_bytes();
    let next_nonspace = |mut i: usize| {
        while i < bytes.len() && (bytes[i] == b' ' || bytes[i] == b'\n') {
            i += 1;
        }
        bytes.get(i).copied()
    };
    let prev_nonspace = |mut i: usize| loop {
        if i == 0 {
            return None;
        }
        i -= 1;
        if bytes[i] != b' ' && bytes[i] != b'\n' {
            return Some(bytes[i]);
        }
    };
    let mut sites: Vec<(usize, &str)> = Vec::new();
    for word in ["unwrap", "expect"] {
        for off in ident_occurrences(&file.stripped, word) {
            // `.unwrap(` — require a method call to skip e.g. a local
            // named `expect` or an `unwrap` in a path.
            if prev_nonspace(off) == Some(b'.') && next_nonspace(off + word.len()) == Some(b'(') {
                sites.push((off, word));
            }
        }
    }
    for mac in ["panic", "unreachable", "todo", "unimplemented"] {
        for off in ident_occurrences(&file.stripped, mac) {
            if bytes.get(off + mac.len()) == Some(&b'!') {
                sites.push((off, mac));
            }
        }
    }
    sites.sort_unstable();

    let mut findings = Vec::new();
    for (off, what) in sites {
        let line = line_of(&file.stripped, off);
        let trimmed = file.src_line(line).trim().to_string();
        let mut allowed = false;
        for (idx, entry) in allow.unwraps.iter().enumerate() {
            if entry.file == file.rel && trimmed.contains(&entry.line_contains) {
                used[idx] = true;
                allowed = true;
            }
        }
        if !allowed {
            findings.push(Finding {
                lint: "L2",
                file: file.rel.clone(),
                line,
                message: format!("`{what}` in a serving hot path (not in allow.toml): `{trimmed}`"),
            });
        }
    }
    findings
}

// ---------------------------------------------------------------- L3 --

/// Byte range of the brace block following `anchor` in masked code.
fn block_range(masked: &str, anchor: &str) -> Option<(usize, usize)> {
    let at = masked.find(anchor)?;
    let bytes = masked.as_bytes();
    let open = (at + anchor.len()..bytes.len()).find(|&i| bytes[i] == b'{')?;
    let mut depth = 0usize;
    for (i, b) in bytes.iter().enumerate().skip(open) {
        match b {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return Some((at, i + 1));
                }
            }
            _ => {}
        }
    }
    None
}

fn is_upper_verb(s: &str) -> bool {
    s.len() >= 2 && s.bytes().all(|b| b.is_ascii_uppercase())
}

fn is_kebab(s: &str) -> bool {
    !s.is_empty() && s.bytes().all(|b| b.is_ascii_lowercase() || b == b'-') && !s.starts_with('-') && !s.ends_with('-')
}

/// String literals inside `range` that are immediately followed by `=>`
/// (i.e. match-arm patterns).
fn match_arm_literals(file: &SourceFile, range: (usize, usize)) -> impl Iterator<Item = &str> {
    file.lexed.strings.iter().filter_map(move |s| {
        if s.start < range.0 || s.end > range.1 || file.in_test_region(s.start) {
            return None;
        }
        let tail = file.stripped.get(s.end..)?;
        tail.trim_start().starts_with("=>").then_some(s.text.as_str())
    })
}

fn sorted_set(mut v: Vec<String>) -> Vec<String> {
    v.sort();
    v.dedup();
    v
}

/// The protocol facts extracted from `protocol.rs`: request verbs, reply
/// verbs, and the `ERR code=` kebab taxonomy.
pub struct ProtocolSurface {
    pub request_verbs: Vec<String>,
    pub reply_verbs: Vec<String>,
    pub error_codes: Vec<String>,
}

pub fn extract_protocol(file: &SourceFile) -> Result<ProtocolSurface, String> {
    let req = block_range(&file.stripped, "impl Request").ok_or("no `impl Request` block")?;
    let rep = block_range(&file.stripped, "impl Reply").ok_or("no `impl Reply` block")?;
    let err = block_range(&file.stripped, "impl ErrorCode").ok_or("no `impl ErrorCode` block")?;
    let request_verbs = sorted_set(
        match_arm_literals(file, req)
            .filter(|s| is_upper_verb(s))
            .map(str::to_string)
            .collect(),
    );
    let reply_verbs = sorted_set(
        match_arm_literals(file, rep)
            .filter(|s| is_upper_verb(s))
            .map(str::to_string)
            .collect(),
    );
    // `ErrorCode::parse` has the codes before `=>`, `as_str` after it —
    // take every kebab literal in the impl block; the two agree.
    let error_codes = sorted_set(
        file.lexed
            .strings
            .iter()
            .filter(|s| s.start >= err.0 && s.end <= err.1 && !file.in_test_region(s.start))
            .filter(|s| is_kebab(&s.text))
            .map(|s| s.text.clone())
            .collect(),
    );
    if request_verbs.is_empty() || reply_verbs.is_empty() || error_codes.is_empty() {
        return Err("protocol extraction came back empty — parser shape changed?".into());
    }
    Ok(ProtocolSurface {
        request_verbs,
        reply_verbs,
        error_codes,
    })
}

/// The same facts as read from README.md: quoted verbs out of the
/// ```text grammar fence, kebab codes out of the "`code=` is one of"
/// sentence.
pub fn extract_readme(readme: &str) -> Result<ProtocolSurface, String> {
    // Find the grammar fence: the ```text block containing `request :=`.
    let mut fence_body = None;
    let mut search = 0usize;
    while let Some(rel) = readme[search..].find("```text") {
        let start = search + rel + "```text".len();
        let end = readme[start..].find("```").map(|e| start + e).unwrap_or(readme.len());
        if readme[start..end].contains("request :=") {
            fence_body = Some(&readme[start..end]);
            break;
        }
        search = end;
    }
    let fence = fence_body.ok_or("README has no ```text grammar block containing `request :=`")?;

    let mut request_verbs = Vec::new();
    let mut reply_verbs = Vec::new();
    let mut current: Option<&mut Vec<String>> = None;
    for line in fence.lines() {
        let t = line.trim_start();
        if t.starts_with("request") && t.contains(":=") {
            current = Some(&mut request_verbs);
        } else if t.starts_with("reply") && t.contains(":=") {
            current = Some(&mut reply_verbs);
        }
        if let Some(bucket) = current.as_deref_mut() {
            // Quoted tokens on this production line.
            let mut rest = line;
            while let Some(q0) = rest.find('"') {
                let Some(q1) = rest[q0 + 1..].find('"') else { break };
                let tok = &rest[q0 + 1..q0 + 1 + q1];
                if is_upper_verb(tok) {
                    bucket.push(tok.to_string());
                }
                rest = &rest[q0 + 2 + q1..];
            }
        }
    }

    let codes_at = readme
        .find("`code=` is one of")
        .ok_or("README has no \"`code=` is one of\" taxonomy sentence")?;
    let tail = &readme[codes_at + "`code=` is one of".len()..];
    let sentence_end = tail
        .char_indices()
        .find(|&(i, c)| c == '.' && tail[i + 1..].chars().next().is_none_or(char::is_whitespace))
        .map(|(i, _)| i)
        .unwrap_or(tail.len().min(400));
    let sentence = &tail[..sentence_end];
    let mut error_codes = Vec::new();
    let mut rest = sentence;
    while let Some(b0) = rest.find('`') {
        let Some(b1) = rest[b0 + 1..].find('`') else { break };
        let tok = &rest[b0 + 1..b0 + 1 + b1];
        if is_kebab(tok) {
            error_codes.push(tok.to_string());
        }
        rest = &rest[b0 + 2 + b1..];
    }

    if request_verbs.is_empty() || reply_verbs.is_empty() || error_codes.is_empty() {
        return Err("README extraction came back empty — grammar block moved?".into());
    }
    Ok(ProtocolSurface {
        request_verbs: sorted_set(request_verbs),
        reply_verbs: sorted_set(reply_verbs),
        error_codes: sorted_set(error_codes),
    })
}

fn diff_sets(lint: &'static str, file: &str, what: &str, code: &[String], readme: &[String]) -> Vec<Finding> {
    let mut findings = Vec::new();
    for v in code {
        if !readme.contains(v) {
            findings.push(Finding {
                lint,
                file: file.to_string(),
                line: 0,
                message: format!("{what} `{v}` is in protocol.rs but missing from the README grammar"),
            });
        }
    }
    for v in readme {
        if !code.contains(v) {
            findings.push(Finding {
                lint,
                file: "README.md".to_string(),
                line: 0,
                message: format!("{what} `{v}` is in the README grammar but not in protocol.rs"),
            });
        }
    }
    findings
}

/// L3: protocol drift — verb sets and error codes must agree between
/// `protocol.rs` and the README grammar.
pub fn l3_protocol_drift(protocol: &SourceFile, readme: &str) -> Vec<Finding> {
    let fail = |msg: String| {
        vec![Finding {
            lint: "L3",
            file: protocol.rel.clone(),
            line: 0,
            message: msg,
        }]
    };
    let code = match extract_protocol(protocol) {
        Ok(s) => s,
        Err(e) => return fail(e),
    };
    let doc = match extract_readme(readme) {
        Ok(s) => s,
        Err(e) => return fail(e),
    };
    let mut findings = Vec::new();
    findings.extend(diff_sets(
        "L3",
        &protocol.rel,
        "request verb",
        &code.request_verbs,
        &doc.request_verbs,
    ));
    findings.extend(diff_sets(
        "L3",
        &protocol.rel,
        "reply verb",
        &code.reply_verbs,
        &doc.reply_verbs,
    ));
    findings.extend(diff_sets(
        "L3",
        &protocol.rel,
        "error code",
        &code.error_codes,
        &doc.error_codes,
    ));
    findings
}

// ---------------------------------------------------------------- L4 --

/// Files whose string literals may construct `lmkg_*` series names.
pub const METRIC_SOURCES: &[&str] = &[
    "crates/serve/src/expose.rs",
    "crates/obs/src/expo.rs",
    "crates/nn/src/profile.rs",
];

pub const METRIC_REGISTRY: &str = "crates/serve/src/metrics_registry.rs";

/// Extracts series names from a literal: maximal `lmkg_[a-z0-9_]+`
/// matches, plus `{prefix}_suffix` format placeholders (the obs
/// exposition renders with `prefix = "lmkg"`).
fn series_names_in(text: &str) -> Vec<String> {
    let mut names = Vec::new();
    for (pat, head) in [("lmkg_", "lmkg_"), ("{prefix}_", "lmkg_")] {
        let bytes = text.as_bytes();
        let mut search = 0usize;
        while let Some(rel) = text[search..].find(pat) {
            let at = search + rel;
            let boundary = at == 0 || !(bytes[at - 1].is_ascii_alphanumeric() || bytes[at - 1] == b'_');
            let mut end = at + pat.len();
            while end < bytes.len()
                && (bytes[end].is_ascii_lowercase() || bytes[end].is_ascii_digit() || bytes[end] == b'_')
            {
                end += 1;
            }
            if boundary && end > at + pat.len() {
                let mut name = head.to_string();
                name.push_str(&text[at + pat.len()..end]);
                names.push(name.trim_end_matches('_').to_string());
            }
            search = at + pat.len();
        }
    }
    names
}

/// L4: every series name constructed in the metric sources appears in
/// the registry const table, and vice versa.
pub fn l4_metrics_registry(sources: &[&SourceFile], registry: Option<&SourceFile>) -> Vec<Finding> {
    let Some(reg) = registry else {
        return vec![Finding {
            lint: "L4",
            file: METRIC_REGISTRY.to_string(),
            line: 0,
            message: "metrics registry file is missing".to_string(),
        }];
    };
    // Usage side: any name *mentioned inside* a non-test literal.
    let mut used: Vec<(String, String, usize)> = Vec::new();
    for f in sources {
        for s in &f.lexed.strings {
            if f.in_test_region(s.start) {
                continue;
            }
            for name in series_names_in(&s.text) {
                used.push((name, f.rel.clone(), s.line));
            }
        }
    }
    // Registry side: literals that *are exactly* a series name.
    let registered: Vec<(String, usize)> = reg
        .lexed
        .strings
        .iter()
        .filter(|s| !reg.in_test_region(s.start))
        .filter(|s| series_names_in(&s.text).as_slice() == [s.text.clone()])
        .map(|s| (s.text.clone(), s.line))
        .collect();

    let mut findings = Vec::new();
    let mut reported = Vec::new();
    for (name, file, line) in &used {
        if !registered.iter().any(|(r, _)| r == name) && !reported.contains(name) {
            reported.push(name.clone());
            findings.push(Finding {
                lint: "L4",
                file: file.clone(),
                line: *line,
                message: format!("series `{name}` is rendered here but absent from {METRIC_REGISTRY}"),
            });
        }
    }
    for (name, line) in &registered {
        if !used.iter().any(|(u, _, _)| u == name) {
            findings.push(Finding {
                lint: "L4",
                file: reg.rel.clone(),
                line: *line,
                message: format!("series `{name}` is registered but no exposition renders it"),
            });
        }
    }
    findings
}

// ---------------------------------------------------------------- L5 --

const ORDERINGS: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// Explicit atomic-ordering sites in non-test code.
pub fn ordering_sites(file: &SourceFile) -> Vec<usize> {
    ident_occurrences(&file.stripped, "Ordering")
        .into_iter()
        .filter(|&off| {
            let tail = &file.stripped[off + "Ordering".len()..];
            let Some(rest) = tail.strip_prefix("::") else {
                return false;
            };
            let ident: String = rest
                .bytes()
                .take_while(|&b| b.is_ascii_alphanumeric() || b == b'_')
                .map(char::from)
                .collect();
            ORDERINGS.contains(&ident.as_str())
        })
        .collect()
}

/// L5: every file using explicit atomic orderings needs an `[[ordering]]`
/// allowlist entry naming the synchronization argument, and the per-file
/// site count must not grow past the entry's `max`.
pub fn l5_atomic_orderings(file: &SourceFile, allow: &Allowlist, used: &mut [bool]) -> Vec<Finding> {
    let sites = ordering_sites(file);
    let entry = allow.orderings.iter().enumerate().find(|(_, e)| e.file == file.rel);
    if sites.is_empty() {
        return Vec::new();
    }
    let first_line = line_of(&file.stripped, sites[0]);
    match entry {
        None => vec![Finding {
            lint: "L5",
            file: file.rel.clone(),
            line: first_line,
            message: format!(
                "{} explicit atomic-ordering site(s) with no [[ordering]] entry in allow.toml",
                sites.len()
            ),
        }],
        Some((idx, e)) => {
            used[idx] = true;
            if sites.len() > e.max {
                vec![Finding {
                    lint: "L5",
                    file: file.rel.clone(),
                    line: line_of(&file.stripped, sites[e.max.min(sites.len() - 1)]),
                    message: format!(
                        "atomic-ordering sites grew to {} (allow.toml caps this file at {}) — \
                         justify the new site and raise `max`",
                        sites.len(),
                        e.max
                    ),
                }]
            } else {
                Vec::new()
            }
        }
    }
}

// ------------------------------------------------- allowlist hygiene --

/// Entries that matched nothing are stale — the shrink-only policy says
/// they must be deleted, not kept as headroom.
pub fn unused_allow_entries(allow: &Allowlist, unwrap_used: &[bool], ordering_used: &[bool]) -> Vec<Finding> {
    let mut findings = Vec::new();
    for (idx, e) in allow.unwraps.iter().enumerate() {
        if !unwrap_used[idx] {
            findings.push(Finding {
                lint: "allow",
                file: "crates/xtask/allow.toml".to_string(),
                line: e.decl_line,
                message: format!(
                    "stale [[unwrap]] entry: nothing in {} matches {:?} — delete it",
                    e.file, e.line_contains
                ),
            });
        }
    }
    for (idx, e) in allow.orderings.iter().enumerate() {
        if !ordering_used[idx] {
            findings.push(Finding {
                lint: "allow",
                file: "crates/xtask/allow.toml".to_string(),
                line: e.decl_line,
                message: format!("stale [[ordering]] entry: {} has no ordering sites — delete it", e.file),
            });
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allow;

    // ------------------------------------------------------------ L1 --

    #[test]
    fn l1_flags_a_naked_unsafe_block() {
        let f = SourceFile::from_source(
            "crates/nn/src/gemm.rs",
            "pub fn k(p: *const f32) -> f32 {\n    unsafe { *p }\n}\n",
        );
        let findings = l1_safety_comments(&f);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].line, 2);
    }

    #[test]
    fn l1_accepts_safety_comment_and_safety_doc() {
        let f = SourceFile::from_source(
            "crates/nn/src/gemm.rs",
            "pub fn k(p: *const f32) -> f32 {\n    // SAFETY: caller guarantees p is valid.\n    unsafe { *p }\n}\n\n/// Reads raw.\n///\n/// # Safety\n/// `p` must be valid for reads.\npub unsafe fn raw(p: *const f32) -> f32 {\n    *p\n}\n",
        );
        assert!(l1_safety_comments(&f).is_empty());
    }

    #[test]
    fn l1_does_not_fire_on_unsafe_in_strings_or_tests() {
        let f = SourceFile::from_source(
            "crates/serve/src/server.rs",
            "const DOC: &str = \"unsafe\";\n#[cfg(test)]\nmod tests {\n    fn t() { unsafe { std::hint::unreachable_unchecked() } }\n}\n",
        );
        assert!(l1_safety_comments(&f).is_empty());
    }

    // ------------------------------------------------------------ L2 --

    #[test]
    fn l2_flags_unwrap_in_hot_path_but_not_elsewhere() {
        let src = "pub fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        let hot = SourceFile::from_source("crates/serve/src/batcher.rs", src);
        let cold = SourceFile::from_source("crates/bench/src/lib.rs", src);
        let allow = Allowlist::default();
        assert_eq!(l2_hot_path_panics(&hot, &allow, &mut []).len(), 1);
        assert!(l2_hot_path_panics(&cold, &allow, &mut []).is_empty());
    }

    #[test]
    fn l2_skips_unwrap_or_else_and_test_code() {
        let f = SourceFile::from_source(
            "crates/serve/src/latency.rs",
            "pub fn f(m: &std::sync::Mutex<u32>) -> u32 {\n    *m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)\n}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { None::<u32>.unwrap(); panic!(\"x\"); }\n}\n",
        );
        assert!(l2_hot_path_panics(&f, &Allowlist::default(), &mut []).is_empty());
    }

    #[test]
    fn l2_allowlist_matches_by_line_substring_and_marks_usage() {
        let f = SourceFile::from_source(
            "crates/serve/src/server.rs",
            "fn spawn() {\n    std::thread::Builder::new().spawn(|| {}).expect(\"spawn writer thread\");\n}\n",
        );
        let allow = allow::parse(
            "[[unwrap]]\nfile = \"crates/serve/src/server.rs\"\nline_contains = \"expect(\\\"spawn writer thread\\\")\"\njustification = \"startup-only\"\n",
        )
        .unwrap();
        let mut used = vec![false];
        assert!(l2_hot_path_panics(&f, &allow, &mut used).is_empty());
        assert!(used[0]);
        assert!(unused_allow_entries(&allow, &used, &[]).is_empty());
    }

    #[test]
    fn l2_flags_panic_and_unreachable_macros() {
        let f = SourceFile::from_source(
            "crates/nn/src/gemv.rs",
            "pub fn f(m: usize) {\n    match m {\n        0 => {}\n        _ => unreachable!(\"m > max\"),\n    }\n    panic!(\"boom\");\n}\n",
        );
        let findings = l2_hot_path_panics(&f, &Allowlist::default(), &mut []);
        assert_eq!(findings.len(), 2, "{findings:?}");
    }

    #[test]
    fn stale_allow_entry_is_reported() {
        let allow = allow::parse(
            "[[unwrap]]\nfile = \"crates/serve/src/server.rs\"\nline_contains = \"no such line\"\njustification = \"j\"\n",
        )
        .unwrap();
        let findings = unused_allow_entries(&allow, &[false], &[]);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("stale"));
    }

    // ------------------------------------------------------------ L3 --

    const PROTOCOL_FIXTURE: &str = r#"
impl ErrorCode {
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::Parse => "parse",
            ErrorCode::Internal => "internal",
        }
    }
    pub fn parse(token: &str) -> Option<ErrorCode> {
        match token {
            "parse" => Some(ErrorCode::Parse),
            "internal" => Some(ErrorCode::Internal),
            _ => None,
        }
    }
}
impl Request {
    pub fn parse(line: &str) -> Result<Request, ()> {
        match line.split_whitespace().next().unwrap_or("") {
            "EST" => Ok(Request::Est),
            "QUIT" => Ok(Request::Quit),
            _ => Err(()),
        }
    }
}
impl Reply {
    pub fn parse(line: &str) -> Result<Reply, ()> {
        match line.split_whitespace().next().unwrap_or("") {
            "OK" => Ok(Reply::Ok),
            "ERR" => Ok(Reply::Err),
            _ => Err(()),
        }
    }
}
"#;

    const README_FIXTURE: &str = "Protocol:\n\n```text\nrequest := \"EST\" <id> | \"QUIT\"\nreply   := \"OK\" <id> | \"ERR\" <id> code=<kebab>\n```\n\n`code=` is one of `parse` or `internal`.\n";

    #[test]
    fn l3_passes_when_code_and_readme_agree() {
        let p = SourceFile::from_source("crates/serve/src/protocol.rs", PROTOCOL_FIXTURE);
        let findings = l3_protocol_drift(&p, README_FIXTURE);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn l3_flags_a_verb_missing_from_the_readme() {
        let drifted = PROTOCOL_FIXTURE.replace(
            "\"QUIT\" => Ok(Request::Quit),",
            "\"QUIT\" => Ok(Request::Quit),\n            \"PING\" => Ok(Request::Quit),",
        );
        let p = SourceFile::from_source("crates/serve/src/protocol.rs", &drifted);
        let findings = l3_protocol_drift(&p, README_FIXTURE);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("PING"), "{findings:?}");
    }

    #[test]
    fn l3_flags_an_error_code_drift_in_the_readme() {
        let readme = README_FIXTURE.replace("`parse` or `internal`", "`parse`, `quota`, or `internal`");
        let p = SourceFile::from_source("crates/serve/src/protocol.rs", PROTOCOL_FIXTURE);
        let findings = l3_protocol_drift(&p, &readme);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("quota"), "{findings:?}");
    }

    // ------------------------------------------------------------ L4 --

    #[test]
    fn l4_flags_unregistered_and_orphaned_series() {
        let expose = SourceFile::from_source(
            "crates/serve/src/expose.rs",
            "fn r(e: &mut Expo) {\n    e.counter(\"lmkg_foo_total\", 1);\n    e.counter(\"lmkg_missing_total\", 2);\n}\n",
        );
        let expo = SourceFile::from_source(
            "crates/obs/src/expo.rs",
            "fn events(prefix: &str) -> String { format!(\"{prefix}_events_total\") }\n",
        );
        let registry = SourceFile::from_source(
            METRIC_REGISTRY,
            "pub const REGISTRY: &[(&str, &str)] = &[\n    (\"lmkg_foo_total\", \"c\"),\n    (\"lmkg_events_total\", \"c\"),\n    (\"lmkg_orphan\", \"g\"),\n];\n",
        );
        let findings = l4_metrics_registry(&[&expose, &expo], Some(&registry));
        assert_eq!(findings.len(), 2, "{findings:?}");
        assert!(findings
            .iter()
            .any(|f| f.message.contains("lmkg_missing_total") && f.file.ends_with("expose.rs")));
        assert!(findings
            .iter()
            .any(|f| f.message.contains("lmkg_orphan") && f.file.ends_with("metrics_registry.rs")));
    }

    #[test]
    fn l4_expands_prefix_placeholders_and_reads_names_inside_help_lines() {
        let expose = SourceFile::from_source(
            "crates/serve/src/expose.rs",
            "fn r(e: &mut Expo) { e.raw_line(\"# HELP lmkg_kernel_active gauge\"); }\n",
        );
        let registry = SourceFile::from_source(
            METRIC_REGISTRY,
            "pub const REGISTRY: &[&str] = &[\"lmkg_kernel_active\"];\n",
        );
        assert!(l4_metrics_registry(&[&expose], Some(&registry)).is_empty());
    }

    // ------------------------------------------------------------ L5 --

    #[test]
    fn l5_requires_an_entry_and_caps_growth() {
        let f = SourceFile::from_source(
            "crates/obs/src/metrics.rs",
            "use std::sync::atomic::{AtomicU64, Ordering};\npub fn bump(c: &AtomicU64) {\n    c.fetch_add(1, Ordering::Relaxed);\n    c.load(Ordering::Relaxed);\n}\n",
        );
        let none = l5_atomic_orderings(&f, &Allowlist::default(), &mut []);
        assert_eq!(none.len(), 1);
        assert!(none[0].message.contains("no [[ordering]] entry"));

        let ok_allow = allow::parse(
            "[[ordering]]\nfile = \"crates/obs/src/metrics.rs\"\nmax = 2\njustification = \"relaxed counters; snapshot needs no order\"\n",
        )
        .unwrap();
        let mut used = vec![false];
        assert!(l5_atomic_orderings(&f, &ok_allow, &mut used).is_empty());
        assert!(used[0]);

        let tight = allow::parse(
            "[[ordering]]\nfile = \"crates/obs/src/metrics.rs\"\nmax = 1\njustification = \"relaxed counters\"\n",
        )
        .unwrap();
        let grew = l5_atomic_orderings(&f, &tight, &mut [false]);
        assert_eq!(grew.len(), 1);
        assert!(grew[0].message.contains("grew to 2"));
    }

    #[test]
    fn l5_ignores_cmp_ordering_and_test_code() {
        let f = SourceFile::from_source(
            "crates/core/src/lib.rs",
            "pub fn c(a: u32, b: u32) -> std::cmp::Ordering { a.cmp(&b).then(std::cmp::Ordering::Less) }\n#[cfg(test)]\nmod tests {\n    use std::sync::atomic::{AtomicU64, Ordering};\n    #[test]\n    fn t() { AtomicU64::new(0).load(Ordering::SeqCst); }\n}\n",
        );
        assert!(ordering_sites(&f).is_empty());
    }
}
