//! Parser for `crates/xtask/allow.toml` — the justification-required
//! allowlist for L2 (hot-path unwraps) and L5 (atomic orderings).
//!
//! Hand-rolled TOML subset (array-of-tables headers, string and integer
//! values, `#` comments) so the tool stays dependency-free. Every entry
//! must carry a non-empty `justification`; the lint driver additionally
//! fails on entries that no longer match anything, which is what makes
//! the allowlist shrink-only.

/// One `[[unwrap]]` entry: allows a single L2 finding identified by its
/// file and a stable substring of the offending source line.
#[derive(Debug, Clone)]
pub struct UnwrapAllow {
    pub file: String,
    pub line_contains: String,
    pub justification: String,
    /// Line in allow.toml, for error reporting.
    pub decl_line: usize,
}

/// One `[[ordering]]` entry: allows up to `max` explicit atomic-ordering
/// uses in one file, with a justification naming the synchronization
/// argument.
#[derive(Debug, Clone)]
pub struct OrderingAllow {
    pub file: String,
    pub max: usize,
    pub justification: String,
    pub decl_line: usize,
}

#[derive(Debug, Default)]
pub struct Allowlist {
    pub unwraps: Vec<UnwrapAllow>,
    pub orderings: Vec<OrderingAllow>,
}

#[derive(Debug)]
pub struct ParseError {
    pub line: usize,
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "allow.toml:{}: {}", self.line, self.message)
    }
}

enum Section {
    None,
    Unwrap,
    Ordering,
}

/// Unescapes a double-quoted TOML string (only `\\` and `\"` occur here).
fn parse_string(raw: &str, line: usize) -> Result<String, ParseError> {
    let inner = raw
        .strip_prefix('"')
        .and_then(|r| r.strip_suffix('"'))
        .ok_or_else(|| ParseError {
            line,
            message: format!("expected a double-quoted string, got {raw}"),
        })?;
    let mut out = String::with_capacity(inner.len());
    let mut chars = inner.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('\\') => out.push('\\'),
                Some('"') => out.push('"'),
                other => {
                    return Err(ParseError {
                        line,
                        message: format!("unsupported escape \\{}", other.unwrap_or(' ')),
                    })
                }
            }
        } else {
            out.push(c);
        }
    }
    Ok(out)
}

pub fn parse(text: &str) -> Result<Allowlist, ParseError> {
    let mut list = Allowlist::default();
    let mut section = Section::None;
    for (idx, raw_line) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw_line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        match line {
            "[[unwrap]]" => {
                section = Section::Unwrap;
                list.unwraps.push(UnwrapAllow {
                    file: String::new(),
                    line_contains: String::new(),
                    justification: String::new(),
                    decl_line: lineno,
                });
                continue;
            }
            "[[ordering]]" => {
                section = Section::Ordering;
                list.orderings.push(OrderingAllow {
                    file: String::new(),
                    max: 0,
                    justification: String::new(),
                    decl_line: lineno,
                });
                continue;
            }
            _ => {}
        }
        let (key, value) = line.split_once('=').ok_or_else(|| ParseError {
            line: lineno,
            message: format!("expected `key = value`, got {line:?}"),
        })?;
        let key = key.trim();
        let value = value.trim();
        match (&section, key) {
            (Section::Unwrap, "file") => list.unwraps.last_mut().unwrap().file = parse_string(value, lineno)?,
            (Section::Unwrap, "line_contains") => {
                list.unwraps.last_mut().unwrap().line_contains = parse_string(value, lineno)?
            }
            (Section::Unwrap, "justification") => {
                list.unwraps.last_mut().unwrap().justification = parse_string(value, lineno)?
            }
            (Section::Ordering, "file") => list.orderings.last_mut().unwrap().file = parse_string(value, lineno)?,
            (Section::Ordering, "max") => {
                list.orderings.last_mut().unwrap().max = value.parse().map_err(|_| ParseError {
                    line: lineno,
                    message: format!("expected an integer for max, got {value}"),
                })?
            }
            (Section::Ordering, "justification") => {
                list.orderings.last_mut().unwrap().justification = parse_string(value, lineno)?
            }
            (Section::None, _) => {
                return Err(ParseError {
                    line: lineno,
                    message: "key outside of a [[unwrap]] or [[ordering]] table".into(),
                })
            }
            (_, other) => {
                return Err(ParseError {
                    line: lineno,
                    message: format!("unknown key {other:?}"),
                })
            }
        }
    }
    // Completeness: every entry must be fully specified with a real
    // justification — an empty one defeats the policy.
    for e in &list.unwraps {
        if e.file.is_empty() || e.line_contains.is_empty() {
            return Err(ParseError {
                line: e.decl_line,
                message: "[[unwrap]] needs both `file` and `line_contains`".into(),
            });
        }
        if e.justification.trim().is_empty() {
            return Err(ParseError {
                line: e.decl_line,
                message: format!("[[unwrap]] for {} has no justification", e.file),
            });
        }
    }
    for e in &list.orderings {
        if e.file.is_empty() || e.max == 0 {
            return Err(ParseError {
                line: e.decl_line,
                message: "[[ordering]] needs both `file` and a nonzero `max`".into(),
            });
        }
        if e.justification.trim().is_empty() {
            return Err(ParseError {
                line: e.decl_line,
                message: format!("[[ordering]] for {} has no justification", e.file),
            });
        }
    }
    Ok(list)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_both_table_kinds() {
        let text = r#"
# comment
[[unwrap]]
file = "crates/serve/src/server.rs"
line_contains = "expect(\"spawn writer thread\")"
justification = "startup-only; resource exhaustion is fatal by design"

[[ordering]]
file = "crates/obs/src/hist.rs"
max = 10
justification = "relaxed fetch-adds; merge does not need inter-counter order"
"#;
        let list = parse(text).unwrap();
        assert_eq!(list.unwraps.len(), 1);
        assert_eq!(list.unwraps[0].line_contains, r#"expect("spawn writer thread")"#);
        assert_eq!(list.orderings.len(), 1);
        assert_eq!(list.orderings[0].max, 10);
    }

    #[test]
    fn empty_justification_is_rejected() {
        let text = "[[unwrap]]\nfile = \"a.rs\"\nline_contains = \"x\"\njustification = \"  \"\n";
        let err = parse(text).unwrap_err();
        assert!(err.message.contains("no justification"), "{err}");
    }

    #[test]
    fn missing_fields_are_rejected() {
        let err = parse("[[ordering]]\nfile = \"a.rs\"\njustification = \"j\"\n").unwrap_err();
        assert!(err.message.contains("nonzero `max`"), "{err}");
    }

    #[test]
    fn stray_key_is_rejected() {
        let err = parse("file = \"a.rs\"\n").unwrap_err();
        assert!(err.message.contains("outside"), "{err}");
    }
}
