//! A small hand-rolled Rust lexer: just enough to separate code from
//! comments and string literals so the lints never false-positive on
//! text inside either.
//!
//! The output is a *masked* copy of the source with the exact same byte
//! length — every byte of comment and literal content (delimiters
//! included) is replaced by a space, newlines are kept — plus the list
//! of comments and string literals with their 1-based start lines and
//! byte offsets. All downstream analysis runs on the masked bytes, so
//! offsets and line numbers always agree with the original file.
//!
//! Handled: line comments, nested block comments, string literals with
//! escapes, byte strings, raw (and raw byte) strings with any number of
//! `#`s, char/byte-char literals, and the char-literal vs lifetime
//! ambiguity (`'a'` vs `&'a`). Not handled (not needed here): exotic
//! non-ASCII identifiers adjacent to literal prefixes.

/// A comment (line or block) with its raw text, delimiters excluded.
#[derive(Debug, Clone)]
pub struct Comment {
    pub text: String,
    /// 1-based line of the comment's first character.
    pub line: usize,
}

/// A string literal's content (quotes and raw-string hashes excluded).
#[derive(Debug, Clone)]
pub struct StrLit {
    pub text: String,
    /// 1-based line of the opening delimiter.
    pub line: usize,
    /// Byte offset of the opening delimiter in the source.
    pub start: usize,
    /// Byte offset one past the closing delimiter.
    pub end: usize,
}

#[derive(Debug)]
pub struct Lexed {
    /// Same byte length as the input; comments and literals blanked.
    pub masked: String,
    pub comments: Vec<Comment>,
    pub strings: Vec<StrLit>,
}

fn is_ident(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

pub fn lex(src: &str) -> Lexed {
    let bytes = src.as_bytes();
    let mut masked = Vec::with_capacity(bytes.len());
    let mut comments = Vec::new();
    let mut strings = Vec::new();
    let mut line = 1usize;
    let mut i = 0usize;

    // Pushes `bytes[from..to]` as blanks, preserving newlines.
    let blank = |masked: &mut Vec<u8>, line: &mut usize, from: usize, to: usize| {
        for &b in &bytes[from..to] {
            if b == b'\n' {
                masked.push(b'\n');
                *line += 1;
            } else {
                masked.push(b' ');
            }
        }
    };

    while i < bytes.len() {
        let b = bytes[i];
        let next = bytes.get(i + 1).copied();

        // Line comment.
        if b == b'/' && next == Some(b'/') {
            let start = i;
            let start_line = line;
            while i < bytes.len() && bytes[i] != b'\n' {
                i += 1;
            }
            comments.push(Comment {
                text: src[start + 2..i].to_string(),
                line: start_line,
            });
            blank(&mut masked, &mut line, start, i);
            continue;
        }

        // Block comment (nested).
        if b == b'/' && next == Some(b'*') {
            let start = i;
            let start_line = line;
            let mut depth = 1usize;
            i += 2;
            while i < bytes.len() && depth > 0 {
                if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                    depth += 1;
                    i += 2;
                } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                    depth -= 1;
                    i += 2;
                } else {
                    i += 1;
                }
            }
            let text_end = i.saturating_sub(2).max(start + 2);
            comments.push(Comment {
                text: src[start + 2..text_end].to_string(),
                line: start_line,
            });
            blank(&mut masked, &mut line, start, i);
            continue;
        }

        // Raw string, possibly byte-raw: r"..", r#".."#, br#".."#.
        // A lone `r#ident` (raw identifier) is not a string and falls through.
        let prev_ident = i > 0 && is_ident(bytes[i - 1]);
        if !prev_ident && (b == b'r' || (b == b'b' && next == Some(b'r'))) {
            let r_pos = if b == b'b' { i + 1 } else { i };
            let mut j = r_pos + 1;
            while bytes.get(j) == Some(&b'#') {
                j += 1;
            }
            let hashes = j - (r_pos + 1);
            if bytes.get(j) == Some(&b'"') {
                let start = i;
                let start_line = line;
                let content_start = j + 1;
                // Find `"` followed by `hashes` hashes.
                let mut k = content_start;
                let content_end;
                loop {
                    match bytes.get(k) {
                        None => {
                            content_end = k;
                            break;
                        }
                        Some(&b'"') if bytes[k + 1..].iter().take(hashes).filter(|&&h| h == b'#').count() == hashes => {
                            content_end = k;
                            k += 1 + hashes;
                            break;
                        }
                        _ => k += 1,
                    }
                }
                strings.push(StrLit {
                    text: src[content_start..content_end.min(bytes.len())].to_string(),
                    line: start_line,
                    start,
                    end: k,
                });
                blank(&mut masked, &mut line, start, k);
                i = k;
                continue;
            }
        }

        // Plain or byte string literal.
        if b == b'"' {
            let start = i;
            let start_line = line;
            let mut k = i + 1;
            while k < bytes.len() {
                match bytes[k] {
                    b'\\' => k += 2,
                    b'"' => break,
                    _ => k += 1,
                }
            }
            let content_end = k.min(bytes.len());
            let end = (k + 1).min(bytes.len());
            strings.push(StrLit {
                text: src[start + 1..content_end].to_string(),
                line: start_line,
                start,
                end,
            });
            blank(&mut masked, &mut line, start, end);
            i = end;
            continue;
        }

        // Char literal vs lifetime. `'\...'` and `'x'` are char literals;
        // anything else after `'` is a lifetime and stays code.
        if b == b'\'' {
            let is_char = match next {
                Some(b'\\') => true,
                Some(c) if c != b'\'' => {
                    // `'x'` — but `'a` followed by non-quote is a lifetime.
                    // Multibyte chars: scan to the closing quote within a
                    // short window.
                    bytes[i + 1..]
                        .iter()
                        .take(6)
                        .skip(1)
                        .take_while(|&&x| x != b'\n')
                        .any(|&x| x == b'\'')
                        && bytes.get(i + 2) == Some(&b'\'')
                }
                _ => false,
            };
            if is_char {
                let mut k = i + 1;
                while k < bytes.len() {
                    match bytes[k] {
                        b'\\' => k += 2,
                        b'\'' => break,
                        _ => k += 1,
                    }
                }
                let end = (k + 1).min(bytes.len());
                blank(&mut masked, &mut line, i, end);
                i = end;
                continue;
            }
        }

        if b == b'\n' {
            line += 1;
        }
        masked.push(b);
        i += 1;
    }

    debug_assert_eq!(masked.len(), bytes.len());
    Lexed {
        masked: String::from_utf8(masked).expect("masking preserves UTF-8: only ASCII bytes are rewritten"),
        comments,
        strings,
    }
}

/// Blanks every `#[cfg(test)]`-gated region in a masked source: the
/// attribute itself, any stacked attributes after it, and the following
/// balanced-brace block (or statement up to `;` for extern/use items).
/// Returns the stripped text plus the blanked byte ranges so callers can
/// tell whether a literal or comment sat inside test code.
pub fn strip_tests(masked: &str) -> (String, Vec<(usize, usize)>) {
    let bytes = masked.as_bytes();
    let mut out = bytes.to_vec();
    let mut regions = Vec::new();
    let mut search = 0usize;
    while let Some(rel) = masked[search..].find("#[cfg(test)]") {
        let attr_start = search + rel;
        let mut j = attr_start + "#[cfg(test)]".len();
        // Skip whitespace and any further attributes (e.g. `#[test]`,
        // doc comments are already blanked in the masked text).
        loop {
            while j < bytes.len() && (bytes[j] as char).is_whitespace() {
                j += 1;
            }
            if bytes.get(j) == Some(&b'#') && bytes.get(j + 1) == Some(&b'[') {
                while j < bytes.len() && bytes[j] != b']' {
                    j += 1;
                }
                j += 1;
            } else {
                break;
            }
        }
        // Find the end of the gated item: the matching `}` of the first
        // block, or `;` if it comes first (item with no body).
        let mut depth = 0usize;
        let mut end = bytes.len();
        let mut k = j;
        while k < bytes.len() {
            match bytes[k] {
                b'{' => depth += 1,
                b'}' => {
                    depth -= 1;
                    if depth == 0 {
                        end = k + 1;
                        break;
                    }
                }
                b';' if depth == 0 => {
                    end = k + 1;
                    break;
                }
                _ => {}
            }
            k += 1;
        }
        for b in &mut out[attr_start..end] {
            if *b != b'\n' {
                *b = b' ';
            }
        }
        regions.push((attr_start, end));
        search = end;
    }
    (
        String::from_utf8(out).expect("stripping rewrites ASCII bytes only"),
        regions,
    )
}

/// 1-based line number of a byte offset.
pub fn line_of(text: &str, offset: usize) -> usize {
    text.as_bytes()[..offset.min(text.len())]
        .iter()
        .filter(|&&b| b == b'\n')
        .count()
        + 1
}

/// Finds occurrences of `word` as a standalone identifier in masked code.
pub fn ident_occurrences(masked: &str, word: &str) -> Vec<usize> {
    let bytes = masked.as_bytes();
    let mut found = Vec::new();
    let mut search = 0usize;
    while let Some(rel) = masked[search..].find(word) {
        let at = search + rel;
        let before_ok = at == 0 || !is_ident(bytes[at - 1]);
        let after = at + word.len();
        let after_ok = after >= bytes.len() || !is_ident(bytes[after]);
        if before_ok && after_ok {
            found.push(at);
        }
        search = at + word.len();
    }
    found
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_comment_is_blanked_and_recorded() {
        let src = "let x = 1; // unsafe unwrap()\nlet y = 2;";
        let l = lex(src);
        assert!(!l.masked.contains("unsafe"));
        assert!(l.masked.contains("let y = 2;"));
        assert_eq!(l.comments.len(), 1);
        assert_eq!(l.comments[0].line, 1);
        assert!(l.comments[0].text.contains("unsafe unwrap()"));
        assert_eq!(l.masked.len(), src.len());
    }

    #[test]
    fn nested_block_comment_terminates_correctly() {
        let src = "a /* outer /* inner */ still comment */ b";
        let l = lex(src);
        assert!(l.masked.starts_with('a'));
        assert!(l.masked.ends_with('b'));
        assert!(!l.masked.contains("comment"));
        assert_eq!(l.comments.len(), 1);
    }

    #[test]
    fn string_contents_do_not_leak_into_code() {
        let src = r#"let s = "unsafe { panic!() } // not a comment"; done();"#;
        let l = lex(src);
        assert!(!l.masked.contains("unsafe"));
        assert!(!l.masked.contains("panic"));
        assert!(l.masked.contains("done();"));
        assert_eq!(l.strings.len(), 1);
        assert!(l.strings[0].text.contains("panic!"));
    }

    #[test]
    fn escaped_quote_does_not_end_the_string() {
        let src = r#"let s = "a \" b"; trailing"#;
        let l = lex(src);
        assert_eq!(l.strings[0].text, r#"a \" b"#);
        assert!(l.masked.contains("trailing"));
    }

    #[test]
    fn raw_strings_with_hashes_and_byte_raw() {
        let src = r###"let a = r#"has "quotes" and unsafe"#; let b = br"bytes"; end"###;
        let l = lex(src);
        assert_eq!(l.strings.len(), 2);
        assert!(l.strings[0].text.contains(r#"has "quotes""#));
        assert_eq!(l.strings[1].text, "bytes");
        assert!(!l.masked.contains("unsafe"));
        assert!(l.masked.contains("end"));
    }

    #[test]
    fn raw_identifier_is_not_a_string() {
        let src = "fn r#match() { r#match(); }";
        let l = lex(src);
        assert!(l.strings.is_empty());
        assert!(l.masked.contains("r#match"));
    }

    #[test]
    fn char_literal_vs_lifetime() {
        let src = "fn f<'a>(x: &'a str) { let q = '\"'; let n = '\\n'; }";
        let l = lex(src);
        // Lifetimes survive as code; char literals are blanked (so the
        // quote char can't be mistaken for a string delimiter).
        assert!(l.masked.contains("<'a>"));
        assert!(l.masked.contains("&'a str"));
        assert!(!l.masked.contains('"'));
        assert!(l.strings.is_empty());
    }

    #[test]
    fn strip_tests_blanks_the_gated_module() {
        let src = "fn prod() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn after() {}\n";
        let l = lex(src);
        let (stripped, regions) = strip_tests(&l.masked);
        assert!(stripped.contains("fn prod"));
        assert!(stripped.contains("fn after"));
        assert!(!stripped.contains("unwrap"));
        assert_eq!(regions.len(), 1);
        assert_eq!(stripped.len(), src.len());
    }

    #[test]
    fn ident_occurrences_respects_word_boundaries() {
        let masked = "x.unwrap(); y.unwrap_or_else(f); let unwrapped = 1; z.unwrap()";
        let hits = ident_occurrences(masked, "unwrap");
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn line_numbers_survive_multiline_strings() {
        let src = "let s = \"line one\nline two\";\nlet after = 3;";
        let l = lex(src);
        assert_eq!(l.strings[0].line, 1);
        assert_eq!(line_of(&l.masked, l.masked.find("after").unwrap()), 3);
    }
}
