//! # lmkg-modelstore
//!
//! Versioned on-disk store for LMKG model-set snapshots — the durability
//! layer between training and serving. The byte format of one snapshot is
//! `lmkg::snapshot` (`LMKGSET1`); this crate adds what a crash-safe server
//! needs around it:
//!
//! * **Generations** — every publish gets a monotonically increasing
//!   generation number; `snapshot-<gen>.lmkg` files never change once
//!   published.
//! * **Checksums** — each snapshot file carries a CRC32 over its payload,
//!   verified on load, so bit rot or a torn write is a typed error, never a
//!   half-restored model set.
//! * **Atomic publish** — snapshots are written to a temporary file,
//!   fsynced, then renamed into place before the `MANIFEST` pointer is
//!   updated the same way. A writer crashing at *any* point leaves either
//!   the old generation or the new one, never a corrupt store.
//! * **Recovery** — if the manifest is missing or points at a damaged file,
//!   [`ModelStore::load_latest`] falls back to scanning generations from
//!   newest to oldest and serves the first one that validates.
//! * **Garbage collection** — publish keeps the last
//!   [`ModelStore::KEEP_GENERATIONS`] generations and removes older files
//!   plus abandoned temporaries.
//!
//! ```no_run
//! use lmkg_modelstore::ModelStore;
//! # fn demo(model: &lmkg::Lmkg) -> Result<(), lmkg_modelstore::StoreError> {
//! let store = ModelStore::open("models/default")?;
//! let generation = store.publish(model)?;
//! let (reloaded, gen) = store.load_latest()?;
//! assert_eq!(gen, generation);
//! # Ok(()) }
//! ```

// No unsafe anywhere in this crate — enforced so the lmkg-xtask L1 lint
// and the sanitizer jobs only ever have the nn kernels and the serve
// signal shim to reason about.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

use lmkg::{Lmkg, SnapshotError};
use std::fmt;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

/// Leading bytes of every snapshot *file* (the framing around the
/// `LMKGSET1` payload).
pub const STORE_MAGIC: &[u8; 8] = b"LMKGSTO1";
const STORE_VERSION: u32 = 1;
const MANIFEST: &str = "MANIFEST";
const SNAPSHOT_PREFIX: &str = "snapshot-";
const SNAPSHOT_SUFFIX: &str = ".lmkg";
const TMP_SUFFIX: &str = ".tmp";

/// Why a store operation failed.
#[derive(Debug)]
pub enum StoreError {
    /// Filesystem trouble (permissions, disk full, truncation mid-read).
    Io(io::Error),
    /// A snapshot file does not start with the `LMKGSTO1` framing magic.
    BadMagic,
    /// A snapshot file was written by an unknown framing version.
    UnsupportedVersion(u32),
    /// The payload does not hash to the checksum recorded at publish time.
    BadChecksum {
        /// CRC32 recorded in the file header.
        expected: u32,
        /// CRC32 of the payload actually on disk.
        actual: u32,
    },
    /// The manifest or a file header is malformed.
    Corrupt(String),
    /// The store holds no loadable snapshot at all.
    NoSnapshot,
    /// The payload validated but the model-set decode inside it failed.
    Snapshot(SnapshotError),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "model store I/O failed: {e}"),
            StoreError::BadMagic => write!(f, "bad magic: not an LMKG snapshot file"),
            StoreError::UnsupportedVersion(v) => {
                write!(f, "unsupported snapshot-file version {v}")
            }
            StoreError::BadChecksum { expected, actual } => write!(
                f,
                "snapshot checksum mismatch: header {expected:08x}, payload {actual:08x}"
            ),
            StoreError::Corrupt(what) => write!(f, "corrupt model store: {what}"),
            StoreError::NoSnapshot => write!(f, "model store holds no loadable snapshot"),
            StoreError::Snapshot(e) => write!(f, "snapshot payload invalid: {e}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            StoreError::Snapshot(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl From<SnapshotError> for StoreError {
    fn from(e: SnapshotError) -> Self {
        match e {
            SnapshotError::Io(io) => StoreError::Io(io),
            other => StoreError::Snapshot(other),
        }
    }
}

/// CRC32 (IEEE 802.3 polynomial, reflected) — hand-rolled so the store adds
/// no dependency; the whole payload is hashed once per publish/load.
pub fn crc32(bytes: &[u8]) -> u32 {
    const TABLE: [u32; 256] = {
        let mut table = [0u32; 256];
        let mut i = 0;
        while i < 256 {
            let mut c = i as u32;
            let mut k = 0;
            while k < 8 {
                c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
                k += 1;
            }
            table[i] = c;
            i += 1;
        }
        table
    };
    let mut c = !0u32;
    for &b in bytes {
        c = TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

/// What the manifest (or a recovery scan) says about one stored generation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotMeta {
    /// Generation number, monotonically increasing per store.
    pub generation: u64,
    /// File name inside the store directory.
    pub file: String,
    /// Payload length in bytes.
    pub len: u64,
    /// CRC32 over the payload.
    pub crc: u32,
}

/// A directory of checksummed, generation-numbered model-set snapshots.
///
/// The store holds no open file handles between calls; it is a path plus
/// the publish/load/recover protocol, so it is `Clone` and cheap to share.
#[derive(Debug, Clone)]
pub struct ModelStore {
    dir: PathBuf,
}

impl ModelStore {
    /// Generations retained after each publish (the new one plus one
    /// rollback target).
    pub const KEEP_GENERATIONS: usize = 2;

    /// Opens (creating if absent) a store rooted at `dir`.
    pub fn open<P: AsRef<Path>>(dir: P) -> Result<Self, StoreError> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir)?;
        Ok(Self { dir })
    }

    /// The directory this store lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn snapshot_file(generation: u64) -> String {
        // Zero-padded so lexical order equals numeric order in `ls`.
        format!("{SNAPSHOT_PREFIX}{generation:012}{SNAPSHOT_SUFFIX}")
    }

    fn parse_generation(name: &str) -> Option<u64> {
        let digits = name.strip_prefix(SNAPSHOT_PREFIX)?.strip_suffix(SNAPSHOT_SUFFIX)?;
        digits.parse().ok()
    }

    /// Serializes `model`, writes it as the next generation, and atomically
    /// republishes the manifest. Returns the new generation number.
    ///
    /// Durability protocol: snapshot bytes go to `<file>.tmp`, which is
    /// fsynced and renamed to its final name before the manifest is rewritten
    /// the same way — so a crash between any two steps leaves the previous
    /// generation fully intact. Old generations beyond
    /// [`Self::KEEP_GENERATIONS`] are removed afterwards (best-effort).
    pub fn publish(&self, model: &Lmkg) -> Result<u64, StoreError> {
        let generation = self.latest_generation_on_disk()?.map_or(1, |g| g + 1);
        let payload = model.save_to_vec()?;
        let meta = SnapshotMeta {
            generation,
            file: Self::snapshot_file(generation),
            len: payload.len() as u64,
            crc: crc32(&payload),
        };

        let final_path = self.dir.join(&meta.file);
        self.write_atomic(&final_path, |w| {
            w.write_all(STORE_MAGIC)?;
            w.write_all(&STORE_VERSION.to_le_bytes())?;
            w.write_all(&meta.generation.to_le_bytes())?;
            w.write_all(&meta.len.to_le_bytes())?;
            w.write_all(&meta.crc.to_le_bytes())?;
            w.write_all(&payload)
        })?;

        let line = format!(
            "gen={} file={} len={} crc={:08x}\n",
            meta.generation, meta.file, meta.len, meta.crc
        );
        self.write_atomic(&self.dir.join(MANIFEST), |w| w.write_all(line.as_bytes()))?;

        self.collect_garbage(generation);
        Ok(generation)
    }

    /// Loads the newest valid snapshot, returning the model set and its
    /// generation.
    ///
    /// The manifest is tried first; if it is missing, malformed, or points
    /// at a file that fails validation, every on-disk generation is scanned
    /// newest-first and the first valid one wins. Only when nothing loads is
    /// an error returned — [`StoreError::NoSnapshot`] for an empty store,
    /// otherwise the failure of the newest candidate.
    pub fn load_latest(&self) -> Result<(Lmkg, u64), StoreError> {
        let manifest_err = match self.read_manifest() {
            Ok(meta) => match self.load_generation_meta(&meta) {
                Ok(model) => return Ok((model, meta.generation)),
                Err(e) => Some(e),
            },
            Err(e) => Some(e),
        };
        // Recovery scan: the manifest lied or is gone.
        let mut gens = self.generations()?;
        gens.sort_unstable_by(|a, b| b.cmp(a));
        let mut first_err = None;
        for generation in gens {
            match self.load_generation(generation) {
                Ok(model) => return Ok((model, generation)),
                Err(e) => {
                    first_err.get_or_insert(e);
                }
            }
        }
        Err(first_err.or(manifest_err).unwrap_or(StoreError::NoSnapshot))
    }

    /// Loads one specific generation, verifying magic, version, and
    /// checksum before decoding the payload.
    pub fn load_generation(&self, generation: u64) -> Result<Lmkg, StoreError> {
        let file = Self::snapshot_file(generation);
        let path = self.dir.join(&file);
        let meta = read_header(&mut File::open(path)?)?;
        if meta.generation != generation {
            return Err(StoreError::Corrupt(format!(
                "file {file} claims generation {}",
                meta.generation
            )));
        }
        self.load_generation_meta(&meta)
    }

    fn load_generation_meta(&self, meta: &SnapshotMeta) -> Result<Lmkg, StoreError> {
        let mut f = File::open(self.dir.join(&meta.file))?;
        let header = read_header(&mut f)?;
        if header.generation != meta.generation || header.len != meta.len || header.crc != meta.crc {
            return Err(StoreError::Corrupt(format!(
                "manifest and file header disagree for {}",
                meta.file
            )));
        }
        let mut payload = Vec::with_capacity(meta.len as usize);
        f.take(meta.len).read_to_end(&mut payload)?;
        if payload.len() as u64 != meta.len {
            return Err(StoreError::Corrupt(format!(
                "{}: payload truncated to {} of {} bytes",
                meta.file,
                payload.len(),
                meta.len
            )));
        }
        let actual = crc32(&payload);
        if actual != meta.crc {
            return Err(StoreError::BadChecksum {
                expected: meta.crc,
                actual,
            });
        }
        Ok(Lmkg::load(&mut payload.as_slice())?)
    }

    /// Every generation with a (not-necessarily-valid) snapshot file on
    /// disk, unsorted.
    pub fn generations(&self) -> Result<Vec<u64>, StoreError> {
        let mut gens = Vec::new();
        for entry in fs::read_dir(&self.dir)? {
            let name = entry?.file_name();
            if let Some(g) = name.to_str().and_then(Self::parse_generation) {
                gens.push(g);
            }
        }
        Ok(gens)
    }

    /// The manifest entry, if a readable manifest exists.
    pub fn read_manifest(&self) -> Result<SnapshotMeta, StoreError> {
        let path = self.dir.join(MANIFEST);
        let text = match fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Err(StoreError::NoSnapshot),
            Err(e) => return Err(e.into()),
        };
        parse_manifest(&text)
    }

    fn latest_generation_on_disk(&self) -> Result<Option<u64>, StoreError> {
        Ok(self.generations()?.into_iter().max())
    }

    /// Writes via `<path>.tmp` + fsync + rename + directory fsync. The
    /// temporary name is deterministic per target, so an abandoned tmp from
    /// a crashed writer is simply overwritten by the next attempt.
    fn write_atomic<F>(&self, path: &Path, fill: F) -> Result<(), StoreError>
    where
        F: FnOnce(&mut File) -> io::Result<()>,
    {
        let tmp = path.with_extension(format!(
            "{}{}",
            path.extension().and_then(|e| e.to_str()).unwrap_or(""),
            TMP_SUFFIX
        ));
        let mut f = OpenOptions::new().write(true).create(true).truncate(true).open(&tmp)?;
        fill(&mut f)?;
        f.sync_all()?;
        drop(f);
        fs::rename(&tmp, path)?;
        // Persist the rename itself; some filesystems need the directory
        // entry flushed too. Best-effort on platforms that refuse dir fds.
        if let Ok(d) = File::open(&self.dir) {
            let _ = d.sync_all();
        }
        Ok(())
    }

    /// Removes generations older than the retention window and any
    /// leftover `.tmp` files. Best-effort: GC failure never fails a publish.
    fn collect_garbage(&self, newest: u64) {
        let keep_from = newest.saturating_sub(Self::KEEP_GENERATIONS as u64 - 1);
        let Ok(entries) = fs::read_dir(&self.dir) else {
            return;
        };
        for entry in entries.flatten() {
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            let stale_tmp = name.ends_with(TMP_SUFFIX);
            let stale_gen = Self::parse_generation(name).is_some_and(|g| g < keep_from);
            if stale_tmp || stale_gen {
                let _ = fs::remove_file(entry.path());
            }
        }
    }
}

fn read_header<R: Read>(r: &mut R) -> Result<SnapshotMeta, StoreError> {
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != STORE_MAGIC {
        return Err(StoreError::BadMagic);
    }
    let mut b4 = [0u8; 4];
    let mut b8 = [0u8; 8];
    r.read_exact(&mut b4)?;
    let version = u32::from_le_bytes(b4);
    if version != STORE_VERSION {
        return Err(StoreError::UnsupportedVersion(version));
    }
    r.read_exact(&mut b8)?;
    let generation = u64::from_le_bytes(b8);
    r.read_exact(&mut b8)?;
    let len = u64::from_le_bytes(b8);
    r.read_exact(&mut b4)?;
    let crc = u32::from_le_bytes(b4);
    Ok(SnapshotMeta {
        generation,
        file: ModelStore::snapshot_file(generation),
        len,
        crc,
    })
}

fn parse_manifest(text: &str) -> Result<SnapshotMeta, StoreError> {
    let line = text
        .lines()
        .next()
        .ok_or_else(|| StoreError::Corrupt("empty manifest".into()))?;
    let mut generation = None;
    let mut file = None;
    let mut len = None;
    let mut crc = None;
    for field in line.split_whitespace() {
        let (key, value) = field
            .split_once('=')
            .ok_or_else(|| StoreError::Corrupt(format!("manifest field `{field}`")))?;
        let bad = |what: &str| StoreError::Corrupt(format!("manifest {what} `{value}`"));
        match key {
            "gen" => generation = Some(value.parse().map_err(|_| bad("generation"))?),
            "file" => file = Some(value.to_string()),
            "len" => len = Some(value.parse().map_err(|_| bad("length"))?),
            "crc" => crc = Some(u32::from_str_radix(value, 16).map_err(|_| bad("crc"))?),
            other => return Err(StoreError::Corrupt(format!("manifest key `{other}`"))),
        }
    }
    match (generation, file, len, crc) {
        (Some(generation), Some(file), Some(len), Some(crc)) => Ok(SnapshotMeta {
            generation,
            file,
            len,
            crc,
        }),
        _ => Err(StoreError::Corrupt("manifest missing a field".into())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lmkg::framework::{Grouping, LmkgConfig, ModelType};
    use lmkg::LmkgSConfig;
    use lmkg_data::{workload, Dataset, Scale, WorkloadConfig};
    use lmkg_store::QueryShape;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_store_dir() -> PathBuf {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let n = NEXT.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("lmkg-modelstore-test-{}-{n}", std::process::id()))
    }

    fn tiny_model() -> (lmkg_store::KnowledgeGraph, Lmkg) {
        let graph = Dataset::LubmLike.generate(Scale::Ci, 7);
        let cfg = LmkgConfig {
            model_type: ModelType::Supervised,
            grouping: Grouping::BySize,
            shapes: vec![QueryShape::Star],
            sizes: vec![2],
            queries_per_size: 200,
            s_config: LmkgSConfig {
                hidden: vec![32],
                epochs: 8,
                dropout: 0.0,
                ..Default::default()
            },
            u_config: Default::default(),
            workload_seed: 11,
        };
        let model = Lmkg::build(&graph, &cfg);
        (graph, model)
    }

    fn estimates(model: &Lmkg, graph: &lmkg_store::KnowledgeGraph) -> Vec<u64> {
        let wl = WorkloadConfig::test_default(QueryShape::Star, 2, 31);
        let queries: Vec<_> = workload::generate(graph, &wl)
            .into_iter()
            .take(8)
            .map(|lq| lq.query)
            .collect();
        model
            .estimate_query_batch(&queries)
            .iter()
            .map(|e| e.to_bits())
            .collect()
    }

    #[test]
    fn publish_then_load_roundtrips_bitwise() {
        let dir = temp_store_dir();
        let (graph, model) = tiny_model();
        let store = ModelStore::open(&dir).unwrap();
        let generation = store.publish(&model).unwrap();
        assert_eq!(generation, 1);

        let (loaded, g) = store.load_latest().unwrap();
        assert_eq!(g, 1);
        assert_eq!(estimates(&model, &graph), estimates(&loaded, &graph));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn generations_increase_and_gc_keeps_retention_window() {
        let dir = temp_store_dir();
        let (_, model) = tiny_model();
        let store = ModelStore::open(&dir).unwrap();
        for expected in 1..=4u64 {
            assert_eq!(store.publish(&model).unwrap(), expected);
        }
        let mut gens = store.generations().unwrap();
        gens.sort_unstable();
        assert_eq!(
            gens,
            vec![3, 4],
            "GC must keep exactly the last {} generations",
            ModelStore::KEEP_GENERATIONS
        );
        // The rollback target still loads.
        store.load_generation(3).unwrap();
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_store_reports_no_snapshot() {
        let dir = temp_store_dir();
        let store = ModelStore::open(&dir).unwrap();
        let err = store.load_latest().map(|(_, g)| g).unwrap_err();
        assert!(matches!(err, StoreError::NoSnapshot), "{err}");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupted_payload_is_a_checksum_error_and_recovery_uses_prior_gen() {
        let dir = temp_store_dir();
        let (graph, model) = tiny_model();
        let store = ModelStore::open(&dir).unwrap();
        store.publish(&model).unwrap();
        let g2 = store.publish(&model).unwrap();

        // Flip one payload byte of the newest snapshot.
        let path = dir.join(ModelStore::snapshot_file(g2));
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        fs::write(&path, &bytes).unwrap();

        let err = store.load_generation(g2).map(|_| ()).unwrap_err();
        assert!(matches!(err, StoreError::BadChecksum { .. }), "{err}");

        // load_latest falls back to the previous, intact generation.
        let (loaded, g) = store.load_latest().unwrap();
        assert_eq!(g, g2 - 1);
        assert_eq!(estimates(&model, &graph), estimates(&loaded, &graph));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_manifest_recovers_by_scanning() {
        let dir = temp_store_dir();
        let (_, model) = tiny_model();
        let store = ModelStore::open(&dir).unwrap();
        let generation = store.publish(&model).unwrap();
        fs::remove_file(dir.join(MANIFEST)).unwrap();
        let (_, g) = store.load_latest().unwrap();
        assert_eq!(g, generation);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncated_snapshot_fails_with_typed_error() {
        let dir = temp_store_dir();
        let (_, model) = tiny_model();
        let store = ModelStore::open(&dir).unwrap();
        let generation = store.publish(&model).unwrap();
        let path = dir.join(ModelStore::snapshot_file(generation));
        let bytes = fs::read(&path).unwrap();
        for cut in [4, 20, bytes.len() / 2] {
            fs::write(&path, &bytes[..cut]).unwrap();
            let err = store.load_generation(generation).map(|_| ()).unwrap_err();
            assert!(
                matches!(err, StoreError::Io(_) | StoreError::Corrupt(_)),
                "cut {cut}: {err}"
            );
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bad_magic_and_version_are_rejected() {
        let dir = temp_store_dir();
        let (_, model) = tiny_model();
        let store = ModelStore::open(&dir).unwrap();
        let generation = store.publish(&model).unwrap();
        let path = dir.join(ModelStore::snapshot_file(generation));
        let good = fs::read(&path).unwrap();

        let mut bad = good.clone();
        bad[0] = b'X';
        fs::write(&path, &bad).unwrap();
        assert!(matches!(
            store.load_generation(generation).map(|_| ()).unwrap_err(),
            StoreError::BadMagic
        ));

        let mut bad = good.clone();
        bad[8..12].copy_from_slice(&7u32.to_le_bytes());
        fs::write(&path, &bad).unwrap();
        assert!(matches!(
            store.load_generation(generation).map(|_| ()).unwrap_err(),
            StoreError::UnsupportedVersion(7)
        ));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn abandoned_tmp_files_are_ignored_and_collected() {
        let dir = temp_store_dir();
        let (_, model) = tiny_model();
        let store = ModelStore::open(&dir).unwrap();
        // Simulate a writer that died mid-publish.
        fs::write(dir.join("snapshot-000000000009.lmkg.tmp"), b"garbage").unwrap();
        fs::write(dir.join("MANIFEST.tmp"), b"gen=9").unwrap();
        let generation = store.publish(&model).unwrap();
        assert_eq!(generation, 1, "tmp files must not claim a generation");
        let leftovers: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok()?.file_name().into_string().ok())
            .filter(|n| n.ends_with(TMP_SUFFIX))
            .collect();
        assert!(leftovers.is_empty(), "GC left {leftovers:?}");
        store.load_latest().unwrap();
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE reference values.
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn manifest_parsing_rejects_malformed_lines() {
        assert!(matches!(
            parse_manifest("").map(|_| ()).unwrap_err(),
            StoreError::Corrupt(_)
        ));
        assert!(matches!(
            parse_manifest("gen=1 file=x len=2").map(|_| ()).unwrap_err(),
            StoreError::Corrupt(_)
        ));
        assert!(matches!(
            parse_manifest("gen=nope file=x len=2 crc=01").map(|_| ()).unwrap_err(),
            StoreError::Corrupt(_)
        ));
        let meta = parse_manifest("gen=5 file=snapshot-000000000005.lmkg len=10 crc=0000abcd\n").unwrap();
        assert_eq!(meta.generation, 5);
        assert_eq!(meta.crc, 0xabcd);
    }
}
