//! JSUB — join sampling with upper bounds (Zhao, Christensen, Li, Hu & Yi,
//! SIGMOD 2018), adapted for graphs in G-CARE as a "random walk sampling
//! approach ... producing estimates of the upper bound of the cardinality"
//! (paper §VIII).
//!
//! Like WanderJoin, a walk samples one triple per pattern; but instead of the
//! exact per-step candidate count, JSUB charges the *worst-case* extension
//! bound for every step after the first (the maximum join fan-out of the
//! predicate). Completed walks therefore estimate an upper bound; the paper's
//! figures show it overestimating correspondingly.

use crate::common::{self};
use lmkg::CardinalityEstimator;
use lmkg_store::{KnowledgeGraph, Query};

/// JSUB configuration.
#[derive(Debug, Clone)]
pub struct JsubConfig {
    /// Independent runs averaged into the final estimate (G-CARE: 30).
    pub runs: usize,
    /// Walks per run.
    pub walks_per_run: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for JsubConfig {
    fn default() -> Self {
        Self {
            runs: 30,
            walks_per_run: 100,
            seed: 0,
        }
    }
}

/// The JSUB estimator. Holds no mutable walk state: each estimate derives
/// its RNG from the stored seed and the query (see
/// [`common::derived_rng`]), so estimation is `&self`, deterministic per
/// query, and safe to share across threads.
pub struct Jsub<'g> {
    graph: &'g KnowledgeGraph,
    cfg: JsubConfig,
    /// Per predicate: max objects per (s, p) — forward join bound.
    max_fanout_fwd: Vec<u64>,
    /// Per predicate: max subjects per (p, o) — backward join bound.
    max_fanout_bwd: Vec<u64>,
}

impl<'g> Jsub<'g> {
    /// Creates the estimator, precomputing per-predicate fan-out bounds.
    pub fn new(graph: &'g KnowledgeGraph, cfg: JsubConfig) -> Self {
        let np = graph.num_preds();
        let mut max_fanout_fwd = vec![0u64; np];
        let mut max_fanout_bwd = vec![0u64; np];
        for p in graph.pred_ids() {
            let pairs = graph.pred_pairs(p);
            // pairs sorted by (s, o): run lengths are per-subject fanouts.
            let mut run = 0u64;
            let mut last = None;
            for &(s, _) in pairs {
                if Some(s) == last {
                    run += 1;
                } else {
                    run = 1;
                    last = Some(s);
                }
                max_fanout_fwd[p.index()] = max_fanout_fwd[p.index()].max(run);
            }
            // Backward: count per object.
            let mut by_obj: Vec<u32> = pairs.iter().map(|&(_, o)| o.0).collect();
            by_obj.sort_unstable();
            let mut run = 0u64;
            let mut last = None;
            for o in by_obj {
                if Some(o) == last {
                    run += 1;
                } else {
                    run = 1;
                    last = Some(o);
                }
                max_fanout_bwd[p.index()] = max_fanout_bwd[p.index()].max(run);
            }
        }
        Self {
            graph,
            cfg,
            max_fanout_fwd,
            max_fanout_bwd,
        }
    }

    /// Upper bound on how many triples pattern `idx` can contribute per
    /// binding of the already-walked patterns.
    fn step_bound(&self, query: &Query, idx: usize) -> f64 {
        let pat = &query.triples[idx];
        match pat.p.bound() {
            Some(p) => {
                let fwd = self.max_fanout_fwd[p.index()].max(1);
                let bwd = self.max_fanout_bwd[p.index()].max(1);
                // The join may come through the subject or the object side;
                // take the looser bound to stay an upper bound.
                fwd.max(bwd) as f64
            }
            None => {
                let fwd = self.max_fanout_fwd.iter().max().copied().unwrap_or(1).max(1);
                let bwd = self.max_fanout_bwd.iter().max().copied().unwrap_or(1).max(1);
                fwd.max(bwd) as f64
            }
        }
    }

    /// Full estimate.
    pub fn estimate_query(&self, query: &Query) -> f64 {
        let mut rng = common::derived_rng(self.cfg.seed, query);
        let order = common::walk_order(self.graph, &query.triples);
        let mut bindings: Vec<Option<u32>> = vec![None; query.var_table_size()];
        let total_walks = self.cfg.runs * self.cfg.walks_per_run;
        let mut sum = 0.0f64;
        for _ in 0..total_walks {
            bindings.iter_mut().for_each(|b| *b = None);
            let mut weight = 1.0f64;
            let mut alive = true;
            for (step, &idx) in order.iter().enumerate() {
                let pat = &query.triples[idx];
                let r = common::resolve(pat, &bindings);
                let count = common::candidate_count(self.graph, r);
                if count == 0 {
                    alive = false;
                    break;
                }
                let t = common::sample_candidate(self.graph, r, &mut rng).expect("count > 0");
                if common::try_bind(pat, t, &mut bindings).is_none() {
                    alive = false;
                    break;
                }
                // First step uses the exact candidate count; later steps
                // charge the upper bound.
                weight *= if step == 0 {
                    count as f64
                } else {
                    self.step_bound(query, idx)
                };
            }
            if alive {
                sum += weight;
            }
        }
        sum / total_walks.max(1) as f64
    }
}

impl CardinalityEstimator for Jsub<'_> {
    fn name(&self) -> &str {
        "jsub"
    }

    fn estimate(&self, query: &Query) -> f64 {
        self.estimate_query(query).max(1.0)
    }

    fn memory_bytes(&self) -> usize {
        (self.max_fanout_fwd.len() + self.max_fanout_bwd.len()) * 8 + std::mem::size_of::<Self>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lmkg_store::{counter, GraphBuilder, NodeTerm, PredId, PredTerm, TriplePattern, VarId};

    fn v(i: u16) -> NodeTerm {
        NodeTerm::Var(VarId(i))
    }

    fn graph() -> lmkg_store::KnowledgeGraph {
        let mut b = GraphBuilder::new();
        for i in 0..8 {
            b.add(&format!("s{i}"), "p", &format!("m{}", i % 2));
        }
        b.add("m0", "q", "x");
        b.add("m0", "q", "y");
        b.add("m1", "q", "x");
        b.build()
    }

    #[test]
    fn estimate_is_upper_biased_on_joins() {
        let g = graph();
        let p = PredTerm::Bound(PredId(g.preds().get("p").unwrap()));
        let qp = PredTerm::Bound(PredId(g.preds().get("q").unwrap()));
        let q = Query::new(vec![
            TriplePattern::new(v(0), p, v(1)),
            TriplePattern::new(v(1), qp, v(2)),
        ]);
        let exact = counter::cardinality(&g, &q) as f64;
        let jsub = Jsub::new(
            &g,
            JsubConfig {
                runs: 30,
                walks_per_run: 100,
                seed: 1,
            },
        );
        let est = jsub.estimate_query(&q);
        // All walks survive here, so the estimate equals the deterministic
        // bound: 8 (first hop) × max fanout of q (2) = 16 ≥ exact (12).
        assert!(est >= exact, "JSUB must overestimate: {est} vs {exact}");
    }

    #[test]
    fn fanout_bounds_computed() {
        let g = graph();
        let jsub = Jsub::new(&g, JsubConfig::default());
        let qp = PredId(g.preds().get("q").unwrap());
        assert_eq!(jsub.max_fanout_fwd[qp.index()], 2); // m0 emits two q-edges
        assert_eq!(jsub.max_fanout_bwd[qp.index()], 2); // x receives two
    }

    #[test]
    fn single_pattern_is_exact() {
        let g = graph();
        let p = PredTerm::Bound(PredId(g.preds().get("p").unwrap()));
        let q = Query::new(vec![TriplePattern::new(v(0), p, v(1))]);
        let jsub = Jsub::new(&g, JsubConfig::default());
        assert_eq!(jsub.estimate_query(&q), 8.0);
    }

    #[test]
    fn dead_walks_reduce_estimate() {
        let g = graph();
        let p = PredTerm::Bound(PredId(g.preds().get("p").unwrap()));
        // Chain whose second hop requires the nonexistent predicate edge from
        // most intermediates: ?x p ?y . ?y p ?z — m0/m1 emit no p.
        let q = Query::new(vec![
            TriplePattern::new(v(0), p, v(1)),
            TriplePattern::new(v(1), p, v(2)),
        ]);
        let jsub = Jsub::new(&g, JsubConfig::default());
        assert_eq!(jsub.estimate_query(&q), 0.0);
        assert_eq!(jsub.estimate(&q), 1.0);
    }
}
