//! WanderJoin (Li, Wu, Yi & Zhao, SIGMOD 2016) adapted to RDF graphs as in
//! G-CARE: "performs random walks directly on top of the KG by considering
//! each triple as a vertex and a join as an edge" (paper §VIII).
//!
//! One walk: pick a uniform triple matching the first pattern, then for each
//! subsequent pattern pick a uniform triple among those consistent with the
//! current bindings. The Horvitz–Thompson estimate of one successful walk is
//! the product of the candidate counts along the way; failed walks score 0.
//! The final estimate averages the walks of `runs` independent runs (G-CARE
//! runs every sampler 30 times and averages).

use crate::common::{self, Resolved};
use lmkg::CardinalityEstimator;
use lmkg_store::{KnowledgeGraph, Query};
use rand::rngs::StdRng;

/// WanderJoin configuration.
#[derive(Debug, Clone)]
pub struct WanderJoinConfig {
    /// Independent runs averaged into the final estimate (G-CARE: 30).
    pub runs: usize,
    /// Random walks per run.
    pub walks_per_run: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for WanderJoinConfig {
    fn default() -> Self {
        Self {
            runs: 30,
            walks_per_run: 100,
            seed: 0,
        }
    }
}

/// The WanderJoin estimator. Holds a graph reference: sampling baselines
/// draw directly from the data (which is why Table II credits them no
/// summary memory). No mutable walk state — each estimate derives its RNG
/// from the stored seed and the query (see [`common::derived_rng`]), so
/// estimation is `&self` and deterministic per query.
pub struct WanderJoin<'g> {
    graph: &'g KnowledgeGraph,
    cfg: WanderJoinConfig,
}

impl<'g> WanderJoin<'g> {
    /// Creates the estimator.
    pub fn new(graph: &'g KnowledgeGraph, cfg: WanderJoinConfig) -> Self {
        Self { graph, cfg }
    }

    /// One random walk; returns the HT estimate (0 on failure).
    fn walk(&self, query: &Query, order: &[usize], bindings: &mut [Option<u32>], rng: &mut StdRng) -> f64 {
        bindings.iter_mut().for_each(|b| *b = None);
        let mut weight = 1.0f64;
        for &idx in order {
            let pat = &query.triples[idx];
            let r: Resolved = common::resolve(pat, bindings);
            let count = common::candidate_count(self.graph, r);
            if count == 0 {
                return 0.0;
            }
            let t = common::sample_candidate(self.graph, r, rng).expect("count > 0");
            // Repeated-variable patterns can reject the sampled triple; that
            // is a failed walk (probability mass accounted by `count`).
            if common::try_bind(pat, t, bindings).is_none() {
                return 0.0;
            }
            weight *= count as f64;
        }
        weight
    }

    /// Full estimate: mean walk weight over all runs.
    pub fn estimate_query(&self, query: &Query) -> f64 {
        let mut rng = common::derived_rng(self.cfg.seed, query);
        let order = common::walk_order(self.graph, &query.triples);
        let mut bindings = vec![None; query.var_table_size()];
        let total_walks = self.cfg.runs * self.cfg.walks_per_run;
        let mut sum = 0.0f64;
        for _ in 0..total_walks {
            sum += self.walk(query, &order, &mut bindings, &mut rng);
        }
        sum / total_walks.max(1) as f64
    }
}

impl CardinalityEstimator for WanderJoin<'_> {
    fn name(&self) -> &str {
        "wj"
    }

    fn estimate(&self, query: &Query) -> f64 {
        self.estimate_query(query).max(1.0)
    }

    fn memory_bytes(&self) -> usize {
        // Sampling approaches "use the KG for drawing samples" (Table II):
        // only the walk state is their own.
        std::mem::size_of::<Self>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lmkg_store::{counter, GraphBuilder, NodeTerm, PredId, PredTerm, TriplePattern, VarId};

    fn v(i: u16) -> NodeTerm {
        NodeTerm::Var(VarId(i))
    }

    fn graph() -> KnowledgeGraph {
        let mut b = GraphBuilder::new();
        for i in 0..10 {
            b.add(&format!("s{i}"), "p", &format!("m{}", i % 3));
        }
        for j in 0..3 {
            b.add(&format!("m{j}"), "q", "end");
            b.add(&format!("m{j}"), "q", &format!("t{j}"));
        }
        b.build()
    }

    fn cfg() -> WanderJoinConfig {
        WanderJoinConfig {
            runs: 30,
            walks_per_run: 200,
            seed: 7,
        }
    }

    #[test]
    fn unbiased_on_chain_join() {
        let g = graph();
        let p = PredTerm::Bound(PredId(g.preds().get("p").unwrap()));
        let q_pred = PredTerm::Bound(PredId(g.preds().get("q").unwrap()));
        let q = Query::new(vec![
            TriplePattern::new(v(0), p, v(1)),
            TriplePattern::new(v(1), q_pred, v(2)),
        ]);
        let exact = counter::cardinality(&g, &q) as f64;
        let wj = WanderJoin::new(&g, cfg());
        let est = wj.estimate_query(&q);
        let qerr = (est / exact).max(exact / est);
        assert!(qerr < 1.3, "estimate {est} vs exact {exact}");
    }

    #[test]
    fn exact_for_single_pattern() {
        let g = graph();
        let p = PredTerm::Bound(PredId(g.preds().get("p").unwrap()));
        let q = Query::new(vec![TriplePattern::new(v(0), p, v(1))]);
        let wj = WanderJoin::new(&g, cfg());
        // A single pattern's walk weight is always the exact count.
        assert_eq!(wj.estimate_query(&q), 10.0);
    }

    #[test]
    fn zero_matches_floors_to_one_via_trait() {
        let g = graph();
        let p = PredTerm::Bound(PredId(g.preds().get("q").unwrap()));
        // end q ?x — no matches.
        let end = lmkg_store::NodeId(g.nodes().get("end").unwrap());
        let q = Query::new(vec![TriplePattern::new(NodeTerm::Bound(end), p, v(0))]);
        let wj = WanderJoin::new(&g, cfg());
        assert_eq!(wj.estimate_query(&q), 0.0);
        assert_eq!(wj.estimate(&q), 1.0);
    }

    #[test]
    fn deterministic_for_seed() {
        let g = graph();
        let p = PredTerm::Bound(PredId(0));
        let q_pred = PredTerm::Bound(PredId(1));
        let q = Query::new(vec![
            TriplePattern::new(v(0), p, v(1)),
            TriplePattern::new(v(1), q_pred, v(2)),
        ]);
        let a = WanderJoin::new(&g, cfg()).estimate_query(&q);
        let b = WanderJoin::new(&g, cfg()).estimate_query(&q);
        assert_eq!(a, b);
    }

    #[test]
    fn star_queries_work() {
        let g = graph();
        let q_pred = PredTerm::Bound(PredId(g.preds().get("q").unwrap()));
        let q = Query::new(vec![
            TriplePattern::new(v(0), q_pred, v(1)),
            TriplePattern::new(v(0), q_pred, v(2)),
        ]);
        let exact = counter::cardinality(&g, &q) as f64;
        let wj = WanderJoin::new(&g, cfg());
        let est = wj.estimate_query(&q);
        let qerr = (est / exact).max(exact / est);
        assert!(qerr < 1.3, "estimate {est} vs exact {exact}");
    }
}
