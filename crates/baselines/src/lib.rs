//! # lmkg-baselines
//!
//! The competitor estimators of the paper's §VIII evaluation, reimplemented
//! in Rust (the paper used the G-CARE framework's C++ implementations plus
//! its own CSET reimplementation — see DESIGN.md §1 for fidelity notes):
//!
//! * **Summary-based** — [`CharacteristicSets`] (CSET) and [`SumRdf`]
//!   (SUMRDF);
//! * **Sampling-based** — [`WanderJoin`] (WJ), [`Impr`] (IMPR), and
//!   [`Jsub`] (JSUB);
//! * **Learned** — [`Mscn`] (MSCN-0 / MSCN-1k).
//!
//! All implement [`lmkg::CardinalityEstimator`], so the experiment
//! harness treats them interchangeably with LMKG-S/LMKG-U.

// No unsafe anywhere in this crate — enforced so the lmkg-xtask L1 lint
// and the sanitizer jobs only ever have the nn kernels and the serve
// signal shim to reason about.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod common;
pub mod cset;
pub mod impr;
pub mod jsub;
pub mod mscn;
pub mod sumrdf;
pub mod wander_join;

pub use cset::CharacteristicSets;
pub use impr::{Impr, ImprConfig};
pub use jsub::{Jsub, JsubConfig};
pub use mscn::{Mscn, MscnConfig};
pub use sumrdf::{SumRdf, SumRdfConfig};
pub use wander_join::{WanderJoin, WanderJoinConfig};
