//! Shared machinery for the sampling-based baselines: pattern resolution
//! under partial bindings, uniform candidate sampling straight from the CSR
//! indexes, and binding management.

use lmkg_store::{KnowledgeGraph, NodeId, NodeTerm, PredId, PredTerm, Query, Triple, TriplePattern, VarId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The RNG stream driving one query's sampling, derived from the
/// estimator's stored seed and the query's structural fingerprint.
///
/// Deriving per call — instead of advancing one shared RNG — is what makes
/// the sampling baselines `&self`: an estimate never depends on how many
/// estimates preceded it, so the same (seed, query) pair always reproduces
/// the same walks, from any thread, in any order.
pub fn derived_rng(seed: u64, query: &Query) -> StdRng {
    use std::hash::{Hash, Hasher};
    let mut h = lmkg_store::fxhash::FxHasher::default();
    query.hash(&mut h);
    StdRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ h.finish())
}

/// A pattern with variables resolved against current bindings.
#[derive(Debug, Clone, Copy)]
pub struct Resolved {
    /// Bound/resolved subject.
    pub s: Option<NodeId>,
    /// Bound/resolved predicate.
    pub p: Option<PredId>,
    /// Bound/resolved object.
    pub o: Option<NodeId>,
}

/// Resolves `pat` under `bindings` (indexed by variable id).
pub fn resolve(pat: &TriplePattern, bindings: &[Option<u32>]) -> Resolved {
    let node = |term: NodeTerm| match term {
        NodeTerm::Bound(n) => Some(n),
        NodeTerm::Var(v) => bindings[v.index()].map(NodeId),
    };
    let pred = match pat.p {
        PredTerm::Bound(p) => Some(p),
        PredTerm::Var(v) => bindings[v.index()].map(PredId),
    };
    Resolved {
        s: node(pat.s),
        p: pred,
        o: node(pat.o),
    }
}

/// Number of triples matching the resolved pattern.
pub fn candidate_count(g: &KnowledgeGraph, r: Resolved) -> u64 {
    g.count_single(r.s, r.p, r.o)
}

/// Returns a uniformly chosen triple matching the resolved pattern, or
/// `None` when nothing matches. `O(1)` for index-aligned cases, `O(deg)`
/// only for the `(s, ?, o)` case.
pub fn sample_candidate<R: Rng>(g: &KnowledgeGraph, r: Resolved, rng: &mut R) -> Option<Triple> {
    let n = candidate_count(g, r);
    if n == 0 {
        return None;
    }
    let idx = rng.gen_range(0..n) as usize;
    Some(pick_candidate(g, r, idx))
}

/// The `idx`-th matching triple in index order (for stratified tests).
pub fn pick_candidate(g: &KnowledgeGraph, r: Resolved, idx: usize) -> Triple {
    match (r.s, r.p, r.o) {
        (Some(s), Some(p), Some(o)) => Triple::new(s, p, o),
        (Some(s), Some(p), None) => {
            let (_, o) = g.objects(s, p)[idx];
            Triple::new(s, p, o)
        }
        (Some(s), None, None) => {
            let (p, o) = g.out_edges(s)[idx];
            Triple::new(s, p, o)
        }
        (Some(s), None, Some(o)) => {
            let (p, _) = g
                .out_edges(s)
                .iter()
                .filter(|&&(_, obj)| obj == o)
                .nth(idx)
                .copied()
                .expect("idx within candidate count");
            Triple::new(s, p, o)
        }
        (None, Some(p), Some(o)) => {
            let (_, s) = g.subjects(o, p)[idx];
            Triple::new(s, p, o)
        }
        (None, Some(p), None) => {
            let (s, o) = g.pred_pairs(p)[idx];
            Triple::new(s, p, o)
        }
        (None, None, Some(o)) => {
            let (p, s) = g.in_edges(o)[idx];
            Triple::new(s, p, o)
        }
        (None, None, None) => g.triples()[idx],
    }
}

/// Binds a pattern's variables against `t`; returns newly bound vars for
/// undo, or `None` on mismatch.
pub fn try_bind(pat: &TriplePattern, t: Triple, bindings: &mut [Option<u32>]) -> Option<Vec<VarId>> {
    let mut bound = Vec::new();
    let mut ok = true;

    let bind = |term_val: (Option<VarId>, Option<u32>, u32), bindings: &mut [Option<u32>], bound: &mut Vec<VarId>| {
        let (var, expected, val) = term_val;
        match (var, expected) {
            (None, Some(e)) => e == val,
            (Some(v), _) => match bindings[v.index()] {
                Some(existing) => existing == val,
                None => {
                    bindings[v.index()] = Some(val);
                    bound.push(v);
                    true
                }
            },
            (None, None) => unreachable!("term is either bound or a variable"),
        }
    };

    ok &= bind((pat.s.var(), pat.s.bound().map(|n| n.0), t.s.0), bindings, &mut bound);
    if ok {
        ok &= bind((pat.p.var(), pat.p.bound().map(|p| p.0), t.p.0), bindings, &mut bound);
    }
    if ok {
        ok &= bind((pat.o.var(), pat.o.bound().map(|n| n.0), t.o.0), bindings, &mut bound);
    }

    if ok {
        Some(bound)
    } else {
        for v in bound {
            bindings[v.index()] = None;
        }
        None
    }
}

/// Undoes bindings created by [`try_bind`].
pub fn undo_bind(bound: Vec<VarId>, bindings: &mut [Option<u32>]) {
    for v in bound {
        bindings[v.index()] = None;
    }
}

/// Orders patterns for walking: start at the most selective pattern, then
/// repeatedly append the connected (variable-sharing) pattern with the best
/// selectivity; disconnected patterns (cartesian) come last.
pub fn walk_order(g: &KnowledgeGraph, patterns: &[TriplePattern]) -> Vec<usize> {
    let n = patterns.len();
    let empty: Vec<Option<u32>> = vec![None; 64];
    let base_count = |i: usize| candidate_count(g, resolve(&patterns[i], &empty));
    let mut remaining: Vec<usize> = (0..n).collect();
    let mut order = Vec::with_capacity(n);
    // Most selective first.
    remaining.sort_by_key(|&i| base_count(i));
    order.push(remaining.remove(0));
    while !remaining.is_empty() {
        let connected = |i: usize| {
            patterns[i]
                .vars()
                .any(|v| order.iter().any(|&j| patterns[j].vars().any(|w| w == v)))
        };
        let pos = remaining.iter().position(|&i| connected(i)).unwrap_or(0);
        order.push(remaining.remove(pos));
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use lmkg_store::GraphBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn graph() -> KnowledgeGraph {
        let mut b = GraphBuilder::new();
        b.add("a", "p", "x");
        b.add("a", "p", "y");
        b.add("b", "p", "x");
        b.add("a", "q", "x");
        b.build()
    }

    #[test]
    fn resolve_uses_bindings() {
        let pat = TriplePattern::new(
            NodeTerm::Var(VarId(0)),
            PredTerm::Bound(PredId(0)),
            NodeTerm::Var(VarId(1)),
        );
        let mut bindings = vec![None, None];
        assert!(resolve(&pat, &bindings).s.is_none());
        bindings[0] = Some(2);
        assert_eq!(resolve(&pat, &bindings).s, Some(NodeId(2)));
    }

    #[test]
    fn pick_candidate_covers_all_matches() {
        let g = graph();
        let r = Resolved {
            s: None,
            p: Some(PredId(0)),
            o: None,
        };
        let n = candidate_count(&g, r);
        assert_eq!(n, 3);
        let mut seen = Vec::new();
        for i in 0..n as usize {
            let t = pick_candidate(&g, r, i);
            assert!(g.contains(t.s, t.p, t.o));
            seen.push(t);
        }
        seen.dedup();
        assert_eq!(seen.len(), 3);
    }

    #[test]
    fn sample_candidate_is_roughly_uniform() {
        let g = graph();
        let r = Resolved {
            s: None,
            p: Some(PredId(0)),
            o: None,
        };
        let mut rng = StdRng::seed_from_u64(0);
        let mut counts = std::collections::HashMap::new();
        for _ in 0..3000 {
            let t = sample_candidate(&g, r, &mut rng).unwrap();
            *counts.entry(t).or_insert(0) += 1;
        }
        for (_, c) in counts {
            assert!((c as f64 / 3000.0 - 1.0 / 3.0).abs() < 0.05);
        }
    }

    #[test]
    fn sample_candidate_none_when_empty() {
        let g = graph();
        let r = Resolved {
            s: Some(NodeId(1)),
            p: Some(PredId(1)),
            o: None,
        }; // b q ?
        let mut rng = StdRng::seed_from_u64(0);
        assert!(sample_candidate(&g, r, &mut rng).is_none());
    }

    #[test]
    fn try_bind_and_undo() {
        let pat = TriplePattern::new(
            NodeTerm::Var(VarId(0)),
            PredTerm::Bound(PredId(0)),
            NodeTerm::Var(VarId(1)),
        );
        let mut bindings = vec![None, None];
        let t = Triple::new(NodeId(0), PredId(0), NodeId(2));
        let undo = try_bind(&pat, t, &mut bindings).unwrap();
        assert_eq!(bindings, vec![Some(0), Some(2)]);
        undo_bind(undo, &mut bindings);
        assert_eq!(bindings, vec![None, None]);
    }

    #[test]
    fn try_bind_rejects_mismatch() {
        let pat = TriplePattern::new(
            NodeTerm::Var(VarId(0)),
            PredTerm::Bound(PredId(1)),
            NodeTerm::Var(VarId(0)), // same var twice
        );
        let mut bindings = vec![None];
        // a q x: s=a(0), o=x(2) → var 0 can't be both.
        let t = Triple::new(NodeId(0), PredId(1), NodeId(2));
        assert!(try_bind(&pat, t, &mut bindings).is_none());
        assert_eq!(bindings, vec![None]);
    }

    #[test]
    fn walk_order_starts_selective_and_stays_connected() {
        let g = graph();
        // t0: ?x q ?y (1 match), t1: ?y p ?z — wait q's objects: x.
        let pats = vec![
            TriplePattern::new(
                NodeTerm::Var(VarId(0)),
                PredTerm::Bound(PredId(0)),
                NodeTerm::Var(VarId(1)),
            ),
            TriplePattern::new(
                NodeTerm::Var(VarId(2)),
                PredTerm::Bound(PredId(1)),
                NodeTerm::Var(VarId(0)),
            ),
        ];
        let order = walk_order(&g, &pats);
        assert_eq!(order[0], 1); // q has 1 triple < p's 3
        assert_eq!(order.len(), 2);
    }
}
