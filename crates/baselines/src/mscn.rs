//! MSCN (Kipf et al., CIDR 2019) adapted to knowledge graphs as in the
//! paper's §VIII: "we perform self-joins over a single table to allow KG
//! queries and always train on the same queries as LMKG-S. We use two
//! variants, MSCN-0 and MSCN-1k with 0 and 1000 samples".
//!
//! Each triple pattern is a set element featurized with *single normalized
//! features per term* (the representation the paper criticizes: "MSCN
//! represents the predicate values with a single feature ... not adequate
//! for large domain values") plus per-element bitmaps over `n` materialized
//! sample triples. A shared MLP embeds every element; mean pooling over the
//! set feeds an output MLP with a sigmoid head over log/min-max-scaled
//! cardinalities.

use lmkg::CardinalityEstimator;
use lmkg_data::LabeledQuery;
use lmkg_encoder::CardinalityScaler;
use lmkg_nn::layers::{Dense, Layer, Param, Relu, Sequential, Sigmoid};
use lmkg_nn::loss;
use lmkg_nn::optimizer::{Adam, Optimizer};
use lmkg_nn::tensor::Matrix;
use lmkg_nn::workspace::Workspace;
use lmkg_store::{KnowledgeGraph, Query, Triple};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// MSCN configuration.
#[derive(Debug, Clone)]
pub struct MscnConfig {
    /// Number of materialized sample triples (0 → MSCN-0, 1000 → MSCN-1k).
    pub samples: usize,
    /// Hidden width of both MLPs.
    pub hidden: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Adam learning rate.
    pub learning_rate: f32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for MscnConfig {
    fn default() -> Self {
        Self {
            samples: 0,
            hidden: 64,
            epochs: 100,
            batch_size: 128,
            learning_rate: 1e-3,
            seed: 0,
        }
    }
}

/// Set-MLP + output-MLP container so one optimizer walks all parameters.
struct MscnNet {
    set_mlp: Sequential,
    out_mlp: Sequential,
}

impl Layer for MscnNet {
    fn forward(&mut self, _x: &Matrix, _train: bool) -> Matrix {
        unimplemented!("MSCN uses custom set wiring; see Mscn::forward_queries")
    }

    fn forward_infer(&self, _x: &Matrix, _ws: &mut Workspace) -> Matrix {
        unimplemented!("MSCN uses custom set wiring; see Mscn::predict")
    }

    fn backward(&mut self, _g: &Matrix) -> Matrix {
        unimplemented!("MSCN uses custom set wiring; see Mscn::backward_queries")
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.set_mlp.visit_params(f);
        self.out_mlp.visit_params(f);
    }

    fn visit_params_ref(&self, f: &mut dyn FnMut(&Param)) {
        self.set_mlp.visit_params_ref(f);
        self.out_mlp.visit_params_ref(f);
    }
}

/// The MSCN estimator.
pub struct Mscn {
    net: MscnNet,
    scaler: Option<CardinalityScaler>,
    cfg: MscnConfig,
    samples: Vec<Triple>,
    node_domain: usize,
    pred_domain: usize,
    rng: StdRng,
}

impl Mscn {
    /// Per-element feature width: 6 term features + sample bitmap.
    fn element_width(&self) -> usize {
        6 + self.cfg.samples
    }

    /// Creates the model and materializes the sample triples.
    pub fn new(graph: &KnowledgeGraph, cfg: MscnConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let n_samples = cfg.samples.min(graph.num_triples());
        let mut samples = Vec::with_capacity(n_samples);
        for _ in 0..n_samples {
            let idx = rng.gen_range(0..graph.num_triples());
            samples.push(graph.triples()[idx]);
        }

        let in_w = 6 + cfg.samples;
        let mut set_mlp = Sequential::new();
        set_mlp.push(Dense::new_he(&mut rng, in_w, cfg.hidden));
        set_mlp.push(Relu::new());
        set_mlp.push(Dense::new_he(&mut rng, cfg.hidden, cfg.hidden));
        set_mlp.push(Relu::new());
        let mut out_mlp = Sequential::new();
        out_mlp.push(Dense::new_he(&mut rng, cfg.hidden, cfg.hidden));
        out_mlp.push(Relu::new());
        out_mlp.push(Dense::new_xavier(&mut rng, cfg.hidden, 1));
        out_mlp.push(Sigmoid::new());

        Self {
            net: MscnNet { set_mlp, out_mlp },
            scaler: None,
            samples,
            node_domain: graph.num_nodes(),
            pred_domain: graph.num_preds(),
            cfg,
            rng,
        }
    }

    /// Featurizes one triple pattern into `out`.
    fn encode_element(&self, t: &lmkg_store::TriplePattern, out: &mut [f32]) {
        out.iter_mut().for_each(|x| *x = 0.0);
        let nd = (self.node_domain + 1) as f32;
        let pd = (self.pred_domain + 1) as f32;
        if let Some(s) = t.s.bound() {
            out[0] = (s.0 + 1) as f32 / nd;
            out[3] = 1.0;
        }
        if let Some(p) = t.p.bound() {
            out[1] = (p.0 + 1) as f32 / pd;
            out[4] = 1.0;
        }
        if let Some(o) = t.o.bound() {
            out[2] = (o.0 + 1) as f32 / nd;
            out[5] = 1.0;
        }
        for (j, sample) in self.samples.iter().enumerate() {
            if t.matches_wildcard(sample) {
                out[6 + j] = 1.0;
            }
        }
    }

    /// Stacks all elements of a batch of queries; returns the element matrix
    /// and per-query element counts.
    fn encode_batch(&self, queries: &[&Query]) -> (Matrix, Vec<usize>) {
        let w = self.element_width();
        let total: usize = queries.iter().map(|q| q.triples.len()).sum();
        let mut data = vec![0.0f32; total * w];
        let mut counts = Vec::with_capacity(queries.len());
        let mut row = 0usize;
        for q in queries {
            for t in &q.triples {
                self.encode_element(t, &mut data[row * w..(row + 1) * w]);
                row += 1;
            }
            counts.push(q.triples.len());
        }
        (Matrix::from_vec(total, w, data), counts)
    }

    /// Forward pass over a query batch: per-element MLP → mean pool → output
    /// MLP. Returns `(predictions, pooled cache needed for backward)`.
    fn forward_queries(&mut self, queries: &[&Query], train: bool) -> (Matrix, Vec<usize>) {
        let (elements, counts) = self.encode_batch(queries);
        let embedded = self.net.set_mlp.forward(&elements, train);
        let pooled = mean_pool(&embedded, &counts);
        let pred = self.net.out_mlp.forward(&pooled, train);
        (pred, counts)
    }

    fn backward_queries(&mut self, grad_pred: &Matrix, counts: &[usize]) {
        let grad_pooled = self.net.out_mlp.backward(grad_pred);
        let grad_elements = unpool(&grad_pooled, counts);
        self.net.set_mlp.backward(&grad_elements);
    }

    /// Shared-read (`&self`) counterpart of [`Mscn::forward_queries`]: the
    /// same set wiring through the workspace-backed inference path, bitwise
    /// identical to the eval-mode training forward.
    fn forward_queries_infer(&self, queries: &[&Query], ws: &mut Workspace) -> (Matrix, Vec<usize>) {
        let (elements, counts) = self.encode_batch(queries);
        let embedded = self.net.set_mlp.forward_infer(&elements, ws);
        let pooled = mean_pool(&embedded, &counts);
        ws.recycle(embedded);
        ws.recycle(elements);
        let pred = self.net.out_mlp.forward_infer(&pooled, ws);
        (pred, counts)
    }

    /// Trains on the same labeled queries as LMKG-S.
    pub fn train(&mut self, data: &[LabeledQuery]) -> Vec<f32> {
        assert!(!data.is_empty());
        self.scaler = Some(CardinalityScaler::fit(data.iter().map(|d| d.cardinality)));
        let scaler = *self.scaler.as_ref().expect("just set");
        let mut opt = Adam::new(self.cfg.learning_rate).with_grad_clip(1.0);
        let mut losses = Vec::with_capacity(self.cfg.epochs);
        let mut indices: Vec<usize> = (0..data.len()).collect();
        for _ in 0..self.cfg.epochs {
            for i in (1..indices.len()).rev() {
                indices.swap(i, self.rng.gen_range(0..=i));
            }
            let mut epoch_loss = 0.0f64;
            let mut batches = 0usize;
            for chunk in indices.chunks(self.cfg.batch_size.max(1)) {
                let queries: Vec<&Query> = chunk.iter().map(|&i| &data[i].query).collect();
                let targets = Matrix::from_vec(
                    chunk.len(),
                    1,
                    chunk.iter().map(|&i| scaler.scale(data[i].cardinality)).collect(),
                );
                let (pred, counts) = self.forward_queries(&queries, true);
                let (l, grad) = loss::q_error(&pred, &targets, scaler.log_range(), 16.0);
                self.backward_queries(&grad, &counts);
                opt.step(&mut self.net);
                epoch_loss += f64::from(l);
                batches += 1;
            }
            losses.push((epoch_loss / batches.max(1) as f64) as f32);
        }
        losses
    }

    /// Predicts the cardinality of a query via
    /// [`Mscn::forward_queries_infer`].
    pub fn predict(&self, query: &Query) -> f64 {
        let scaler = *self.scaler.as_ref().expect("model is untrained");
        let (pred, _) = self.forward_queries_infer(&[query], &mut Workspace::new());
        scaler.unscale(pred.get(0, 0)).max(1.0)
    }

    /// Parameter count (read-only walk).
    pub fn param_count(&self) -> usize {
        self.net.param_count()
    }
}

/// Mean over consecutive row groups of sizes `counts`.
fn mean_pool(elements: &Matrix, counts: &[usize]) -> Matrix {
    let w = elements.cols();
    let mut out = Matrix::zeros(counts.len(), w);
    let mut row = 0usize;
    for (q, &c) in counts.iter().enumerate() {
        let out_row = out.row_mut(q);
        for _ in 0..c {
            for (o, &x) in out_row.iter_mut().zip(elements.row(row)) {
                *o += x;
            }
            row += 1;
        }
        if c > 0 {
            out_row.iter_mut().for_each(|x| *x /= c as f32);
        }
    }
    out
}

/// Adjoint of [`mean_pool`]: broadcasts each pooled gradient back to its
/// element rows, divided by the group size.
fn unpool(grad_pooled: &Matrix, counts: &[usize]) -> Matrix {
    let w = grad_pooled.cols();
    let total: usize = counts.iter().sum();
    let mut out = Matrix::zeros(total, w);
    let mut row = 0usize;
    for (q, &c) in counts.iter().enumerate() {
        for _ in 0..c {
            for (o, &g) in out.row_mut(row).iter_mut().zip(grad_pooled.row(q)) {
                *o = g / c.max(1) as f32;
            }
            row += 1;
        }
    }
    out
}

impl CardinalityEstimator for Mscn {
    fn name(&self) -> &str {
        if self.cfg.samples > 0 {
            "mscn-1k"
        } else {
            "mscn-0"
        }
    }

    fn estimate(&self, query: &Query) -> f64 {
        self.predict(query)
    }

    fn memory_bytes(&self) -> usize {
        self.param_count() * std::mem::size_of::<f32>() + self.samples.len() * std::mem::size_of::<Triple>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lmkg::metrics::QErrorStats;
    use lmkg_data::workload::{self, WorkloadConfig};
    use lmkg_data::{Dataset, Scale};
    use lmkg_store::QueryShape;

    fn setup() -> (KnowledgeGraph, Vec<LabeledQuery>) {
        let g = Dataset::LubmLike.generate(Scale::Ci, 3);
        let data = workload::generate(&g, &WorkloadConfig::train_default(QueryShape::Star, 2, 300, 11));
        (g, data)
    }

    fn quick_cfg(samples: usize) -> MscnConfig {
        MscnConfig {
            samples,
            hidden: 32,
            epochs: 40,
            ..Default::default()
        }
    }

    #[test]
    fn trains_and_reduces_loss() {
        let (g, data) = setup();
        let mut m = Mscn::new(&g, quick_cfg(0));
        let losses = m.train(&data);
        assert!(losses.last().unwrap() < &losses[0]);
    }

    #[test]
    fn in_sample_accuracy_is_sane() {
        let (g, data) = setup();
        let mut m = Mscn::new(&g, quick_cfg(0));
        m.train(&data);
        let pairs: Vec<(f64, u64)> = data
            .iter()
            .take(100)
            .map(|lq| (m.predict(&lq.query), lq.cardinality))
            .collect();
        let stats = QErrorStats::from_pairs(pairs).unwrap();
        assert!(stats.median < 15.0, "median q-error {}", stats.median);
    }

    #[test]
    fn bitmap_variant_materializes_samples() {
        let (g, data) = setup();
        let mut m = Mscn::new(&g, quick_cfg(100));
        assert_eq!(m.samples.len(), 100);
        assert_eq!(m.element_width(), 106);
        m.train(&data);
        assert!(m.predict(&data[0].query) >= 1.0);
    }

    #[test]
    fn names_distinguish_variants() {
        let (g, _) = setup();
        assert_eq!(Mscn::new(&g, quick_cfg(0)).name(), "mscn-0");
        assert_eq!(Mscn::new(&g, quick_cfg(100)).name(), "mscn-1k");
    }

    #[test]
    fn pool_unpool_roundtrip_shapes() {
        let elements = Matrix::from_vec(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let pooled = mean_pool(&elements, &[2, 1]);
        assert_eq!(pooled.rows(), 2);
        assert_eq!(pooled.row(0), &[2.0, 3.0]); // mean of rows 0-1
        assert_eq!(pooled.row(1), &[5.0, 6.0]);
        let grads = unpool(&pooled, &[2, 1]);
        assert_eq!(grads.rows(), 3);
        assert_eq!(grads.row(0), &[1.0, 1.5]); // divided by group size 2
    }

    #[test]
    fn mscn0_is_smaller_than_mscn1k() {
        let (g, _) = setup();
        let m0 = Mscn::new(&g, quick_cfg(0));
        let m1k = Mscn::new(&g, quick_cfg(1000));
        assert!(m0.memory_bytes() < m1k.memory_bytes());
    }

    #[test]
    fn handles_mixed_query_sizes_in_one_batch() {
        let (g, mut data) = setup();
        let chains = workload::generate(&g, &WorkloadConfig::train_default(QueryShape::Chain, 3, 100, 5));
        data.extend(chains);
        let mut m = Mscn::new(&g, quick_cfg(0));
        let losses = m.train(&data);
        assert!(losses.iter().all(|l| l.is_finite()));
    }
}
