//! Characteristic Sets (Neumann & Moerkotte, ICDE 2011) — the summary-based
//! baseline tailored to star queries.
//!
//! For every subject, its *characteristic set* is the set of distinct
//! predicates it emits. The summary stores, per distinct characteristic set
//! `S`: the number of subjects with exactly that set, and for each `p ∈ S`
//! the total number of `p`-edges those subjects emit. A star query with
//! predicates `P` is estimated as
//!
//! ```text
//! card = Σ_{S ⊇ P} count(S) · Π_{i} occurrences(S, pᵢ) / count(S)
//! ```
//!
//! with an additional `1 / distinct_objects(p)` selectivity per bound object
//! (the Gubichev & Neumann extension). Chain queries are estimated with the
//! per-predicate average-fanout chaining the LMKG authors reimplemented
//! ("we decided to reimplement CSET ourselves", §VIII Setup).

use lmkg::CardinalityEstimator;
use lmkg_store::fxhash::FxHashMap;
use lmkg_store::{KnowledgeGraph, PredId, Query, QueryShape, TriplePattern};

/// One characteristic set entry.
#[derive(Debug, Clone)]
struct CSet {
    /// Sorted distinct predicates of the subject class.
    preds: Vec<PredId>,
    /// Number of subjects with exactly this predicate set.
    count: u64,
    /// Total `p`-edges emitted by those subjects (aligned with `preds`).
    occurrences: Vec<u64>,
}

/// The characteristic-sets estimator.
pub struct CharacteristicSets {
    sets: Vec<CSet>,
    /// Per predicate: total triples.
    pred_counts: Vec<u64>,
    /// Per predicate: distinct subjects.
    pred_subjects: Vec<u64>,
    /// Per predicate: distinct objects.
    pred_objects: Vec<u64>,
    num_triples: u64,
}

impl CharacteristicSets {
    /// Builds the summary in one pass over subjects.
    pub fn build(graph: &KnowledgeGraph) -> Self {
        let mut table: FxHashMap<Vec<PredId>, (u64, FxHashMap<PredId, u64>)> = FxHashMap::default();
        for s in graph.subjects_iter() {
            let edges = graph.out_edges(s);
            let mut preds: Vec<PredId> = edges.iter().map(|&(p, _)| p).collect();
            preds.dedup(); // edges sorted by (p, o)
            let entry = table.entry(preds).or_insert_with(|| (0, FxHashMap::default()));
            entry.0 += 1;
            for &(p, _) in edges {
                *entry.1.entry(p).or_insert(0) += 1;
            }
        }
        let mut sets: Vec<CSet> = table
            .into_iter()
            .map(|(preds, (count, occ))| {
                let occurrences = preds.iter().map(|p| occ[p]).collect();
                CSet {
                    preds,
                    count,
                    occurrences,
                }
            })
            .collect();
        sets.sort_by(|a, b| a.preds.cmp(&b.preds));

        let np = graph.num_preds();
        let mut pred_counts = vec![0u64; np];
        let mut pred_subjects = vec![0u64; np];
        let mut pred_objects = vec![0u64; np];
        for p in graph.pred_ids() {
            let pairs = graph.pred_pairs(p);
            pred_counts[p.index()] = pairs.len() as u64;
            let mut subjects = 0u64;
            let mut last = None;
            for &(s, _) in pairs {
                if Some(s) != last {
                    subjects += 1;
                    last = Some(s);
                }
            }
            pred_subjects[p.index()] = subjects;
            let mut objs: Vec<u32> = pairs.iter().map(|&(_, o)| o.0).collect();
            objs.sort_unstable();
            objs.dedup();
            pred_objects[p.index()] = objs.len() as u64;
        }

        Self {
            sets,
            pred_counts,
            pred_subjects,
            pred_objects,
            num_triples: graph.num_triples() as u64,
        }
    }

    /// Number of distinct characteristic sets.
    pub fn num_sets(&self) -> usize {
        self.sets.len()
    }

    /// Star-query estimate (the native CSET case).
    pub fn estimate_star(&self, query: &Query) -> f64 {
        // Bound-subject stars degrade to per-predicate products.
        if query.triples[0].s.is_bound() {
            return self.independent_product(&query.triples);
        }
        let mut total = 0.0f64;
        for set in &self.sets {
            // The set must cover every bound query predicate.
            let covered = query.triples.iter().all(|t| match t.p.bound() {
                Some(p) => set.preds.binary_search(&p).is_ok(),
                None => true, // unbound predicate matches any set
            });
            if !covered {
                continue;
            }
            let mut per_subject = 1.0f64;
            for t in &query.triples {
                let mult = match t.p.bound() {
                    Some(p) => {
                        let i = set.preds.binary_search(&p).expect("covered");
                        set.occurrences[i] as f64 / set.count as f64
                    }
                    // Unbound predicate: average total out-degree of the class.
                    None => set.occurrences.iter().sum::<u64>() as f64 / set.count as f64,
                };
                let obj_sel = self.object_selectivity(t);
                per_subject *= mult * obj_sel;
            }
            total += set.count as f64 * per_subject;
        }
        total
    }

    /// Chain-query estimate: first hop from the predicate index, subsequent
    /// hops multiply the average out-fanout of each predicate, with
    /// selectivity factors for bound nodes.
    pub fn estimate_chain(&self, query: &Query) -> f64 {
        let mut est = match query.triples[0].p.bound() {
            Some(p) => self.pred_counts[p.index()] as f64,
            None => self.num_triples as f64,
        };
        if query.triples[0].s.is_bound() {
            est *= self.subject_selectivity(&query.triples[0]);
        }
        est *= self.object_selectivity(&query.triples[0]);

        for t in &query.triples[1..] {
            let fanout = match t.p.bound() {
                Some(p) => {
                    let subs = self.pred_subjects[p.index()].max(1) as f64;
                    // Probability the join node emits p at all × mean fanout:
                    // subjects-of-p / all-subjects × count/subjects = count/all-subjects.
                    let all_subjects: f64 = self.sets.iter().map(|s| s.count as f64).sum::<f64>().max(1.0);
                    (self.pred_counts[p.index()] as f64 / subs) * (subs / all_subjects)
                }
                None => {
                    let all_subjects: f64 = self.sets.iter().map(|s| s.count as f64).sum::<f64>().max(1.0);
                    self.num_triples as f64 / all_subjects
                }
            };
            est *= fanout * self.object_selectivity(t);
        }
        est
    }

    fn object_selectivity(&self, t: &TriplePattern) -> f64 {
        if !t.o.is_bound() {
            return 1.0;
        }
        match t.p.bound() {
            Some(p) => 1.0 / self.pred_objects[p.index()].max(1) as f64,
            None => {
                let distinct: u64 = self.pred_objects.iter().sum::<u64>().max(1);
                1.0 / distinct as f64
            }
        }
    }

    fn subject_selectivity(&self, t: &TriplePattern) -> f64 {
        match t.p.bound() {
            Some(p) => 1.0 / self.pred_subjects[p.index()].max(1) as f64,
            None => {
                let all_subjects: f64 = self.sets.iter().map(|s| s.count as f64).sum::<f64>().max(1.0);
                1.0 / all_subjects
            }
        }
    }

    fn independent_product(&self, triples: &[TriplePattern]) -> f64 {
        triples
            .iter()
            .map(|t| {
                let base = match t.p.bound() {
                    Some(p) => self.pred_counts[p.index()] as f64 / self.pred_subjects[p.index()].max(1) as f64,
                    None => self.num_triples as f64 / self.pred_subjects.iter().sum::<u64>().max(1) as f64,
                };
                base * self.object_selectivity(t)
            })
            .product()
    }
}

impl CardinalityEstimator for CharacteristicSets {
    fn name(&self) -> &str {
        "cset"
    }

    fn estimate(&self, query: &Query) -> f64 {
        let est = match query.shape() {
            QueryShape::Star => self.estimate_star(query),
            QueryShape::Chain => self.estimate_chain(query),
            QueryShape::Single => self.estimate_chain(query),
            QueryShape::Other => self.independent_product(&query.triples),
        };
        est.max(1.0)
    }

    fn memory_bytes(&self) -> usize {
        let sets: usize = self
            .sets
            .iter()
            .map(|s| s.preds.len() * 4 + s.occurrences.len() * 8 + 8 + 48)
            .sum();
        sets + 3 * self.pred_counts.len() * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lmkg_store::{counter, GraphBuilder, NodeId, NodeTerm, PredTerm, VarId};

    fn v(i: u16) -> NodeTerm {
        NodeTerm::Var(VarId(i))
    }

    /// Books with author+genre; some books have only an author.
    fn graph() -> KnowledgeGraph {
        let mut b = GraphBuilder::new();
        for i in 0..6 {
            b.add(&format!("book{i}"), "author", &format!("a{}", i % 2));
            if i < 4 {
                b.add(&format!("book{i}"), "genre", "horror");
            }
        }
        b.add("loner", "author", "a0");
        b.build()
    }

    #[test]
    fn builds_distinct_sets() {
        let cs = CharacteristicSets::build(&graph());
        // {author, genre} and {author}.
        assert_eq!(cs.num_sets(), 2);
    }

    #[test]
    fn exact_for_unbound_star_on_clean_classes() {
        let g = graph();
        let cs = CharacteristicSets::build(&g);
        let author = PredTerm::Bound(PredId(g.preds().get("author").unwrap()));
        let genre = PredTerm::Bound(PredId(g.preds().get("genre").unwrap()));
        // ?x author ?a . ?x genre ?g → exactly the 4 two-predicate books.
        let q = Query::new(vec![
            TriplePattern::new(v(0), author, v(1)),
            TriplePattern::new(v(0), genre, v(2)),
        ]);
        let exact = counter::cardinality(&g, &q) as f64;
        assert_eq!(cs.estimate_star(&q), exact);
    }

    #[test]
    fn single_predicate_star_counts_all_emitters() {
        let g = graph();
        let cs = CharacteristicSets::build(&g);
        let author = PredTerm::Bound(PredId(g.preds().get("author").unwrap()));
        let q = Query::new(vec![
            TriplePattern::new(v(0), author, v(1)),
            TriplePattern::new(v(0), author, v(2)),
        ]);
        // Every subject has exactly 1 author edge → est = 7 × 1 × 1 = 7.
        let exact = counter::cardinality(&g, &q) as f64;
        assert_eq!(cs.estimate_star(&q), exact);
    }

    #[test]
    fn bound_object_applies_selectivity() {
        let g = graph();
        let cs = CharacteristicSets::build(&g);
        let genre = PredId(g.preds().get("genre").unwrap());
        let horror = NodeId(g.nodes().get("horror").unwrap());
        let author = PredId(g.preds().get("author").unwrap());
        let q = Query::new(vec![
            TriplePattern::new(v(0), PredTerm::Bound(author), v(1)),
            TriplePattern::new(v(0), PredTerm::Bound(genre), NodeTerm::Bound(horror)),
        ]);
        // genre has a single distinct object → selectivity 1 → exact.
        let exact = counter::cardinality(&g, &q) as f64;
        assert_eq!(cs.estimate(&q), exact);
    }

    #[test]
    fn chain_estimate_positive_and_finite() {
        let mut b = GraphBuilder::new();
        b.add("a", "knows", "b");
        b.add("b", "knows", "c");
        b.add("c", "likes", "d");
        let g = b.build();
        let cs = CharacteristicSets::build(&g);
        let knows = PredTerm::Bound(PredId(g.preds().get("knows").unwrap()));
        let likes = PredTerm::Bound(PredId(g.preds().get("likes").unwrap()));
        let q = Query::new(vec![
            TriplePattern::new(v(0), knows, v(1)),
            TriplePattern::new(v(1), likes, v(2)),
        ]);
        let est = cs.estimate(&q);
        assert!(est.is_finite() && est >= 1.0);
    }

    #[test]
    fn memory_reported() {
        let cs = CharacteristicSets::build(&graph());
        assert!(cs.memory_bytes() > 0);
    }

    #[test]
    fn estimate_floors_at_one() {
        let g = graph();
        let cs = CharacteristicSets::build(&g);
        let genre = PredTerm::Bound(PredId(g.preds().get("genre").unwrap()));
        // Stars demanding genre twice from single-genre books underestimate,
        // but stay ≥ 1.
        let q = Query::new(vec![
            TriplePattern::new(v(0), genre, NodeTerm::Bound(NodeId(0))),
            TriplePattern::new(v(0), genre, NodeTerm::Bound(NodeId(1))),
        ]);
        assert!(cs.estimate(&q) >= 1.0);
    }
}
