//! IMPR (Chen & Lui, ICDM 2016) — random-walk graphlet counting, adapted to
//! query-pattern counting as in G-CARE ("uses random walks for estimating
//! graphlet counts", paper §VIII).
//!
//! The adaptation keeps the estimator's statistical core: a random walk over
//! the (undirected view of the) graph whose stationary distribution is
//! degree-proportional supplies anchor nodes; for each anchor the number of
//! pattern matches rooted at it is counted locally and re-weighted by the
//! inverse stationary probability (Horvitz–Thompson):
//!
//! ```text
//! ĉ = mean_i [ c(vᵢ) · 2|E| / deg(vᵢ) ]  with  c(v) = #matches anchored at v
//! ```
//!
//! Anchoring uses the star center (star queries) or the walk start (chains),
//! and the local count is exact via the store's counting oracle on the
//! anchored query.

use crate::common;
use lmkg::CardinalityEstimator;
use lmkg_store::{counter, KnowledgeGraph, NodeId, NodeTerm, Query, QueryShape};
use rand::rngs::StdRng;
use rand::Rng;

/// IMPR configuration.
#[derive(Debug, Clone)]
pub struct ImprConfig {
    /// Independent runs averaged into the final estimate (G-CARE: 30).
    pub runs: usize,
    /// Anchor samples per run.
    pub samples_per_run: usize,
    /// Burn-in steps of the mixing walk before the first anchor is taken.
    pub burn_in: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ImprConfig {
    fn default() -> Self {
        Self {
            runs: 30,
            samples_per_run: 30,
            burn_in: 16,
            seed: 0,
        }
    }
}

/// The IMPR estimator. No mutable walk state — each estimate derives its
/// RNG from the stored seed and the query (see [`common::derived_rng`]), so
/// estimation is `&self` and deterministic per query.
pub struct Impr<'g> {
    graph: &'g KnowledgeGraph,
    cfg: ImprConfig,
    /// 2|E| — the normalizing constant of the degree-proportional stationary
    /// distribution on the undirected view.
    two_m: f64,
}

impl<'g> Impr<'g> {
    /// Creates the estimator.
    pub fn new(graph: &'g KnowledgeGraph, cfg: ImprConfig) -> Self {
        Self {
            graph,
            cfg,
            two_m: 2.0 * graph.num_triples() as f64,
        }
    }

    fn total_degree(&self, v: NodeId) -> usize {
        self.graph.out_degree(v) + self.graph.in_degree(v)
    }

    /// One step of the undirected random walk.
    fn step(&self, v: NodeId, rng: &mut StdRng) -> NodeId {
        let out = self.graph.out_degree(v);
        let inc = self.graph.in_degree(v);
        let total = out + inc;
        if total == 0 {
            return v;
        }
        let idx = rng.gen_range(0..total);
        if idx < out {
            self.graph.out_edges(v)[idx].1
        } else {
            self.graph.in_edges(v)[idx - out].1
        }
    }

    /// Exact number of matches of `query` with the anchor term bound to `v`.
    fn anchored_count(&self, query: &Query, v: NodeId) -> u64 {
        let mut anchored = query.clone();
        let anchor_term = anchored.triples[0].s;
        match anchor_term {
            NodeTerm::Bound(b) => {
                // Anchor already bound: only that node contributes.
                if b == v {
                    counter::cardinality(self.graph, &anchored)
                } else {
                    0
                }
            }
            NodeTerm::Var(var) => {
                for t in &mut anchored.triples {
                    if t.s == NodeTerm::Var(var) {
                        t.s = NodeTerm::Bound(v);
                    }
                    if t.o == NodeTerm::Var(var) {
                        t.o = NodeTerm::Bound(v);
                    }
                }
                counter::cardinality(self.graph, &anchored)
            }
        }
    }

    /// Full estimate.
    pub fn estimate_query(&self, query: &Query) -> f64 {
        if query.triples.is_empty() {
            return 0.0;
        }
        // When the anchor is already bound, the local count is the answer.
        if let NodeTerm::Bound(b) = query.triples[0].s {
            return self.anchored_count(query, b) as f64;
        }

        let n = self.graph.num_nodes();
        if n == 0 {
            return 0.0;
        }
        let mut rng = common::derived_rng(self.cfg.seed, query);
        let total_samples = self.cfg.runs * self.cfg.samples_per_run;
        let mut sum = 0.0f64;
        let mut taken = 0usize;
        'runs: for _ in 0..self.cfg.runs {
            // Fresh start per run; burn in to approach stationarity.
            let mut v = NodeId(rng.gen_range(0..n as u32));
            for _ in 0..self.cfg.burn_in {
                v = self.step(v, &mut rng);
            }
            for _ in 0..self.cfg.samples_per_run {
                let deg = self.total_degree(v);
                if deg > 0 {
                    let c = self.anchored_count(query, v) as f64;
                    sum += c * self.two_m / deg as f64;
                    taken += 1;
                } else {
                    // Isolated node: resample a start.
                    v = NodeId(rng.gen_range(0..n as u32));
                    continue;
                }
                v = self.step(v, &mut rng);
                if taken >= total_samples {
                    break 'runs;
                }
            }
        }
        if taken == 0 {
            0.0
        } else {
            sum / taken as f64
        }
    }
}

impl CardinalityEstimator for Impr<'_> {
    fn name(&self) -> &str {
        "impr"
    }

    fn estimate(&self, query: &Query) -> f64 {
        // Anchored counting requires the anchor's matches to be rooted at the
        // star center / chain start, which holds for the supported shapes.
        match query.shape() {
            QueryShape::Star | QueryShape::Chain | QueryShape::Single => self.estimate_query(query).max(1.0),
            QueryShape::Other => self.estimate_query(query).max(1.0),
        }
    }

    fn memory_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lmkg_store::{GraphBuilder, PredId, PredTerm, TriplePattern, VarId};

    fn v(i: u16) -> NodeTerm {
        NodeTerm::Var(VarId(i))
    }

    fn graph() -> KnowledgeGraph {
        let mut b = GraphBuilder::new();
        for i in 0..12 {
            b.add(&format!("s{i}"), "p", &format!("h{}", i % 2));
            b.add(&format!("s{i}"), "r", "sink");
        }
        b.build()
    }

    fn cfg() -> ImprConfig {
        ImprConfig {
            runs: 40,
            samples_per_run: 50,
            burn_in: 8,
            seed: 3,
        }
    }

    #[test]
    fn star_estimate_is_in_the_right_ballpark() {
        let g = graph();
        let p = PredTerm::Bound(PredId(g.preds().get("p").unwrap()));
        let r = PredTerm::Bound(PredId(g.preds().get("r").unwrap()));
        let q = Query::new(vec![
            TriplePattern::new(v(0), p, v(1)),
            TriplePattern::new(v(0), r, v(2)),
        ]);
        let exact = counter::cardinality(&g, &q) as f64; // 12
        let impr = Impr::new(&g, cfg());
        let est = impr.estimate_query(&q);
        let qerr = (est / exact).max(exact / est);
        assert!(qerr < 2.5, "estimate {est} vs exact {exact}");
    }

    #[test]
    fn anchored_bound_subject_is_exact() {
        let g = graph();
        let p = PredTerm::Bound(PredId(g.preds().get("p").unwrap()));
        let s0 = NodeId(g.nodes().get("s0").unwrap());
        let q = Query::new(vec![TriplePattern::new(NodeTerm::Bound(s0), p, v(0))]);
        let impr = Impr::new(&g, cfg());
        assert_eq!(impr.estimate_query(&q), 1.0);
    }

    #[test]
    fn deterministic_for_seed() {
        let g = graph();
        let p = PredTerm::Bound(PredId(0));
        let q = Query::new(vec![TriplePattern::new(v(0), p, v(1))]);
        let a = Impr::new(&g, cfg()).estimate_query(&q);
        let b = Impr::new(&g, cfg()).estimate_query(&q);
        assert_eq!(a, b);
    }

    #[test]
    fn chain_estimates_are_positive() {
        let g = graph();
        let p = PredTerm::Bound(PredId(g.preds().get("p").unwrap()));
        let q = Query::new(vec![TriplePattern::new(v(0), p, v(1))]);
        let impr = Impr::new(&g, cfg());
        let est = impr.estimate(&q);
        assert!(est >= 1.0 && est.is_finite());
    }
}
