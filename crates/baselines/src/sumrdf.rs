//! SUMRDF (Stefanoni, Motik & Kostylev, WWW 2018) — summary-based
//! estimation: "represent the RDF graph in a more compact manner and use the
//! created graph summaries for cardinality estimation ... relying on the
//! possible world semantics" (paper §II, §VIII).
//!
//! This implementation keeps the statistical core of SUMRDF:
//!
//! 1. **Summarization** — nodes are merged into buckets by their structural
//!    signature (the set of incident predicates, in both directions), capped
//!    at a target bucket count; summary edges carry the number of original
//!    edges between bucket pairs per predicate.
//! 2. **Estimation** — the expected number of query matches over the uniform
//!    possible-world distribution consistent with the summary:
//!    `E[card] = Σ_σ Π_t w_t(σ) / (|Bₛ|·|Bₒ|) · Π_{var v} |B_σ(v)|`,
//!    where σ ranges over assignments of query node terms to buckets.
//!    The assignment sum is evaluated with the same free-variable factoring
//!    as the exact matcher, so large star queries stay polynomial.

use lmkg::CardinalityEstimator;
use lmkg_store::fxhash::FxHashMap;
use lmkg_store::{KnowledgeGraph, NodeTerm, Query};
use std::hash::{Hash, Hasher};

/// SUMRDF configuration.
#[derive(Debug, Clone)]
pub struct SumRdfConfig {
    /// Maximum number of node buckets in the summary.
    pub target_buckets: usize,
}

impl Default for SumRdfConfig {
    fn default() -> Self {
        Self { target_buckets: 64 }
    }
}

/// A summary edge `(source bucket, predicate, target bucket) → edge count`.
type SummaryEdge = (u32, u32, f64);

/// The SUMRDF estimator.
pub struct SumRdf {
    bucket_of: Vec<u32>,
    bucket_sizes: Vec<f64>,
    /// Per predicate id: summary edges.
    edges_by_pred: Vec<Vec<SummaryEdge>>,
}

impl SumRdf {
    /// Builds the summary.
    pub fn build(graph: &KnowledgeGraph, cfg: SumRdfConfig) -> Self {
        let n = graph.num_nodes();
        let buckets = cfg.target_buckets.max(1);
        let mut bucket_of = vec![0u32; n];
        for v in graph.node_ids() {
            // Structural signature: incident predicate sets in both roles.
            let mut h = lmkg_store::fxhash::FxHasher::default();
            let mut outp: Vec<u32> = graph.out_edges(v).iter().map(|&(p, _)| p.0).collect();
            outp.dedup();
            let mut inp: Vec<u32> = graph.in_edges(v).iter().map(|&(p, _)| p.0).collect();
            inp.sort_unstable();
            inp.dedup();
            outp.hash(&mut h);
            0xB0B_u32.hash(&mut h);
            inp.hash(&mut h);
            bucket_of[v.index()] = (h.finish() % buckets as u64) as u32;
        }

        let mut bucket_sizes = vec![0.0f64; buckets];
        for v in graph.node_ids() {
            bucket_sizes[bucket_of[v.index()] as usize] += 1.0;
        }

        let mut edges_by_pred: Vec<FxHashMap<(u32, u32), f64>> =
            (0..graph.num_preds()).map(|_| FxHashMap::default()).collect();
        for t in graph.triples() {
            let b1 = bucket_of[t.s.index()];
            let b2 = bucket_of[t.o.index()];
            *edges_by_pred[t.p.index()].entry((b1, b2)).or_insert(0.0) += 1.0;
        }
        let edges_by_pred = edges_by_pred
            .into_iter()
            .map(|m| {
                let mut v: Vec<SummaryEdge> = m.into_iter().map(|((a, b), w)| (a, b, w)).collect();
                v.sort_by_key(|&(a, b, _)| (a, b));
                v
            })
            .collect();

        Self {
            bucket_of,
            bucket_sizes,
            edges_by_pred,
        }
    }

    /// Number of buckets actually used.
    pub fn num_buckets(&self) -> usize {
        self.bucket_sizes.iter().filter(|&&s| s > 0.0).count()
    }

    /// Expected match count under possible-world semantics.
    pub fn estimate_query(&self, query: &Query) -> f64 {
        // Slot assignment: distinct node terms → slots (bound slots carry a
        // fixed bucket and no size factor).
        let mut slots: Vec<NodeTerm> = Vec::new();
        let slot_of = |term: NodeTerm, slots: &mut Vec<NodeTerm>| match slots.iter().position(|&t| t == term) {
            Some(i) => i,
            None => {
                slots.push(term);
                slots.len() - 1
            }
        };
        let triples: Vec<(usize, usize, Option<u32>)> = query
            .triples
            .iter()
            .map(|t| {
                let s = slot_of(t.s, &mut slots);
                let o = slot_of(t.o, &mut slots);
                (s, o, t.p.bound().map(|p| p.0))
            })
            .collect();

        let mut assignment: Vec<Option<u32>> = slots
            .iter()
            .map(|term| term.bound().map(|n| self.bucket_of[n.index()]))
            .collect();
        let is_var: Vec<bool> = slots.iter().map(|t| !t.is_bound()).collect();

        let mut remaining: Vec<usize> = (0..triples.len()).collect();
        self.sum_assignments(&triples, &is_var, &mut remaining, &mut assignment)
    }

    /// Recursive sum over bucket assignments with free-variable factoring.
    fn sum_assignments(
        &self,
        triples: &[(usize, usize, Option<u32>)],
        is_var: &[bool],
        remaining: &mut Vec<usize>,
        assignment: &mut Vec<Option<u32>>,
    ) -> f64 {
        let Some(pos) = self.pick_most_constrained(triples, remaining, assignment) else {
            return 1.0;
        };
        let idx = remaining.swap_remove(pos);
        let (s_slot, o_slot, pred) = triples[idx];

        // A slot is local if no other remaining triple touches it.
        let local = |slot: usize| !remaining.iter().any(|&j| triples[j].0 == slot || triples[j].1 == slot);
        let s_free = assignment[s_slot].is_none();
        let o_free = assignment[o_slot].is_none();
        let factorable = (!s_free || local(s_slot)) && (!o_free || local(o_slot)) && (s_slot != o_slot || !s_free);

        let mut total = 0.0f64;
        if factorable {
            let mut factor = 0.0f64;
            self.for_each_edge(pred, |b1, b2, w| {
                if assignment[s_slot].is_some_and(|b| b != b1) || assignment[o_slot].is_some_and(|b| b != b2) {
                    return;
                }
                let mut contribution = w / (self.bucket_sizes[b1 as usize] * self.bucket_sizes[b2 as usize]).max(1.0);
                if s_free && is_var[s_slot] {
                    contribution *= self.bucket_sizes[b1 as usize];
                }
                if o_free && is_var[o_slot] && o_slot != s_slot {
                    contribution *= self.bucket_sizes[b2 as usize];
                }
                factor += contribution;
            });
            if factor > 0.0 {
                total = factor * self.sum_assignments(triples, is_var, remaining, assignment);
            }
        } else {
            let mut contributions: Vec<(u32, u32, f64)> = Vec::new();
            self.for_each_edge(pred, |b1, b2, w| {
                if assignment[s_slot].is_some_and(|b| b != b1) || assignment[o_slot].is_some_and(|b| b != b2) {
                    return;
                }
                if s_slot == o_slot && b1 != b2 {
                    return;
                }
                contributions.push((b1, b2, w));
            });
            for (b1, b2, w) in contributions {
                let mut contribution = w / (self.bucket_sizes[b1 as usize] * self.bucket_sizes[b2 as usize]).max(1.0);
                let undo_s = if s_free {
                    assignment[s_slot] = Some(b1);
                    if is_var[s_slot] {
                        contribution *= self.bucket_sizes[b1 as usize];
                    }
                    true
                } else {
                    false
                };
                let undo_o = if assignment[o_slot].is_none() {
                    assignment[o_slot] = Some(b2);
                    if is_var[o_slot] {
                        contribution *= self.bucket_sizes[b2 as usize];
                    }
                    true
                } else {
                    false
                };
                total += contribution * self.sum_assignments(triples, is_var, remaining, assignment);
                if undo_o {
                    assignment[o_slot] = None;
                }
                if undo_s {
                    assignment[s_slot] = None;
                }
            }
        }

        remaining.push(idx);
        let last = remaining.len() - 1;
        remaining.swap(pos.min(last), last);
        total
    }

    fn pick_most_constrained(
        &self,
        triples: &[(usize, usize, Option<u32>)],
        remaining: &[usize],
        assignment: &[Option<u32>],
    ) -> Option<usize> {
        remaining
            .iter()
            .enumerate()
            .max_by_key(|(_, &idx)| {
                let (s, o, p) = triples[idx];
                let mut score = 0;
                if assignment[s].is_some() {
                    score += 2;
                }
                if assignment[o].is_some() {
                    score += 2;
                }
                if p.is_some() {
                    score += 1;
                }
                score
            })
            .map(|(pos, _)| pos)
    }

    fn for_each_edge(&self, pred: Option<u32>, mut f: impl FnMut(u32, u32, f64)) {
        match pred {
            Some(p) => {
                for &(a, b, w) in &self.edges_by_pred[p as usize] {
                    f(a, b, w);
                }
            }
            None => {
                for edges in &self.edges_by_pred {
                    for &(a, b, w) in edges {
                        f(a, b, w);
                    }
                }
            }
        }
    }
}

impl CardinalityEstimator for SumRdf {
    fn name(&self) -> &str {
        "sumrdf"
    }

    fn estimate(&self, query: &Query) -> f64 {
        self.estimate_query(query).max(1.0)
    }

    fn memory_bytes(&self) -> usize {
        let edges: usize = self
            .edges_by_pred
            .iter()
            .map(|v| v.len() * std::mem::size_of::<SummaryEdge>())
            .sum();
        self.bucket_of.len() * 4 + self.bucket_sizes.len() * 8 + edges
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lmkg_store::{counter, GraphBuilder, NodeId, PredId, PredTerm, TriplePattern, VarId};

    fn v(i: u16) -> NodeTerm {
        NodeTerm::Var(VarId(i))
    }

    fn graph() -> KnowledgeGraph {
        let mut b = GraphBuilder::new();
        for i in 0..20 {
            b.add(&format!("s{i}"), "p", &format!("o{}", i % 4));
        }
        for j in 0..4 {
            b.add(&format!("o{j}"), "q", "z");
        }
        b.build()
    }

    #[test]
    fn summary_is_much_smaller_than_graph() {
        let g = graph();
        let s = SumRdf::build(&g, SumRdfConfig { target_buckets: 8 });
        assert!(s.num_buckets() <= 8);
        assert!(s.memory_bytes() < g.heap_bytes());
    }

    #[test]
    fn single_pattern_estimate_is_exact() {
        // Summed over buckets, per-predicate weights are exact for a single
        // unbound pattern.
        let g = graph();
        let s = SumRdf::build(&g, SumRdfConfig::default());
        let p = PredTerm::Bound(PredId(g.preds().get("p").unwrap()));
        let q = Query::new(vec![TriplePattern::new(v(0), p, v(1))]);
        assert!((s.estimate_query(&q) - 20.0).abs() < 1e-6);
    }

    #[test]
    fn chain_estimate_close_on_homogeneous_graph() {
        let g = graph();
        let s = SumRdf::build(&g, SumRdfConfig::default());
        let p = PredTerm::Bound(PredId(g.preds().get("p").unwrap()));
        let qp = PredTerm::Bound(PredId(g.preds().get("q").unwrap()));
        let q = Query::new(vec![
            TriplePattern::new(v(0), p, v(1)),
            TriplePattern::new(v(1), qp, v(2)),
        ]);
        let exact = counter::cardinality(&g, &q) as f64; // 20
        let est = s.estimate_query(&q);
        let qerr = (est / exact).max(exact / est);
        assert!(qerr < 2.0, "estimate {est} vs exact {exact}");
    }

    #[test]
    fn bound_object_estimate() {
        let g = graph();
        let s = SumRdf::build(&g, SumRdfConfig::default());
        let p = PredTerm::Bound(PredId(g.preds().get("p").unwrap()));
        let o0 = NodeId(g.nodes().get("o0").unwrap());
        let q = Query::new(vec![TriplePattern::new(v(0), p, NodeTerm::Bound(o0))]);
        let exact = counter::cardinality(&g, &q) as f64; // 5
        let est = s.estimate_query(&q);
        // Bucket-level uniformity may smear within the bucket but must stay
        // within the bucket-size factor.
        assert!(est > 0.0 && est <= 21.0, "estimate {est} vs exact {exact}");
    }

    #[test]
    fn large_star_is_tractable() {
        let g = graph();
        let s = SumRdf::build(&g, SumRdfConfig::default());
        let p = PredTerm::Bound(PredId(g.preds().get("p").unwrap()));
        // 8-way star — must complete fast thanks to factoring.
        let q = Query::new((0..8).map(|i| TriplePattern::new(v(0), p, v(1 + i as u16))).collect());
        let est = s.estimate_query(&q);
        let exact = counter::cardinality(&g, &q) as f64;
        assert!(est.is_finite());
        let qerr = (est / exact).max(exact / est);
        assert!(qerr < 4.0, "estimate {est} vs exact {exact}");
    }

    #[test]
    fn zero_for_impossible_pattern() {
        let g = graph();
        let s = SumRdf::build(&g, SumRdfConfig::default());
        let qp = PredTerm::Bound(PredId(g.preds().get("q").unwrap()));
        // z q ?x — z has no outgoing q edge.
        let z = NodeId(g.nodes().get("z").unwrap());
        let q = Query::new(vec![TriplePattern::new(NodeTerm::Bound(z), qp, v(0))]);
        // Depending on bucketing z may share a bucket with o*, allowing a
        // small non-zero expectation, but the floor keeps it sane.
        assert!(s.estimate(&q) >= 1.0);
    }
}
