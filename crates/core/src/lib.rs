//! # lmkg
//!
//! **LMKG: Learned Models for Cardinality Estimation in Knowledge Graphs**
//! (Davitkova, Gjurovski & Michel, EDBT 2022) — the core crate of the
//! reproduction.
//!
//! Two learned estimator families over the `lmkg-store` substrate:
//!
//! * [`LmkgS`](supervised::LmkgS) — a supervised MLP over SG- or
//!   pattern-bound encodings with log/min-max-scaled targets and mean
//!   q-error loss (§VI-A);
//! * [`LmkgU`](unsupervised::LmkgU) — an unsupervised ResMADE over bound
//!   subgraph patterns, answering queries with unbound terms via
//!   likelihood-weighted forward sampling and tuple-space totals (§VI-B);
//!
//! plus the [`Lmkg`](framework::Lmkg) framework that groups models
//! (single / by type / by size / specialized, §VII-B), routes queries, and
//! decomposes queries no model covers (§IV).
//!
//! ```
//! use lmkg::framework::{Grouping, Lmkg, LmkgConfig, ModelType};
//! use lmkg::supervised::LmkgSConfig;
//! use lmkg_data::{workload, Dataset, Scale, WorkloadConfig};
//! use lmkg_store::QueryShape;
//!
//! let graph = Dataset::LubmLike.generate(Scale::Ci, 42);
//! let mut cfg = LmkgConfig::supervised_default();
//! cfg.sizes = vec![2];
//! cfg.queries_per_size = 200;
//! cfg.s_config = LmkgSConfig { hidden: vec![32], epochs: 10, ..Default::default() };
//! let mut lmkg = Lmkg::build(&graph, &cfg);
//!
//! let queries = workload::generate(&graph, &WorkloadConfig::test_default(QueryShape::Star, 2, 1));
//! let estimate = lmkg.estimate_query(&queries[0].query);
//! assert!(estimate >= 1.0);
//! ```

// No unsafe anywhere in this crate — enforced so the lmkg-xtask L1 lint
// and the sanitizer jobs only ever have the nn kernels and the serve
// signal shim to reason about.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod decompose;
pub mod estimator;
pub mod framework;
pub mod metrics;
pub mod monitor;
pub mod outliers;
pub mod snapshot;
pub mod summary;
pub mod supervised;
pub mod unsupervised;

pub use estimator::{CardinalityEstimator, ExactEstimator};
pub use framework::{trainable_cell, Grouping, Lmkg, LmkgConfig, ModelKey, ModelType};
pub use lmkg_nn::quant::QuantMode;
pub use metrics::{q_error, GroupedQErrors, QErrorStats};
pub use monitor::{Cell, DriftReport, WorkloadMonitor};
pub use snapshot::SnapshotError;
pub use summary::GraphSummary;
pub use supervised::{EpochStats, LmkgS, LmkgSConfig, LossKind, QuantizedLmkgS, QueryEncoder};
pub use unsupervised::{LmkgU, LmkgUConfig, LmkgUError, QuantizedLmkgU};
