//! Accuracy metrics: the q-error and its aggregations (paper §VI-A, §VIII).

/// q-error of an estimate against the truth:
/// `max(est/true, true/est)`, with both sides floored at 1 so that perfect
/// estimates score exactly 1. Estimates ≤ 0 score infinity.
pub fn q_error(estimate: f64, truth: u64) -> f64 {
    if estimate <= 0.0 {
        return f64::INFINITY;
    }
    let t = truth.max(1) as f64;
    (estimate / t).max(t / estimate)
}

/// Aggregate accuracy statistics over a set of (estimate, truth) pairs.
#[derive(Debug, Clone, PartialEq)]
pub struct QErrorStats {
    /// Number of evaluated queries.
    pub count: usize,
    /// Arithmetic mean q-error (the paper's "avg. q-error").
    pub mean: f64,
    /// Geometric mean q-error (robust to outliers).
    pub geometric_mean: f64,
    /// Median (p50).
    pub median: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Maximum q-error.
    pub max: f64,
}

impl QErrorStats {
    /// Computes statistics from raw q-errors. Returns `None` on empty input.
    pub fn from_q_errors(mut qs: Vec<f64>) -> Option<Self> {
        if qs.is_empty() {
            return None;
        }
        qs.sort_by(|a, b| a.partial_cmp(b).expect("q-errors are not NaN"));
        let count = qs.len();
        let mean = qs.iter().sum::<f64>() / count as f64;
        let geometric_mean = (qs.iter().map(|q| q.ln()).sum::<f64>() / count as f64).exp();
        let pct = |p: f64| {
            let idx = ((count as f64 - 1.0) * p).round() as usize;
            qs[idx]
        };
        Some(Self {
            count,
            mean,
            geometric_mean,
            median: pct(0.5),
            p95: pct(0.95),
            p99: pct(0.99),
            max: qs[count - 1],
        })
    }

    /// Computes statistics from (estimate, truth) pairs.
    pub fn from_pairs(pairs: impl IntoIterator<Item = (f64, u64)>) -> Option<Self> {
        let qs: Vec<f64> = pairs.into_iter().map(|(e, t)| q_error(e, t)).collect();
        Self::from_q_errors(qs)
    }
}

/// Accumulates q-errors grouped by an integer key (query size, bucket id, …).
#[derive(Debug, Default, Clone)]
pub struct GroupedQErrors {
    groups: Vec<(usize, Vec<f64>)>,
}

impl GroupedQErrors {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observation under `key`.
    pub fn record(&mut self, key: usize, estimate: f64, truth: u64) {
        let q = q_error(estimate, truth);
        match self.groups.iter_mut().find(|(k, _)| *k == key) {
            Some((_, v)) => v.push(q),
            None => self.groups.push((key, vec![q])),
        }
    }

    /// Per-group statistics, sorted by key.
    pub fn stats(&self) -> Vec<(usize, QErrorStats)> {
        let mut out: Vec<(usize, QErrorStats)> = self
            .groups
            .iter()
            .filter_map(|(k, v)| QErrorStats::from_q_errors(v.clone()).map(|s| (*k, s)))
            .collect();
        out.sort_by_key(|(k, _)| *k);
        out
    }
}

/// The log-base-5 result-size bucket of a cardinality (paper Fig. 9 x-axis).
pub fn result_size_bucket(cardinality: u64, base: u64) -> usize {
    let mut b = 0usize;
    let mut v = cardinality.max(1);
    while v >= base {
        v /= base;
        b += 1;
    }
    b
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn q_error_basics() {
        assert_eq!(q_error(10.0, 10), 1.0);
        assert_eq!(q_error(20.0, 10), 2.0);
        assert_eq!(q_error(5.0, 10), 2.0);
        assert_eq!(q_error(0.0, 10), f64::INFINITY);
        assert_eq!(q_error(-3.0, 10), f64::INFINITY);
    }

    #[test]
    fn q_error_floors_truth_at_one() {
        // truth 0 treated as 1 (cannot divide by zero).
        assert_eq!(q_error(1.0, 0), 1.0);
        assert_eq!(q_error(4.0, 0), 4.0);
    }

    #[test]
    fn stats_of_single_value() {
        let s = QErrorStats::from_q_errors(vec![2.0]).unwrap();
        assert_eq!(s.count, 1);
        assert_eq!(s.mean, 2.0);
        assert_eq!(s.median, 2.0);
        assert_eq!(s.max, 2.0);
    }

    #[test]
    fn stats_percentiles_ordering() {
        let qs: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let s = QErrorStats::from_q_errors(qs).unwrap();
        assert_eq!(s.count, 100);
        assert!((s.mean - 50.5).abs() < 1e-9);
        assert!(s.median <= s.p95 && s.p95 <= s.p99 && s.p99 <= s.max);
        assert_eq!(s.max, 100.0);
    }

    #[test]
    fn geometric_mean_is_robust() {
        let s = QErrorStats::from_q_errors(vec![1.0, 1.0, 1.0, 1000.0]).unwrap();
        assert!(s.geometric_mean < s.mean);
        assert!((s.geometric_mean - 1000.0f64.powf(0.25)).abs() < 1e-9);
    }

    #[test]
    fn from_pairs_matches_manual() {
        let s = QErrorStats::from_pairs([(2.0, 1), (1.0, 4)]).unwrap();
        assert_eq!(s.count, 2);
        assert_eq!(s.mean, 3.0); // q = 2 and 4
    }

    #[test]
    fn empty_stats_is_none() {
        assert!(QErrorStats::from_q_errors(vec![]).is_none());
    }

    #[test]
    fn grouped_accumulation() {
        let mut g = GroupedQErrors::new();
        g.record(2, 2.0, 1);
        g.record(2, 4.0, 1);
        g.record(5, 1.0, 1);
        let stats = g.stats();
        assert_eq!(stats.len(), 2);
        assert_eq!(stats[0].0, 2);
        assert_eq!(stats[0].1.mean, 3.0);
        assert_eq!(stats[1].0, 5);
        assert_eq!(stats[1].1.mean, 1.0);
    }

    #[test]
    fn bucket_boundaries() {
        assert_eq!(result_size_bucket(1, 5), 0);
        assert_eq!(result_size_bucket(4, 5), 0);
        assert_eq!(result_size_bucket(5, 5), 1);
        assert_eq!(result_size_bucket(25, 5), 2);
        assert_eq!(result_size_bucket(0, 5), 0);
    }
}
