//! Query decomposition (paper §IV, Fig. 1 "Query Decomposition"): queries
//! whose type or size no model covers are split into star/chain subpatterns
//! that the existing models can answer; the sub-estimates are combined under
//! join uniformity in the framework.

use lmkg_store::{NodeTerm, Query, TriplePattern};

/// Splits `query` into subqueries, each of a recognized shape (star, chain,
/// or single triple) and at most `max_size` triples.
///
/// Strategy: extract maximal subject-stars first (largest groups first),
/// then stitch the remaining triples into chains along `o → s` links, and
/// leave whatever remains as single-triple queries. The union of the
/// subqueries' triples is exactly the input's triples.
pub fn decompose(query: &Query, max_size: usize) -> Vec<Query> {
    assert!(max_size >= 1);
    let mut remaining: Vec<TriplePattern> = query.triples.clone();
    let mut out = Vec::new();

    // 1. Subject stars.
    while let Some(center) = best_star_center(&remaining) {
        let (star, rest): (Vec<_>, Vec<_>) = remaining.into_iter().partition(|t| t.s == center);
        remaining = rest;
        for chunk in star.chunks(max_size) {
            out.push(Query::new(chunk.to_vec()));
        }
    }

    // 2. Chains along o→s links.
    while !remaining.is_empty() {
        let mut chain = vec![remaining.swap_remove(0)];
        // Extend forward.
        loop {
            let tail = chain.last().expect("chain non-empty").o;
            match remaining.iter().position(|t| t.s == tail) {
                Some(i) if chain.len() < max_size => chain.push(remaining.swap_remove(i)),
                _ => break,
            }
        }
        // Extend backward.
        loop {
            let head = chain[0].s;
            match remaining.iter().position(|t| t.o == head) {
                Some(i) if chain.len() < max_size => chain.insert(0, remaining.swap_remove(i)),
                _ => break,
            }
        }
        out.push(Query::new(chain));
    }
    out
}

/// The subject term shared by the most (≥ 2) remaining triples.
fn best_star_center(triples: &[TriplePattern]) -> Option<NodeTerm> {
    let mut best: Option<(NodeTerm, usize)> = None;
    for t in triples {
        let count = triples.iter().filter(|u| u.s == t.s).count();
        if count >= 2 && best.is_none_or(|(_, c)| count > c) {
            best = Some((t.s, count));
        }
    }
    best.map(|(c, _)| c)
}

/// Node and predicate variables shared between at least two subqueries,
/// with the number of subqueries each appears in. These drive the join-
/// uniformity correction when combining sub-estimates.
pub fn shared_variables(parts: &[Query]) -> Vec<(lmkg_store::VarId, usize)> {
    let mut counts: Vec<(lmkg_store::VarId, usize)> = Vec::new();
    for part in parts {
        let vars = part.vars();
        for v in vars {
            match counts.iter_mut().find(|(u, _)| *u == v) {
                Some((_, c)) => *c += 1,
                None => counts.push((v, 1)),
            }
        }
    }
    counts.retain(|(_, c)| *c >= 2);
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use lmkg_store::{NodeId, PredId, PredTerm, QueryShape, VarId};

    fn v(i: u16) -> NodeTerm {
        NodeTerm::Var(VarId(i))
    }
    fn n(i: u32) -> NodeTerm {
        NodeTerm::Bound(NodeId(i))
    }
    fn p(i: u32) -> PredTerm {
        PredTerm::Bound(PredId(i))
    }

    fn total_triples(parts: &[Query]) -> usize {
        parts.iter().map(|q| q.size()).sum()
    }

    #[test]
    fn big_star_is_chunked() {
        let q = Query::new(
            (0..5)
                .map(|i| TriplePattern::new(v(0), p(i), v(1 + i as u16)))
                .collect(),
        );
        let parts = decompose(&q, 2);
        assert_eq!(total_triples(&parts), 5);
        assert!(parts.iter().all(|part| part.size() <= 2));
        // All parts are stars or singles centered on ?0.
        for part in &parts {
            assert!(matches!(part.shape(), QueryShape::Star | QueryShape::Single));
            assert_eq!(part.triples[0].s, v(0));
        }
    }

    #[test]
    fn long_chain_is_chunked() {
        let q = Query::new(
            (0..6)
                .map(|i| TriplePattern::new(v(i as u16), p(0), v(i as u16 + 1)))
                .collect(),
        );
        let parts = decompose(&q, 3);
        assert_eq!(total_triples(&parts), 6);
        for part in &parts {
            assert!(part.size() <= 3);
            assert!(matches!(part.shape(), QueryShape::Chain | QueryShape::Single));
        }
    }

    #[test]
    fn composite_star_chain_splits_into_both() {
        // Star at ?0 (two triples) + chain hanging off ?1.
        let q = Query::new(vec![
            TriplePattern::new(v(0), p(0), v(1)),
            TriplePattern::new(v(0), p(1), n(5)),
            TriplePattern::new(v(1), p(2), v(2)),
        ]);
        assert_eq!(q.shape(), QueryShape::Other);
        let parts = decompose(&q, 4);
        assert_eq!(total_triples(&parts), 3);
        let shapes: Vec<QueryShape> = parts.iter().map(|p| p.shape()).collect();
        assert!(shapes.contains(&QueryShape::Star));
        assert!(shapes.contains(&QueryShape::Single));
    }

    #[test]
    fn decompose_preserves_all_triples() {
        let q = Query::new(vec![
            TriplePattern::new(v(0), p(0), v(1)),
            TriplePattern::new(v(1), p(1), v(2)),
            TriplePattern::new(v(2), p(0), v(3)),
            TriplePattern::new(v(0), p(2), v(4)),
        ]);
        let parts = decompose(&q, 8);
        let mut collected: Vec<TriplePattern> = parts.iter().flat_map(|p| p.triples.clone()).collect();
        let mut original = q.triples.clone();
        collected.sort_by_key(|t| format!("{t:?}"));
        original.sort_by_key(|t| format!("{t:?}"));
        assert_eq!(collected, original);
    }

    #[test]
    fn already_small_star_is_untouched() {
        let q = Query::new(vec![
            TriplePattern::new(v(0), p(0), v(1)),
            TriplePattern::new(v(0), p(1), v(2)),
        ]);
        let parts = decompose(&q, 4);
        assert_eq!(parts.len(), 1);
        assert_eq!(parts[0], q);
    }

    #[test]
    fn shared_variables_counted() {
        let a = Query::new(vec![TriplePattern::new(v(0), p(0), v(1))]);
        let b = Query::new(vec![TriplePattern::new(v(1), p(1), v(2))]);
        let c = Query::new(vec![TriplePattern::new(v(1), p(2), v(0))]);
        let shared = shared_variables(&[a, b, c]);
        // ?1 appears in 3 parts, ?0 in 2, ?2 in 1 (dropped).
        assert!(shared.contains(&(VarId(1), 3)));
        assert!(shared.contains(&(VarId(0), 2)));
        assert_eq!(shared.len(), 2);
    }

    #[test]
    fn chain_stitching_follows_links_backward_too() {
        // Triples given out of order; decomposition should still form a chain.
        let q = Query::new(vec![
            TriplePattern::new(v(1), p(0), v(2)),
            TriplePattern::new(v(0), p(0), v(1)),
        ]);
        let parts = decompose(&q, 4);
        assert_eq!(parts.len(), 1);
        assert_eq!(parts[0].shape(), QueryShape::Chain);
        assert_eq!(parts[0].triples[0].s, v(0));
    }
}
