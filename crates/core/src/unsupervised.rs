//! LMKG-U: the unsupervised, data-driven estimator (paper §VI-B).
//!
//! A ResMADE autoregressive model is trained on *bound* subgraph patterns
//! (star tuples or chain walks) with per-term embeddings. At query time, the
//! joint density of the query's bound terms — with unbound positions
//! marginalized by **likelihood-weighted forward sampling** — is multiplied
//! by the tuple-space total `N` to yield the cardinality:
//! `card(q) = P(bound terms of q) · N`.
//!
//! Positions follow the pattern-bound term order `[n₁, p₁, n₂, …]`
//! (identical for stars and chains; only the tuple space differs).

use lmkg_data::sampler::{ChainSampler, SamplingStrategy, StarSampler};
use lmkg_nn::loss;
use lmkg_nn::optimizer::{Adam, Optimizer};
use lmkg_nn::quant::QuantMode;
use lmkg_nn::tensor::Matrix;
use lmkg_nn::workspace::Workspace;
use lmkg_nn::{Made, MadeConfig, QuantizedMade};
use lmkg_store::{counter, KnowledgeGraph, Query, QueryShape, VarId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

pub use crate::supervised::EpochStats;

/// Errors produced by LMKG-U.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LmkgUError {
    /// The node domain exceeds the configured limit — the YAGO situation:
    /// "LMKG-U is not able to learn the complete set of queries" (§VIII).
    DomainTooLarge {
        /// Number of distinct nodes in the graph.
        nodes: usize,
        /// Configured maximum.
        limit: usize,
    },
    /// Query topology does not match the model.
    WrongShape {
        /// Model topology.
        expected: QueryShape,
        /// Query topology.
        actual: QueryShape,
    },
    /// Query size does not match the model's tuple size.
    WrongSize {
        /// Model tuple size `k`.
        expected: usize,
        /// Query size.
        actual: usize,
    },
    /// A variable is repeated in a way the marginalization cannot express
    /// (e.g. the same variable used as two different objects).
    UnsupportedVariablePattern,
}

impl std::fmt::Display for LmkgUError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LmkgUError::DomainTooLarge { nodes, limit } => {
                write!(f, "node domain {nodes} exceeds LMKG-U limit {limit}")
            }
            LmkgUError::WrongShape { expected, actual } => {
                write!(f, "model answers {expected} queries, got {actual}")
            }
            LmkgUError::WrongSize { expected, actual } => {
                write!(f, "model answers size-{expected} queries, got size {actual}")
            }
            LmkgUError::UnsupportedVariablePattern => {
                write!(f, "repeated variable pattern not expressible by marginalization")
            }
        }
    }
}

impl std::error::Error for LmkgUError {}

/// LMKG-U hyperparameters.
#[derive(Debug, Clone)]
pub struct LmkgUConfig {
    /// Hidden width of the ResMADE.
    pub hidden: usize,
    /// Number of residual blocks.
    pub blocks: usize,
    /// Term embedding dimensionality (paper: 32).
    pub embed_dim: usize,
    /// Training epochs (paper: 5).
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Adam learning rate.
    pub learning_rate: f32,
    /// Number of bound patterns sampled for training.
    pub train_samples: usize,
    /// Pattern sampling strategy (§VII-A; the paper uses random walks).
    pub strategy: SamplingStrategy,
    /// Particles for likelihood-weighted forward sampling.
    pub particles: usize,
    /// Refuse construction above this node-domain size (the YAGO guard).
    pub max_node_domain: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for LmkgUConfig {
    fn default() -> Self {
        Self {
            hidden: 64,
            blocks: 2,
            embed_dim: 32,
            epochs: 5,
            batch_size: 256,
            learning_rate: 2e-3,
            train_samples: 10_000,
            strategy: SamplingStrategy::RandomWalk,
            particles: 256,
            max_node_domain: 500_000,
            seed: 0,
        }
    }
}

/// The unsupervised LMKG estimator for one `(shape, size)` pair — the
/// paper's LMKG-U grouping ("query size and type grouping", §VIII-B).
///
/// Trained (`&mut self`) once, then frozen: every estimation entry point
/// takes `&self` — the MADE forwards run through the shared-read inference
/// path with per-call workspaces, and the particle RNG is derived per query
/// (never shared state) — so a trained `LmkgU` behind an `Arc` serves
/// concurrent estimates without locks.
pub struct LmkgU {
    made: Made,
    shape: QueryShape,
    k: usize,
    n_total: f64,
    segments: Vec<usize>,
    cfg: LmkgUConfig,
    rng: StdRng,
}

impl LmkgU {
    /// Builds an untrained model for `shape` queries of exactly `k` triples.
    pub fn new(graph: &KnowledgeGraph, shape: QueryShape, k: usize, cfg: LmkgUConfig) -> Result<Self, LmkgUError> {
        assert!(
            matches!(shape, QueryShape::Star | QueryShape::Chain),
            "LMKG-U answers star/chain queries"
        );
        assert!(k >= 1);
        if graph.num_nodes() > cfg.max_node_domain {
            return Err(LmkgUError::DomainTooLarge {
                nodes: graph.num_nodes(),
                limit: cfg.max_node_domain,
            });
        }
        // Positions [n, p, n, p, n, …]: 2k+1 alternating node/predicate.
        let mut spaces = Vec::with_capacity(2 * k + 1);
        spaces.push(0);
        for _ in 0..k {
            spaces.push(1);
            spaces.push(0);
        }
        let made_cfg = MadeConfig {
            vocab_sizes: vec![graph.num_nodes().max(1), graph.num_preds().max(1)],
            spaces,
            hidden: cfg.hidden,
            blocks: cfg.blocks,
            embed_dim: cfg.embed_dim,
        };
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let made = Made::new(&mut rng, made_cfg);
        let segments = made.segments().to_vec();
        let n_total = match shape {
            QueryShape::Star => counter::star_tuple_total(graph, k),
            QueryShape::Chain => counter::chain_tuple_total(graph, k),
            _ => unreachable!(),
        };
        Ok(Self {
            made,
            shape,
            k,
            n_total,
            segments,
            cfg,
            rng,
        })
    }

    /// Reassembles an estimator from snapshot parts: the architecture is
    /// rebuilt deterministically from `cfg` exactly as [`LmkgU::new`] does
    /// (same seed → same init → same parameter visitation order), with the
    /// graph-dependent inputs (`vocab_sizes`, `n_total`) supplied explicitly
    /// so no [`KnowledgeGraph`] is needed at load time. The caller restores
    /// the trained weights afterwards via [`LmkgU::load_made_params`].
    pub(crate) fn from_parts(
        cfg: LmkgUConfig,
        shape: QueryShape,
        k: usize,
        n_total: f64,
        node_vocab: usize,
        pred_vocab: usize,
    ) -> Self {
        let mut spaces = Vec::with_capacity(2 * k + 1);
        spaces.push(0);
        for _ in 0..k {
            spaces.push(1);
            spaces.push(0);
        }
        let made_cfg = MadeConfig {
            vocab_sizes: vec![node_vocab.max(1), pred_vocab.max(1)],
            spaces,
            hidden: cfg.hidden,
            blocks: cfg.blocks,
            embed_dim: cfg.embed_dim,
        };
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let made = Made::new(&mut rng, made_cfg);
        let segments = made.segments().to_vec();
        Self {
            made,
            shape,
            k,
            n_total,
            segments,
            cfg,
            rng,
        }
    }

    /// The hyperparameters this estimator was built with.
    pub fn config(&self) -> &LmkgUConfig {
        &self.cfg
    }

    /// The underlying ResMADE (snapshots persist its parameter walk).
    pub(crate) fn made(&self) -> &Made {
        &self.made
    }

    /// The node/predicate vocabulary sizes the ResMADE was built over.
    pub(crate) fn vocab_sizes(&self) -> (usize, usize) {
        let v = &self.made.config().vocab_sizes;
        (v[0], v[1])
    }

    /// Restores the ResMADE parameters from a reader (snapshot restore).
    pub(crate) fn load_made_params<R: std::io::Read>(
        &mut self,
        r: &mut R,
    ) -> Result<(), lmkg_nn::serialize::LoadError> {
        lmkg_nn::serialize::load_params(&mut self.made, r)
    }

    /// The tuple size `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The model topology.
    pub fn shape(&self) -> QueryShape {
        self.shape
    }

    /// The tuple-space total `N` used to de-normalize densities.
    pub fn n_total(&self) -> f64 {
        self.n_total
    }

    /// Samples the training tuples per the configured strategy (§VII-A).
    pub fn sample_training_tuples(&mut self, graph: &KnowledgeGraph) -> Vec<Vec<usize>> {
        let mut out = Vec::with_capacity(self.cfg.train_samples);
        match self.shape {
            QueryShape::Star => {
                let sampler = StarSampler::new(graph, self.k, self.cfg.strategy);
                for _ in 0..self.cfg.train_samples {
                    out.push(sampler.sample(&mut self.rng).to_ids());
                }
            }
            QueryShape::Chain => {
                let sampler = ChainSampler::new(graph, self.k, self.cfg.strategy);
                let mut attempts = 0usize;
                while out.len() < self.cfg.train_samples && attempts < self.cfg.train_samples * 20 {
                    attempts += 1;
                    if let Some(t) = sampler.sample(&mut self.rng) {
                        out.push(t.to_ids());
                    }
                }
            }
            _ => unreachable!(),
        }
        out
    }

    /// Creates the Adam optimizer matching the config.
    pub fn make_optimizer(&self) -> Adam {
        Adam::new(self.cfg.learning_rate)
    }

    /// Runs one training epoch over `tuples`; returns the mean NLL.
    pub fn train_epoch(&mut self, tuples: &[Vec<usize>], opt: &mut Adam) -> f32 {
        let mut indices: Vec<usize> = (0..tuples.len()).collect();
        for i in (1..indices.len()).rev() {
            indices.swap(i, self.rng.gen_range(0..=i));
        }
        let mut total = 0.0f64;
        let mut batches = 0usize;
        for chunk in indices.chunks(self.cfg.batch_size.max(1)) {
            let batch: Vec<Vec<usize>> = chunk.iter().map(|&i| tuples[i].clone()).collect();
            let logits = self.made.forward_ids(&batch, true);
            let (l, grad) = loss::segmented_cross_entropy(&logits, &self.segments, &batch);
            self.made.backward_ids(&grad);
            opt.step(&mut self.made);
            total += f64::from(l);
            batches += 1;
        }
        if batches == 0 {
            0.0
        } else {
            (total / batches as f64) as f32
        }
    }

    /// Samples training data and trains for the configured epochs.
    pub fn train(&mut self, graph: &KnowledgeGraph) -> Vec<EpochStats> {
        let tuples = self.sample_training_tuples(graph);
        let mut opt = self.make_optimizer();
        let epochs = self.cfg.epochs;
        (0..epochs)
            .map(|epoch| EpochStats {
                epoch,
                loss: self.train_epoch(&tuples, &mut opt),
            })
            .collect()
    }

    /// Mean negative log-likelihood of `tuples` under the current model.
    pub fn nll(&self, tuples: &[Vec<usize>]) -> f32 {
        let mut ws = Workspace::new();
        let logits = self.made.forward_ids_infer(tuples, &mut ws);
        loss::segmented_cross_entropy(&logits, &self.segments, tuples).0
    }

    /// Maps a query onto per-position bound values.
    fn query_bounds(&self, query: &Query) -> Result<Vec<Option<usize>>, LmkgUError> {
        query_bounds_impl(self.shape, self.k, query)
    }
}

/// Maps a query onto per-position bound values for a `(shape, k)` model —
/// shared by [`LmkgU`] and [`QuantizedLmkgU`].
fn query_bounds_impl(shape: QueryShape, k: usize, query: &Query) -> Result<Vec<Option<usize>>, LmkgUError> {
    let actual = query.shape();
    let compatible = actual == shape || (actual == QueryShape::Single && k == 1);
    if !compatible {
        return Err(LmkgUError::WrongShape {
            expected: shape,
            actual,
        });
    }
    if query.size() != k {
        return Err(LmkgUError::WrongSize {
            expected: k,
            actual: query.size(),
        });
    }

    let positions = 2 * k + 1;
    let mut bounds = vec![None; positions];
    // Track variables: structural sharing (star center, chain links) is
    // expected; any other reuse cannot be expressed by marginalization.
    let mut seen_vars: Vec<VarId> = Vec::new();
    let check_var = |v: VarId, structural: bool, seen: &mut Vec<VarId>| {
        if seen.contains(&v) {
            structural
        } else {
            seen.push(v);
            true
        }
    };

    match shape {
        QueryShape::Star => {
            let center = query.triples[0].s;
            if let Some(v) = center.var() {
                check_var(v, true, &mut seen_vars);
            }
            bounds[0] = center.bound().map(|n| n.index());
            for (i, t) in query.triples.iter().enumerate() {
                bounds[1 + 2 * i] = t.p.bound().map(|p| p.index());
                bounds[2 + 2 * i] = t.o.bound().map(|o| o.index());
                if let Some(v) = t.p.var() {
                    if !check_var(v, false, &mut seen_vars) {
                        return Err(LmkgUError::UnsupportedVariablePattern);
                    }
                }
                if let Some(v) = t.o.var() {
                    let is_center = center.var() == Some(v);
                    if is_center || !check_var(v, false, &mut seen_vars) {
                        return Err(LmkgUError::UnsupportedVariablePattern);
                    }
                }
            }
        }
        QueryShape::Chain => {
            bounds[0] = query.triples[0].s.bound().map(|n| n.index());
            if let Some(v) = query.triples[0].s.var() {
                check_var(v, true, &mut seen_vars);
            }
            for (i, t) in query.triples.iter().enumerate() {
                bounds[1 + 2 * i] = t.p.bound().map(|p| p.index());
                bounds[2 + 2 * i] = t.o.bound().map(|o| o.index());
                if let Some(v) = t.p.var() {
                    if !check_var(v, false, &mut seen_vars) {
                        return Err(LmkgUError::UnsupportedVariablePattern);
                    }
                }
                if let Some(v) = t.o.var() {
                    // The object var is structurally shared with the next
                    // subject; it must not have been seen before.
                    if seen_vars.contains(&v) {
                        return Err(LmkgUError::UnsupportedVariablePattern);
                    }
                    seen_vars.push(v);
                }
            }
        }
        _ => unreachable!(),
    }
    Ok(bounds)
}

impl LmkgU {
    /// Estimates the cardinality of `query` via likelihood-weighted forward
    /// sampling (§VI-B).
    pub fn estimate_query(&self, query: &Query) -> Result<f64, LmkgUError> {
        let bounds = self.query_bounds(query)?;
        Ok(self.estimate_bounds(&bounds))
    }

    /// Estimates a batch of queries, running **one** sliced MADE forward per
    /// autoregressive position over all queries' particles together instead
    /// of one forward per (query, position). Per-query results — including
    /// shape/size rejections — are identical to looping
    /// [`LmkgU::estimate_query`], because particle RNG streams are derived
    /// per query (`particle_rng_impl`) and the network kernels are
    /// row-independent.
    pub fn estimate_query_batch(&self, queries: &[&Query]) -> Vec<Result<f64, LmkgUError>> {
        let parsed: Vec<Result<Vec<Option<usize>>, LmkgUError>> =
            queries.iter().map(|q| self.query_bounds(q)).collect();
        let accepted: Vec<Vec<Option<usize>>> = parsed.iter().filter_map(|r| r.as_ref().ok().cloned()).collect();
        let mut estimates = self.estimate_bounds_batch(&accepted).into_iter();
        parsed
            .into_iter()
            .map(|r| r.map(|_| estimates.next().expect("one estimate per accepted query")))
            .collect()
    }

    /// Core progressive-sampling estimator over per-position bound values.
    pub fn estimate_bounds(&self, bounds: &[Option<usize>]) -> f64 {
        estimate_bounds_impl(
            &self.made,
            &self.segments,
            self.n_total,
            self.cfg.particles,
            self.cfg.seed,
            bounds,
        )
    }

    /// Batched [`LmkgU::estimate_bounds`]: all queries' particles share one
    /// ids matrix, so every autoregressive position costs a single sliced
    /// forward for the whole batch.
    pub fn estimate_bounds_batch(&self, bounds_list: &[Vec<Option<usize>>]) -> Vec<f64> {
        estimate_bounds_batch_impl(
            &self.made,
            &self.segments,
            self.n_total,
            self.cfg.particles,
            self.cfg.seed,
            bounds_list,
        )
    }

    /// Scalar parameter count (read-only walk).
    pub fn param_count(&self) -> usize {
        self.made.param_count()
    }

    /// Model size in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.made.memory_bytes()
    }

    /// One-shot quantization of the trained estimator: the ResMADE drops to
    /// int8 (per-channel scales) or bf16 weights, the tuple-space total and
    /// routing metadata carry over, and the whole likelihood-weighted
    /// sampling core is shared with the f32 path — only the network forwards
    /// differ.
    pub fn quantized(&self, mode: QuantMode) -> QuantizedLmkgU {
        QuantizedLmkgU {
            made: self.made.quantized(mode),
            shape: self.shape,
            k: self.k,
            n_total: self.n_total,
            segments: self.segments.clone(),
            particles: self.cfg.particles,
            seed: self.cfg.seed,
        }
    }
}

/// The one network operation the likelihood-weighted sampler needs: a sliced
/// logit-segment forward. Implemented by the f32 and quantized ResMADE so
/// [`estimate_bounds_impl`]/[`estimate_bounds_batch_impl`] serve both.
trait SegmentForward {
    fn segment(&self, ids: &[Vec<usize>], pos: usize, ws: &mut Workspace) -> Matrix;
}

impl SegmentForward for Made {
    fn segment(&self, ids: &[Vec<usize>], pos: usize, ws: &mut Workspace) -> Matrix {
        self.forward_ids_segment(ids, pos, ws)
    }
}

impl SegmentForward for QuantizedMade {
    fn segment(&self, ids: &[Vec<usize>], pos: usize, ws: &mut Workspace) -> Matrix {
        self.forward_ids_segment(ids, pos, ws)
    }
}

/// The RNG stream driving likelihood-weighted sampling for one query.
///
/// Derived from the model seed and the query's bound pattern rather than
/// drawn from the shared training RNG, so the stream is a function of
/// `(seed, bounds)` only, never of call history — the property that makes
/// `estimate` reproducible and lets `estimate_batch` return exactly what a
/// per-query loop would.
fn particle_rng_impl(seed: u64, bounds: &[Option<usize>]) -> StdRng {
    let mut h = seed ^ 0x517c_c1b7_2722_0a95;
    for b in bounds {
        let v = match b {
            Some(x) => *x as u64 + 1,
            None => 0,
        };
        h = (h ^ v).wrapping_mul(0x0000_0100_0000_01B3).rotate_left(17);
    }
    StdRng::seed_from_u64(h)
}

/// The progressive-sampling core behind [`LmkgU::estimate_bounds`], generic
/// over the network.
fn estimate_bounds_impl<M: SegmentForward>(
    made: &M,
    segments: &[usize],
    n_total: f64,
    particles: usize,
    seed: u64,
    bounds: &[Option<usize>],
) -> f64 {
    assert_eq!(bounds.len(), segments.len());
    let Some(last_bound) = bounds.iter().rposition(Option::is_some) else {
        // No bound term: the query matches every tuple.
        return n_total.max(1.0);
    };
    let particles = particles.max(1);
    let mut rng = particle_rng_impl(seed, bounds);
    let mut ws = Workspace::new();
    let mut ids = vec![vec![0usize; segments.len()]; particles];
    let mut log_w = vec![0.0f64; particles];

    for pos in 0..=last_bound {
        // Only the current position's logit segment is needed — the
        // sliced forward avoids materializing the full (huge) output
        // layer at every autoregressive step.
        let logits = made.segment(&ids, pos, &mut ws);
        match bounds[pos] {
            Some(b) => {
                for (r, ids_row) in ids.iter_mut().enumerate() {
                    log_w[r] += f64::from(log_softmax_at(logits.row(r), b));
                    ids_row[pos] = b;
                }
            }
            None => {
                for (r, ids_row) in ids.iter_mut().enumerate() {
                    ids_row[pos] = sample_categorical(logits.row(r), &mut rng);
                }
            }
        }
        ws.recycle(logits);
    }

    let mean_w: f64 = log_w.iter().map(|&lw| lw.exp()).sum::<f64>() / particles as f64;
    (mean_w * n_total).max(1.0)
}

/// The batched progressive-sampling core behind
/// [`LmkgU::estimate_bounds_batch`], generic over the network.
fn estimate_bounds_batch_impl<M: SegmentForward>(
    made: &M,
    segments: &[usize],
    n_total: f64,
    particles: usize,
    seed: u64,
    bounds_list: &[Vec<Option<usize>>],
) -> Vec<f64> {
    let positions = segments.len();
    let particles = particles.max(1);
    let mut out = vec![0.0f64; bounds_list.len()];

    // Fully-unbound queries short-circuit to the tuple-space total.
    let mut active: Vec<usize> = Vec::new();
    let mut last_bounds: Vec<usize> = Vec::new();
    for (i, bounds) in bounds_list.iter().enumerate() {
        assert_eq!(bounds.len(), positions);
        match bounds.iter().rposition(Option::is_some) {
            Some(lb) => {
                active.push(i);
                last_bounds.push(lb);
            }
            None => out[i] = n_total.max(1.0),
        }
    }
    if active.is_empty() {
        return out;
    }

    let max_last = *last_bounds.iter().max().expect("non-empty active set");
    let mut ws = Workspace::new();
    let mut rngs: Vec<StdRng> = active
        .iter()
        .map(|&i| particle_rng_impl(seed, &bounds_list[i]))
        .collect();
    let mut ids = vec![vec![0usize; positions]; active.len() * particles];
    let mut log_w = vec![0.0f64; active.len() * particles];

    for pos in 0..=max_last {
        // Queries past their last bound position draw nothing more —
        // compact them out of the forward so a batch skewed toward
        // short queries does not pay full-width forwards to the end.
        // Per-row results are batch-shape independent (the parity
        // property), so compaction cannot change any estimate.
        let live: Vec<usize> = (0..active.len()).filter(|&qi| last_bounds[qi] >= pos).collect();
        let logits = if live.len() == active.len() {
            // Homogeneous batch: everyone is live, forward in place
            // without copying any rows.
            made.segment(&ids, pos, &mut ws)
        } else {
            let live_ids: Vec<Vec<usize>> = live
                .iter()
                .flat_map(|&qi| ids[qi * particles..(qi + 1) * particles].iter().cloned())
                .collect();
            made.segment(&live_ids, pos, &mut ws)
        };
        let compacted = live.len() != active.len();
        for (slot, &qi) in live.iter().enumerate() {
            let row0 = qi * particles;
            let logit0 = if compacted { slot * particles } else { row0 };
            match bounds_list[active[qi]][pos] {
                Some(b) => {
                    for (off, ids_row) in ids[row0..row0 + particles].iter_mut().enumerate() {
                        log_w[row0 + off] += f64::from(log_softmax_at(logits.row(logit0 + off), b));
                        ids_row[pos] = b;
                    }
                }
                None => {
                    for (off, ids_row) in ids[row0..row0 + particles].iter_mut().enumerate() {
                        ids_row[pos] = sample_categorical(logits.row(logit0 + off), &mut rngs[qi]);
                    }
                }
            }
        }
        ws.recycle(logits);
    }

    for (qi, &i) in active.iter().enumerate() {
        let row0 = qi * particles;
        let mean_w: f64 = log_w[row0..row0 + particles].iter().map(|&lw| lw.exp()).sum::<f64>() / particles as f64;
        out[i] = (mean_w * n_total).max(1.0);
    }
    out
}

/// A frozen, quantized LMKG-U produced by [`LmkgU::quantized`]: the same
/// likelihood-weighted sampling core, particle RNG derivation, and routing
/// metadata over an int8/bf16 ResMADE. Owns no f32 weights, so
/// [`QuantizedLmkgU::memory_bytes`] reports the true quantized footprint.
/// Shared-read (`&self`) like its original.
pub struct QuantizedLmkgU {
    made: QuantizedMade,
    shape: QueryShape,
    k: usize,
    n_total: f64,
    segments: Vec<usize>,
    particles: usize,
    seed: u64,
}

impl QuantizedLmkgU {
    /// Reassembles a quantized estimator from snapshot parts (segments are
    /// recovered from the quantized ResMADE itself).
    pub(crate) fn from_parts(
        made: QuantizedMade,
        shape: QueryShape,
        k: usize,
        n_total: f64,
        particles: usize,
        seed: u64,
    ) -> Self {
        let segments = made.segments().to_vec();
        Self {
            made,
            shape,
            k,
            n_total,
            segments,
            particles,
            seed,
        }
    }

    /// The quantized ResMADE (snapshots persist it via its own format).
    pub(crate) fn made(&self) -> &QuantizedMade {
        &self.made
    }

    /// Particle count for likelihood-weighted sampling.
    pub(crate) fn particles(&self) -> usize {
        self.particles
    }

    /// The particle-RNG seed.
    pub(crate) fn seed(&self) -> u64 {
        self.seed
    }

    /// The quantization mode this estimator was built with.
    pub fn mode(&self) -> QuantMode {
        self.made.mode()
    }

    /// The tuple size `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The model topology.
    pub fn shape(&self) -> QueryShape {
        self.shape
    }

    /// The tuple-space total `N` used to de-normalize densities.
    pub fn n_total(&self) -> f64 {
        self.n_total
    }

    /// Estimates the cardinality of `query`; see [`LmkgU::estimate_query`].
    pub fn estimate_query(&self, query: &Query) -> Result<f64, LmkgUError> {
        let bounds = query_bounds_impl(self.shape, self.k, query)?;
        Ok(self.estimate_bounds(&bounds))
    }

    /// Batched estimation; see [`LmkgU::estimate_query_batch`].
    pub fn estimate_query_batch(&self, queries: &[&Query]) -> Vec<Result<f64, LmkgUError>> {
        let parsed: Vec<Result<Vec<Option<usize>>, LmkgUError>> = queries
            .iter()
            .map(|q| query_bounds_impl(self.shape, self.k, q))
            .collect();
        let accepted: Vec<Vec<Option<usize>>> = parsed.iter().filter_map(|r| r.as_ref().ok().cloned()).collect();
        let mut estimates = self.estimate_bounds_batch(&accepted).into_iter();
        parsed
            .into_iter()
            .map(|r| r.map(|_| estimates.next().expect("one estimate per accepted query")))
            .collect()
    }

    /// Core progressive-sampling estimator over per-position bound values.
    pub fn estimate_bounds(&self, bounds: &[Option<usize>]) -> f64 {
        estimate_bounds_impl(
            &self.made,
            &self.segments,
            self.n_total,
            self.particles,
            self.seed,
            bounds,
        )
    }

    /// Batched [`QuantizedLmkgU::estimate_bounds`].
    pub fn estimate_bounds_batch(&self, bounds_list: &[Vec<Option<usize>>]) -> Vec<f64> {
        estimate_bounds_batch_impl(
            &self.made,
            &self.segments,
            self.n_total,
            self.particles,
            self.seed,
            bounds_list,
        )
    }

    /// Scalar parameter count (weights, scales, biases, embeddings).
    pub fn param_count(&self) -> usize {
        self.made.param_count()
    }

    /// Model size in bytes at the quantized representation.
    pub fn memory_bytes(&self) -> usize {
        self.made.memory_bytes()
    }
}

impl crate::estimator::CardinalityEstimator for QuantizedLmkgU {
    fn name(&self) -> &str {
        match self.mode() {
            QuantMode::Int8 => "LMKG-U-int8",
            QuantMode::Bf16 => "LMKG-U-bf16",
        }
    }

    fn estimate(&self, query: &Query) -> f64 {
        self.estimate_query(query).unwrap_or(1.0)
    }

    fn estimate_batch(&self, queries: &[Query]) -> Vec<f64> {
        let refs: Vec<&Query> = queries.iter().collect();
        self.estimate_query_batch(&refs)
            .into_iter()
            .map(|r| r.unwrap_or(1.0))
            .collect()
    }

    fn memory_bytes(&self) -> usize {
        QuantizedLmkgU::memory_bytes(self)
    }
}

impl crate::estimator::CardinalityEstimator for LmkgU {
    fn name(&self) -> &str {
        "LMKG-U"
    }

    /// Estimates via [`LmkgU::estimate_query`]; queries this model cannot
    /// answer (wrong type/size, unsupported variable pattern) report the
    /// neutral estimate 1.
    fn estimate(&self, query: &Query) -> f64 {
        self.estimate_query(query).unwrap_or(1.0)
    }

    /// Batched override: one sliced forward per autoregressive position for
    /// the whole batch via [`LmkgU::estimate_query_batch`].
    fn estimate_batch(&self, queries: &[Query]) -> Vec<f64> {
        let refs: Vec<&Query> = queries.iter().collect();
        self.estimate_query_batch(&refs)
            .into_iter()
            .map(|r| r.unwrap_or(1.0))
            .collect()
    }

    fn memory_bytes(&self) -> usize {
        LmkgU::memory_bytes(self)
    }
}

/// Stable `log softmax(seg)[target]`.
fn log_softmax_at(seg: &[f32], target: usize) -> f32 {
    let max = seg.iter().fold(f32::NEG_INFINITY, |m, &x| m.max(x));
    let sum: f32 = seg.iter().map(|&x| (x - max).exp()).sum();
    seg[target] - max - sum.ln()
}

/// Samples an index from softmax(seg).
fn sample_categorical<R: Rng>(seg: &[f32], rng: &mut R) -> usize {
    let max = seg.iter().fold(f32::NEG_INFINITY, |m, &x| m.max(x));
    let mut total = 0.0f64;
    for &x in seg {
        total += f64::from((x - max).exp());
    }
    let mut u = rng.gen::<f64>() * total;
    for (i, &x) in seg.iter().enumerate() {
        u -= f64::from((x - max).exp());
        if u <= 0.0 {
            return i;
        }
    }
    seg.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use lmkg_store::{GraphBuilder, NodeId, NodeTerm, PredId, PredTerm, TriplePattern};

    fn v(i: u16) -> NodeTerm {
        NodeTerm::Var(VarId(i))
    }
    fn n(i: u32) -> NodeTerm {
        NodeTerm::Bound(NodeId(i))
    }
    fn p(i: u32) -> PredTerm {
        PredTerm::Bound(PredId(i))
    }

    /// A small but structured graph: two "genres" with different popularity.
    fn graph() -> lmkg_store::KnowledgeGraph {
        let mut b = GraphBuilder::new();
        for i in 0..12 {
            let book = format!("book{i}");
            let author = format!("author{}", i % 3);
            b.add(&book, "hasAuthor", &author);
            let genre = if i < 9 { "horror" } else { "fantasy" };
            b.add(&book, "genre", genre);
        }
        b.build()
    }

    fn quick_cfg() -> LmkgUConfig {
        LmkgUConfig {
            hidden: 32,
            blocks: 1,
            embed_dim: 8,
            epochs: 40,
            batch_size: 128,
            learning_rate: 5e-3,
            train_samples: 4000,
            strategy: SamplingStrategy::Uniform,
            particles: 512,
            seed: 1,
            ..Default::default()
        }
    }

    fn trained_star_model(k: usize) -> (lmkg_store::KnowledgeGraph, LmkgU) {
        let g = graph();
        let mut m = LmkgU::new(&g, QueryShape::Star, k, quick_cfg()).unwrap();
        m.train(&g);
        (g, m)
    }

    #[test]
    fn n_total_matches_counter() {
        let g = graph();
        let m = LmkgU::new(&g, QueryShape::Star, 2, quick_cfg()).unwrap();
        assert_eq!(m.n_total(), counter::star_tuple_total(&g, 2));
        let c = LmkgU::new(&g, QueryShape::Chain, 2, quick_cfg()).unwrap();
        assert_eq!(c.n_total(), counter::chain_tuple_total(&g, 2));
    }

    #[test]
    fn training_reduces_nll() {
        let g = graph();
        let mut m = LmkgU::new(&g, QueryShape::Star, 2, quick_cfg()).unwrap();
        let tuples = m.sample_training_tuples(&g);
        let before = m.nll(&tuples[..500.min(tuples.len())]);
        let mut opt = m.make_optimizer();
        for _ in 0..10 {
            m.train_epoch(&tuples, &mut opt);
        }
        let after = m.nll(&tuples[..500.min(tuples.len())]);
        assert!(after < before, "NLL {before} → {after}");
    }

    #[test]
    fn estimates_fully_unbound_query_as_n_total() {
        let (_, m) = trained_star_model(2);
        let q = Query::new(vec![
            TriplePattern::new(v(0), PredTerm::Var(VarId(5)), v(1)),
            TriplePattern::new(v(0), PredTerm::Var(VarId(6)), v(2)),
        ]);
        let est = m.estimate_query(&q).unwrap();
        assert_eq!(est, m.n_total());
    }

    #[test]
    fn estimates_star_query_close_to_exact() {
        let (g, m) = trained_star_model(2);
        let has_author = PredId(g.preds().get("hasAuthor").unwrap());
        let genre = PredId(g.preds().get("genre").unwrap());
        let horror = NodeId(g.nodes().get("horror").unwrap());

        // ?x hasAuthor ?a . ?x genre horror  → exact = 9.
        let q = Query::new(vec![
            TriplePattern::new(v(0), PredTerm::Bound(has_author), v(1)),
            TriplePattern::new(v(0), PredTerm::Bound(genre), NodeTerm::Bound(horror)),
        ]);
        let exact = counter::cardinality(&g, &q) as f64;
        let est = m.estimate_query(&q).unwrap();
        let qerr = (est / exact).max(exact / est);
        assert!(qerr < 2.0, "estimate {est} vs exact {exact} (q-error {qerr})");
    }

    #[test]
    fn estimates_bound_only_query() {
        let (g, m) = trained_star_model(2);
        let has_author = PredId(g.preds().get("hasAuthor").unwrap());
        let genre = PredId(g.preds().get("genre").unwrap());
        let horror = NodeId(g.nodes().get("horror").unwrap());
        let a0 = NodeId(g.nodes().get("author0").unwrap());
        // ?x hasAuthor author0 . ?x genre horror → books by author0 in horror.
        let q = Query::new(vec![
            TriplePattern::new(v(0), PredTerm::Bound(has_author), NodeTerm::Bound(a0)),
            TriplePattern::new(v(0), PredTerm::Bound(genre), NodeTerm::Bound(horror)),
        ]);
        let exact = counter::cardinality(&g, &q) as f64;
        let est = m.estimate_query(&q).unwrap();
        let qerr = (est / exact).max(exact / est);
        assert!(qerr < 3.0, "estimate {est} vs exact {exact} (q-error {qerr})");
    }

    #[test]
    fn chain_model_estimates() {
        let g = graph();
        let mut m = LmkgU::new(&g, QueryShape::Chain, 1, quick_cfg()).unwrap();
        m.train(&g);
        let has_author = PredId(g.preds().get("hasAuthor").unwrap());
        // Single triple (?x hasAuthor ?y) — chain of length 1; exact = 12.
        let q = Query::new(vec![TriplePattern::new(v(0), PredTerm::Bound(has_author), v(1))]);
        let exact = counter::cardinality(&g, &q) as f64;
        let est = m.estimate_query(&q).unwrap();
        let qerr = (est / exact).max(exact / est);
        assert!(qerr < 2.0, "estimate {est} vs exact {exact}");
    }

    #[test]
    fn domain_guard_rejects_large_graphs() {
        let g = graph();
        let cfg = LmkgUConfig {
            max_node_domain: 3,
            ..quick_cfg()
        };
        match LmkgU::new(&g, QueryShape::Star, 2, cfg) {
            Err(LmkgUError::DomainTooLarge { .. }) => {}
            Err(other) => panic!("wrong error: {other}"),
            Ok(_) => panic!("guard did not trigger"),
        }
    }

    #[test]
    fn shape_and_size_mismatches_error() {
        let (_, m) = trained_star_model(2);
        // Chain query against star model.
        let chain = Query::new(vec![
            TriplePattern::new(v(0), p(0), v(1)),
            TriplePattern::new(v(1), p(1), v(2)),
        ]);
        assert!(matches!(m.estimate_query(&chain), Err(LmkgUError::WrongShape { .. })));
        // Star of the wrong size.
        let star3 = Query::new(vec![
            TriplePattern::new(v(0), p(0), v(1)),
            TriplePattern::new(v(0), p(1), v(2)),
            TriplePattern::new(v(0), p(0), v(3)),
        ]);
        assert!(matches!(m.estimate_query(&star3), Err(LmkgUError::WrongSize { .. })));
    }

    #[test]
    fn repeated_object_variable_unsupported() {
        let (_, m) = trained_star_model(2);
        let q = Query::new(vec![
            TriplePattern::new(v(0), p(0), v(1)),
            TriplePattern::new(v(0), p(1), v(1)),
        ]);
        assert_eq!(m.estimate_query(&q), Err(LmkgUError::UnsupportedVariablePattern));
    }

    #[test]
    fn estimate_is_deterministic_for_seed() {
        let g = graph();
        let build = || {
            let mut m = LmkgU::new(&g, QueryShape::Star, 2, quick_cfg()).unwrap();
            m.train(&g);
            m
        };
        let a = build();
        let b = build();
        let has_author = PredId(g.preds().get("hasAuthor").unwrap());
        let q = Query::new(vec![
            TriplePattern::new(v(0), PredTerm::Bound(has_author), v(1)),
            TriplePattern::new(v(0), PredTerm::Bound(has_author), n(2)),
        ]);
        assert_eq!(a.estimate_query(&q).unwrap(), b.estimate_query(&q).unwrap());
    }

    #[test]
    fn batch_estimates_match_per_query_bitwise() {
        let (g, m) = trained_star_model(2);
        let has_author = PredId(g.preds().get("hasAuthor").unwrap());
        let genre = PredId(g.preds().get("genre").unwrap());
        let horror = NodeId(g.nodes().get("horror").unwrap());
        let queries = vec![
            // Bound predicate + bound object.
            Query::new(vec![
                TriplePattern::new(v(0), PredTerm::Bound(has_author), v(1)),
                TriplePattern::new(v(0), PredTerm::Bound(genre), NodeTerm::Bound(horror)),
            ]),
            // Wrong shape: must error identically in both paths.
            Query::new(vec![
                TriplePattern::new(v(0), p(0), v(1)),
                TriplePattern::new(v(1), p(1), v(2)),
            ]),
            // Fully unbound: short-circuits to N.
            Query::new(vec![
                TriplePattern::new(v(0), PredTerm::Var(VarId(5)), v(1)),
                TriplePattern::new(v(0), PredTerm::Var(VarId(6)), v(2)),
            ]),
            // Bound predicates only.
            Query::new(vec![
                TriplePattern::new(v(0), PredTerm::Bound(has_author), v(1)),
                TriplePattern::new(v(0), PredTerm::Bound(genre), v(2)),
            ]),
        ];
        let refs: Vec<&Query> = queries.iter().collect();
        let batched = m.estimate_query_batch(&refs);
        for (q, b) in queries.iter().zip(&batched) {
            let single = m.estimate_query(q);
            assert_eq!(&single, b, "batched result must match per-query result");
        }
        // And through the trait, errors collapse to the neutral estimate.
        use crate::estimator::CardinalityEstimator;
        let trait_batched = m.estimate_batch(&queries);
        assert_eq!(trait_batched[1], 1.0);
        assert_eq!(trait_batched[2], m.n_total());
    }

    /// Quantized LMKG-U must stay close to the f32 model on the fixture
    /// workload (within 10% on the measured q-errors), keep batch/per-query
    /// bitwise parity, and actually shrink.
    #[test]
    fn quantized_estimates_track_f32_with_parity_and_shrink() {
        let (g, m) = trained_star_model(2);
        let has_author = PredId(g.preds().get("hasAuthor").unwrap());
        let genre = PredId(g.preds().get("genre").unwrap());
        let horror = NodeId(g.nodes().get("horror").unwrap());
        let queries = vec![
            Query::new(vec![
                TriplePattern::new(v(0), PredTerm::Bound(has_author), v(1)),
                TriplePattern::new(v(0), PredTerm::Bound(genre), NodeTerm::Bound(horror)),
            ]),
            Query::new(vec![
                TriplePattern::new(v(0), PredTerm::Bound(has_author), v(1)),
                TriplePattern::new(v(0), PredTerm::Bound(genre), v(2)),
            ]),
            Query::new(vec![
                TriplePattern::new(v(0), PredTerm::Var(VarId(5)), v(1)),
                TriplePattern::new(v(0), PredTerm::Var(VarId(6)), v(2)),
            ]),
        ];

        for mode in [QuantMode::Int8, QuantMode::Bf16] {
            let q = m.quantized(mode);
            assert_eq!(q.k(), m.k());
            assert_eq!(q.n_total(), m.n_total());
            for query in &queries {
                let f = m.estimate_query(query).unwrap();
                let e = q.estimate_query(query).unwrap();
                let ratio = (e / f).max(f / e);
                assert!(ratio < 1.10, "{mode:?}: estimate {e} drifted {ratio}× from f32 {f}");
            }
            // Batch = per-query loop, bitwise, including the unbound
            // short-circuit (the trait collapses errors to 1.0).
            let refs: Vec<&Query> = queries.iter().collect();
            let batched = q.estimate_query_batch(&refs);
            for (query, b) in queries.iter().zip(&batched) {
                assert_eq!(&q.estimate_query(query), b);
            }
            assert_eq!(*batched[2].as_ref().unwrap(), q.n_total());
            // Memory honesty: the quantized model is reported smaller.
            match mode {
                QuantMode::Int8 => assert!(q.memory_bytes() * 3 < m.memory_bytes()),
                QuantMode::Bf16 => assert!(q.memory_bytes() * 2 <= m.memory_bytes() + m.param_count()),
            }
        }
    }

    #[test]
    fn memory_scales_with_domain() {
        let g = graph();
        let small = LmkgU::new(&g, QueryShape::Star, 2, quick_cfg()).unwrap().param_count();
        let mut big_cfg = quick_cfg();
        big_cfg.hidden = 64;
        let big = LmkgU::new(&g, QueryShape::Star, 2, big_cfg).unwrap().param_count();
        assert!(big > small);
    }
}
