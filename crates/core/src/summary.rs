//! Lightweight per-predicate statistics retained by the framework after the
//! creation phase: they answer single-triple patterns (the degenerate case
//! no learned model is needed for) and provide the domain sizes used in
//! join-uniformity corrections during query decomposition.
//!
//! This is the classic RDF-engine statistics block (RDF-3X/Jena keep the
//! same counts) — *not* one of the learned models.

use lmkg_store::{KnowledgeGraph, Query, TriplePattern};

/// Per-predicate counts plus graph-level totals.
#[derive(Debug, Clone)]
pub struct GraphSummary {
    num_nodes: usize,
    num_preds: usize,
    num_triples: usize,
    /// Triples per predicate.
    pred_counts: Vec<u64>,
    /// Distinct subjects per predicate.
    pred_subjects: Vec<u64>,
    /// Distinct objects per predicate.
    pred_objects: Vec<u64>,
}

impl GraphSummary {
    /// Builds the summary in one pass over the predicate index.
    pub fn build(graph: &KnowledgeGraph) -> Self {
        let np = graph.num_preds();
        let mut pred_counts = vec![0u64; np];
        let mut pred_subjects = vec![0u64; np];
        let mut pred_objects = vec![0u64; np];
        for p in graph.pred_ids() {
            let pairs = graph.pred_pairs(p);
            pred_counts[p.index()] = pairs.len() as u64;
            // pairs are sorted by (s, o): distinct subjects by run-length.
            let mut subjects = 0u64;
            let mut last = None;
            for &(s, _) in pairs {
                if Some(s) != last {
                    subjects += 1;
                    last = Some(s);
                }
            }
            pred_subjects[p.index()] = subjects;
            let mut objects: Vec<u32> = pairs.iter().map(|&(_, o)| o.0).collect();
            objects.sort_unstable();
            objects.dedup();
            pred_objects[p.index()] = objects.len() as u64;
        }
        Self {
            num_nodes: graph.num_nodes(),
            num_preds: graph.num_preds(),
            num_triples: graph.num_triples(),
            pred_counts,
            pred_subjects,
            pred_objects,
        }
    }

    /// Reassembles a summary from snapshot parts. All three per-predicate
    /// vectors must have length `num_preds`.
    pub fn from_parts(
        num_nodes: usize,
        num_preds: usize,
        num_triples: usize,
        pred_counts: Vec<u64>,
        pred_subjects: Vec<u64>,
        pred_objects: Vec<u64>,
    ) -> Self {
        assert_eq!(pred_counts.len(), num_preds, "pred_counts length");
        assert_eq!(pred_subjects.len(), num_preds, "pred_subjects length");
        assert_eq!(pred_objects.len(), num_preds, "pred_objects length");
        Self {
            num_nodes,
            num_preds,
            num_triples,
            pred_counts,
            pred_subjects,
            pred_objects,
        }
    }

    /// Triples per predicate (snapshot persistence).
    pub fn pred_counts(&self) -> &[u64] {
        &self.pred_counts
    }

    /// Distinct subjects per predicate (snapshot persistence).
    pub fn pred_subjects(&self) -> &[u64] {
        &self.pred_subjects
    }

    /// Distinct objects per predicate (snapshot persistence).
    pub fn pred_objects(&self) -> &[u64] {
        &self.pred_objects
    }

    /// Number of distinct nodes (the join-variable domain size).
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of distinct predicates.
    pub fn num_preds(&self) -> usize {
        self.num_preds
    }

    /// Number of triples.
    pub fn num_triples(&self) -> usize {
        self.num_triples
    }

    /// Estimated matches of one triple pattern under uniformity.
    pub fn estimate_pattern(&self, t: &TriplePattern) -> f64 {
        let total = self.num_triples as f64;
        if total == 0.0 {
            return 0.0;
        }
        match t.p.bound() {
            Some(p) => {
                let i = p.index();
                let count = self.pred_counts[i] as f64;
                let subj_sel = if t.s.is_bound() {
                    1.0 / (self.pred_subjects[i].max(1) as f64)
                } else {
                    1.0
                };
                let obj_sel = if t.o.is_bound() {
                    1.0 / (self.pred_objects[i].max(1) as f64)
                } else {
                    1.0
                };
                (count * subj_sel * obj_sel).max(0.0)
            }
            None => {
                let subj_sel = if t.s.is_bound() {
                    1.0 / self.num_nodes.max(1) as f64
                } else {
                    1.0
                };
                let obj_sel = if t.o.is_bound() {
                    1.0 / self.num_nodes.max(1) as f64
                } else {
                    1.0
                };
                total * subj_sel * obj_sel
            }
        }
    }

    /// Independence-assumption estimate of a whole query: the product of
    /// per-pattern estimates divided by a uniform join correction per extra
    /// occurrence of each shared variable. This is the fallback estimator
    /// when no learned model applies (and mirrors what the early systems in
    /// §II did — hence its known underestimation bias).
    pub fn estimate_query_independent(&self, query: &Query) -> f64 {
        let mut est = 1.0f64;
        for t in &query.triples {
            est *= self.estimate_pattern(t).max(1e-12);
        }
        // Join-uniformity correction: each variable occurrence beyond the
        // first divides by its domain size.
        let mut node_vars: Vec<(lmkg_store::VarId, usize)> = Vec::new();
        let mut pred_vars: Vec<(lmkg_store::VarId, usize)> = Vec::new();
        fn bump(table: &mut Vec<(lmkg_store::VarId, usize)>, v: lmkg_store::VarId) {
            match table.iter_mut().find(|(u, _)| *u == v) {
                Some((_, c)) => *c += 1,
                None => table.push((v, 1)),
            }
        }
        for t in &query.triples {
            if let Some(v) = t.s.var() {
                bump(&mut node_vars, v);
            }
            if let Some(v) = t.o.var() {
                bump(&mut node_vars, v);
            }
            if let Some(v) = t.p.var() {
                bump(&mut pred_vars, v);
            }
        }
        for (_, c) in node_vars {
            if c > 1 {
                est /= (self.num_nodes.max(1) as f64).powi(c as i32 - 1);
            }
        }
        for (_, c) in pred_vars {
            if c > 1 {
                est /= (self.num_preds.max(1) as f64).powi(c as i32 - 1);
            }
        }
        est.max(1.0)
    }

    /// Memory footprint of the summary in bytes.
    pub fn memory_bytes(&self) -> usize {
        3 * self.pred_counts.len() * std::mem::size_of::<u64>() + std::mem::size_of::<Self>()
    }
}

/// The statistics block as a standalone estimator: cheap, deterministic, and
/// training-free. It is the fallback inside the framework, the reference
/// point in the experiment tables, and a convenient lightweight backend for
/// serving-layer tests that must not pay model-training time.
impl crate::estimator::CardinalityEstimator for GraphSummary {
    fn name(&self) -> &str {
        "summary"
    }

    fn estimate(&self, query: &Query) -> f64 {
        self.estimate_query_independent(query)
    }

    fn memory_bytes(&self) -> usize {
        GraphSummary::memory_bytes(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lmkg_store::{GraphBuilder, NodeId, NodeTerm, PredId, PredTerm, VarId};

    fn v(i: u16) -> NodeTerm {
        NodeTerm::Var(VarId(i))
    }

    fn graph() -> KnowledgeGraph {
        let mut b = GraphBuilder::new();
        b.add("a", "p", "x");
        b.add("a", "p", "y");
        b.add("b", "p", "x");
        b.add("a", "q", "x");
        b.build()
    }

    #[test]
    fn summary_implements_the_estimator_trait() {
        use crate::estimator::CardinalityEstimator;
        let s = GraphSummary::build(&graph());
        let q = Query::new(vec![TriplePattern::new(v(0), PredTerm::Bound(PredId(0)), v(1))]);
        let expected = s.estimate_query_independent(&q);
        assert_eq!(s.name(), "summary");
        assert_eq!(s.estimate(&q), expected);
        assert_eq!(s.estimate_batch(std::slice::from_ref(&q)), vec![expected]);
        assert!(CardinalityEstimator::memory_bytes(&s) > 0);
    }

    #[test]
    fn pattern_estimates_exact_for_unbound() {
        let s = GraphSummary::build(&graph());
        let p = PredTerm::Bound(PredId(0));
        let t = TriplePattern::new(v(0), p, v(1));
        assert_eq!(s.estimate_pattern(&t), 3.0);
    }

    #[test]
    fn bound_subject_divides_by_distinct_subjects() {
        let s = GraphSummary::build(&graph());
        let t = TriplePattern::new(NodeTerm::Bound(NodeId(0)), PredTerm::Bound(PredId(0)), v(0));
        // pred p: 3 triples over 2 distinct subjects → 1.5.
        assert!((s.estimate_pattern(&t) - 1.5).abs() < 1e-9);
    }

    #[test]
    fn bound_object_divides_by_distinct_objects() {
        let s = GraphSummary::build(&graph());
        let t = TriplePattern::new(v(0), PredTerm::Bound(PredId(0)), NodeTerm::Bound(NodeId(1)));
        // pred p: 3 triples over 2 distinct objects → 1.5.
        assert!((s.estimate_pattern(&t) - 1.5).abs() < 1e-9);
    }

    #[test]
    fn independent_query_estimate_is_positive_and_corrected() {
        let s = GraphSummary::build(&graph());
        // star: ?x p ?y . ?x q ?z — shared ?x → one division by num_nodes.
        let q = Query::new(vec![
            TriplePattern::new(v(0), PredTerm::Bound(PredId(0)), v(1)),
            TriplePattern::new(v(0), PredTerm::Bound(PredId(1)), v(2)),
        ]);
        let est = s.estimate_query_independent(&q);
        // 3 * 1 / 5 nodes = 0.6 → floored to 1.
        assert_eq!(est, 1.0);
    }

    #[test]
    fn summary_is_small() {
        let s = GraphSummary::build(&graph());
        assert!(s.memory_bytes() < 1000);
    }

    #[test]
    fn unbound_pred_uses_totals() {
        let s = GraphSummary::build(&graph());
        let t = TriplePattern::new(v(0), PredTerm::Var(VarId(9)), v(1));
        assert_eq!(s.estimate_pattern(&t), 4.0);
    }
}
