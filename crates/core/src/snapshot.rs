//! Whole-model-set snapshots: `Lmkg::save`/`Lmkg::load`.
//!
//! A snapshot captures everything the execution phase needs — the graph
//! summary, every model entry (f32 and quantized, with encoders, scalers,
//! outlier buffers, and hyperparameters), and the decomposition target — so
//! a server restarts from disk in milliseconds instead of retraining, and N
//! replicas can serve one trained artifact.
//!
//! Layered on the per-model formats the `lmkg-nn` crate already defines
//! (`LMKGNN1` param walks, `LMKGQT1` quantized stacks, `LMKGQM1` quantized
//! ResMADEs), framed as:
//!
//! ```text
//! magic "LMKGSET1" | u32 version | summary | u32 max_covered_size
//!                  | u32 entry-count | per entry: key, u8 variant, payload
//! ```
//!
//! All integers little-endian. Architectures are rebuilt deterministically
//! from the persisted hyperparameters (same seed → same init → same
//! parameter visitation order), so a loaded set answers every query
//! **bitwise-identically** to the set that was saved — the property the
//! cold-start parity tests pin.
//!
//! Checksums, generations, and atomic publish live one level up in
//! `lmkg-modelstore`; this module is the pure byte format.

use crate::framework::{Lmkg, ModelEntry, ModelKey};
use crate::outliers::OutlierBuffer;
use crate::summary::GraphSummary;
use crate::supervised::{LmkgS, LmkgSConfig, LossKind, QuantizedLmkgS, QueryEncoder};
use crate::unsupervised::{LmkgU, LmkgUConfig, QuantizedLmkgU};
use lmkg_data::sampler::SamplingStrategy;
use lmkg_encoder::{CardinalityScaler, SgEncoder};
use lmkg_nn::quant::QuantizedSequential;
use lmkg_nn::serialize::LoadError;
use lmkg_nn::QuantizedMade;
use lmkg_store::{NodeId, NodeTerm, PredId, PredTerm, Query, QueryShape, TriplePattern, VarId};
use std::fmt;
use std::io::{self, Read, Write};
use std::sync::Arc;

/// Leading bytes of every model-set snapshot.
pub const SNAPSHOT_MAGIC: &[u8; 8] = b"LMKGSET1";
const VERSION: u32 = 1;

/// Why saving or loading a model-set snapshot failed.
#[derive(Debug)]
pub enum SnapshotError {
    /// The underlying stream failed (including truncation mid-value).
    Io(io::Error),
    /// The stream does not begin with the `LMKGSET1` magic.
    BadMagic,
    /// The snapshot was written by an unknown format version.
    UnsupportedVersion(u32),
    /// A tag or count in the stream is outside its valid range.
    Corrupt(String),
    /// The model set contains something the format cannot persist.
    Unsupported(&'static str),
    /// Restoring a parameter walk failed (architecture drift).
    Params(LoadError),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot I/O failed: {e}"),
            SnapshotError::BadMagic => write!(f, "bad magic: not an LMKG model-set snapshot"),
            SnapshotError::UnsupportedVersion(v) => write!(f, "unsupported snapshot version {v}"),
            SnapshotError::Corrupt(what) => write!(f, "corrupt snapshot: {what}"),
            SnapshotError::Unsupported(what) => write!(f, "cannot snapshot: {what}"),
            SnapshotError::Params(e) => write!(f, "parameter restore failed: {e}"),
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Io(e) => Some(e),
            SnapshotError::Params(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for SnapshotError {
    fn from(e: io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

impl From<LoadError> for SnapshotError {
    fn from(e: LoadError) -> Self {
        match e {
            LoadError::Io(io) => SnapshotError::Io(io),
            other => SnapshotError::Params(other),
        }
    }
}

// ---------------------------------------------------------------------------
// Primitive (de)serializers.

fn w_u8<W: Write>(w: &mut W, v: u8) -> io::Result<()> {
    w.write_all(&[v])
}
fn w_u32<W: Write>(w: &mut W, v: u32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}
fn w_u64<W: Write>(w: &mut W, v: u64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}
fn w_f32<W: Write>(w: &mut W, v: f32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}
fn w_f64<W: Write>(w: &mut W, v: f64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}
fn r_u8<R: Read>(r: &mut R) -> io::Result<u8> {
    let mut b = [0u8; 1];
    r.read_exact(&mut b)?;
    Ok(b[0])
}
fn r_u32<R: Read>(r: &mut R) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}
fn r_u64<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}
fn r_f32<R: Read>(r: &mut R) -> io::Result<f32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(f32::from_le_bytes(b))
}
fn r_f64<R: Read>(r: &mut R) -> io::Result<f64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(f64::from_le_bytes(b))
}

fn r_usize<R: Read>(r: &mut R) -> io::Result<usize> {
    Ok(r_u64(r)? as usize)
}

fn shape_tag(shape: QueryShape) -> u8 {
    match shape {
        QueryShape::Star => 0,
        QueryShape::Chain => 1,
        QueryShape::Single => 2,
        QueryShape::Other => 3,
    }
}

fn shape_from_tag(tag: u8) -> Result<QueryShape, SnapshotError> {
    Ok(match tag {
        0 => QueryShape::Star,
        1 => QueryShape::Chain,
        2 => QueryShape::Single,
        3 => QueryShape::Other,
        other => return Err(SnapshotError::Corrupt(format!("query-shape tag {other}"))),
    })
}

fn write_query<W: Write>(w: &mut W, q: &Query) -> io::Result<()> {
    w_u32(w, q.triples.len() as u32)?;
    for t in &q.triples {
        let node = |w: &mut W, term: NodeTerm| -> io::Result<()> {
            match term {
                NodeTerm::Var(v) => {
                    w_u8(w, 0)?;
                    w_u32(w, u32::from(v.0))
                }
                NodeTerm::Bound(n) => {
                    w_u8(w, 1)?;
                    w_u32(w, n.0)
                }
            }
        };
        node(w, t.s)?;
        match t.p {
            PredTerm::Var(v) => {
                w_u8(w, 0)?;
                w_u32(w, u32::from(v.0))?;
            }
            PredTerm::Bound(p) => {
                w_u8(w, 1)?;
                w_u32(w, p.0)?;
            }
        }
        node(w, t.o)?;
    }
    Ok(())
}

fn read_query<R: Read>(r: &mut R) -> Result<Query, SnapshotError> {
    let n = r_u32(r)? as usize;
    if n > 1 << 20 {
        return Err(SnapshotError::Corrupt(format!("query of {n} triples")));
    }
    let mut triples = Vec::with_capacity(n);
    for _ in 0..n {
        let node = |r: &mut R| -> Result<NodeTerm, SnapshotError> {
            let tag = r_u8(r)?;
            let v = r_u32(r)?;
            Ok(match tag {
                0 => NodeTerm::Var(VarId(v as u16)),
                1 => NodeTerm::Bound(NodeId(v)),
                other => return Err(SnapshotError::Corrupt(format!("node-term tag {other}"))),
            })
        };
        let s = node(r)?;
        let ptag = r_u8(r)?;
        let pval = r_u32(r)?;
        let p = match ptag {
            0 => PredTerm::Var(VarId(pval as u16)),
            1 => PredTerm::Bound(PredId(pval)),
            other => return Err(SnapshotError::Corrupt(format!("pred-term tag {other}"))),
        };
        let o = node(r)?;
        triples.push(TriplePattern::new(s, p, o));
    }
    Ok(Query::new(triples))
}

fn write_outliers<W: Write>(w: &mut W, buf: &OutlierBuffer) -> io::Result<()> {
    w_u32(w, buf.capacity() as u32)?;
    let entries = buf.sorted_entries();
    w_u32(w, entries.len() as u32)?;
    for (q, card) in &entries {
        write_query(w, q)?;
        w_u64(w, *card)?;
    }
    Ok(())
}

fn read_outliers<R: Read>(r: &mut R) -> Result<OutlierBuffer, SnapshotError> {
    let capacity = r_u32(r)? as usize;
    let n = r_u32(r)? as usize;
    if n > capacity {
        return Err(SnapshotError::Corrupt(format!(
            "outlier buffer holds {n} entries over capacity {capacity}"
        )));
    }
    let mut entries = Vec::with_capacity(n);
    for _ in 0..n {
        let q = read_query(r)?;
        let card = r_u64(r)?;
        entries.push((q, card));
    }
    Ok(OutlierBuffer::from_entries(capacity, entries))
}

fn write_encoder<W: Write>(w: &mut W, enc: &QueryEncoder) -> Result<(), SnapshotError> {
    match enc {
        QueryEncoder::Sg(sg) => {
            w_u8(w, 0)?;
            w_u64(w, sg.node_domain() as u64)?;
            w_u64(w, sg.pred_domain() as u64)?;
            w_u32(w, sg.max_nodes as u32)?;
            w_u32(w, sg.max_edges as u32)?;
            Ok(())
        }
        // The framework only ever builds SG-encoded models; the
        // topology-specific ablation encoder stays out of the format.
        QueryEncoder::PatternBound(_) => Err(SnapshotError::Unsupported("pattern-bound encoder")),
    }
}

fn read_encoder<R: Read>(r: &mut R) -> Result<QueryEncoder, SnapshotError> {
    match r_u8(r)? {
        0 => {
            let node_domain = r_usize(r)?;
            let pred_domain = r_usize(r)?;
            let max_nodes = r_u32(r)? as usize;
            let max_edges = r_u32(r)? as usize;
            if max_nodes == 0 || max_edges == 0 {
                return Err(SnapshotError::Corrupt("zero-capacity SG encoder".into()));
            }
            Ok(QueryEncoder::Sg(SgEncoder::new(
                node_domain,
                pred_domain,
                max_nodes,
                max_edges,
            )))
        }
        other => Err(SnapshotError::Corrupt(format!("encoder tag {other}"))),
    }
}

fn write_scaler<W: Write>(w: &mut W, scaler: &CardinalityScaler) -> io::Result<()> {
    w_f64(w, scaler.min_log())?;
    w_f64(w, scaler.max_log())
}

fn read_scaler<R: Read>(r: &mut R) -> Result<CardinalityScaler, SnapshotError> {
    let min_log = r_f64(r)?;
    let max_log = r_f64(r)?;
    if !(min_log.is_finite() && max_log.is_finite() && max_log > min_log) {
        return Err(SnapshotError::Corrupt(format!("scaler bounds ({min_log}, {max_log})")));
    }
    Ok(CardinalityScaler::from_bounds(min_log, max_log))
}

fn write_s_config<W: Write>(w: &mut W, cfg: &LmkgSConfig) -> io::Result<()> {
    w_u32(w, cfg.hidden.len() as u32)?;
    for &h in &cfg.hidden {
        w_u32(w, h as u32)?;
    }
    w_f32(w, cfg.dropout)?;
    w_u32(w, cfg.epochs as u32)?;
    w_u32(w, cfg.batch_size as u32)?;
    w_f32(w, cfg.learning_rate)?;
    w_u8(
        w,
        match cfg.loss {
            LossKind::QError => 0,
            LossKind::Mse => 1,
            LossKind::LogQError => 2,
        },
    )?;
    w_f32(w, cfg.q_error_max_exp)?;
    w_f32(w, cfg.grad_clip)?;
    w_u32(w, cfg.outlier_buffer as u32)?;
    w_u64(w, cfg.seed)
}

fn read_s_config<R: Read>(r: &mut R) -> Result<LmkgSConfig, SnapshotError> {
    let n = r_u32(r)? as usize;
    if n == 0 || n > 64 {
        return Err(SnapshotError::Corrupt(format!("{n} hidden layers")));
    }
    let mut hidden = Vec::with_capacity(n);
    for _ in 0..n {
        hidden.push(r_u32(r)? as usize);
    }
    let dropout = r_f32(r)?;
    let epochs = r_u32(r)? as usize;
    let batch_size = r_u32(r)? as usize;
    let learning_rate = r_f32(r)?;
    let loss = match r_u8(r)? {
        0 => LossKind::QError,
        1 => LossKind::Mse,
        2 => LossKind::LogQError,
        other => return Err(SnapshotError::Corrupt(format!("loss tag {other}"))),
    };
    let q_error_max_exp = r_f32(r)?;
    let grad_clip = r_f32(r)?;
    let outlier_buffer = r_u32(r)? as usize;
    let seed = r_u64(r)?;
    Ok(LmkgSConfig {
        hidden,
        dropout,
        epochs,
        batch_size,
        learning_rate,
        loss,
        q_error_max_exp,
        grad_clip,
        outlier_buffer,
        seed,
    })
}

fn write_u_config<W: Write>(w: &mut W, cfg: &LmkgUConfig) -> io::Result<()> {
    w_u32(w, cfg.hidden as u32)?;
    w_u32(w, cfg.blocks as u32)?;
    w_u32(w, cfg.embed_dim as u32)?;
    w_u32(w, cfg.epochs as u32)?;
    w_u32(w, cfg.batch_size as u32)?;
    w_f32(w, cfg.learning_rate)?;
    w_u64(w, cfg.train_samples as u64)?;
    w_u8(
        w,
        match cfg.strategy {
            SamplingStrategy::RandomWalk => 0,
            SamplingStrategy::Uniform => 1,
        },
    )?;
    w_u32(w, cfg.particles as u32)?;
    w_u64(w, cfg.max_node_domain as u64)?;
    w_u64(w, cfg.seed)
}

fn read_u_config<R: Read>(r: &mut R) -> Result<LmkgUConfig, SnapshotError> {
    let hidden = r_u32(r)? as usize;
    let blocks = r_u32(r)? as usize;
    let embed_dim = r_u32(r)? as usize;
    let epochs = r_u32(r)? as usize;
    let batch_size = r_u32(r)? as usize;
    let learning_rate = r_f32(r)?;
    let train_samples = r_usize(r)?;
    let strategy = match r_u8(r)? {
        0 => SamplingStrategy::RandomWalk,
        1 => SamplingStrategy::Uniform,
        other => return Err(SnapshotError::Corrupt(format!("sampling-strategy tag {other}"))),
    };
    let particles = r_u32(r)? as usize;
    let max_node_domain = r_usize(r)?;
    let seed = r_u64(r)?;
    Ok(LmkgUConfig {
        hidden,
        blocks,
        embed_dim,
        epochs,
        batch_size,
        learning_rate,
        train_samples,
        strategy,
        particles,
        max_node_domain,
        seed,
    })
}

// ---------------------------------------------------------------------------
// Per-entry payloads.

fn write_entry<W: Write>(w: &mut W, entry: &ModelEntry) -> Result<(), SnapshotError> {
    match entry {
        ModelEntry::S(m) => {
            w_u8(w, 0)?;
            write_encoder(w, m.encoder())?;
            write_s_config(w, m.config())?;
            match m.scaler() {
                Some(s) => {
                    w_u8(w, 1)?;
                    write_scaler(w, s)?;
                }
                None => w_u8(w, 0)?,
            }
            write_outliers(w, m.outliers())?;
            m.save_params(w)?;
        }
        ModelEntry::U(m) => {
            w_u8(w, 1)?;
            write_u_config(w, m.config())?;
            w_u8(w, shape_tag(m.shape()))?;
            w_u32(w, m.k() as u32)?;
            w_f64(w, m.n_total())?;
            let (nodes, preds) = m.vocab_sizes();
            w_u64(w, nodes as u64)?;
            w_u64(w, preds as u64)?;
            lmkg_nn::serialize::save_params(m.made(), w)?;
        }
        ModelEntry::QuantS(m) => {
            w_u8(w, 2)?;
            write_encoder(w, m.encoder())?;
            write_scaler(w, &m.scaler())?;
            write_outliers(w, m.outliers())?;
            m.model().save(w)?;
        }
        ModelEntry::QuantU(m) => {
            w_u8(w, 3)?;
            w_u8(w, shape_tag(m.shape()))?;
            w_u32(w, m.k() as u32)?;
            w_f64(w, m.n_total())?;
            w_u32(w, m.particles() as u32)?;
            w_u64(w, m.seed())?;
            m.made().save(w)?;
        }
    }
    Ok(())
}

fn read_entry<R: Read>(r: &mut R) -> Result<ModelEntry, SnapshotError> {
    match r_u8(r)? {
        0 => {
            let encoder = read_encoder(r)?;
            let cfg = read_s_config(r)?;
            let scaler = match r_u8(r)? {
                0 => None,
                1 => Some(read_scaler(r)?),
                other => return Err(SnapshotError::Corrupt(format!("scaler flag {other}"))),
            };
            let outliers = read_outliers(r)?;
            let mut model = LmkgS::new(encoder, cfg);
            model.load_params(r).map_err(|e| {
                // `LmkgS::load_params` folds the typed error into io; the
                // stream position is lost either way, so Io is faithful.
                SnapshotError::Io(e)
            })?;
            if let Some(s) = scaler {
                model.set_scaler(s);
            }
            model.set_outliers(outliers);
            Ok(ModelEntry::S(model))
        }
        1 => {
            let cfg = read_u_config(r)?;
            let shape = shape_from_tag(r_u8(r)?)?;
            if !matches!(shape, QueryShape::Star | QueryShape::Chain) {
                return Err(SnapshotError::Corrupt(format!("LMKG-U over {shape} queries")));
            }
            let k = r_u32(r)? as usize;
            if k == 0 {
                return Err(SnapshotError::Corrupt("LMKG-U tuple size 0".into()));
            }
            let n_total = r_f64(r)?;
            let node_vocab = r_usize(r)?;
            let pred_vocab = r_usize(r)?;
            let mut model = LmkgU::from_parts(cfg, shape, k, n_total, node_vocab, pred_vocab);
            model.load_made_params(r)?;
            Ok(ModelEntry::U(model))
        }
        2 => {
            let encoder = read_encoder(r)?;
            let scaler = read_scaler(r)?;
            let outliers = read_outliers(r)?;
            let model = QuantizedSequential::load(r)?;
            Ok(ModelEntry::QuantS(QuantizedLmkgS::from_parts(
                encoder, model, scaler, outliers,
            )))
        }
        3 => {
            let shape = shape_from_tag(r_u8(r)?)?;
            let k = r_u32(r)? as usize;
            let n_total = r_f64(r)?;
            let particles = r_u32(r)? as usize;
            let seed = r_u64(r)?;
            let made = QuantizedMade::load(r)?;
            Ok(ModelEntry::QuantU(QuantizedLmkgU::from_parts(
                made, shape, k, n_total, particles, seed,
            )))
        }
        other => Err(SnapshotError::Corrupt(format!("model-entry tag {other}"))),
    }
}

fn write_key<W: Write>(w: &mut W, key: &ModelKey) -> io::Result<()> {
    match key.shape {
        None => w_u8(w, 0)?,
        Some(s) => w_u8(w, 1 + shape_tag(s))?,
    }
    w_u32(w, key.min_size as u32)?;
    w_u32(w, key.max_size as u32)
}

fn read_key<R: Read>(r: &mut R) -> Result<ModelKey, SnapshotError> {
    let shape = match r_u8(r)? {
        0 => None,
        tag => Some(shape_from_tag(tag - 1)?),
    };
    let min_size = r_u32(r)? as usize;
    let max_size = r_u32(r)? as usize;
    Ok(ModelKey {
        shape,
        min_size,
        max_size,
    })
}

fn write_summary<W: Write>(w: &mut W, s: &GraphSummary) -> io::Result<()> {
    w_u64(w, s.num_nodes() as u64)?;
    w_u64(w, s.num_preds() as u64)?;
    w_u64(w, s.num_triples() as u64)?;
    for vec in [s.pred_counts(), s.pred_subjects(), s.pred_objects()] {
        for &v in vec {
            w_u64(w, v)?;
        }
    }
    Ok(())
}

fn read_summary<R: Read>(r: &mut R) -> Result<GraphSummary, SnapshotError> {
    let num_nodes = r_usize(r)?;
    let num_preds = r_usize(r)?;
    let num_triples = r_usize(r)?;
    if num_preds > 1 << 28 {
        return Err(SnapshotError::Corrupt(format!("{num_preds} predicates")));
    }
    let mut vecs = Vec::with_capacity(3);
    for _ in 0..3 {
        let mut v = Vec::with_capacity(num_preds);
        for _ in 0..num_preds {
            v.push(r_u64(r)?);
        }
        vecs.push(v);
    }
    let pred_objects = vecs.pop().expect("three vectors");
    let pred_subjects = vecs.pop().expect("three vectors");
    let pred_counts = vecs.pop().expect("three vectors");
    Ok(GraphSummary::from_parts(
        num_nodes,
        num_preds,
        num_triples,
        pred_counts,
        pred_subjects,
        pred_objects,
    ))
}

impl Lmkg {
    /// Serializes the whole model set — summary, every entry, routing
    /// metadata — to `writer`. Saving is a read-only walk over frozen
    /// models, so it works on a shared (`Arc`-held, serving) framework.
    pub fn save<W: Write>(&self, writer: &mut W) -> Result<(), SnapshotError> {
        writer.write_all(SNAPSHOT_MAGIC)?;
        w_u32(writer, VERSION)?;
        write_summary(writer, self.summary())?;
        w_u32(writer, self.max_covered_size() as u32)?;
        let entries = self.entries();
        w_u32(writer, entries.len() as u32)?;
        for (key, entry) in entries {
            write_key(writer, key)?;
            write_entry(writer, entry)?;
        }
        Ok(())
    }

    /// Restores a model set saved by [`Lmkg::save`]. The result answers
    /// every query bitwise-identically to the saved set.
    pub fn load<R: Read>(reader: &mut R) -> Result<Lmkg, SnapshotError> {
        let mut magic = [0u8; 8];
        reader.read_exact(&mut magic)?;
        if &magic != SNAPSHOT_MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let version = r_u32(reader)?;
        if version != VERSION {
            return Err(SnapshotError::UnsupportedVersion(version));
        }
        let summary = Arc::new(read_summary(reader)?);
        let max_covered_size = r_u32(reader)? as usize;
        let count = r_u32(reader)? as usize;
        if count > 1 << 16 {
            return Err(SnapshotError::Corrupt(format!("{count} model entries")));
        }
        let mut entries = Vec::with_capacity(count);
        for _ in 0..count {
            let key = read_key(reader)?;
            let entry = read_entry(reader)?;
            entries.push((key, Arc::new(entry)));
        }
        Ok(Lmkg::from_parts(entries, summary, max_covered_size))
    }

    /// Serializes into a freshly allocated buffer.
    pub fn save_to_vec(&self) -> Result<Vec<u8>, SnapshotError> {
        let mut buf = Vec::new();
        self.save(&mut buf)?;
        Ok(buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::{Grouping, LmkgConfig, ModelType};
    use lmkg_data::workload::{self, WorkloadConfig};
    use lmkg_data::{Dataset, Scale};
    use lmkg_nn::quant::QuantMode;

    fn quick_cfg(model_type: ModelType) -> LmkgConfig {
        LmkgConfig {
            model_type,
            grouping: Grouping::BySize,
            shapes: vec![QueryShape::Star, QueryShape::Chain],
            sizes: vec![2],
            queries_per_size: 300,
            s_config: crate::supervised::LmkgSConfig {
                hidden: vec![64],
                epochs: 20,
                dropout: 0.0,
                outlier_buffer: 4,
                ..Default::default()
            },
            u_config: crate::unsupervised::LmkgUConfig {
                hidden: 32,
                blocks: 1,
                embed_dim: 8,
                epochs: 4,
                train_samples: 1500,
                particles: 64,
                ..Default::default()
            },
            workload_seed: 3,
        }
    }

    fn probe_queries(g: &lmkg_store::KnowledgeGraph) -> Vec<Query> {
        let mut queries = Vec::new();
        for (shape, size) in [(QueryShape::Star, 2), (QueryShape::Chain, 2), (QueryShape::Star, 4)] {
            let wl = WorkloadConfig::test_default(shape, size, 23);
            queries.extend(workload::generate(g, &wl).into_iter().take(6).map(|lq| lq.query));
        }
        queries
    }

    fn assert_bitwise_equal(a: &Lmkg, b: &Lmkg, queries: &[Query]) {
        assert_eq!(a.model_count(), b.model_count());
        assert_eq!(
            a.estimate_query_batch(queries)
                .iter()
                .map(|e| e.to_bits())
                .collect::<Vec<_>>(),
            b.estimate_query_batch(queries)
                .iter()
                .map(|e| e.to_bits())
                .collect::<Vec<_>>(),
            "loaded set must answer bitwise-identically"
        );
    }

    #[test]
    fn supervised_set_roundtrips_bitwise() {
        let g = Dataset::LubmLike.generate(Scale::Ci, 1);
        let lmkg = Lmkg::build(&g, &quick_cfg(ModelType::Supervised));
        let bytes = lmkg.save_to_vec().unwrap();
        let loaded = Lmkg::load(&mut bytes.as_slice()).unwrap();
        assert_bitwise_equal(&lmkg, &loaded, &probe_queries(&g));
        // Saving the loaded set reproduces the bytes exactly (the format is
        // canonical: deterministic outlier order, no map iteration).
        assert_eq!(loaded.save_to_vec().unwrap(), bytes);
    }

    #[test]
    fn unsupervised_set_roundtrips_bitwise() {
        let g = Dataset::LubmLike.generate(Scale::Ci, 1);
        let lmkg = Lmkg::build(&g, &quick_cfg(ModelType::Unsupervised));
        assert!(lmkg.model_count() > 0);
        let bytes = lmkg.save_to_vec().unwrap();
        let loaded = Lmkg::load(&mut bytes.as_slice()).unwrap();
        assert_bitwise_equal(&lmkg, &loaded, &probe_queries(&g));
    }

    #[test]
    fn quantized_sets_roundtrip_bitwise() {
        let g = Dataset::LubmLike.generate(Scale::Ci, 1);
        for model_type in [ModelType::Supervised, ModelType::Unsupervised] {
            let f32_set = Lmkg::build(&g, &quick_cfg(model_type));
            for mode in [QuantMode::Int8, QuantMode::Bf16] {
                let q = f32_set.quantized(mode);
                let bytes = q.save_to_vec().unwrap();
                let loaded = Lmkg::load(&mut bytes.as_slice()).unwrap();
                assert_bitwise_equal(&q, &loaded, &probe_queries(&g));
                // The quantized footprint survives the roundtrip.
                assert_eq!(loaded.total_memory_bytes(), q.total_memory_bytes());
            }
        }
    }

    #[test]
    fn load_rejects_bad_magic_and_version() {
        let err = Lmkg::load(&mut b"NOTASNAP0000".as_slice()).unwrap_err();
        assert!(matches!(err, SnapshotError::BadMagic), "{err}");

        let mut bytes = Vec::new();
        bytes.extend_from_slice(SNAPSHOT_MAGIC);
        bytes.extend_from_slice(&99u32.to_le_bytes());
        let err = Lmkg::load(&mut bytes.as_slice()).unwrap_err();
        assert!(matches!(err, SnapshotError::UnsupportedVersion(99)), "{err}");
    }

    #[test]
    fn load_rejects_truncation_at_every_prefix_length() {
        let g = Dataset::LubmLike.generate(Scale::Ci, 1);
        let lmkg = Lmkg::build(&g, &quick_cfg(ModelType::Supervised));
        let bytes = lmkg.save_to_vec().unwrap();
        // A sweep of truncation points: every prefix must fail cleanly with
        // a typed error, never panic or return a half-restored set.
        for cut in [8, 12, 40, bytes.len() / 4, bytes.len() / 2, bytes.len() - 1] {
            let err = Lmkg::load(&mut bytes[..cut].to_vec().as_slice()).unwrap_err();
            assert!(
                matches!(err, SnapshotError::Io(_) | SnapshotError::Corrupt(_)),
                "cut at {cut}: unexpected {err:?}"
            );
        }
    }

    #[test]
    fn load_rejects_corrupt_entry_tag() {
        let g = Dataset::LubmLike.generate(Scale::Ci, 1);
        let lmkg = Lmkg::build(&g, &quick_cfg(ModelType::Supervised));
        let mut bytes = lmkg.save_to_vec().unwrap();
        // The first entry tag sits right after magic+version+summary+sizes+
        // count+key; find it by writing a poisoned set and diffing lengths is
        // overkill — corrupt the byte right after the first ModelKey instead.
        let header = 8 + 4 + (3 + 3 * g.num_preds()) * 8 + 4 + 4;
        let tag_pos = header + 9; // key = 1 + 4 + 4 bytes
        bytes[tag_pos] = 0xEE;
        let err = Lmkg::load(&mut bytes.as_slice()).unwrap_err();
        assert!(
            matches!(err, SnapshotError::Corrupt(_) | SnapshotError::Io(_)),
            "unexpected {err:?}"
        );
    }

    #[test]
    fn eviction_converges_below_budget_and_keeps_dominant_cells() {
        let g = Dataset::LubmLike.generate(Scale::Ci, 1);
        let mut cfg = quick_cfg(ModelType::Supervised);
        cfg.grouping = Grouping::Specialized;
        cfg.sizes = vec![2, 3];
        let lmkg = Lmkg::build(&g, &cfg); // 2 shapes × 2 sizes = 4 models
        assert_eq!(lmkg.model_count(), 4);

        // Star-2 dominates the workload; chain-3 is never queried.
        let usage = [
            ((QueryShape::Star, 2), 1000u64),
            ((QueryShape::Chain, 2), 50),
            ((QueryShape::Star, 3), 10),
            ((QueryShape::Chain, 3), 0),
        ];
        let sizes = lmkg.entry_sizes();
        let largest = sizes.iter().map(|&(_, b)| b).max().unwrap();
        // A budget that forces dropping some but not all models.
        let budget = lmkg.total_memory_bytes() - largest / 2;
        let (evicted_set, dropped) = lmkg.evict_to_budget(budget, &usage);
        assert!(dropped >= 1, "budget under total must evict");
        assert!(
            evicted_set.total_memory_bytes() <= budget,
            "{} > budget {budget}",
            evicted_set.total_memory_bytes()
        );
        // The dominant cell survives and answers bitwise-identically.
        assert!(evicted_set.covers(QueryShape::Star, 2));
        let wl = WorkloadConfig::test_default(QueryShape::Star, 2, 23);
        let queries: Vec<Query> = workload::generate(&g, &wl)
            .into_iter()
            .take(8)
            .map(|lq| lq.query)
            .collect();
        assert_eq!(
            lmkg.estimate_query_batch(&queries)
                .iter()
                .map(|e| e.to_bits())
                .collect::<Vec<_>>(),
            evicted_set
                .estimate_query_batch(&queries)
                .iter()
                .map(|e| e.to_bits())
                .collect::<Vec<_>>(),
        );
        // The zero-count cell went first.
        assert!(!evicted_set.covers(QueryShape::Chain, 3));
        // Eviction is deterministic.
        let (again, dropped_again) = lmkg.evict_to_budget(budget, &usage);
        assert_eq!(dropped, dropped_again);
        assert_eq!(again.model_count(), evicted_set.model_count());
    }

    #[test]
    fn eviction_never_drops_the_last_cover_of_a_live_cell() {
        let g = Dataset::LubmLike.generate(Scale::Ci, 1);
        let lmkg = Lmkg::build(&g, &quick_cfg(ModelType::Supervised)); // one size-2 model
        let usage = [((QueryShape::Star, 2), 100u64)];
        // An impossible budget: the only model covers live traffic, so
        // eviction stops above budget instead of uncovering it.
        let (kept, dropped) = lmkg.evict_to_budget(0, &usage);
        assert_eq!(dropped, 0);
        assert!(kept.covers(QueryShape::Star, 2));

        // With no observed traffic, the same budget drops everything.
        let (emptied, dropped_all) = lmkg.evict_to_budget(0, &[]);
        assert_eq!(dropped_all, lmkg.model_count());
        assert_eq!(emptied.model_count(), 0);
        // The summary fallback still answers.
        let wl = WorkloadConfig::test_default(QueryShape::Star, 2, 5);
        let q = workload::generate(&g, &wl).remove(0).query;
        assert!(emptied.estimate_query(&q) >= 1.0);
    }
}
