//! The outlier buffer list (paper §VIII-C): "given a larger space budget, a
//! possible improvement can be to store the cardinalities of the outliers on
//! the side". Disabled in the paper's main comparison "for a fair
//! comparison"; we implement it behind a capacity knob and ablate it in the
//! Fig. 5 experiment.

use lmkg_data::LabeledQuery;
use lmkg_store::fxhash::FxHashMap;
use lmkg_store::Query;

/// Exact-answer side table for the highest-cardinality training queries.
/// `Clone` so a quantized snapshot of an estimator carries the same exact
/// answers as its f32 original.
#[derive(Debug, Default, Clone)]
pub struct OutlierBuffer {
    capacity: usize,
    entries: FxHashMap<Query, u64>,
}

impl OutlierBuffer {
    /// A buffer holding up to `capacity` queries (0 disables).
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            entries: FxHashMap::default(),
        }
    }

    /// Fills the buffer with the top-`capacity` queries by cardinality.
    pub fn fill(&mut self, data: &[LabeledQuery]) {
        self.entries.clear();
        if self.capacity == 0 {
            return;
        }
        let mut sorted: Vec<&LabeledQuery> = data.iter().collect();
        sorted.sort_by_key(|lq| std::cmp::Reverse(lq.cardinality));
        for lq in sorted.into_iter().take(self.capacity) {
            self.entries.insert(lq.query.clone(), lq.cardinality);
        }
    }

    /// Reassembles a buffer from snapshot parts (inverse of
    /// [`OutlierBuffer::sorted_entries`]). Entries beyond `capacity` are
    /// dropped, matching `fill`'s contract.
    pub fn from_entries(capacity: usize, entries: Vec<(Query, u64)>) -> Self {
        let mut map = FxHashMap::default();
        for (q, card) in entries.into_iter().take(capacity) {
            map.insert(q, card);
        }
        Self { capacity, entries: map }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// All entries in a deterministic order (cardinality descending, then
    /// query ascending by term codes) — the order snapshots persist them in,
    /// so saving the same buffer twice yields identical bytes.
    pub fn sorted_entries(&self) -> Vec<(Query, u64)> {
        let mut out: Vec<(Query, u64)> = self.entries.iter().map(|(q, &c)| (q.clone(), c)).collect();
        out.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| query_key(&a.0).cmp(&query_key(&b.0))));
        out
    }

    /// Exact cardinality if the query is buffered.
    pub fn lookup(&self, query: &Query) -> Option<u64> {
        self.entries.get(query).copied()
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Approximate memory footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        // Each entry: query triples + map overhead.
        self.entries
            .keys()
            .map(|q| q.triples.len() * std::mem::size_of::<lmkg_store::TriplePattern>() + 48)
            .sum()
    }
}

/// Total order over queries for deterministic snapshot output: each term maps
/// to an integer (variables below bound ids), patterns compare pointwise.
fn query_key(q: &Query) -> Vec<u64> {
    fn node_key(t: lmkg_store::NodeTerm) -> u64 {
        match t {
            lmkg_store::NodeTerm::Var(v) => u64::from(v.0),
            lmkg_store::NodeTerm::Bound(n) => (1u64 << 32) | u64::from(n.0),
        }
    }
    fn pred_key(t: lmkg_store::PredTerm) -> u64 {
        match t {
            lmkg_store::PredTerm::Var(v) => u64::from(v.0),
            lmkg_store::PredTerm::Bound(p) => (1u64 << 32) | u64::from(p.0),
        }
    }
    let mut key = Vec::with_capacity(q.triples.len() * 3);
    for t in &q.triples {
        key.push(node_key(t.s));
        key.push(pred_key(t.p));
        key.push(node_key(t.o));
    }
    key
}

#[cfg(test)]
mod tests {
    use super::*;
    use lmkg_store::{NodeTerm, PredId, PredTerm, TriplePattern, VarId};

    fn lq(pred: u32, card: u64) -> LabeledQuery {
        LabeledQuery {
            query: Query::new(vec![TriplePattern::new(
                NodeTerm::Var(VarId(0)),
                PredTerm::Bound(PredId(pred)),
                NodeTerm::Var(VarId(1)),
            )]),
            cardinality: card,
        }
    }

    #[test]
    fn keeps_top_k_by_cardinality() {
        let data = vec![lq(0, 5), lq(1, 500), lq(2, 50), lq(3, 5000)];
        let mut buf = OutlierBuffer::new(2);
        buf.fill(&data);
        assert_eq!(buf.len(), 2);
        assert_eq!(buf.lookup(&data[3].query), Some(5000));
        assert_eq!(buf.lookup(&data[1].query), Some(500));
        assert_eq!(buf.lookup(&data[0].query), None);
    }

    #[test]
    fn zero_capacity_is_disabled() {
        let data = vec![lq(0, 10)];
        let mut buf = OutlierBuffer::new(0);
        buf.fill(&data);
        assert!(buf.is_empty());
        assert_eq!(buf.lookup(&data[0].query), None);
        assert_eq!(buf.memory_bytes(), 0);
    }

    #[test]
    fn refill_replaces_contents() {
        let mut buf = OutlierBuffer::new(1);
        buf.fill(&[lq(0, 10)]);
        assert_eq!(buf.len(), 1);
        buf.fill(&[lq(1, 99)]);
        assert_eq!(buf.len(), 1);
        assert_eq!(buf.lookup(&lq(1, 99).query), Some(99));
        assert_eq!(buf.lookup(&lq(0, 10).query), None);
    }
}
