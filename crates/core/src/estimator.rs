//! The estimator interface shared by LMKG models and all baselines.

use lmkg_store::{counter, KnowledgeGraph, Query};
use std::sync::Arc;

/// A cardinality estimator.
///
/// Estimation takes `&self`: a trained model is **frozen** — forward passes
/// thread per-call scratch buffers instead of mutating layer caches, and the
/// sampling baselines derive a per-query RNG from a stored seed instead of
/// advancing shared RNG state. Estimators that are also `Send + Sync` (all
/// of the in-tree ones) can therefore be shared behind one `Arc` by any
/// number of threads running estimates concurrently — the shape the serving
/// layer relies on. Mutation (training, buffer fills) stays on inherent
/// `&mut self` methods of the concrete types.
pub trait CardinalityEstimator {
    /// Human-readable estimator name (used in experiment tables).
    fn name(&self) -> &str;

    /// Estimates the cardinality of `query`. Estimates are floored at 1.0 —
    /// every query in our workloads has at least one match, and a floor
    /// keeps q-errors finite for all estimators (G-CARE does the same).
    fn estimate(&self, query: &Query) -> f64;

    /// Estimates a whole workload slice, returning one estimate per query
    /// in order.
    ///
    /// The default implementation loops over [`estimate`](Self::estimate),
    /// so every estimator supports the batched entry point; the learned
    /// models override it to run one network forward per batch instead of
    /// per query, which is where their sub-millisecond amortized latency
    /// comes from. Overrides must return exactly the estimates the looped
    /// default would (the cross-crate parity suite enforces this for the
    /// deterministic estimators).
    fn estimate_batch(&self, queries: &[Query]) -> Vec<f64> {
        queries.iter().map(|q| self.estimate(q)).collect()
    }

    /// Approximate memory footprint of the estimator state in bytes
    /// (model parameters or summary size — Table II).
    fn memory_bytes(&self) -> usize;
}

/// Boxed estimators forward the whole trait, so heterogeneous estimators can
/// be held behind `Box<dyn CardinalityEstimator>` without losing the batched
/// override.
impl<T: CardinalityEstimator + ?Sized> CardinalityEstimator for Box<T> {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn estimate(&self, query: &Query) -> f64 {
        (**self).estimate(query)
    }

    fn estimate_batch(&self, queries: &[Query]) -> Vec<f64> {
        (**self).estimate_batch(queries)
    }

    fn memory_bytes(&self) -> usize {
        (**self).memory_bytes()
    }
}

/// `Arc`-shared estimators forward the whole trait too — the form the
/// serving layer's worker threads hold (`Arc<dyn CardinalityEstimator +
/// Send + Sync>`), each running `estimate_batch` concurrently on one frozen
/// model. Possible at all because estimation takes `&self`.
impl<T: CardinalityEstimator + ?Sized> CardinalityEstimator for Arc<T> {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn estimate(&self, query: &Query) -> f64 {
        (**self).estimate(query)
    }

    fn estimate_batch(&self, queries: &[Query]) -> Vec<f64> {
        (**self).estimate_batch(queries)
    }

    fn memory_bytes(&self) -> usize {
        (**self).memory_bytes()
    }
}

/// The exact counter wrapped as an estimator (sanity baseline: q-error 1).
pub struct ExactEstimator<'g> {
    graph: &'g KnowledgeGraph,
}

impl<'g> ExactEstimator<'g> {
    /// Wraps a graph reference.
    pub fn new(graph: &'g KnowledgeGraph) -> Self {
        Self { graph }
    }
}

impl CardinalityEstimator for ExactEstimator<'_> {
    fn name(&self) -> &str {
        "exact"
    }

    fn estimate(&self, query: &Query) -> f64 {
        (counter::cardinality(self.graph, query) as f64).max(1.0)
    }

    fn memory_bytes(&self) -> usize {
        self.graph.heap_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::q_error;
    use lmkg_store::{GraphBuilder, NodeTerm, PredTerm, TriplePattern, VarId};

    fn one_triple_fixture() -> (KnowledgeGraph, Query) {
        let mut b = GraphBuilder::new();
        b.add("a", "p", "b");
        let g = b.build();
        let q = Query::new(vec![TriplePattern::new(
            NodeTerm::Var(VarId(0)),
            PredTerm::Bound(lmkg_store::PredId(0)),
            NodeTerm::Var(VarId(1)),
        )]);
        (g, q)
    }

    #[test]
    fn boxed_estimator_forwards_the_trait() {
        let (g, q) = one_triple_fixture();
        let direct = ExactEstimator::new(&g);
        let expected = direct.estimate(&q);
        let boxed: Box<dyn CardinalityEstimator + '_> = Box::new(ExactEstimator::new(&g));
        assert_eq!(boxed.name(), "exact");
        assert_eq!(boxed.estimate(&q), expected);
        assert_eq!(boxed.estimate_batch(std::slice::from_ref(&q)), vec![expected]);
        assert!(boxed.memory_bytes() > 0);
    }

    #[test]
    fn arc_estimator_forwards_the_trait() {
        let (g, q) = one_triple_fixture();
        let direct = ExactEstimator::new(&g);
        let expected = direct.estimate(&q);
        let shared: Arc<dyn CardinalityEstimator + '_> = Arc::new(ExactEstimator::new(&g));
        assert_eq!(shared.name(), "exact");
        assert_eq!(shared.estimate(&q), expected);
        assert_eq!(shared.estimate_batch(std::slice::from_ref(&q)), vec![expected]);
        assert!(shared.memory_bytes() > 0);
        // Two handles to one frozen estimator answer identically — the
        // property the concurrent serving path is built on.
        let clone = Arc::clone(&shared);
        assert_eq!(clone.estimate(&q).to_bits(), shared.estimate(&q).to_bits());
    }

    #[test]
    fn exact_estimator_has_q_error_one() {
        let mut b = GraphBuilder::new();
        b.add("a", "p", "b");
        b.add("a", "p", "c");
        let g = b.build();
        let q = Query::new(vec![TriplePattern::new(
            NodeTerm::Var(VarId(0)),
            PredTerm::Bound(lmkg_store::PredId(0)),
            NodeTerm::Var(VarId(1)),
        )]);
        let est = ExactEstimator::new(&g);
        assert_eq!(est.name(), "exact");
        assert_eq!(q_error(est.estimate(&q), 2), 1.0);
        assert!(est.memory_bytes() > 0);
    }
}
