//! Workload monitoring (paper §IV, Model choice): "If a change in the
//! workload of queries is detected during the execution phase, a new model
//! may be created, or an existing model may be dropped."
//!
//! The monitor tracks the mix of `(shape, size)` cells over a sliding window
//! and compares it against the mix the model set was built for. Two signals
//! drive the create/drop decision:
//!
//! * **drift** — total-variation distance between the recent cell
//!   distribution and the baseline distribution;
//! * **uncovered share** — the fraction of recent queries no existing model
//!   covers (these fall back to decomposition, §IV's slow path).

use lmkg_store::{Query, QueryShape};
use std::collections::{HashMap, VecDeque};

/// One workload cell.
pub type Cell = (QueryShape, usize);

/// A drift evaluation against the baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct DriftReport {
    /// Total-variation distance in `[0, 1]` between recent and baseline
    /// cell distributions.
    pub tv_distance: f64,
    /// Share of recent queries not covered by any model.
    pub uncovered_share: f64,
    /// Cells of recent queries, most frequent first.
    pub dominant_cells: Vec<(Cell, usize)>,
}

impl DriftReport {
    /// Whether the framework should re-run (part of) the creation phase.
    pub fn should_retrain(&self, tv_threshold: f64, uncovered_threshold: f64) -> bool {
        self.tv_distance > tv_threshold || self.uncovered_share > uncovered_threshold
    }
}

/// Sliding-window workload monitor.
///
/// Cell counts are maintained incrementally as queries enter and leave the
/// window, so [`WorkloadMonitor::report`] is O(distinct cells) — not
/// O(window × cells) — and [`WorkloadMonitor::observe`] is O(1). This is the
/// serving hot path: the batcher observes every admitted query, and the
/// adapter thread pulls a report every tick.
#[derive(Debug, Clone)]
pub struct WorkloadMonitor {
    window: usize,
    recent: VecDeque<Cell>,
    counts: HashMap<Cell, usize>,
    baseline: HashMap<Cell, f64>,
}

impl WorkloadMonitor {
    /// Creates a monitor with a sliding window of `window` queries and the
    /// baseline cell mix the models were trained for (uniform over the given
    /// cells; a cell listed twice gets twice the share).
    pub fn new(window: usize, trained_cells: &[Cell]) -> Self {
        assert!(window >= 1);
        let share = if trained_cells.is_empty() {
            0.0
        } else {
            1.0 / trained_cells.len() as f64
        };
        let mut baseline: HashMap<Cell, f64> = HashMap::new();
        for &cell in trained_cells {
            *baseline.entry(cell).or_insert(0.0) += share;
        }
        Self {
            window,
            recent: VecDeque::with_capacity(window),
            counts: HashMap::new(),
            baseline,
        }
    }

    /// Records an executed query.
    pub fn observe(&mut self, query: &Query) {
        self.observe_cell((query.shape(), query.size()));
    }

    /// Records an executed query by its `(shape, size)` cell — the form the
    /// serving layer uses, where the cell is computed before the query is
    /// moved into the admission queue.
    pub fn observe_cell(&mut self, cell: Cell) {
        if self.recent.len() == self.window {
            let evicted = self.recent.pop_front().expect("window is non-empty");
            match self.counts.get_mut(&evicted) {
                Some(k) if *k > 1 => *k -= 1,
                _ => {
                    self.counts.remove(&evicted);
                }
            }
        }
        self.recent.push_back(cell);
        *self.counts.entry(cell).or_insert(0) += 1;
    }

    /// Number of observed queries currently in the window.
    pub fn observed(&self) -> usize {
        self.recent.len()
    }

    /// Evaluates drift; `covers` reports whether a model covers a cell (it
    /// is called once per *distinct* cell, not once per observed query).
    pub fn report(&self, covers: impl Fn(Cell) -> bool) -> DriftReport {
        let n = self.recent.len().max(1) as f64;

        // Recent distribution over cells, most frequent first. Ties break on
        // the cell itself so the order is deterministic regardless of hash
        // iteration order — the adapter picks retraining targets from the
        // head of this list.
        let mut dominant: Vec<(Cell, usize)> = self.counts.iter().map(|(&c, &k)| (c, k)).collect();
        dominant.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));

        // TV distance: ½ Σ |p(c) − q(c)| over the union of supports.
        let mut tv = 0.0f64;
        for &(cell, k) in &dominant {
            let p = k as f64 / n;
            let q = self.baseline.get(&cell).copied().unwrap_or(0.0);
            tv += (p - q).abs();
        }
        for (cell, q) in &self.baseline {
            if !self.counts.contains_key(cell) {
                tv += q;
            }
        }
        tv *= 0.5;

        let uncovered: usize = dominant.iter().filter(|&&(c, _)| !covers(c)).map(|&(_, k)| k).sum();
        DriftReport {
            tv_distance: tv,
            uncovered_share: if self.recent.is_empty() {
                0.0
            } else {
                uncovered as f64 / n
            },
            dominant_cells: dominant,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lmkg_store::{NodeTerm, PredId, PredTerm, TriplePattern, VarId};

    fn star(k: usize) -> Query {
        Query::new(
            (0..k)
                .map(|i| {
                    TriplePattern::new(
                        NodeTerm::Var(VarId(0)),
                        PredTerm::Bound(PredId(i as u32)),
                        NodeTerm::Var(VarId(1 + i as u16)),
                    )
                })
                .collect(),
        )
    }

    fn chain(k: usize) -> Query {
        Query::new(
            (0..k)
                .map(|i| {
                    TriplePattern::new(
                        NodeTerm::Var(VarId(i as u16)),
                        PredTerm::Bound(PredId(0)),
                        NodeTerm::Var(VarId(i as u16 + 1)),
                    )
                })
                .collect(),
        )
    }

    fn trained() -> Vec<Cell> {
        vec![(QueryShape::Star, 2), (QueryShape::Chain, 2)]
    }

    #[test]
    fn matching_workload_has_low_drift() {
        let mut m = WorkloadMonitor::new(100, &trained());
        for _ in 0..50 {
            m.observe(&star(2));
            m.observe(&chain(2));
        }
        let r = m.report(|c| trained().contains(&c));
        assert!(r.tv_distance < 0.05, "tv {}", r.tv_distance);
        assert_eq!(r.uncovered_share, 0.0);
        assert!(!r.should_retrain(0.3, 0.2));
    }

    #[test]
    fn shifted_workload_is_detected() {
        let mut m = WorkloadMonitor::new(100, &trained());
        for _ in 0..100 {
            m.observe(&star(5)); // a size nobody trained for
        }
        let r = m.report(|c| trained().contains(&c));
        assert!(r.tv_distance > 0.9, "tv {}", r.tv_distance);
        assert_eq!(r.uncovered_share, 1.0);
        assert!(r.should_retrain(0.3, 0.2));
        assert_eq!(r.dominant_cells[0].0, (QueryShape::Star, 5));
    }

    #[test]
    fn window_slides() {
        let mut m = WorkloadMonitor::new(10, &trained());
        for _ in 0..10 {
            m.observe(&star(2));
        }
        for _ in 0..10 {
            m.observe(&chain(2)); // fully replaces the window
        }
        assert_eq!(m.observed(), 10);
        let r = m.report(|c| trained().contains(&c));
        assert_eq!(r.dominant_cells, vec![((QueryShape::Chain, 2), 10)]);
        // All mass on one of two baseline cells → TV = ½(|1−½| + ½) = ½.
        assert!((r.tv_distance - 0.5).abs() < 1e-9);
    }

    #[test]
    fn partial_coverage_share() {
        let mut m = WorkloadMonitor::new(10, &trained());
        for _ in 0..5 {
            m.observe(&star(2));
            m.observe(&star(8));
        }
        let r = m.report(|c| trained().contains(&c));
        assert!((r.uncovered_share - 0.5).abs() < 1e-9);
    }

    #[test]
    fn empty_monitor_reports_zero() {
        let m = WorkloadMonitor::new(10, &trained());
        let r = m.report(|_| true);
        assert_eq!(r.uncovered_share, 0.0);
        assert!(r.dominant_cells.is_empty());
    }

    #[test]
    fn empty_trained_cells_baseline() {
        // No models at all (e.g. the YAGO domain-guard path skipped every
        // LMKG-U cell): the baseline is empty, so all recent mass is "new".
        // TV = ½ Σ p(c) = ½, never NaN, and nothing panics.
        let mut m = WorkloadMonitor::new(10, &[]);
        let empty = m.report(|_| false);
        assert_eq!(empty.tv_distance, 0.0);
        assert_eq!(empty.uncovered_share, 0.0);
        for _ in 0..10 {
            m.observe(&star(3));
        }
        let r = m.report(|_| false);
        assert!((r.tv_distance - 0.5).abs() < 1e-9, "tv {}", r.tv_distance);
        assert_eq!(r.uncovered_share, 1.0);
        assert!(r.tv_distance.is_finite() && r.uncovered_share.is_finite());
        assert!(r.should_retrain(0.3, 0.2));
    }

    #[test]
    fn dominant_cells_tie_break_is_deterministic() {
        // Four cells, equal counts: order must be count-desc then cell-asc
        // (QueryShape declares Star < Chain), independent of hash order.
        let mut m = WorkloadMonitor::new(40, &trained());
        for _ in 0..5 {
            m.observe(&star(3));
            m.observe(&chain(4));
            m.observe(&star(2));
            m.observe(&chain(2));
        }
        let r = m.report(|_| true);
        let cells: Vec<Cell> = r.dominant_cells.iter().map(|&(c, _)| c).collect();
        assert_eq!(
            cells,
            vec![
                (QueryShape::Star, 2),
                (QueryShape::Star, 3),
                (QueryShape::Chain, 2),
                (QueryShape::Chain, 4),
            ]
        );
        assert!(r.dominant_cells.iter().all(|&(_, k)| k == 5));
    }

    #[test]
    fn observe_cell_matches_observe() {
        let mut by_query = WorkloadMonitor::new(5, &trained());
        let mut by_cell = WorkloadMonitor::new(5, &trained());
        for q in [star(2), star(5), chain(2), star(5), star(5), chain(3), star(2)] {
            by_query.observe(&q);
            by_cell.observe_cell((q.shape(), q.size()));
        }
        let a = by_query.report(|c| trained().contains(&c));
        let b = by_cell.report(|c| trained().contains(&c));
        assert_eq!(a, b);
    }
}
