//! Workload monitoring (paper §IV, Model choice): "If a change in the
//! workload of queries is detected during the execution phase, a new model
//! may be created, or an existing model may be dropped."
//!
//! The monitor tracks the mix of `(shape, size)` cells over a sliding window
//! and compares it against the mix the model set was built for. Two signals
//! drive the create/drop decision:
//!
//! * **drift** — total-variation distance between the recent cell
//!   distribution and the baseline distribution;
//! * **uncovered share** — the fraction of recent queries no existing model
//!   covers (these fall back to decomposition, §IV's slow path).

use lmkg_store::{Query, QueryShape};
use std::collections::VecDeque;

/// One workload cell.
pub type Cell = (QueryShape, usize);

/// A drift evaluation against the baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct DriftReport {
    /// Total-variation distance in `[0, 1]` between recent and baseline
    /// cell distributions.
    pub tv_distance: f64,
    /// Share of recent queries not covered by any model.
    pub uncovered_share: f64,
    /// Cells of recent queries, most frequent first.
    pub dominant_cells: Vec<(Cell, usize)>,
}

impl DriftReport {
    /// Whether the framework should re-run (part of) the creation phase.
    pub fn should_retrain(&self, tv_threshold: f64, uncovered_threshold: f64) -> bool {
        self.tv_distance > tv_threshold || self.uncovered_share > uncovered_threshold
    }
}

/// Sliding-window workload monitor.
#[derive(Debug, Clone)]
pub struct WorkloadMonitor {
    window: usize,
    recent: VecDeque<Cell>,
    baseline: Vec<(Cell, f64)>,
}

impl WorkloadMonitor {
    /// Creates a monitor with a sliding window of `window` queries and the
    /// baseline cell mix the models were trained for (uniform over the given
    /// cells).
    pub fn new(window: usize, trained_cells: &[Cell]) -> Self {
        assert!(window >= 1);
        let share = if trained_cells.is_empty() {
            0.0
        } else {
            1.0 / trained_cells.len() as f64
        };
        Self {
            window,
            recent: VecDeque::with_capacity(window),
            baseline: trained_cells.iter().map(|&c| (c, share)).collect(),
        }
    }

    /// Records an executed query.
    pub fn observe(&mut self, query: &Query) {
        if self.recent.len() == self.window {
            self.recent.pop_front();
        }
        self.recent.push_back((query.shape(), query.size()));
    }

    /// Number of observed queries currently in the window.
    pub fn observed(&self) -> usize {
        self.recent.len()
    }

    /// Evaluates drift; `covers` reports whether a model covers a cell.
    pub fn report(&self, covers: impl Fn(Cell) -> bool) -> DriftReport {
        let n = self.recent.len().max(1) as f64;

        // Recent distribution over cells.
        let mut counts: Vec<(Cell, usize)> = Vec::new();
        for &cell in &self.recent {
            match counts.iter_mut().find(|(c, _)| *c == cell) {
                Some((_, k)) => *k += 1,
                None => counts.push((cell, 1)),
            }
        }
        counts.sort_by_key(|&(_, k)| std::cmp::Reverse(k));

        // TV distance: ½ Σ |p(c) − q(c)| over the union of supports.
        let mut tv = 0.0f64;
        let mut seen: Vec<Cell> = Vec::new();
        for &(cell, k) in &counts {
            let p = k as f64 / n;
            let q = self.baseline.iter().find(|(c, _)| *c == cell).map_or(0.0, |(_, s)| *s);
            tv += (p - q).abs();
            seen.push(cell);
        }
        for &(cell, q) in &self.baseline {
            if !seen.contains(&cell) {
                tv += q;
            }
        }
        tv *= 0.5;

        let uncovered = self.recent.iter().filter(|&&c| !covers(c)).count() as f64 / n;
        DriftReport {
            tv_distance: tv,
            uncovered_share: if self.recent.is_empty() { 0.0 } else { uncovered },
            dominant_cells: counts,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lmkg_store::{NodeTerm, PredId, PredTerm, TriplePattern, VarId};

    fn star(k: usize) -> Query {
        Query::new(
            (0..k)
                .map(|i| {
                    TriplePattern::new(
                        NodeTerm::Var(VarId(0)),
                        PredTerm::Bound(PredId(i as u32)),
                        NodeTerm::Var(VarId(1 + i as u16)),
                    )
                })
                .collect(),
        )
    }

    fn chain(k: usize) -> Query {
        Query::new(
            (0..k)
                .map(|i| {
                    TriplePattern::new(
                        NodeTerm::Var(VarId(i as u16)),
                        PredTerm::Bound(PredId(0)),
                        NodeTerm::Var(VarId(i as u16 + 1)),
                    )
                })
                .collect(),
        )
    }

    fn trained() -> Vec<Cell> {
        vec![(QueryShape::Star, 2), (QueryShape::Chain, 2)]
    }

    #[test]
    fn matching_workload_has_low_drift() {
        let mut m = WorkloadMonitor::new(100, &trained());
        for _ in 0..50 {
            m.observe(&star(2));
            m.observe(&chain(2));
        }
        let r = m.report(|c| trained().contains(&c));
        assert!(r.tv_distance < 0.05, "tv {}", r.tv_distance);
        assert_eq!(r.uncovered_share, 0.0);
        assert!(!r.should_retrain(0.3, 0.2));
    }

    #[test]
    fn shifted_workload_is_detected() {
        let mut m = WorkloadMonitor::new(100, &trained());
        for _ in 0..100 {
            m.observe(&star(5)); // a size nobody trained for
        }
        let r = m.report(|c| trained().contains(&c));
        assert!(r.tv_distance > 0.9, "tv {}", r.tv_distance);
        assert_eq!(r.uncovered_share, 1.0);
        assert!(r.should_retrain(0.3, 0.2));
        assert_eq!(r.dominant_cells[0].0, (QueryShape::Star, 5));
    }

    #[test]
    fn window_slides() {
        let mut m = WorkloadMonitor::new(10, &trained());
        for _ in 0..10 {
            m.observe(&star(2));
        }
        for _ in 0..10 {
            m.observe(&chain(2)); // fully replaces the window
        }
        assert_eq!(m.observed(), 10);
        let r = m.report(|c| trained().contains(&c));
        assert_eq!(r.dominant_cells, vec![((QueryShape::Chain, 2), 10)]);
        // All mass on one of two baseline cells → TV = ½(|1−½| + ½) = ½.
        assert!((r.tv_distance - 0.5).abs() < 1e-9);
    }

    #[test]
    fn partial_coverage_share() {
        let mut m = WorkloadMonitor::new(10, &trained());
        for _ in 0..5 {
            m.observe(&star(2));
            m.observe(&star(8));
        }
        let r = m.report(|c| trained().contains(&c));
        assert!((r.uncovered_share - 0.5).abs() < 1e-9);
    }

    #[test]
    fn empty_monitor_reports_zero() {
        let m = WorkloadMonitor::new(10, &trained());
        let r = m.report(|_| true);
        assert_eq!(r.uncovered_share, 0.0);
        assert!(r.dominant_cells.is_empty());
    }
}
