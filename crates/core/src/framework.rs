//! The LMKG framework (paper §IV, Fig. 1): the creation phase trains a set
//! of grouped models; the execution phase routes queries to models,
//! decomposing queries no model covers and combining sub-estimates.

use crate::decompose;
use crate::estimator::CardinalityEstimator;
use crate::summary::GraphSummary;
use crate::supervised::{LmkgS, LmkgSConfig, QuantizedLmkgS, QueryEncoder};
use crate::unsupervised::{LmkgU, LmkgUConfig, LmkgUError, QuantizedLmkgU};
use lmkg_data::workload::{self, WorkloadConfig};
use lmkg_encoder::SgEncoder;
use lmkg_nn::quant::QuantMode;
use lmkg_store::{KnowledgeGraph, Query, QueryShape};
use std::sync::Arc;
use std::time::Instant;

/// Which learned model family the framework instantiates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelType {
    /// LMKG-S (deep neural network).
    Supervised,
    /// LMKG-U (autoregressive model). Always grouped per (type, size) —
    /// the paper's configuration for LMKG-U (§VIII-B).
    Unsupervised,
}

/// Model grouping strategies (paper §VII-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Grouping {
    /// One model for every type and size.
    Single,
    /// One model per query type (star, chain), covering all sizes.
    ByType,
    /// One model per query size, covering all types.
    BySize,
    /// One model per (type, size) pair.
    Specialized,
}

/// Framework configuration (the paper's "Model Choice" inputs: number of
/// models, model type, encoding type — Fig. 1).
#[derive(Debug, Clone)]
pub struct LmkgConfig {
    /// Model family.
    pub model_type: ModelType,
    /// Grouping strategy (applies to LMKG-S; LMKG-U is always specialized).
    pub grouping: Grouping,
    /// Query shapes to support.
    pub shapes: Vec<QueryShape>,
    /// Query sizes to support (paper: 2, 3, 5, 8).
    pub sizes: Vec<usize>,
    /// Training-query budget **per model**, split evenly across the
    /// (shape, size) cells the model covers. Equal budgets make the grouping
    /// strategies directly comparable (the paper's "defined budget", §IV):
    /// a specialized model concentrates its budget on one cell, the single
    /// model spreads it over every cell — which is exactly why "a single
    /// model ... may lead to larger errors" (§VII-B).
    pub queries_per_size: usize,
    /// LMKG-S hyperparameters.
    pub s_config: LmkgSConfig,
    /// LMKG-U hyperparameters.
    pub u_config: LmkgUConfig,
    /// Seed for training-workload generation.
    pub workload_seed: u64,
}

impl LmkgConfig {
    /// A compact default: supervised, size-grouped, SG-encoded — the
    /// configuration the paper uses for its main comparison (§VIII-B).
    pub fn supervised_default() -> Self {
        Self {
            model_type: ModelType::Supervised,
            grouping: Grouping::BySize,
            shapes: vec![QueryShape::Star, QueryShape::Chain],
            sizes: vec![2, 3],
            queries_per_size: 1000,
            s_config: LmkgSConfig::default(),
            u_config: LmkgUConfig::default(),
            workload_seed: 7,
        }
    }

    /// Unsupervised counterpart (pattern-bound, type+size grouping).
    pub fn unsupervised_default() -> Self {
        Self {
            model_type: ModelType::Unsupervised,
            ..Self::supervised_default()
        }
    }

    /// Every `(shape, size)` cell this configuration trains for — the
    /// baseline cell mix a [`crate::monitor::WorkloadMonitor`] compares live
    /// traffic against.
    pub fn cells(&self) -> Vec<(QueryShape, usize)> {
        self.shapes
            .iter()
            .flat_map(|&shape| self.sizes.iter().map(move |&k| (shape, k)))
            .collect()
    }
}

/// Which queries a model answers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModelKey {
    /// `None` = any shape (single model with SG-Encoding).
    pub shape: Option<QueryShape>,
    /// Smallest query size covered.
    pub min_size: usize,
    /// Largest query size covered.
    pub max_size: usize,
}

impl ModelKey {
    fn matches(&self, shape: QueryShape, size: usize, exact_size_only: bool) -> bool {
        let shape_ok = match self.shape {
            None => matches!(shape, QueryShape::Star | QueryShape::Chain | QueryShape::Single),
            Some(s) => s == shape || (shape == QueryShape::Single && self.min_size <= 1),
        };
        let size_ok = if exact_size_only {
            size == self.max_size
        } else {
            size >= self.min_size.min(1) && size <= self.max_size
        };
        shape_ok && size_ok
    }
}

/// Whether a training workload can be generated for a `(shape, size)` cell
/// at all: `lmkg-data` generates star and chain patterns of ≥ 2 triples,
/// while single triples and `Other` shapes stay on the
/// decomposition/statistics path. [`Lmkg::extend`] skips untrainable cells,
/// and the serving adapter filters retraining targets with this same
/// predicate — one definition, so the two sides cannot drift.
pub fn trainable_cell(cell: (QueryShape, usize)) -> bool {
    matches!(cell.0, QueryShape::Star | QueryShape::Chain) && cell.1 >= 2
}

// The size gap between the two variants is irrelevant: a framework holds a
// handful of entries, each wrapping megabytes of parameters either way.
#[allow(clippy::large_enum_variant)]
pub(crate) enum ModelEntry {
    S(LmkgS),
    U(LmkgU),
    QuantS(QuantizedLmkgS),
    QuantU(QuantizedLmkgU),
}

impl ModelEntry {
    /// LMKG-U entries (f32 or quantized) answer exactly one query size.
    fn exact_size_only(&self) -> bool {
        matches!(self, ModelEntry::U(_) | ModelEntry::QuantU(_))
    }

    /// Per-entry model size in bytes (the unit the eviction budget sums).
    pub(crate) fn memory_bytes(&self) -> usize {
        match self {
            ModelEntry::S(m) => m.memory_bytes(),
            ModelEntry::U(m) => m.memory_bytes(),
            ModelEntry::QuantS(m) => m.memory_bytes(),
            ModelEntry::QuantU(m) => m.memory_bytes(),
        }
    }
}

/// The LMKG framework: a compound of grouped learned models plus the
/// statistics block used for decomposition fallbacks.
///
/// Models and the summary are held behind `Arc`s so that
/// [`Lmkg::extend`] can produce a grown framework that *shares* the already
/// trained entries with the original — the workload-shift loop trains only
/// the missing cells while the original keeps serving traffic.
pub struct Lmkg {
    entries: Vec<(ModelKey, Arc<ModelEntry>)>,
    summary: Arc<GraphSummary>,
    max_covered_size: usize,
}

impl std::fmt::Debug for Lmkg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Lmkg")
            .field("models", &self.entries.len())
            .field("max_covered_size", &self.max_covered_size)
            .field("bytes", &self.total_memory_bytes())
            .finish()
    }
}

impl Lmkg {
    /// Creation phase: decides the model set from the grouping, generates
    /// training data, and trains every model (Fig. 1, top).
    pub fn build(graph: &KnowledgeGraph, cfg: &LmkgConfig) -> Self {
        assert!(!cfg.shapes.is_empty() && !cfg.sizes.is_empty());
        let summary = Arc::new(GraphSummary::build(graph));
        let max_size = *cfg.sizes.iter().max().expect("non-empty sizes");
        let mut entries = Vec::new();

        match cfg.model_type {
            ModelType::Supervised => {
                let keys: Vec<ModelKey> = match cfg.grouping {
                    Grouping::Single => vec![ModelKey {
                        shape: None,
                        min_size: 1,
                        max_size,
                    }],
                    Grouping::ByType => cfg
                        .shapes
                        .iter()
                        .map(|&s| ModelKey {
                            shape: Some(s),
                            min_size: 1,
                            max_size,
                        })
                        .collect(),
                    Grouping::BySize => cfg
                        .sizes
                        .iter()
                        .map(|&k| ModelKey {
                            shape: None,
                            min_size: k,
                            max_size: k,
                        })
                        .collect(),
                    Grouping::Specialized => cfg
                        .shapes
                        .iter()
                        .flat_map(|&s| {
                            cfg.sizes.iter().map(move |&k| ModelKey {
                                shape: Some(s),
                                min_size: k,
                                max_size: k,
                            })
                        })
                        .collect(),
                };
                // Grouped models are independent (each generates its own
                // training workload), so the whole creation phase fans out
                // across scoped threads — one per model, joined in key order
                // so the routing order stays identical to sequential builds.
                let jobs: Vec<_> = keys
                    .iter()
                    .map(|&key| move || train_supervised(graph, cfg, key))
                    .collect();
                let models = build_models_parallel("LMKG-S", jobs);
                for (key, model) in keys.into_iter().zip(models) {
                    entries.push((key, Arc::new(ModelEntry::S(model))));
                }
            }
            ModelType::Unsupervised => {
                // LMKG-U: always one model per (type, size) — §VIII-B.
                // Training the cells is embarrassingly parallel too.
                let cells: Vec<(QueryShape, usize)> = cfg
                    .shapes
                    .iter()
                    .flat_map(|&shape| cfg.sizes.iter().map(move |&k| (shape, k)))
                    .collect();
                let jobs: Vec<_> = cells
                    .iter()
                    .map(|&(shape, k)| {
                        move || match LmkgU::new(graph, shape, k, cfg.u_config.clone()) {
                            Ok(mut model) => {
                                model.train(graph);
                                Some(model)
                            }
                            Err(LmkgUError::DomainTooLarge { .. }) => {
                                // The YAGO case: skip, decomposition/summary
                                // fallback will answer (§VIII drops LMKG-U
                                // for YAGO entirely).
                                None
                            }
                            Err(e) => panic!("LMKG-U construction failed: {e}"),
                        }
                    })
                    .collect();
                let models = build_models_parallel("LMKG-U", jobs);
                for ((shape, k), model) in cells.into_iter().zip(models) {
                    if let Some(model) = model {
                        let key = ModelKey {
                            shape: Some(shape),
                            min_size: k,
                            max_size: k,
                        };
                        entries.push((key, Arc::new(ModelEntry::U(model))));
                    }
                }
            }
        }

        Self {
            entries,
            summary,
            max_covered_size: max_size,
        }
    }

    /// Incremental creation phase (paper §IV, Model choice: when the
    /// workload changes, "a new model may be created"): trains models for
    /// the given `(shape, size)` cells only and returns a framework that
    /// covers them **in addition to** everything `self` covers.
    ///
    /// Existing model entries are reused by reference (`Arc` clones, no
    /// retraining, no full rebuild); only the missing cells are trained, on
    /// scoped threads like [`Lmkg::build`]. Cells already covered, cells
    /// with untrainable shapes (workload generation supports star and
    /// chain), and duplicates are skipped, so extending by an
    /// already-covered workload is a cheap no-op.
    ///
    /// `self` is untouched — an `Arc<Lmkg>` serving live traffic keeps
    /// answering on the old model set while this trains, and the result is
    /// published atomically afterwards (the serving layer's
    /// `ModelHandle::swap`). New entries are appended *after* the existing
    /// ones, so every query the old set answered routes identically
    /// (bitwise) in the extended set.
    ///
    /// Training is deterministic in `(graph, cfg, cell)`: extending two
    /// clones of a framework by the same cells yields bitwise-identical
    /// estimators, which is how the adaptation parity test pins the served
    /// post-swap estimates.
    pub fn extend(&self, graph: &KnowledgeGraph, cells: &[(QueryShape, usize)], cfg: &LmkgConfig) -> Self {
        let mut wanted: Vec<(QueryShape, usize)> = Vec::new();
        for &(shape, size) in cells {
            if trainable_cell((shape, size)) && !self.covers(shape, size) && !wanted.contains(&(shape, size)) {
                wanted.push((shape, size));
            }
        }
        let mut entries = self.entries.clone();

        if !wanted.is_empty() {
            match cfg.model_type {
                ModelType::Supervised => {
                    let keys: Vec<ModelKey> = wanted
                        .iter()
                        .map(|&(shape, k)| ModelKey {
                            shape: Some(shape),
                            min_size: k,
                            max_size: k,
                        })
                        .collect();
                    let jobs: Vec<_> = keys
                        .iter()
                        .map(|&key| move || train_supervised(graph, cfg, key))
                        .collect();
                    let models = build_models_parallel("LMKG-S (extension)", jobs);
                    for (key, model) in keys.into_iter().zip(models) {
                        entries.push((key, Arc::new(ModelEntry::S(model))));
                    }
                }
                ModelType::Unsupervised => {
                    let jobs: Vec<_> = wanted
                        .iter()
                        .map(|&(shape, k)| {
                            move || match LmkgU::new(graph, shape, k, cfg.u_config.clone()) {
                                Ok(mut model) => {
                                    model.train(graph);
                                    Some(model)
                                }
                                Err(LmkgUError::DomainTooLarge { .. }) => None,
                                Err(e) => panic!("LMKG-U construction failed: {e}"),
                            }
                        })
                        .collect();
                    let models = build_models_parallel("LMKG-U (extension)", jobs);
                    for (&(shape, k), model) in wanted.iter().zip(models) {
                        if let Some(model) = model {
                            let key = ModelKey {
                                shape: Some(shape),
                                min_size: k,
                                max_size: k,
                            };
                            entries.push((key, Arc::new(ModelEntry::U(model))));
                        }
                    }
                }
            }
        }

        // Decomposition granularity grows only with models that actually
        // exist: a skipped cell (LMKG-U domain guard) must not widen the
        // decomposition target, or queries of that size would stop being
        // split into covered parts.
        let max_covered_size = entries[self.entries.len()..]
            .iter()
            .map(|(key, _)| key.max_size)
            .fold(self.max_covered_size, usize::max);
        Self {
            entries,
            summary: Arc::clone(&self.summary),
            max_covered_size,
        }
    }

    /// Reassembles a framework from snapshot parts (see `crate::snapshot`).
    pub(crate) fn from_parts(
        entries: Vec<(ModelKey, Arc<ModelEntry>)>,
        summary: Arc<GraphSummary>,
        max_covered_size: usize,
    ) -> Self {
        Self {
            entries,
            summary,
            max_covered_size,
        }
    }

    /// The model entries in routing order (snapshot persistence).
    pub(crate) fn entries(&self) -> &[(ModelKey, Arc<ModelEntry>)] {
        &self.entries
    }

    /// The largest query size decomposition targets.
    pub fn max_covered_size(&self) -> usize {
        self.max_covered_size
    }

    /// The `(key, bytes)` footprint of every model entry in routing order —
    /// what the eviction policy ranks.
    pub fn entry_sizes(&self) -> Vec<(ModelKey, usize)> {
        self.entries.iter().map(|(key, e)| (*key, e.memory_bytes())).collect()
    }

    /// Memory-budgeted eviction (paper §IV: "an existing model may be
    /// dropped"): returns a framework whose model set fits `budget_bytes`
    /// (summary included) by dropping the entries least used by the observed
    /// workload, plus the number of entries dropped.
    ///
    /// `usage` is the per-cell query count a `WorkloadMonitor` observed
    /// (`DriftReport::cell_counts`-style pairs). Each entry's score is the
    /// total count over the cells its key covers; entries are dropped in
    /// ascending score order — the workload-dominant models go last. An entry
    /// is **never** dropped while it is the last remaining cover for a cell
    /// with nonzero observed count, so eviction may stop above budget rather
    /// than uncover live traffic. Ties break toward the larger entry (frees
    /// more per drop), then toward the later-added one (extension models
    /// before the base set).
    ///
    /// Surviving entries are shared by `Arc` and keep their relative routing
    /// order, so every query still answered routes to the same model and
    /// estimates stay bitwise-identical. `self` is untouched; the caller
    /// publishes the result atomically (`ModelHandle::swap`), exactly like a
    /// retrain.
    pub fn evict_to_budget(&self, budget_bytes: usize, usage: &[((QueryShape, usize), u64)]) -> (Lmkg, usize) {
        let mut live: Vec<usize> = (0..self.entries.len()).collect();
        let mut total = self.total_memory_bytes();
        let score = |i: usize| -> u64 {
            let (key, entry) = &self.entries[i];
            usage
                .iter()
                .filter(|&&((shape, size), _)| key.matches(shape, size, entry.exact_size_only()))
                .map(|&(_, count)| count)
                .sum()
        };
        let mut evicted = 0usize;
        while total > budget_bytes {
            // An entry is removable unless some nonzero-count cell it covers
            // would be left with no covering entry at all.
            let removable = |i: usize| -> bool {
                let (key, entry) = &self.entries[i];
                usage
                    .iter()
                    .filter(|&&((shape, size), count)| count > 0 && key.matches(shape, size, entry.exact_size_only()))
                    .all(|&((shape, size), _)| {
                        live.iter().any(|&j| {
                            j != i
                                && self.entries[j]
                                    .0
                                    .matches(shape, size, self.entries[j].1.exact_size_only())
                        })
                    })
            };
            let Some(&victim) = live.iter().filter(|&&i| removable(i)).min_by(|&&a, &&b| {
                score(a)
                    .cmp(&score(b))
                    .then(self.entries[b].1.memory_bytes().cmp(&self.entries[a].1.memory_bytes()))
                    .then(b.cmp(&a))
            }) else {
                break; // Every remaining entry is the last cover for live traffic.
            };
            total -= self.entries[victim].1.memory_bytes();
            live.retain(|&i| i != victim);
            evicted += 1;
        }
        let entries = live
            .iter()
            .map(|&i| (self.entries[i].0, Arc::clone(&self.entries[i].1)))
            .collect();
        (
            // The decomposition target is left unchanged: surviving-model
            // routing stays bitwise-identical, and queries whose model was
            // dropped decompose exactly as before (summary fallback).
            Lmkg {
                entries,
                summary: Arc::clone(&self.summary),
                max_covered_size: self.max_covered_size,
            },
            evicted,
        )
    }

    /// Number of trained models.
    pub fn model_count(&self) -> usize {
        self.entries.len()
    }

    /// Whether some model directly covers `(shape, size)` — the coverage
    /// predicate the workload monitor (§IV) uses to decide when a new model
    /// should be created.
    pub fn covers(&self, shape: QueryShape, size: usize) -> bool {
        self.entries
            .iter()
            .any(|(key, entry)| key.matches(shape, size, entry.exact_size_only()))
    }

    /// The statistics block (exposed for diagnostics).
    pub fn summary(&self) -> &GraphSummary {
        &self.summary
    }

    /// Execution phase (Fig. 1, bottom): route to a model when one covers
    /// the query's type and size, otherwise decompose and combine. Shared
    /// (`&self`) access: any number of threads can estimate over one `Lmkg`
    /// concurrently.
    pub fn estimate_query(&self, query: &Query) -> f64 {
        if let Some(est) = self.try_direct(query) {
            return est;
        }
        // Query Decomposition step.
        let parts = decompose::decompose(query, self.max_covered_size.max(1));
        if parts.len() == 1 {
            // Decomposition could not simplify (e.g. an unsupported variable
            // pattern at a covered size): statistics fallback.
            return self.summary.estimate_query_independent(query);
        }
        let direct: Vec<Option<f64>> = parts.iter().map(|part| self.try_direct(part)).collect();
        self.combine_decomposed(&parts, &direct)
    }

    /// Combines sub-query estimates under join uniformity: the product of
    /// part estimates (statistics fallback where no model answered) divided
    /// per extra occurrence of each shared variable. Both the per-query and
    /// the batched decomposition paths go through here, so they agree
    /// bitwise by construction.
    fn combine_decomposed(&self, parts: &[Query], ests: &[Option<f64>]) -> f64 {
        let mut product = 1.0f64;
        for (part, est) in parts.iter().zip(ests) {
            let est = est.unwrap_or_else(|| self.summary.estimate_query_independent(part));
            product *= est.max(1e-12);
        }
        // Join-uniformity correction over variables shared between parts.
        for (_, occurrences) in decompose::shared_variables(parts) {
            product /= (self.summary.num_nodes().max(1) as f64).powi(occurrences as i32 - 1);
        }
        product.max(1.0)
    }

    /// Batched execution phase: the query slice is grouped by the model
    /// entry that covers it ([`ModelKey`]), and each group runs **one**
    /// batched forward through its model. Queries every model rejects are
    /// decomposed, and the sub-queries of the *whole batch* are again
    /// grouped by covering model and pushed through the batched forwards —
    /// so even a fully uncovered workload runs one forward per model, not
    /// one per sub-query. Results are identical to looping
    /// [`Lmkg::estimate_query`].
    pub fn estimate_query_batch(&self, queries: &[Query]) -> Vec<f64> {
        let refs: Vec<&Query> = queries.iter().collect();
        let mut out = self.route_batch(&refs);

        // Decomposition fallback for the queries every model rejected.
        // `estimate_query` would re-probe the models first, but a rejected
        // query deterministically falls through that probe, so skipping it
        // here changes nothing.
        let mut parts_all: Vec<Query> = Vec::new();
        // (query index, first part, part count) per decomposed query.
        let mut spans: Vec<(usize, usize, usize)> = Vec::new();
        for i in 0..queries.len() {
            if out[i].is_some() {
                continue;
            }
            let parts = decompose::decompose(&queries[i], self.max_covered_size.max(1));
            if parts.len() == 1 {
                // Decomposition could not simplify: statistics fallback.
                out[i] = Some(self.summary.estimate_query_independent(&queries[i]));
            } else {
                spans.push((i, parts_all.len(), parts.len()));
                parts_all.extend(parts);
            }
        }
        if !spans.is_empty() {
            // All sub-queries of all decomposed queries, batched by model.
            let part_refs: Vec<&Query> = parts_all.iter().collect();
            let part_ests = self.route_batch(&part_refs);
            for &(i, start, len) in &spans {
                let parts = &parts_all[start..start + len];
                out[i] = Some(self.combine_decomposed(parts, &part_ests[start..start + len]));
            }
        }
        out.into_iter().map(|v| v.expect("every query answered")).collect()
    }

    /// Routes a slice through the model entries, batching per entry: each
    /// entry batch-answers the still-unanswered queries its key covers. A
    /// query rejected by one model (encoder or shape/size mismatch) stays
    /// eligible for later entries — the same fall-through [`Lmkg::try_direct`]
    /// performs per query. `None` means no model answered.
    fn route_batch(&self, queries: &[&Query]) -> Vec<Option<f64>> {
        let mut out: Vec<Option<f64>> = vec![None; queries.len()];
        let mut remaining: Vec<usize> = (0..queries.len()).collect();
        for (key, entry) in &self.entries {
            if remaining.is_empty() {
                break;
            }
            let exact = entry.exact_size_only();
            let (candidates, rest): (Vec<usize>, Vec<usize>) = remaining
                .iter()
                .partition(|&&i| key.matches(queries[i].shape(), queries[i].size(), exact));
            if candidates.is_empty() {
                continue;
            }
            let refs: Vec<&Query> = candidates.iter().map(|&i| queries[i]).collect();
            let mut failed: Vec<usize> = Vec::new();
            let mut fill = |results: Vec<Option<f64>>| {
                for (&i, result) in candidates.iter().zip(results) {
                    match result {
                        Some(est) => out[i] = Some(est),
                        None => failed.push(i),
                    }
                }
            };
            match entry.as_ref() {
                ModelEntry::S(model) => {
                    fill(model.predict_batch(&refs).into_iter().map(Result::ok).collect());
                }
                ModelEntry::QuantS(model) => {
                    fill(model.predict_batch(&refs).into_iter().map(Result::ok).collect());
                }
                ModelEntry::U(model) => {
                    fill(model.estimate_query_batch(&refs).into_iter().map(Result::ok).collect());
                }
                ModelEntry::QuantU(model) => {
                    fill(model.estimate_query_batch(&refs).into_iter().map(Result::ok).collect());
                }
            }
            remaining = rest;
            remaining.extend(failed);
            remaining.sort_unstable();
        }
        out
    }

    /// Attempts to answer with a single model.
    fn try_direct(&self, query: &Query) -> Option<f64> {
        let shape = query.shape();
        let size = query.size();
        for (key, entry) in &self.entries {
            if !key.matches(shape, size, entry.exact_size_only()) {
                continue;
            }
            let answer = match entry.as_ref() {
                ModelEntry::S(model) => model.predict(query).ok(),
                ModelEntry::QuantS(model) => model.predict(query).ok(),
                ModelEntry::U(model) => model.estimate_query(query).ok(),
                ModelEntry::QuantU(model) => model.estimate_query(query).ok(),
            };
            if answer.is_some() {
                return answer;
            }
        }
        None
    }

    /// A quantized view of the framework: every model entry is re-encoded at
    /// `mode` (int8 per-channel or bf16 weights, f32 accumulation) and the
    /// summary is shared. The original is untouched — the serving layer swaps
    /// between the two `Lmkg`s atomically exactly like a retrain, and
    /// [`Lmkg::total_memory_bytes`] of the result reports the genuinely
    /// smaller footprint (the quantized entries own no f32 weights). Routing
    /// metadata (keys, order, coverage) is carried over verbatim, so every
    /// query routes to the same entry it would in the original.
    pub fn quantized(&self, mode: QuantMode) -> Lmkg {
        let entries = self
            .entries
            .iter()
            .map(|(key, entry)| {
                let q = match entry.as_ref() {
                    ModelEntry::S(model) => Arc::new(ModelEntry::QuantS(model.quantized(mode))),
                    ModelEntry::U(model) => Arc::new(ModelEntry::QuantU(model.quantized(mode))),
                    // Already quantized entries are shared as-is; re-encoding
                    // quantized weights would only compound rounding.
                    ModelEntry::QuantS(_) | ModelEntry::QuantU(_) => Arc::clone(entry),
                };
                (*key, q)
            })
            .collect();
        Lmkg {
            entries,
            summary: Arc::clone(&self.summary),
            max_covered_size: self.max_covered_size,
        }
    }

    /// Total memory of all models plus the summary (Table II). Parameter
    /// walking is a read-only traversal, so this — like the trait's
    /// `memory_bytes`, which now reports the same total — takes `&self`.
    pub fn total_memory_bytes(&self) -> usize {
        let models: usize = self
            .entries
            .iter()
            .map(|(_, e)| match e.as_ref() {
                ModelEntry::S(m) => m.memory_bytes(),
                ModelEntry::U(m) => m.memory_bytes(),
                ModelEntry::QuantS(m) => m.memory_bytes(),
                ModelEntry::QuantU(m) => m.memory_bytes(),
            })
            .sum();
        models + self.summary.memory_bytes()
    }
}

impl CardinalityEstimator for Lmkg {
    fn name(&self) -> &str {
        "LMKG"
    }

    fn estimate(&self, query: &Query) -> f64 {
        self.estimate_query(query).max(1.0)
    }

    /// Batched override: groups the slice by covering model and dispatches
    /// one batched forward per model via [`Lmkg::estimate_query_batch`].
    fn estimate_batch(&self, queries: &[Query]) -> Vec<f64> {
        self.estimate_query_batch(queries)
            .into_iter()
            .map(|est| est.max(1.0))
            .collect()
    }

    fn memory_bytes(&self) -> usize {
        self.total_memory_bytes()
    }
}

/// Runs independent model-creation jobs on scoped threads — one thread per
/// job, results in job order — and logs the wall-clock win over sequential
/// execution (summed per-thread time ÷ wall time).
///
/// Training one grouped model never depends on another, so the creation
/// phase parallelizes freely; workload generation happens inside each job
/// and overlaps too.
fn build_models_parallel<T, F>(what: &str, jobs: Vec<F>) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    let n = jobs.len();
    // Bounded worker pool, not one thread per model: each training job
    // already fans its matmuls across `available_parallelism` threads, so
    // unbounded spawning on a large grouping (specialized × many sizes)
    // would only add contention and keep every model's training workload
    // resident at once. The floor of 4 keeps some overlap on containers
    // whose cgroup under-reports the usable cores.
    let workers = std::thread::available_parallelism()
        .map(|c| c.get())
        .unwrap_or(1)
        .max(4)
        .min(n.max(1));
    let start = Instant::now();
    let slots: Vec<Mutex<Option<F>>> = jobs.into_iter().map(|job| Mutex::new(Some(job))).collect();
    let results: Vec<Mutex<Option<(T, f64)>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let job = slots[i].lock().expect("job slot lock").take().expect("job taken once");
                let t = Instant::now();
                let out = job();
                *results[i].lock().expect("result slot lock") = Some((out, t.elapsed().as_secs_f64()));
            });
        }
    });
    let wall = start.elapsed().as_secs_f64();
    let timed: Vec<(T, f64)> = results
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot lock")
                .expect("model-creation job completed")
        })
        .collect();
    let summed: f64 = timed.iter().map(|(_, secs)| secs).sum();
    eprintln!(
        "lmkg: creation phase trained {n} {what} model(s) on {workers} thread(s) in {wall:.3}s wall \
         ({summed:.3}s summed across threads, {:.2}x overlap)",
        summed / wall.max(1e-9)
    );
    timed.into_iter().map(|(model, _)| model).collect()
}

/// Trains one LMKG-S model for a key.
///
/// All groupings use the SG-Encoding (the paper's main LMKG-S configuration,
/// §VIII-B) so that grouping comparisons vary only the grouping — Fig. 7's
/// "same configuration" requirement. The topology-specific pattern-bound
/// encoding remains available through [`LmkgS::new`] directly.
fn train_supervised(graph: &KnowledgeGraph, cfg: &LmkgConfig, key: ModelKey) -> LmkgS {
    let encoder = QueryEncoder::Sg(SgEncoder::capacity_for_size(
        graph.num_nodes(),
        graph.num_preds(),
        key.max_size,
    ));
    let mut model = LmkgS::new(encoder, cfg.s_config.clone());

    // Training data: the per-model budget is split evenly across every
    // (shape, size) cell the key covers.
    let shapes: Vec<QueryShape> = match key.shape {
        Some(s) => vec![s],
        None => cfg.shapes.clone(),
    };
    let mut sizes: Vec<usize> = cfg
        .sizes
        .iter()
        .copied()
        .filter(|&k| k >= key.min_size && k <= key.max_size)
        .collect();
    if sizes.is_empty() {
        // Extension keys (workload-shift retraining) target sizes outside
        // `cfg.sizes`; train on the key's own size band.
        sizes = vec![key.max_size];
    }
    let cells = (shapes.len() * sizes.len()).max(1);
    let per_cell = (cfg.queries_per_size / cells).max(1);
    let mut data = Vec::new();
    for &shape in &shapes {
        for &k in &sizes {
            let wl = WorkloadConfig::train_default(shape, k, per_cell, cfg.workload_seed ^ ((k as u64) << 8));
            data.extend(workload::generate(graph, &wl));
        }
    }
    model.train(&data);
    model
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::QErrorStats;
    use lmkg_data::{Dataset, Scale};
    use lmkg_store::{NodeTerm, PredId, PredTerm, TriplePattern, VarId};

    fn quick_s_config() -> LmkgSConfig {
        LmkgSConfig {
            hidden: vec![64],
            epochs: 40,
            dropout: 0.0,
            ..Default::default()
        }
    }

    fn quick_u_config() -> LmkgUConfig {
        LmkgUConfig {
            hidden: 32,
            blocks: 1,
            embed_dim: 8,
            epochs: 8,
            train_samples: 2000,
            particles: 128,
            ..Default::default()
        }
    }

    fn quick_cfg(model_type: ModelType, grouping: Grouping) -> LmkgConfig {
        LmkgConfig {
            model_type,
            grouping,
            shapes: vec![QueryShape::Star, QueryShape::Chain],
            sizes: vec![2],
            queries_per_size: 300,
            s_config: quick_s_config(),
            u_config: quick_u_config(),
            workload_seed: 3,
        }
    }

    #[test]
    fn supervised_specialized_builds_four_models() {
        let g = Dataset::LubmLike.generate(Scale::Ci, 1);
        let mut cfg = quick_cfg(ModelType::Supervised, Grouping::Specialized);
        cfg.sizes = vec![2, 3];
        let lmkg = Lmkg::build(&g, &cfg);
        assert_eq!(lmkg.model_count(), 4); // 2 shapes × 2 sizes
    }

    #[test]
    fn grouping_controls_model_count() {
        let g = Dataset::LubmLike.generate(Scale::Ci, 1);
        let mut cfg = quick_cfg(ModelType::Supervised, Grouping::Single);
        cfg.sizes = vec![2, 3];
        assert_eq!(Lmkg::build(&g, &cfg).model_count(), 1);
        cfg.grouping = Grouping::ByType;
        assert_eq!(Lmkg::build(&g, &cfg).model_count(), 2);
        cfg.grouping = Grouping::BySize;
        assert_eq!(Lmkg::build(&g, &cfg).model_count(), 2);
    }

    #[test]
    fn estimates_covered_queries_reasonably() {
        let g = Dataset::LubmLike.generate(Scale::Ci, 1);
        let cfg = quick_cfg(ModelType::Supervised, Grouping::BySize);
        let lmkg = Lmkg::build(&g, &cfg);
        let wl = WorkloadConfig::test_default(QueryShape::Star, 2, 99);
        let test = workload::generate(&g, &wl);
        let pairs: Vec<(f64, u64)> = test
            .iter()
            .take(100)
            .map(|lq| (lmkg.estimate_query(&lq.query), lq.cardinality))
            .collect();
        let stats = QErrorStats::from_pairs(pairs).unwrap();
        assert!(stats.median < 8.0, "median q-error {}", stats.median);
    }

    #[test]
    fn uncovered_size_is_decomposed() {
        let g = Dataset::LubmLike.generate(Scale::Ci, 1);
        let cfg = quick_cfg(ModelType::Supervised, Grouping::BySize); // only size 2
        let lmkg = Lmkg::build(&g, &cfg);
        // Star of size 4 → decomposed into two size-2 stars.
        let q = Query::new(
            (0..4)
                .map(|i| {
                    TriplePattern::new(
                        NodeTerm::Var(VarId(0)),
                        PredTerm::Bound(PredId(i % g.num_preds() as u32)),
                        NodeTerm::Var(VarId(1 + i as u16)),
                    )
                })
                .collect(),
        );
        let est = lmkg.estimate_query(&q);
        assert!(est.is_finite() && est >= 1.0);
    }

    #[test]
    fn composite_query_is_decomposed() {
        let g = Dataset::LubmLike.generate(Scale::Ci, 1);
        let cfg = quick_cfg(ModelType::Supervised, Grouping::BySize);
        let lmkg = Lmkg::build(&g, &cfg);
        // star(2) at ?0 + chain edge from ?1: shape Other.
        let q = Query::new(vec![
            TriplePattern::new(
                NodeTerm::Var(VarId(0)),
                PredTerm::Bound(PredId(0)),
                NodeTerm::Var(VarId(1)),
            ),
            TriplePattern::new(
                NodeTerm::Var(VarId(0)),
                PredTerm::Bound(PredId(1)),
                NodeTerm::Var(VarId(2)),
            ),
            TriplePattern::new(
                NodeTerm::Var(VarId(1)),
                PredTerm::Bound(PredId(2)),
                NodeTerm::Var(VarId(3)),
            ),
        ]);
        assert_eq!(q.shape(), QueryShape::Other);
        let est = lmkg.estimate_query(&q);
        assert!(est.is_finite() && est >= 1.0);
    }

    #[test]
    fn unsupervised_framework_routes_by_exact_size() {
        let g = Dataset::LubmLike.generate(Scale::Ci, 1);
        let cfg = quick_cfg(ModelType::Unsupervised, Grouping::Specialized);
        let lmkg = Lmkg::build(&g, &cfg);
        assert_eq!(lmkg.model_count(), 2); // star-2, chain-2
        let wl = WorkloadConfig::test_default(QueryShape::Star, 2, 5);
        let test = workload::generate(&g, &wl);
        let est = lmkg.estimate_query(&test[0].query);
        assert!(est.is_finite() && est >= 1.0);
    }

    #[test]
    fn unsupervised_domain_guard_skips_models() {
        let g = Dataset::LubmLike.generate(Scale::Ci, 1);
        let mut cfg = quick_cfg(ModelType::Unsupervised, Grouping::Specialized);
        cfg.u_config.max_node_domain = 2; // force the YAGO path
        let lmkg = Lmkg::build(&g, &cfg);
        assert_eq!(lmkg.model_count(), 0);
        // Still answers via the statistics fallback.
        let wl = WorkloadConfig::test_default(QueryShape::Star, 2, 5);
        let test = workload::generate(&g, &wl);
        assert!(lmkg.estimate_query(&test[0].query) >= 1.0);
    }

    #[test]
    fn batched_routing_matches_per_query_bitwise() {
        let g = Dataset::LubmLike.generate(Scale::Ci, 1);
        let mut cfg = quick_cfg(ModelType::Supervised, Grouping::BySize);
        cfg.sizes = vec![2, 3];
        let lmkg = Lmkg::build(&g, &cfg);

        // Covered sizes, an uncovered size (decomposition), and a composite
        // shape (decomposition) all mixed into one batch.
        let mut queries: Vec<Query> = Vec::new();
        for (shape, size) in [(QueryShape::Star, 2), (QueryShape::Chain, 3), (QueryShape::Star, 3)] {
            let wl = WorkloadConfig::test_default(shape, size, 11);
            queries.extend(workload::generate(&g, &wl).into_iter().take(8).map(|lq| lq.query));
        }
        queries.push(Query::new(
            (0..4)
                .map(|i| {
                    TriplePattern::new(
                        NodeTerm::Var(VarId(0)),
                        PredTerm::Bound(PredId(i % g.num_preds() as u32)),
                        NodeTerm::Var(VarId(1 + i as u16)),
                    )
                })
                .collect(),
        ));

        let looped: Vec<f64> = queries.iter().map(|q| lmkg.estimate_query(q)).collect();
        let batched = lmkg.estimate_query_batch(&queries);
        assert_eq!(
            batched, looped,
            "batched framework routing must match per-query routing"
        );
    }

    #[test]
    fn batched_decomposition_matches_per_query_bitwise() {
        let g = Dataset::LubmLike.generate(Scale::Ci, 1);
        let cfg = quick_cfg(ModelType::Supervised, Grouping::BySize); // covers size 2 only
        let lmkg = Lmkg::build(&g, &cfg);

        // A batch dominated by queries no model covers: size-4 and size-6
        // stars (decomposed into covered size-2 stars), plus an `Other`-shaped
        // composite. All their sub-queries must flow through the *batched*
        // forwards and still reproduce the per-query path bitwise.
        let star = |arms: usize, base: u32| {
            Query::new(
                (0..arms)
                    .map(|i| {
                        TriplePattern::new(
                            NodeTerm::Var(VarId(0)),
                            PredTerm::Bound(PredId((base + i as u32) % g.num_preds() as u32)),
                            NodeTerm::Var(VarId(1 + i as u16)),
                        )
                    })
                    .collect(),
            )
        };
        let mut queries = vec![star(4, 0), star(6, 1), star(4, 2), star(5, 0)];
        queries.push(Query::new(vec![
            TriplePattern::new(
                NodeTerm::Var(VarId(0)),
                PredTerm::Bound(PredId(0)),
                NodeTerm::Var(VarId(1)),
            ),
            TriplePattern::new(
                NodeTerm::Var(VarId(0)),
                PredTerm::Bound(PredId(1)),
                NodeTerm::Var(VarId(2)),
            ),
            TriplePattern::new(
                NodeTerm::Var(VarId(1)),
                PredTerm::Bound(PredId(2)),
                NodeTerm::Var(VarId(3)),
            ),
        ]));
        // A couple of covered queries mixed in so both paths are active.
        let wl = WorkloadConfig::test_default(QueryShape::Star, 2, 11);
        queries.extend(workload::generate(&g, &wl).into_iter().take(4).map(|lq| lq.query));

        let looped: Vec<f64> = queries.iter().map(|q| lmkg.estimate_query(q)).collect();
        let batched = lmkg.estimate_query_batch(&queries);
        assert_eq!(
            batched.iter().map(|e| e.to_bits()).collect::<Vec<_>>(),
            looped.iter().map(|e| e.to_bits()).collect::<Vec<_>>(),
            "batched decomposition fallback must match the per-query path bitwise"
        );
    }

    #[test]
    fn parallel_creation_phase_is_deterministic() {
        let g = Dataset::LubmLike.generate(Scale::Ci, 1);
        let mut cfg = quick_cfg(ModelType::Supervised, Grouping::Specialized);
        cfg.sizes = vec![2, 3];
        let a = Lmkg::build(&g, &cfg);
        let b = Lmkg::build(&g, &cfg);
        assert_eq!(a.model_count(), b.model_count());
        let wl = WorkloadConfig::test_default(QueryShape::Star, 2, 23);
        let queries: Vec<Query> = workload::generate(&g, &wl)
            .into_iter()
            .take(16)
            .map(|lq| lq.query)
            .collect();
        let ea = a.estimate_query_batch(&queries);
        let eb = b.estimate_query_batch(&queries);
        assert_eq!(
            ea.iter().map(|e| e.to_bits()).collect::<Vec<_>>(),
            eb.iter().map(|e| e.to_bits()).collect::<Vec<_>>(),
            "scoped-thread training must not change results run to run"
        );
    }

    #[test]
    fn extend_trains_only_the_missing_cells() {
        let g = Dataset::LubmLike.generate(Scale::Ci, 1);
        let cfg = quick_cfg(ModelType::Supervised, Grouping::BySize); // covers size 2 only
        let base = Lmkg::build(&g, &cfg);
        assert!(!base.covers(QueryShape::Star, 4));

        let extended = base.extend(&g, &[(QueryShape::Star, 4)], &cfg);
        assert_eq!(extended.model_count(), base.model_count() + 1);
        assert!(extended.covers(QueryShape::Star, 4));
        assert!(
            !extended.covers(QueryShape::Chain, 4),
            "only the requested cell is trained"
        );
        // The original framework is untouched (still serving the old set).
        assert!(!base.covers(QueryShape::Star, 4));

        // Everything the base covered routes identically in the extension —
        // the entries are shared, not retrained.
        let wl = WorkloadConfig::test_default(QueryShape::Star, 2, 31);
        let covered: Vec<Query> = workload::generate(&g, &wl)
            .into_iter()
            .take(12)
            .map(|lq| lq.query)
            .collect();
        assert_eq!(
            base.estimate_query_batch(&covered)
                .iter()
                .map(|e| e.to_bits())
                .collect::<Vec<_>>(),
            extended
                .estimate_query_batch(&covered)
                .iter()
                .map(|e| e.to_bits())
                .collect::<Vec<_>>(),
        );

        // The new cell now answers through a model, and deterministically:
        // extending twice yields bitwise-identical estimators.
        let wl4 = WorkloadConfig::test_default(QueryShape::Star, 4, 31);
        let shifted: Vec<Query> = workload::generate(&g, &wl4)
            .into_iter()
            .take(8)
            .map(|lq| lq.query)
            .collect();
        assert!(!shifted.is_empty());
        let again = base.extend(&g, &[(QueryShape::Star, 4)], &cfg);
        assert_eq!(
            extended
                .estimate_query_batch(&shifted)
                .iter()
                .map(|e| e.to_bits())
                .collect::<Vec<_>>(),
            again
                .estimate_query_batch(&shifted)
                .iter()
                .map(|e| e.to_bits())
                .collect::<Vec<_>>(),
        );
    }

    #[test]
    fn extend_skips_covered_duplicate_and_untrainable_cells() {
        let g = Dataset::LubmLike.generate(Scale::Ci, 1);
        let cfg = quick_cfg(ModelType::Supervised, Grouping::BySize);
        let base = Lmkg::build(&g, &cfg);
        let extended = base.extend(
            &g,
            &[
                (QueryShape::Star, 2),  // already covered
                (QueryShape::Other, 4), // untrainable shape
                (QueryShape::Single, 1),
                (QueryShape::Chain, 4), // the one real target…
                (QueryShape::Chain, 4), // …listed twice
            ],
            &cfg,
        );
        assert_eq!(extended.model_count(), base.model_count() + 1);
        assert!(extended.covers(QueryShape::Chain, 4));
    }

    #[test]
    fn extend_unsupervised_respects_domain_guard() {
        let g = Dataset::LubmLike.generate(Scale::Ci, 1);
        let cfg = quick_cfg(ModelType::Unsupervised, Grouping::Specialized);
        let base = Lmkg::build(&g, &cfg);
        assert_eq!(base.model_count(), 2);
        let extended = base.extend(&g, &[(QueryShape::Star, 3)], &cfg);
        assert_eq!(extended.model_count(), 3);
        assert!(extended.covers(QueryShape::Star, 3));

        let mut guarded = cfg.clone();
        guarded.u_config.max_node_domain = 2; // force the YAGO skip path
        let skipped = base.extend(&g, &[(QueryShape::Chain, 3)], &guarded);
        assert_eq!(
            skipped.model_count(),
            base.model_count(),
            "guarded cell is skipped, not panicked"
        );
        // A skipped cell must leave the framework untouched — in particular
        // the decomposition granularity: size-3+ queries still split exactly
        // as the base splits them (bitwise), instead of decomposing against
        // a phantom size-3 target no model serves.
        let wl = WorkloadConfig::test_default(QueryShape::Chain, 3, 19);
        let probes: Vec<Query> = workload::generate(&g, &wl)
            .into_iter()
            .take(6)
            .map(|lq| lq.query)
            .collect();
        assert_eq!(
            base.estimate_query_batch(&probes)
                .iter()
                .map(|e| e.to_bits())
                .collect::<Vec<_>>(),
            skipped
                .estimate_query_batch(&probes)
                .iter()
                .map(|e| e.to_bits())
                .collect::<Vec<_>>(),
        );
    }

    #[test]
    fn config_cells_is_the_shape_size_product() {
        let mut cfg = quick_cfg(ModelType::Supervised, Grouping::BySize);
        cfg.sizes = vec![2, 3];
        assert_eq!(
            cfg.cells(),
            vec![
                (QueryShape::Star, 2),
                (QueryShape::Star, 3),
                (QueryShape::Chain, 2),
                (QueryShape::Chain, 3),
            ]
        );
    }

    /// `Lmkg::quantized` must preserve routing/coverage, keep estimates close
    /// to the f32 framework on covered queries, and genuinely shrink the
    /// reported model memory.
    #[test]
    fn quantized_framework_tracks_f32_and_shrinks() {
        let g = Dataset::LubmLike.generate(Scale::Ci, 1);
        let cfg = quick_cfg(ModelType::Supervised, Grouping::BySize);
        let lmkg = Lmkg::build(&g, &cfg);
        let q = lmkg.quantized(lmkg_nn::quant::QuantMode::Int8);

        assert_eq!(q.model_count(), lmkg.model_count());
        assert_eq!(q.covers(QueryShape::Star, 2), lmkg.covers(QueryShape::Star, 2));
        assert!(
            (q.total_memory_bytes() - q.summary().memory_bytes()) * 3
                < lmkg.total_memory_bytes() - lmkg.summary().memory_bytes(),
            "quantized models must report >3× smaller: {} vs {}",
            q.total_memory_bytes(),
            lmkg.total_memory_bytes()
        );

        let wl = WorkloadConfig::test_default(QueryShape::Star, 2, 99);
        let test = workload::generate(&g, &wl);
        for lq in test.iter().take(40) {
            let f = lmkg.estimate_query(&lq.query);
            let e = q.estimate_query(&lq.query);
            let ratio = (e / f).max(f / e);
            assert!(ratio < 1.15, "estimate {e} drifted {ratio}× from f32 {f}");
        }

        // Quantizing twice shares the already-quantized entries.
        let again = q.quantized(lmkg_nn::quant::QuantMode::Int8);
        assert_eq!(again.total_memory_bytes(), q.total_memory_bytes());
    }

    #[test]
    fn memory_accounting() {
        let g = Dataset::LubmLike.generate(Scale::Ci, 1);
        let cfg = quick_cfg(ModelType::Supervised, Grouping::BySize);
        let lmkg = Lmkg::build(&g, &cfg);
        let mb = lmkg.total_memory_bytes();
        assert!(mb > 1000, "memory {mb}, models {}", lmkg.model_count());
    }

    #[test]
    fn covers_reflects_trained_models() {
        let g = Dataset::LubmLike.generate(Scale::Ci, 1);
        let cfg = quick_cfg(ModelType::Supervised, Grouping::BySize); // size 2 only
        let lmkg = Lmkg::build(&g, &cfg);
        assert!(lmkg.covers(QueryShape::Star, 2));
        assert!(lmkg.covers(QueryShape::Chain, 2));
        assert!(!lmkg.covers(QueryShape::Star, 8));
    }

    #[test]
    fn monitor_integration_detects_uncovered_workload() {
        use crate::monitor::WorkloadMonitor;
        let g = Dataset::LubmLike.generate(Scale::Ci, 1);
        let cfg = quick_cfg(ModelType::Supervised, Grouping::BySize);
        let lmkg = Lmkg::build(&g, &cfg);
        let mut monitor = WorkloadMonitor::new(50, &[(QueryShape::Star, 2), (QueryShape::Chain, 2)]);
        // A workload of size-4 stars the models do not cover.
        let q = Query::new(
            (0..4)
                .map(|i| {
                    TriplePattern::new(
                        NodeTerm::Var(VarId(0)),
                        PredTerm::Bound(PredId(i)),
                        NodeTerm::Var(VarId(1 + i as u16)),
                    )
                })
                .collect(),
        );
        for _ in 0..50 {
            monitor.observe(&q);
        }
        let report = monitor.report(|(shape, size)| lmkg.covers(shape, size));
        assert!(report.should_retrain(0.3, 0.2), "drift must be detected: {report:?}");
    }
}
