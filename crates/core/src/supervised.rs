//! LMKG-S: the supervised estimator (paper §VI-A, Fig. 3).
//!
//! A multi-layer perceptron over either the SG-Encoding or a pattern-bound
//! encoding. Targets are `log₂`-scaled and min-max normalized; hidden layers
//! use ReLU with optional dropout; the output layer is a sigmoid; the
//! training loss is the mean q-error (with MSE and log-q-error ablations).

use crate::outliers::OutlierBuffer;
use lmkg_data::LabeledQuery;
use lmkg_encoder::{CardinalityScaler, EncodeError, PatternBoundEncoder, RowEncoder, SgEncoder};
use lmkg_nn::layers::{Dense, Dropout, Layer, Relu, Sequential, Sigmoid};
use lmkg_nn::optimizer::{Adam, Optimizer};
use lmkg_nn::quant::{QuantMode, QuantizedSequential};
use lmkg_nn::tensor::Matrix;
use lmkg_nn::workspace::Workspace;
use lmkg_nn::{loss, serialize};
use lmkg_store::Query;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::io;

/// Which featurization feeds the network (paper §V).
#[derive(Clone)]
pub enum QueryEncoder {
    /// The general SG-Encoding — one model can serve several topologies.
    Sg(SgEncoder),
    /// The topology-specific flat encoding.
    PatternBound(PatternBoundEncoder),
}

impl QueryEncoder {
    /// Feature width.
    pub fn width(&self) -> usize {
        match self {
            QueryEncoder::Sg(e) => e.width(),
            QueryEncoder::PatternBound(e) => e.width(),
        }
    }

    /// Encodes a query into `out`.
    pub fn encode(&self, query: &Query, out: &mut [f32]) -> Result<(), EncodeError> {
        match self {
            QueryEncoder::Sg(e) => e.encode(query, out),
            QueryEncoder::PatternBound(e) => e.encode(query, out),
        }
    }

    /// Encodes a whole batch in one pass, appending one row per accepted
    /// query to `rows` (see [`RowEncoder::encode_batch`]); returns one
    /// status per input query.
    pub fn encode_batch<'q, I>(&self, queries: I, rows: &mut Vec<f32>) -> Vec<Result<(), EncodeError>>
    where
        I: IntoIterator<Item = &'q Query>,
    {
        match self {
            QueryEncoder::Sg(e) => e.encode_batch(queries, rows),
            QueryEncoder::PatternBound(e) => e.encode_batch(queries, rows),
        }
    }
}

/// Training loss for LMKG-S.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LossKind {
    /// Mean q-error (paper default).
    QError,
    /// Mean squared error on scaled targets (ablation).
    Mse,
    /// L1 in log space = log of the geometric q-error (ablation).
    LogQError,
}

/// LMKG-S hyperparameters.
#[derive(Debug, Clone)]
pub struct LmkgSConfig {
    /// Hidden layer widths ("2 or 3 layers of 512 neurons are often
    /// acceptable", §VIII-A).
    pub hidden: Vec<usize>,
    /// Dropout probability after the first hidden layer (Fig. 3).
    pub dropout: f32,
    /// Training epochs (paper: 200).
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Adam learning rate.
    pub learning_rate: f32,
    /// Loss function.
    pub loss: LossKind,
    /// Exponent clamp of the q-error loss, in log₂ units.
    pub q_error_max_exp: f32,
    /// Elementwise gradient clip (0 = off) — stabilizes the exponential loss.
    pub grad_clip: f32,
    /// Capacity of the outlier buffer (§VIII-C "buffer list" improvement);
    /// 0 disables it, which is the paper's main configuration.
    pub outlier_buffer: usize,
    /// RNG seed for weight init, shuffling, and dropout.
    pub seed: u64,
}

impl Default for LmkgSConfig {
    fn default() -> Self {
        Self {
            hidden: vec![256, 256],
            dropout: 0.05,
            epochs: 200,
            batch_size: 128,
            learning_rate: 1e-3,
            loss: LossKind::QError,
            q_error_max_exp: 16.0,
            grad_clip: 1.0,
            outlier_buffer: 0,
            seed: 0,
        }
    }
}

/// Per-epoch training diagnostics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochStats {
    /// 0-based epoch index.
    pub epoch: usize,
    /// Mean training loss across batches.
    pub loss: f32,
}

/// The supervised LMKG estimator.
///
/// Built (`&mut self`) once, then frozen: every prediction entry point takes
/// `&self` and runs the network through the shared-read inference path, so a
/// trained `LmkgS` behind an `Arc` serves concurrent estimates without locks.
pub struct LmkgS {
    encoder: QueryEncoder,
    model: Sequential,
    scaler: Option<CardinalityScaler>,
    cfg: LmkgSConfig,
    outliers: OutlierBuffer,
    rng: StdRng,
}

impl LmkgS {
    /// Builds the network for `encoder`'s feature width (Fig. 3: dense ReLU
    /// stack with dropout, sigmoid output).
    pub fn new(encoder: QueryEncoder, cfg: LmkgSConfig) -> Self {
        assert!(!cfg.hidden.is_empty(), "at least one hidden layer");
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut model = Sequential::new();
        let mut fan_in = encoder.width();
        for (i, &h) in cfg.hidden.iter().enumerate() {
            model.push(Dense::new_he(&mut rng, fan_in, h));
            model.push(Relu::new());
            if i == 0 && cfg.dropout > 0.0 {
                model.push(Dropout::new(cfg.dropout, cfg.seed ^ 0x00D1_2097));
            }
            fan_in = h;
        }
        model.push(Dense::new_xavier(&mut rng, fan_in, 1));
        model.push(Sigmoid::new());
        let outliers = OutlierBuffer::new(cfg.outlier_buffer);
        Self {
            encoder,
            model,
            scaler: None,
            cfg,
            outliers,
            rng,
        }
    }

    /// The configured encoder.
    pub fn encoder(&self) -> &QueryEncoder {
        &self.encoder
    }

    /// The fitted scaler (after training).
    pub fn scaler(&self) -> Option<&CardinalityScaler> {
        self.scaler.as_ref()
    }

    /// Encodes a batch of queries into a feature matrix, skipping queries
    /// the encoder rejects; returns row-aligned (features, cardinalities).
    fn encode_training_batch(&self, data: &[&LabeledQuery]) -> (Matrix, Vec<u64>) {
        let w = self.encoder.width();
        let mut rows = Vec::with_capacity(data.len() * w);
        let statuses = self.encoder.encode_batch(data.iter().map(|lq| &lq.query), &mut rows);
        let cards: Vec<u64> = data
            .iter()
            .zip(&statuses)
            .filter(|(_, s)| s.is_ok())
            .map(|(lq, _)| lq.cardinality)
            .collect();
        (Matrix::from_vec(cards.len(), w, rows), cards)
    }

    /// Fits the scaler and outlier buffer, then trains for the configured
    /// number of epochs. Returns per-epoch stats.
    pub fn train(&mut self, data: &[LabeledQuery]) -> Vec<EpochStats> {
        let epochs = self.cfg.epochs;
        self.prepare(data);
        let mut out = Vec::with_capacity(epochs);
        let mut opt = self.make_optimizer();
        for epoch in 0..epochs {
            let loss = self.run_epoch(data, &mut opt);
            out.push(EpochStats { epoch, loss });
        }
        out
    }

    /// Fits scaler/outliers without training (used before manual epoch
    /// driving via [`LmkgS::train_epoch`]).
    pub fn prepare(&mut self, data: &[LabeledQuery]) {
        assert!(!data.is_empty(), "training data must be non-empty");
        self.scaler = Some(CardinalityScaler::fit(data.iter().map(|d| d.cardinality)));
        self.outliers.fill(data);
    }

    /// Creates the Adam optimizer matching the config.
    pub fn make_optimizer(&self) -> Adam {
        Adam::new(self.cfg.learning_rate).with_grad_clip(self.cfg.grad_clip)
    }

    /// Runs a single epoch; returns the mean batch loss. `prepare` must have
    /// been called.
    pub fn train_epoch(&mut self, data: &[LabeledQuery], opt: &mut Adam) -> f32 {
        self.run_epoch(data, opt)
    }

    fn run_epoch(&mut self, data: &[LabeledQuery], opt: &mut Adam) -> f32 {
        let scaler = *self.scaler.as_ref().expect("prepare() before training");
        let mut indices: Vec<usize> = (0..data.len()).collect();
        // Fisher–Yates shuffle.
        for i in (1..indices.len()).rev() {
            indices.swap(i, self.rng.gen_range(0..=i));
        }
        let mut total = 0.0f64;
        let mut batches = 0usize;
        for chunk in indices.chunks(self.cfg.batch_size.max(1)) {
            let batch: Vec<&LabeledQuery> = chunk.iter().map(|&i| &data[i]).collect();
            let (x, cards) = self.encode_training_batch(&batch);
            if x.rows() == 0 {
                continue;
            }
            let targets = Matrix::from_vec(cards.len(), 1, cards.iter().map(|&c| scaler.scale(c)).collect());
            let pred = self.model.forward(&x, true);
            let (l, grad) = match self.cfg.loss {
                LossKind::QError => loss::q_error(&pred, &targets, scaler.log_range(), self.cfg.q_error_max_exp),
                LossKind::Mse => loss::mse(&pred, &targets),
                LossKind::LogQError => loss::mae(&pred, &targets),
            };
            self.model.backward(&grad);
            opt.step(&mut self.model);
            total += f64::from(l);
            batches += 1;
        }
        if batches == 0 {
            0.0
        } else {
            (total / batches as f64) as f32
        }
    }

    /// Predicts the cardinality of a query. Errors if the encoder rejects
    /// it. Allocates a one-shot [`Workspace`]; callers with a hot loop use
    /// [`LmkgS::predict_with`] to reuse one.
    pub fn predict(&self, query: &Query) -> Result<f64, EncodeError> {
        self.predict_with(query, &mut Workspace::new())
    }

    /// [`LmkgS::predict`] with a caller-provided workspace — the shared-read
    /// hot path: `&self` model access plus per-caller scratch buffers.
    pub fn predict_with(&self, query: &Query, ws: &mut Workspace) -> Result<f64, EncodeError> {
        let scaler = *self.scaler.as_ref().expect("model is untrained");
        predict_one(&self.encoder, &self.outliers, scaler, query, ws, |x, ws| {
            self.model.forward_infer(x, ws)
        })
    }

    /// Predicts a whole batch with **one** network forward: queries are
    /// encoded into one feature matrix in a single pass, pushed through the
    /// model together, and unscaled row by row. Outlier-buffer hits bypass
    /// the network exactly as in [`LmkgS::predict`], and per-query encoder
    /// rejections surface as per-query errors. Row-independent kernels make
    /// the results bitwise-identical to looping `predict`.
    pub fn predict_batch(&self, queries: &[&Query]) -> Vec<Result<f64, EncodeError>> {
        let scaler = *self.scaler.as_ref().expect("model is untrained");
        predict_many(&self.encoder, &self.outliers, scaler, queries, |x, ws| {
            self.model.forward_infer(x, ws)
        })
    }

    /// One-shot quantization of the trained estimator: the dense stack drops
    /// to int8 (per-output-channel scales) or bf16 weights while the
    /// encoder, scaler, and outlier buffer are carried over unchanged, so a
    /// [`QuantizedLmkgS`] answers exactly the query set its f32 original
    /// answers. Panics if the model is untrained.
    pub fn quantized(&self, mode: QuantMode) -> QuantizedLmkgS {
        let scaler = *self.scaler.as_ref().expect("model is untrained");
        QuantizedLmkgS {
            encoder: self.encoder.clone(),
            model: self.model.quantized(mode),
            scaler,
            outliers: self.outliers.clone(),
        }
    }

    /// Scalar parameter count (read-only walk).
    pub fn param_count(&self) -> usize {
        self.model.param_count()
    }

    /// Model size in bytes (parameters + outlier buffer).
    pub fn memory_bytes(&self) -> usize {
        self.model.param_count() * std::mem::size_of::<f32>() + self.outliers.memory_bytes()
    }

    /// Serializes the parameters (not the scaler/config) to a writer.
    pub fn save_params<W: io::Write>(&self, w: &mut W) -> io::Result<()> {
        serialize::save_params(&self.model, w)
    }

    /// Restores parameters from a reader (architecture must match); the
    /// scaler must be re-fit or carried separately.
    pub fn load_params<R: io::Read>(&mut self, r: &mut R) -> io::Result<()> {
        Ok(serialize::load_params(&mut self.model, r)?)
    }

    /// Sets the scaler explicitly (for parameter-file restore).
    pub fn set_scaler(&mut self, scaler: CardinalityScaler) {
        self.scaler = Some(scaler);
    }

    /// The hyperparameters this estimator was built with (snapshot restore
    /// rebuilds the identical architecture from them).
    pub fn config(&self) -> &LmkgSConfig {
        &self.cfg
    }

    /// The outlier buffer (read-only; snapshots persist its exact entries).
    pub fn outliers(&self) -> &OutlierBuffer {
        &self.outliers
    }

    /// Replaces the outlier buffer wholesale (snapshot restore).
    pub fn set_outliers(&mut self, outliers: OutlierBuffer) {
        self.outliers = outliers;
    }
}

/// The shared single-query prediction pipeline: outlier-buffer bypass →
/// encode → one network forward (supplied by the caller) → unscale. Both
/// the f32 and the quantized estimator route through here, so their
/// non-network behavior (rejections, outlier hits, flooring) is identical
/// by construction.
fn predict_one<F>(
    encoder: &QueryEncoder,
    outliers: &OutlierBuffer,
    scaler: CardinalityScaler,
    query: &Query,
    ws: &mut Workspace,
    forward: F,
) -> Result<f64, EncodeError>
where
    F: Fn(&Matrix, &mut Workspace) -> Matrix,
{
    if let Some(card) = outliers.lookup(query) {
        return Ok(card as f64);
    }
    let mut buf = vec![0.0f32; encoder.width()];
    encoder.encode(query, &mut buf)?;
    let x = Matrix::from_vec(1, buf.len(), buf);
    let y = forward(&x, ws);
    let out = scaler.unscale(y.get(0, 0)).max(1.0);
    ws.recycle(y);
    ws.recycle(x);
    Ok(out)
}

/// The shared batched prediction pipeline (see [`LmkgS::predict_batch`] for
/// the contract); `forward` supplies the network, everything else is common.
fn predict_many<F>(
    encoder: &QueryEncoder,
    outliers: &OutlierBuffer,
    scaler: CardinalityScaler,
    queries: &[&Query],
    forward: F,
) -> Vec<Result<f64, EncodeError>>
where
    F: Fn(&Matrix, &mut Workspace) -> Matrix,
{
    let mut ws = Workspace::new();
    let w = encoder.width();
    // Outlier-buffer hits are answered exactly; the rest go to the net.
    let mut results: Vec<Option<Result<f64, EncodeError>>> = Vec::with_capacity(queries.len());
    let mut candidates: Vec<usize> = Vec::with_capacity(queries.len());
    for (i, q) in queries.iter().enumerate() {
        match outliers.lookup(q) {
            Some(card) => results.push(Some(Ok(card as f64))),
            None => {
                results.push(None);
                candidates.push(i);
            }
        }
    }
    let mut rows = Vec::with_capacity(candidates.len() * w);
    let statuses = encoder.encode_batch(candidates.iter().map(|&i| queries[i]), &mut rows);
    let mut accepted: Vec<usize> = Vec::with_capacity(candidates.len());
    for (&i, status) in candidates.iter().zip(statuses) {
        match status {
            Ok(()) => accepted.push(i),
            Err(e) => results[i] = Some(Err(e)),
        }
    }
    // Forward in micro-batches: large enough that a multi-core machine
    // still crosses the matmul parallelism threshold, small enough that
    // layer intermediates stay cache-resident instead of streaming
    // through DRAM. Row-independent kernels keep every result
    // bitwise-identical to any other chunking (including per-query).
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let micro_batch = 256 * cores;
    let mut done = 0usize;
    for chunk in accepted.chunks(micro_batch) {
        let x = Matrix::from_vec(chunk.len(), w, rows[done * w..(done + chunk.len()) * w].to_vec());
        done += chunk.len();
        let y = forward(&x, &mut ws);
        for (row, &i) in chunk.iter().enumerate() {
            results[i] = Some(Ok(scaler.unscale(y.get(row, 0)).max(1.0)));
        }
        ws.recycle(y);
        ws.recycle(x);
    }
    results.into_iter().map(|r| r.expect("every query resolved")).collect()
}

/// A frozen, quantized LMKG-S produced by [`LmkgS::quantized`]: the same
/// encoder, scaler, and outlier buffer over an int8/bf16 dense stack with
/// f32 accumulation. Owns no f32 weights, so
/// [`QuantizedLmkgS::memory_bytes`] reports the true quantized footprint —
/// the trade this struct exists to make honest. Shared-read like its
/// original: every entry point takes `&self`.
pub struct QuantizedLmkgS {
    encoder: QueryEncoder,
    model: QuantizedSequential,
    scaler: CardinalityScaler,
    outliers: OutlierBuffer,
}

impl QuantizedLmkgS {
    /// Reassembles a quantized estimator from snapshot parts; the inverse of
    /// taking `model()`/`scaler()`/`outliers()` apart for persistence.
    pub fn from_parts(
        encoder: QueryEncoder,
        model: QuantizedSequential,
        scaler: CardinalityScaler,
        outliers: OutlierBuffer,
    ) -> Self {
        Self {
            encoder,
            model,
            scaler,
            outliers,
        }
    }

    /// The quantization mode this estimator was built with.
    pub fn mode(&self) -> QuantMode {
        self.model.mode()
    }

    /// The quantized network (snapshots persist it via its own format).
    pub fn model(&self) -> &QuantizedSequential {
        &self.model
    }

    /// The fitted scaler.
    pub fn scaler(&self) -> CardinalityScaler {
        self.scaler
    }

    /// The outlier buffer.
    pub fn outliers(&self) -> &OutlierBuffer {
        &self.outliers
    }

    /// The configured encoder.
    pub fn encoder(&self) -> &QueryEncoder {
        &self.encoder
    }

    /// Predicts the cardinality of a query (one-shot workspace).
    pub fn predict(&self, query: &Query) -> Result<f64, EncodeError> {
        self.predict_with(query, &mut Workspace::new())
    }

    /// [`QuantizedLmkgS::predict`] with a caller-provided workspace.
    pub fn predict_with(&self, query: &Query, ws: &mut Workspace) -> Result<f64, EncodeError> {
        predict_one(&self.encoder, &self.outliers, self.scaler, query, ws, |x, ws| {
            self.model.forward_infer(x, ws)
        })
    }

    /// Batched prediction; same pipeline as [`LmkgS::predict_batch`].
    pub fn predict_batch(&self, queries: &[&Query]) -> Vec<Result<f64, EncodeError>> {
        predict_many(&self.encoder, &self.outliers, self.scaler, queries, |x, ws| {
            self.model.forward_infer(x, ws)
        })
    }

    /// Scalar parameter count (weights, scales, biases).
    pub fn param_count(&self) -> usize {
        self.model.param_count()
    }

    /// Model size in bytes at the quantized representation, plus the
    /// outlier buffer.
    pub fn memory_bytes(&self) -> usize {
        self.model.memory_bytes() + self.outliers.memory_bytes()
    }
}

impl crate::estimator::CardinalityEstimator for QuantizedLmkgS {
    fn name(&self) -> &str {
        match self.mode() {
            QuantMode::Int8 => "LMKG-S-int8",
            QuantMode::Bf16 => "LMKG-S-bf16",
        }
    }

    fn estimate(&self, query: &Query) -> f64 {
        self.predict(query).unwrap_or(1.0)
    }

    fn estimate_batch(&self, queries: &[Query]) -> Vec<f64> {
        let refs: Vec<&Query> = queries.iter().collect();
        self.predict_batch(&refs)
            .into_iter()
            .map(|r| r.unwrap_or(1.0))
            .collect()
    }

    fn memory_bytes(&self) -> usize {
        QuantizedLmkgS::memory_bytes(self)
    }
}

impl crate::estimator::CardinalityEstimator for LmkgS {
    fn name(&self) -> &str {
        "LMKG-S"
    }

    /// Estimates via [`LmkgS::predict`]; queries the encoder rejects (wrong
    /// topology/size for this specific model) report the neutral estimate 1.
    fn estimate(&self, query: &Query) -> f64 {
        self.predict(query).unwrap_or(1.0)
    }

    /// Batched override: one forward pass per batch via
    /// [`LmkgS::predict_batch`].
    fn estimate_batch(&self, queries: &[Query]) -> Vec<f64> {
        let refs: Vec<&Query> = queries.iter().collect();
        self.predict_batch(&refs)
            .into_iter()
            .map(|r| r.unwrap_or(1.0))
            .collect()
    }

    fn memory_bytes(&self) -> usize {
        LmkgS::memory_bytes(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::QErrorStats;
    use lmkg_data::workload::{self, WorkloadConfig};
    use lmkg_data::{Dataset, Scale};
    use lmkg_encoder::{EncodingKind, TermCodec};
    use lmkg_store::QueryShape;

    fn small_setup() -> (lmkg_store::KnowledgeGraph, Vec<LabeledQuery>) {
        let g = Dataset::LubmLike.generate(Scale::Ci, 3);
        let cfg = WorkloadConfig::train_default(QueryShape::Star, 2, 400, 17);
        let data = workload::generate(&g, &cfg);
        (g, data)
    }

    fn quick_cfg() -> LmkgSConfig {
        LmkgSConfig {
            hidden: vec![64, 64],
            epochs: 60,
            batch_size: 64,
            dropout: 0.0,
            ..Default::default()
        }
    }

    #[test]
    fn trains_and_fits_workload() {
        let (g, data) = small_setup();
        let enc = QueryEncoder::Sg(SgEncoder::capacity_for_size(g.num_nodes(), g.num_preds(), 2));
        let mut model = LmkgS::new(enc, quick_cfg());
        let stats = model.train(&data);
        assert_eq!(stats.len(), 60);
        assert!(stats.last().unwrap().loss < stats[0].loss, "loss should decrease");

        // In-sample accuracy must be strong (the paper notes LMKG-S slightly
        // overfits by design).
        let pairs: Vec<(f64, u64)> = data
            .iter()
            .take(200)
            .map(|lq| (model.predict(&lq.query).unwrap(), lq.cardinality))
            .collect();
        let qs = QErrorStats::from_pairs(pairs).unwrap();
        assert!(qs.median < 3.0, "median in-sample q-error {}", qs.median);
    }

    #[test]
    fn pattern_bound_encoder_works_too() {
        let (g, data) = small_setup();
        let codec = TermCodec::new(EncodingKind::Binary, g.num_nodes(), g.num_preds());
        let enc = QueryEncoder::PatternBound(PatternBoundEncoder::new(codec, QueryShape::Star, 2));
        let mut model = LmkgS::new(enc, quick_cfg());
        let stats = model.train(&data);
        assert!(stats.last().unwrap().loss < stats[0].loss);
        let lq = &data[0];
        let est = model.predict(&lq.query).unwrap();
        assert!(est >= 1.0);
    }

    #[test]
    fn predictions_are_floored_at_one() {
        let (g, data) = small_setup();
        let enc = QueryEncoder::Sg(SgEncoder::capacity_for_size(g.num_nodes(), g.num_preds(), 2));
        let mut model = LmkgS::new(
            enc,
            LmkgSConfig {
                epochs: 1,
                ..quick_cfg()
            },
        );
        model.train(&data);
        for lq in data.iter().take(50) {
            assert!(model.predict(&lq.query).unwrap() >= 1.0);
        }
    }

    #[test]
    fn oversized_query_is_rejected() {
        let (g, data) = small_setup();
        let enc = QueryEncoder::Sg(SgEncoder::capacity_for_size(g.num_nodes(), g.num_preds(), 2));
        let mut model = LmkgS::new(
            enc,
            LmkgSConfig {
                epochs: 1,
                ..quick_cfg()
            },
        );
        model.train(&data);
        let big = workload::generate(&g, &WorkloadConfig::train_default(QueryShape::Star, 5, 1, 3));
        assert!(model.predict(&big[0].query).is_err());
    }

    #[test]
    fn outlier_buffer_returns_exact_for_stored_queries() {
        let (g, data) = small_setup();
        let enc = QueryEncoder::Sg(SgEncoder::capacity_for_size(g.num_nodes(), g.num_preds(), 2));
        let mut cfg = quick_cfg();
        cfg.epochs = 1;
        cfg.outlier_buffer = 10;
        let mut model = LmkgS::new(enc, cfg);
        model.train(&data);
        // The largest-cardinality training query must be answered exactly.
        let top = data.iter().max_by_key(|lq| lq.cardinality).unwrap();
        assert_eq!(model.predict(&top.query).unwrap(), top.cardinality as f64);
    }

    #[test]
    fn training_is_deterministic_for_seed() {
        let (g, data) = small_setup();
        let build = || {
            let enc = QueryEncoder::Sg(SgEncoder::capacity_for_size(g.num_nodes(), g.num_preds(), 2));
            LmkgS::new(
                enc,
                LmkgSConfig {
                    epochs: 3,
                    ..quick_cfg()
                },
            )
        };
        let mut a = build();
        let mut b = build();
        let sa = a.train(&data);
        let sb = b.train(&data);
        assert_eq!(sa, sb);
        assert_eq!(a.predict(&data[0].query).unwrap(), b.predict(&data[0].query).unwrap());
    }

    #[test]
    fn save_load_roundtrip() {
        let (g, data) = small_setup();
        let enc = QueryEncoder::Sg(SgEncoder::capacity_for_size(g.num_nodes(), g.num_preds(), 2));
        let mut a = LmkgS::new(
            enc,
            LmkgSConfig {
                epochs: 5,
                ..quick_cfg()
            },
        );
        a.train(&data);
        let mut buf = Vec::new();
        a.save_params(&mut buf).unwrap();

        let enc2 = QueryEncoder::Sg(SgEncoder::capacity_for_size(g.num_nodes(), g.num_preds(), 2));
        let mut b = LmkgS::new(
            enc2,
            LmkgSConfig {
                epochs: 5,
                seed: 99,
                ..quick_cfg()
            },
        );
        b.load_params(&mut buf.as_slice()).unwrap();
        b.set_scaler(*a.scaler().unwrap());
        assert_eq!(a.predict(&data[0].query).unwrap(), b.predict(&data[0].query).unwrap());
    }

    #[test]
    fn mse_and_log_losses_also_train() {
        let (g, data) = small_setup();
        for loss in [LossKind::Mse, LossKind::LogQError] {
            let enc = QueryEncoder::Sg(SgEncoder::capacity_for_size(g.num_nodes(), g.num_preds(), 2));
            let mut model = LmkgS::new(
                enc,
                LmkgSConfig {
                    epochs: 30,
                    loss,
                    ..quick_cfg()
                },
            );
            let stats = model.train(&data);
            assert!(
                stats.last().unwrap().loss < stats[0].loss,
                "{loss:?} failed to reduce loss"
            );
        }
    }

    #[test]
    fn batch_predictions_match_per_query_bitwise() {
        let (g, data) = small_setup();
        let enc = QueryEncoder::Sg(SgEncoder::capacity_for_size(g.num_nodes(), g.num_preds(), 2));
        let mut cfg = quick_cfg();
        cfg.epochs = 15;
        cfg.outlier_buffer = 5; // exercise the outlier bypass in a batch
        let mut model = LmkgS::new(enc, cfg);
        model.train(&data);

        // A mix of coverable queries and one the encoder must reject.
        let mut queries: Vec<Query> = data.iter().take(40).map(|lq| lq.query.clone()).collect();
        let big = workload::generate(&g, &WorkloadConfig::train_default(QueryShape::Star, 5, 1, 9));
        queries.insert(17, big[0].query.clone());

        let looped: Vec<f64> = queries.iter().map(|q| model.predict(q).unwrap_or(1.0)).collect();
        use crate::estimator::CardinalityEstimator;
        let batched = model.estimate_batch(&queries);
        assert_eq!(batched, looped, "batched estimates must be bitwise-identical");
        assert_eq!(batched[17], 1.0, "rejected query reports the neutral estimate");
    }

    #[test]
    fn memory_accounting_positive() {
        let (g, _) = small_setup();
        let enc = QueryEncoder::Sg(SgEncoder::capacity_for_size(g.num_nodes(), g.num_preds(), 2));
        let model = LmkgS::new(enc, quick_cfg());
        assert!(model.memory_bytes() > 1000);
        assert!(model.param_count() > 0);
    }

    /// The q-error regression gate for quantized serving (CI-enforced): on a
    /// deterministic trained fixture, the quantized estimator's median and
    /// p95 q-error must stay within 10% of the f32 model's — quantization is
    /// a memory trade, not an accuracy cliff. Int8 must also shrink the
    /// model ≥ 3.5×, bf16 ≥ ~2×.
    #[test]
    fn quantized_q_error_within_ten_percent_of_f32() {
        let (g, data) = small_setup();
        let enc = QueryEncoder::Sg(SgEncoder::capacity_for_size(g.num_nodes(), g.num_preds(), 2));
        let mut model = LmkgS::new(enc, quick_cfg());
        model.train(&data);

        let eval = data.iter().take(200).collect::<Vec<_>>();
        let stats_of = |pred: &dyn Fn(&Query) -> f64| {
            let pairs: Vec<(f64, u64)> = eval.iter().map(|lq| (pred(&lq.query), lq.cardinality)).collect();
            QErrorStats::from_pairs(pairs).unwrap()
        };
        let f32_stats = stats_of(&|q| model.predict(q).unwrap());
        let f32_bytes = model.memory_bytes();

        for mode in [QuantMode::Int8, QuantMode::Bf16] {
            let q = model.quantized(mode);
            let q_stats = stats_of(&|query| q.predict(query).unwrap());
            assert!(
                q_stats.median <= f32_stats.median * 1.10,
                "{}: median {} vs f32 {}",
                mode.name(),
                q_stats.median,
                f32_stats.median
            );
            assert!(
                q_stats.p95 <= f32_stats.p95 * 1.10,
                "{}: p95 {} vs f32 {}",
                mode.name(),
                q_stats.p95,
                f32_stats.p95
            );
            let ratio_x10 = f32_bytes * 10 / q.memory_bytes();
            match mode {
                QuantMode::Int8 => assert!(ratio_x10 >= 35, "int8 reduction {}×/10 < 3.5×", ratio_x10),
                QuantMode::Bf16 => assert!(ratio_x10 >= 19, "bf16 reduction {}×/10 < ~2×", ratio_x10),
            }
        }
    }

    /// The quantized estimator inherits the full non-network pipeline:
    /// batches match a per-query loop bitwise, outlier hits stay exact, and
    /// rejected queries report the neutral estimate.
    #[test]
    fn quantized_batch_matches_per_query_bitwise() {
        let (g, data) = small_setup();
        let enc = QueryEncoder::Sg(SgEncoder::capacity_for_size(g.num_nodes(), g.num_preds(), 2));
        let mut cfg = quick_cfg();
        cfg.epochs = 15;
        cfg.outlier_buffer = 5;
        let mut model = LmkgS::new(enc, cfg);
        model.train(&data);
        let q = model.quantized(QuantMode::Int8);

        let mut queries: Vec<Query> = data.iter().take(40).map(|lq| lq.query.clone()).collect();
        let big = workload::generate(&g, &WorkloadConfig::train_default(QueryShape::Star, 5, 1, 9));
        queries.insert(17, big[0].query.clone());

        let looped: Vec<f64> = queries.iter().map(|query| q.predict(query).unwrap_or(1.0)).collect();
        use crate::estimator::CardinalityEstimator;
        assert_eq!(q.estimate_batch(&queries), looped);
        assert_eq!(q.name(), "LMKG-S-int8");
        // Outlier hits bypass the network in both models identically.
        let top = data.iter().max_by_key(|lq| lq.cardinality).unwrap();
        assert_eq!(q.predict(&top.query).unwrap(), top.cardinality as f64);
    }
}
