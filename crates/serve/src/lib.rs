//! # lmkg-serve
//!
//! A long-lived, **multi-tenant** estimation server on top of the batched
//! inference contract (`CardinalityEstimator::estimate_batch`, PR 1): the
//! paper's sub-millisecond learned estimates, exercised the way practical
//! deployments of learned estimators are evaluated — as an online service
//! under load, with latency percentiles, not as an offline loop. One
//! process serves many knowledge graphs at once: each **tenant** is a
//! namespace with its own graph, model set, batcher, stats, monitor, and
//! admission quota, assembled through [`server::ServeBuilder`].
//!
//! The pieces, bottom-up:
//!
//! * [`protocol`] — the line-based wire protocol, v2: namespace-routed
//!   `EST <tenant> <id> <sparql>` / `STATS <tenant> <id>` /
//!   `METRICS <tenant> <id>` requests plus a `TENANTS <id>` listing verb;
//!   `OK`/`ERR code=<kebab-code>`/`OVERLOADED`/`STATS`/`TENANTS` replies
//!   out, plus the framed multi-line `METRICS` exposition. v1 lines (no
//!   tenant token) still parse and route to the `default` tenant. Requests
//!   and replies round-trip through parse/format.
//! * [`latency`] — a streaming latency reporter: p50/p95/p99 over a sliding
//!   window of [`lmkg_obs`] log-bucket indices, printable on demand
//!   (`STATS`) and at shutdown.
//! * [`expose`] — the `METRICS` renderer: every counter, stage histogram,
//!   kernel-profile reading, and structured event the stack records,
//!   composed into one Prometheus-style text exposition — unlabeled for v1
//!   scrapes, `tenant="…"`-labeled when a namespace is addressed
//!   ([`expose::render_metrics_for`]).
//! * [`batcher`] — the micro-batcher: a bounded admission queue
//!   (shed-on-overflow with a structured `OVERLOADED` reply) feeding worker
//!   threads that coalesce arrivals within a configurable window / max batch
//!   size into **single** `estimate_batch` forwards. Workers share one
//!   frozen model behind an `Arc` (estimation takes `&self`) through a
//!   swappable [`batcher::ModelHandle`], so forwards run concurrently and a
//!   retraining loop can publish new models under live traffic. Every
//!   tenant owns its batcher, so batches are keyed by tenant by
//!   construction — one forward never mixes models.
//! * [`adapter`] — the online adaptation loop (paper §IV, Model choice):
//!   the batcher observes every admitted query into a shared
//!   `WorkloadMonitor`, a background [`adapter::Adapter`] thread pulls
//!   drift reports, trains models for the dominant uncovered `(shape,
//!   size)` cells via `Lmkg::extend` (only the missing cells; existing
//!   entries are reused by reference), and publishes the extended
//!   framework atomically through the `ModelHandle` while workers keep
//!   serving the old snapshot. One adapter thread walks all tenants
//!   ([`adapter::Adapter::start_multi`]) and swaps each tenant's handle
//!   independently.
//! * [`server`] — [`server::ServeBuilder`] (tenants in, running service
//!   out) and the transports: a stdin/stdout pipe mode and a TCP listener
//!   mode, both speaking the same protocol through the same service object.
//!   The TCP accept loop shuts down gracefully on a [`server::ShutdownFlag`]
//!   (wired to SIGINT/SIGTERM by the `serve` binary): in-flight sessions
//!   drain their replies before the loop returns.
//! * [`loadgen`] — a self-driving load generator that replays an `lmkg-data`
//!   workload at a target QPS through the full protocol path (optionally
//!   addressed to one namespace) and writes a micro-batched vs per-request
//!   comparison, a two-tenant quota-isolation run, and a two-phase
//!   shifted-workload adaptation run (before/after-swap q-error and
//!   latency) to `BENCH_serve.json`.
//!
//! ```
//! use lmkg::GraphSummary;
//! use lmkg_serve::{BatchConfig, ServeBuilder, TenantSpec};
//! use lmkg_store::GraphBuilder;
//! use std::sync::{mpsc, Arc};
//!
//! let mut b = GraphBuilder::new();
//! b.add(":a", ":p", ":b");
//! let graph = Arc::new(b.build());
//! let summary = GraphSummary::build(&graph);
//! let svc = ServeBuilder::new()
//!     .batch(BatchConfig::default())
//!     .tenant(TenantSpec::new("default", graph, Arc::new(summary)))
//!     .build()
//!     .unwrap();
//! let (tx, rx) = mpsc::channel();
//! // v1 (no tenant token) routes to the default tenant; v2 addresses it.
//! svc.handle_line("EST q1 SELECT * WHERE { ?x :p ?y . }", &tx);
//! svc.handle_line("EST default q2 SELECT * WHERE { ?x :p ?y . }", &tx);
//! for expected in ["OK q1 ", "OK q2 "] {
//!     assert!(rx.recv().unwrap().to_string().starts_with(expected));
//! }
//! ```

#![warn(missing_docs)]

pub mod adapter;
pub mod batcher;
pub mod expose;
pub mod latency;
pub mod loadgen;
pub mod metrics_registry;
pub mod protocol;
pub mod server;

pub use adapter::{Adapter, AdapterConfig, TenantAdapterSpec};
pub use batcher::{
    BatchConfig, Job, MicroBatcher, ModelHandle, ServeStats, SharedEstimator, SharedMonitor, EVENT_KINDS, STAGE_NAMES,
};
pub use expose::{render_metrics, render_metrics_for};
pub use latency::{percentile, SlidingWindow, StatsSnapshot};
pub use loadgen::{
    ComparisonReport, LoadgenConfig, MultiTenantReport, ObsOverheadReport, RunReport, ShiftConfig, ShiftReport,
    WorkloadLineError,
};
pub use metrics_registry::{MetricDef, MetricKind, REGISTRY};
pub use protocol::{ErrorCode, ProtocolError, Reply, Request, DEFAULT_TENANT};
pub use server::{
    serve_stream, serve_tcp, BuildError, EstimationService, LineOutcome, ServeBuilder, ShutdownFlag, TenantSpec,
};
