//! Transports: one service object, two ways to reach it.
//!
//! [`EstimationService`] owns the graph (for resolving query terms) and the
//! micro-batcher; [`EstimationService::handle_line`] is the whole per-line
//! state machine — parse, admit (or shed), or answer control requests
//! directly. [`serve_stream`] runs a session over any `BufRead`/`Write`
//! pair (the pipe mode is exactly `stdin`/`stdout`), and [`serve_tcp`]
//! accepts connections and runs one session thread per client over the same
//! code path, so both modes behave identically by construction.

use crate::batcher::{BatchConfig, Job, MicroBatcher, ModelHandle, ServeStats, SharedEstimator, SharedMonitor};
use crate::latency::StatsSnapshot;
use crate::protocol::{Reply, Request};
use lmkg_store::{sparql, KnowledgeGraph};
use std::io::{BufRead, BufReader, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::Duration;

/// What [`EstimationService::handle_line`] decided about the session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LineOutcome {
    /// Keep reading lines.
    Continue,
    /// The client asked to end the session (`QUIT`).
    Quit,
}

/// The serving core shared by every transport: parses request lines against
/// the graph's dictionaries and routes them into the micro-batcher.
pub struct EstimationService {
    graph: Arc<KnowledgeGraph>,
    batcher: MicroBatcher,
}

impl EstimationService {
    /// Builds the service and starts the batcher's worker threads. The
    /// estimator is a frozen, `Arc`-shared model: every worker runs its own
    /// forwards on it concurrently, with no lock on the estimation path.
    pub fn new(graph: Arc<KnowledgeGraph>, estimator: SharedEstimator, cfg: BatchConfig) -> Self {
        Self::new_observed(graph, estimator, cfg, None)
    }

    /// Like [`EstimationService::new`], but admitted queries are also
    /// recorded into `monitor` — the observation feed of the adaptation
    /// loop ([`crate::adapter::Adapter`]).
    pub fn new_observed(
        graph: Arc<KnowledgeGraph>,
        estimator: SharedEstimator,
        cfg: BatchConfig,
        monitor: Option<SharedMonitor>,
    ) -> Self {
        Self {
            graph,
            batcher: MicroBatcher::start_observed(estimator, cfg, monitor),
        }
    }

    /// The graph queries are resolved against.
    pub fn graph(&self) -> &KnowledgeGraph {
        &self.graph
    }

    /// A point-in-time serving summary (the `STATS` reply body).
    pub fn stats(&self) -> StatsSnapshot {
        self.batcher.stats().snapshot()
    }

    /// The live counter block itself (shared with the adapter, which
    /// records drift evaluations and retrain events into it).
    pub fn serve_stats(&self) -> Arc<ServeStats> {
        self.batcher.stats()
    }

    /// The swappable model slot — the seam a retraining loop publishes new
    /// models through, atomically, under live traffic.
    pub fn model(&self) -> Arc<ModelHandle> {
        self.batcher.model()
    }

    /// Shuts the batcher down and hands the estimator back.
    pub fn into_estimator(self) -> SharedEstimator {
        self.batcher.shutdown()
    }

    /// Processes one raw input line. Estimate replies arrive on `out`
    /// asynchronously (from the batcher workers); error, overload, and
    /// stats replies are sent on `out` before this returns. Blank lines and
    /// `#` comments are ignored.
    pub fn handle_line(&self, line: &str, out: &mpsc::Sender<Reply>) -> LineOutcome {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            return LineOutcome::Continue;
        }
        let request = match Request::parse(line) {
            Ok(request) => request,
            Err(e) => {
                self.batcher.stats().note_parse_error(&e.message);
                let _ = out.send(Reply::Error {
                    id: "-".into(),
                    message: e.message,
                });
                return LineOutcome::Continue;
            }
        };
        match request {
            Request::Quit => LineOutcome::Quit,
            Request::Stats { id } => {
                let _ = out.send(Reply::Stats {
                    id,
                    snapshot: self.stats(),
                });
                LineOutcome::Continue
            }
            Request::Metrics { id } => {
                let _ = out.send(Reply::Metrics {
                    id,
                    text: crate::expose::render_metrics(&self.batcher.stats()),
                });
                LineOutcome::Continue
            }
            Request::Estimate { id, sparql } => {
                match sparql::parse(&sparql, &self.graph) {
                    Ok(parsed) => {
                        let job = Job::new(id, parsed.query, out.clone());
                        if let Err(job) = self.batcher.submit(job) {
                            let _ = out.send(Reply::Overloaded {
                                id: job.id,
                                depth: self.batcher.queue_depth(),
                            });
                        }
                    }
                    Err(e) => {
                        let _ = out.send(Reply::Error { id, message: e.message });
                    }
                }
                LineOutcome::Continue
            }
        }
    }
}

/// Runs one session: reads request lines from `reader` until EOF or `QUIT`,
/// writes reply lines to `writer` as they complete (a writer thread drains
/// the reply channel, so slow clients never block the batcher workers).
/// Returns the writer once every admitted request has been answered — tests
/// recover their output buffer through it.
pub fn serve_stream<R, W>(svc: &EstimationService, reader: R, writer: W) -> W
where
    R: BufRead,
    W: Write + Send + 'static,
{
    let stats = svc.serve_stats();
    stats.note_session_start();
    let (tx, rx) = mpsc::channel::<Reply>();
    let writer_thread = std::thread::Builder::new()
        .name("lmkg-serve-writer".into())
        .spawn({
            let stats = Arc::clone(&stats);
            move || {
                let mut writer = writer;
                for reply in rx {
                    // Line-buffered on purpose: each reply is flushed so an
                    // interactive client sees it immediately.
                    let line = reply.to_string();
                    let sent = writer
                        .write_all(line.as_bytes())
                        .and_then(|()| writer.write_all(b"\n"))
                        .and_then(|()| writer.flush());
                    if sent.is_err() {
                        break; // client hung up; drain silently
                    }
                    stats.bytes_out.add(line.len() as u64 + 1);
                }
                writer
            }
        })
        .expect("spawn writer thread");

    for line in reader.lines() {
        let line = match line {
            Ok(line) => line,
            // The bytes up to the newline are already consumed, so a
            // non-UTF-8 line is just one malformed request — reply ERR and
            // keep the session alive, like any other garbage input.
            Err(e) if e.kind() == std::io::ErrorKind::InvalidData => {
                stats.note_parse_error("request line is not valid UTF-8");
                let _ = tx.send(Reply::Error {
                    id: "-".into(),
                    message: "request line is not valid UTF-8".into(),
                });
                continue;
            }
            Err(_) => break, // transport failure: end the session
        };
        stats.bytes_in.add(line.len() as u64 + 1);
        if svc.handle_line(&line, &tx) == LineOutcome::Quit {
            break;
        }
    }
    // Close our sender; in-flight jobs hold clones, so the writer exits
    // exactly when the last outstanding reply has been written.
    drop(tx);
    let writer = writer_thread.join().expect("writer thread panicked");
    stats.note_session_end();
    writer
}

/// A cloneable signal that asks the TCP accept loop to shut down
/// gracefully. The `serve` binary wires it to SIGINT/SIGTERM; tests trigger
/// it directly.
#[derive(Debug, Clone, Default)]
pub struct ShutdownFlag(Arc<AtomicBool>);

impl ShutdownFlag {
    /// A fresh, untriggered flag.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests shutdown. Idempotent; safe from any thread (the `serve`
    /// binary's signal watcher calls it).
    pub fn trigger(&self) {
        self.0.store(true, Ordering::SeqCst);
    }

    /// Whether shutdown has been requested.
    pub fn is_triggered(&self) -> bool {
        self.0.load(Ordering::SeqCst)
    }
}

/// How often the accept loop polls for new connections, finished sessions,
/// and the shutdown flag.
const ACCEPT_POLL: Duration = Duration::from_millis(25);

/// Accepts TCP connections and serves each on its own thread. With
/// `max_conns = Some(n)` the accept loop returns after `n` connections
/// (tests use 1); `None` accepts until `shutdown` triggers.
///
/// Shutdown is graceful: once `shutdown` fires, no new connection is
/// accepted and every live session's read half is closed
/// (`Shutdown::Read`), which reads like a client EOF — the session stops
/// taking requests, every already-admitted job still gets its reply written,
/// and the session thread exits. The loop joins all session threads before
/// returning, so when this function is back the caller can run
/// `Batcher::shutdown` (drop the service) and join the adapter without
/// killing anything mid-swap.
pub fn serve_tcp(
    svc: &Arc<EstimationService>,
    listener: TcpListener,
    max_conns: Option<usize>,
    shutdown: &ShutdownFlag,
) -> std::io::Result<()> {
    listener.set_nonblocking(true)?;
    let mut sessions: Vec<(JoinHandle<()>, TcpStream)> = Vec::new();
    let mut accepted = 0usize;
    let mut fatal: Option<std::io::Error> = None;
    loop {
        if shutdown.is_triggered() {
            break;
        }
        // Reap sessions that ended on their own (QUIT / EOF) on every
        // iteration — not just when idle — so sustained connection churn
        // cannot accumulate dead handles and their control fds unboundedly.
        sessions.retain(|(handle, _)| !handle.is_finished());
        match listener.accept() {
            Ok((stream, _)) => {
                // The listener is non-blocking so the loop can watch the
                // flag; sessions themselves block on reads as before.
                if let Err(e) = stream.set_nonblocking(false) {
                    // Same contract as any other fatal accept-loop error:
                    // drain live sessions below, then propagate.
                    fatal = Some(e);
                    break;
                }
                let _ = stream.set_nodelay(true); // one-line replies; don't batch in the kernel
                let control = stream.try_clone();
                let svc = Arc::clone(svc);
                let handle = std::thread::Builder::new()
                    .name("lmkg-serve-session".into())
                    .spawn(move || {
                        let reader = match stream.try_clone() {
                            Ok(read_half) => BufReader::new(read_half),
                            Err(_) => return,
                        };
                        serve_stream(&svc, reader, stream);
                    })
                    .expect("spawn session thread");
                match control {
                    // Keep a handle on the socket so shutdown can drain it.
                    Ok(control) => sessions.push((handle, control)),
                    Err(_) => drop(handle), // session still runs; just not drainable early
                }
                accepted += 1;
                if max_conns.is_some_and(|max| accepted >= max) {
                    break;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            // A connection that died between arriving and being accepted is
            // the peer's problem, not the listener's.
            Err(e) if e.kind() == std::io::ErrorKind::ConnectionAborted => continue,
            // Anything else (EMFILE, a dead listener, …) is fatal for the
            // accept loop — but live sessions still drain below before the
            // error propagates, exactly as on a shutdown signal.
            Err(e) => {
                fatal = Some(e);
                break;
            }
        }
    }
    if shutdown.is_triggered() || fatal.is_some() {
        for (_, stream) in &sessions {
            // EOF the request side; in-flight replies still flush.
            let _ = stream.shutdown(Shutdown::Read);
        }
    }
    for (handle, _) in sessions {
        let _ = handle.join();
    }
    match fatal {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lmkg::GraphSummary;
    use lmkg_store::GraphBuilder;

    fn service(cfg: BatchConfig) -> EstimationService {
        let mut b = GraphBuilder::new();
        b.add(":shining", ":hasAuthor", ":StephenKing");
        b.add(":it", ":hasAuthor", ":StephenKing");
        b.add(":StephenKing", ":bornIn", ":USA");
        let graph = Arc::new(b.build());
        let summary = GraphSummary::build(&graph);
        EstimationService::new(graph, Arc::new(summary), cfg)
    }

    #[test]
    fn handle_line_answers_estimates_errors_and_stats() {
        let svc = service(BatchConfig::default().per_request());
        let (tx, rx) = mpsc::channel();

        // Blank lines and comments are ignored without replies.
        assert_eq!(svc.handle_line("", &tx), LineOutcome::Continue);
        assert_eq!(svc.handle_line("   # warmup file header", &tx), LineOutcome::Continue);

        svc.handle_line("EST q1 SELECT * WHERE { ?x :hasAuthor ?y . }", &tx);
        match rx.recv_timeout(std::time::Duration::from_secs(5)).unwrap() {
            Reply::Estimate { id, estimate, .. } => {
                assert_eq!(id, "q1");
                assert!(estimate >= 1.0);
            }
            other => panic!("expected an estimate, got {other:?}"),
        }

        // Unknown term → structured ERR carrying the request id.
        svc.handle_line("EST q2 SELECT * WHERE { ?x :hasAuthor :Nobody . }", &tx);
        match rx.recv().unwrap() {
            Reply::Error { id, message } => {
                assert_eq!(id, "q2");
                assert!(message.contains("unknown node term"));
            }
            other => panic!("expected ERR, got {other:?}"),
        }

        // Malformed line → ERR with the placeholder id.
        svc.handle_line("ESTIMATE q3 whatever", &tx);
        match rx.recv().unwrap() {
            Reply::Error { id, .. } => assert_eq!(id, "-"),
            other => panic!("expected ERR, got {other:?}"),
        }

        svc.handle_line("STATS s1", &tx);
        match rx.recv().unwrap() {
            Reply::Stats { id, snapshot } => {
                assert_eq!(id, "s1");
                assert_eq!(snapshot.served, 1);
            }
            other => panic!("expected STATS, got {other:?}"),
        }

        assert_eq!(svc.handle_line("QUIT", &tx), LineOutcome::Quit);
    }

    #[test]
    fn serve_stream_session_end_to_end() {
        let svc = service(BatchConfig::default());
        let input = "\
# a tiny session
EST a SELECT * WHERE { ?x :hasAuthor :StephenKing . }
EST b SELECT * WHERE { ?x :hasAuthor ?a . ?a :bornIn :USA . }
garbage line
STATS s
QUIT
EST never SELECT * WHERE { ?x :hasAuthor ?y . }
";
        let out = serve_stream(&svc, input.as_bytes(), Vec::new());
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        // Estimate replies may be reordered relative to the direct ERR/STATS
        // replies; QUIT stops the session before the final request.
        assert_eq!(lines.len(), 4, "unexpected session transcript: {text}");
        assert!(lines.iter().any(|l| l.starts_with("OK a ")));
        assert!(lines.iter().any(|l| l.starts_with("OK b ")));
        assert!(lines.iter().any(|l| l.starts_with("ERR - ")));
        assert!(lines.iter().any(|l| l.starts_with("STATS s ")));
        assert!(!text.contains("never"));
    }

    #[test]
    fn non_utf8_line_gets_err_without_killing_the_session() {
        let svc = service(BatchConfig::default());
        let mut input: Vec<u8> = Vec::new();
        input.extend_from_slice(b"EST a SELECT * WHERE { ?x :hasAuthor :StephenKing . }\n");
        input.extend_from_slice(b"\xe9\xff not utf-8\n");
        input.extend_from_slice(b"EST b SELECT * WHERE { ?x :bornIn :USA . }\n");
        input.extend_from_slice(b"QUIT\n");
        let out = serve_stream(&svc, input.as_slice(), Vec::new());
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3, "unexpected transcript: {text}");
        assert!(lines.iter().any(|l| l.starts_with("OK a ")));
        assert!(l_starts(&lines, "ERR - ") == 1, "one ERR for the bad line: {text}");
        // The request *after* the bad bytes was still served.
        assert!(
            lines.iter().any(|l| l.starts_with("OK b ")),
            "session must survive: {text}"
        );
    }

    fn l_starts(lines: &[&str], prefix: &str) -> usize {
        lines.iter().filter(|l| l.starts_with(prefix)).count()
    }

    #[test]
    fn serve_tcp_round_trip() {
        use std::io::{BufRead as _, Write as _};
        use std::net::TcpStream;

        let svc = Arc::new(service(BatchConfig::default()));
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn({
            let svc = Arc::clone(&svc);
            move || serve_tcp(&svc, listener, Some(1), &ShutdownFlag::new()).unwrap()
        });

        let mut client = TcpStream::connect(addr).unwrap();
        client
            .write_all(b"EST t1 SELECT * WHERE { ?x :hasAuthor :StephenKing . }\nQUIT\n")
            .unwrap();
        let mut reader = BufReader::new(client.try_clone().unwrap());
        let mut reply = String::new();
        reader.read_line(&mut reply).unwrap();
        assert!(reply.starts_with("OK t1 "), "unexpected reply {reply:?}");
        // After QUIT the server closes the connection.
        let mut rest = String::new();
        reader.read_line(&mut rest).unwrap();
        assert!(rest.is_empty());
        server.join().unwrap();
    }

    #[test]
    fn tcp_shutdown_drains_in_flight_sessions() {
        use std::io::{BufRead as _, Write as _};
        use std::net::TcpStream;

        // A slow estimator so the request is still in the batcher when
        // shutdown triggers — the reply must arrive anyway.
        struct SlowEstimator;
        impl lmkg::CardinalityEstimator for SlowEstimator {
            fn name(&self) -> &str {
                "slow"
            }
            fn estimate(&self, _q: &lmkg_store::Query) -> f64 {
                std::thread::sleep(std::time::Duration::from_millis(300));
                42.0
            }
            fn memory_bytes(&self) -> usize {
                0
            }
        }

        let mut b = GraphBuilder::new();
        b.add(":a", ":p", ":b");
        let graph = Arc::new(b.build());
        let svc = Arc::new(EstimationService::new(
            Arc::clone(&graph),
            Arc::new(SlowEstimator),
            BatchConfig::default().per_request(),
        ));
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let flag = ShutdownFlag::new();
        let server = std::thread::spawn({
            let svc = Arc::clone(&svc);
            let flag = flag.clone();
            move || serve_tcp(&svc, listener, None, &flag).unwrap()
        });

        // No QUIT: the session would block on the open connection forever
        // without the shutdown path closing its read half.
        let mut client = TcpStream::connect(addr).unwrap();
        client.write_all(b"EST d1 SELECT * WHERE { ?x :p ?y . }\n").unwrap();
        std::thread::sleep(std::time::Duration::from_millis(100)); // request admitted, forward running
        flag.trigger();

        // The in-flight request drains: its reply is written before the
        // session closes, and the accept loop joins the session and returns.
        let mut reader = BufReader::new(client.try_clone().unwrap());
        let mut reply = String::new();
        reader.read_line(&mut reply).unwrap();
        assert!(reply.starts_with("OK d1 42 "), "in-flight reply must flush: {reply:?}");
        server.join().unwrap();
        assert_eq!(svc.stats().served, 1);
    }
}
